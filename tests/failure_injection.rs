//! Failure injection: what happens when pieces of the result-delivery
//! machinery misbehave. The system's stance is fail-open for data
//! (packets keep flowing) and fail-closed for decisions that depend on
//! missing results (no false blocks).

use dpi_service::ac::MiddleboxId;
use dpi_service::core::{DpiInstance, InstanceConfig, MiddleboxProfile, RuleSpec};
use dpi_service::middlebox::{
    DpiServiceNode, MbAction, MiddleboxNode, ResultsDelivery, RuleLogic, ServiceMiddlebox,
};
use dpi_service::packet::ipv4::IpProtocol;
use dpi_service::packet::packet::flow;
use dpi_service::packet::{MacAddr, Packet};
use dpi_service::sdn::Node;

const MB: MiddleboxId = MiddleboxId(1);

fn dpi() -> DpiInstance {
    DpiInstance::new(
        InstanceConfig::new()
            .with_middlebox(
                MiddleboxProfile::stateless(MB),
                vec![RuleSpec::exact(b"match-me-sig".to_vec())],
            )
            .with_chain(5, vec![MB]),
    )
    .unwrap()
}

fn tagged(payload: &[u8], port: u16) -> Packet {
    let f = flow([1, 1, 1, 1], port, [2, 2, 2, 2], 80, IpProtocol::Tcp);
    let mut p = Packet::tcp(MacAddr::local(1), MacAddr::local(2), f, 0, payload.to_vec());
    p.push_chain_tag(5).unwrap();
    p
}

#[test]
fn lost_result_packets_fail_open_at_buffer_capacity() {
    let (mut dpi_node, _h) =
        DpiServiceNode::new(dpi(), ResultsDelivery::DedicatedPacket, MacAddr::local(9));
    let mb = ServiceMiddlebox::new(MB, "ids", RuleLogic::one_per_pattern(1, MbAction::Alert));
    let (mut mb_node, handle) = MiddleboxNode::with_buffer_capacity(mb, true, 2);

    // Three marked packets whose result packets we "lose" on the way.
    let mut released = Vec::new();
    for port in [1000u16, 1001, 1002] {
        let emitted = dpi_node.on_packet(tagged(b"a match-me-sig b", port), 0);
        assert_eq!(emitted.len(), 2, "data + result emitted");
        // Deliver only the data packet; drop the result.
        released.extend(mb_node.on_packet(emitted[0].1.clone(), 0));
    }
    // Capacity 2: the third data packet forces the oldest out, unpaired.
    assert_eq!(released.len(), 1, "fail-open release at capacity");
    // The unpaired packet was processed with no matches (fail-closed on
    // match-dependent decisions): it was forwarded, no rule fired on it.
    let stats = handle.lock().stats();
    assert_eq!(stats.packets, 1);
    assert_eq!(stats.matches, 0);
}

#[test]
fn duplicated_result_packets_do_not_double_fire() {
    let (mut dpi_node, _h) =
        DpiServiceNode::new(dpi(), ResultsDelivery::DedicatedPacket, MacAddr::local(9));
    let mb = ServiceMiddlebox::new(MB, "ids", RuleLogic::one_per_pattern(1, MbAction::Alert));
    let (mut mb_node, handle) = MiddleboxNode::new(mb, true);

    let emitted = dpi_node.on_packet(tagged(b"one match-me-sig", 2000), 0);
    let data = emitted[0].1.clone();
    let result = emitted[1].1.clone();
    // Data, then the result twice (a retransmitting network element).
    mb_node.on_packet(data, 0);
    mb_node.on_packet(result.clone(), 0);
    mb_node.on_packet(result, 0);
    let stats = handle.lock().stats();
    // One data packet processed once; the duplicate result waits for a
    // data packet that never comes (and would age out at capacity).
    assert_eq!(stats.packets, 1);
    assert_eq!(stats.rules_fired, 1);
}

#[test]
fn unknown_chain_packets_are_dropped_by_the_service_not_crashed_on() {
    let (mut dpi_node, _h) =
        DpiServiceNode::new(dpi(), ResultsDelivery::DedicatedPacket, MacAddr::local(9));
    let mut p = tagged(b"payload", 3000);
    p.pop_chain_tag();
    p.push_chain_tag(999).unwrap(); // a chain this instance does not serve
    assert!(dpi_node.on_packet(p, 0).is_empty());
    assert_eq!(dpi_node.error_count(), 1);
}

#[test]
fn corrupted_result_packet_bytes_do_not_poison_the_middlebox() {
    use dpi_service::packet::packet::PacketBody;
    let (mut dpi_node, _h) =
        DpiServiceNode::new(dpi(), ResultsDelivery::DedicatedPacket, MacAddr::local(9));
    let emitted = dpi_node.on_packet(tagged(b"xx match-me-sig", 4000), 0);
    let result = emitted[1].1.clone();

    // Serialize, corrupt a report byte, reparse: the packet layer rejects
    // it (or yields a different-but-valid report), so the wire path can
    // never deliver a half-garbage structure to the middlebox.
    let mut bytes = result.to_bytes();
    let n = bytes.len();
    bytes[n - 1] ^= 0xff;
    match Packet::parse(&bytes) {
        Err(_) => {}
        Ok(p) => {
            // If it still parses, it must be a structurally valid result.
            assert!(matches!(p.body, PacketBody::Result(_) | PacketBody::Raw(_)));
        }
    }
}
