//! Data-plane throughput: sequential `DpiInstance` vs `ShardedScanner`
//! at 1/2/4/8 workers over the same multi-flow tagged trace, plus the
//! FullAc vs CompactAc footprint/throughput comparison. Writes
//! `BENCH_pipeline.json` (consumed by the CI bench job as an artifact).
//! Each `sharded[]` entry also records `peak_queue_depths`: shard i's
//! ingress-queue high-water mark across the passes at that worker count
//! (backlog skew = an elephant flow pinned to one shard).
//!
//! Set `DPI_BENCH_QUICK=1` for a CI-sized run. Speedup numbers only mean
//! something when `host_cores` ≥ the worker count — the JSON records the
//! core count so readers can tell scaling from time-slicing.

use dpi_ac::{Automaton, CombinedAcBuilder, MiddleboxId, PatternSet};
use dpi_bench::{host_cores, pipeline_batch, pipeline_config, print_row, throughput_mbps};
use dpi_core::pipeline::ShardedScanner;
use dpi_core::DpiInstance;
use dpi_packet::Packet;
use dpi_traffic::patterns::snort_like;
use dpi_traffic::trace::TraceConfig;
use std::time::Instant;

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Best packets/sec over `runs` passes of `scan` on clones of `batch` —
/// best-of-N because on a shared host any slower pass measures a
/// neighbor's noise, not the pipeline.
fn best_pps(batch: &[Packet], runs: usize, mut scan: impl FnMut(&mut [Packet])) -> f64 {
    (0..runs.max(1))
        .map(|_| {
            let mut pkts = batch.to_vec();
            let t0 = Instant::now();
            scan(&mut pkts);
            batch.len() as f64 / t0.elapsed().as_secs_f64()
        })
        .fold(0.0, f64::max)
}

fn main() {
    let quick = std::env::var_os("DPI_BENCH_QUICK").is_some();
    let (npat, npkt, runs) = if quick {
        (500, 256, 3)
    } else {
        (2000, 2048, 5)
    };

    let pats = snort_like(npat, 42);
    let payloads = TraceConfig {
        packets: npkt,
        match_density: 0.02,
        prefix_density: 3.0,
        seed: 7,
        ..TraceConfig::default()
    }
    .generate(&pats);
    let batch = pipeline_batch(&payloads, 64, 99);
    let bytes: usize = payloads.iter().map(|p| p.len()).sum();

    println!(
        "pipeline bench: {npat} patterns, {npkt} packets ({bytes} bytes), \
         {} host cores{}",
        host_cores(),
        if quick { ", quick mode" } else { "" }
    );
    print_row(&[
        "plane".into(),
        "workers".into(),
        "pkts/s".into(),
        "speedup".into(),
    ]);

    // Sequential reference: one instance, one thread.
    let mut instance = DpiInstance::new(pipeline_config(&pats)).expect("valid config");
    let seq_pps = best_pps(&batch, runs, |pkts| {
        for p in pkts.iter_mut() {
            let _ = instance.inspect(p);
        }
    });
    print_row(&[
        "sequential".into(),
        "-".into(),
        format!("{seq_pps:.0}"),
        "1.00x".into(),
    ]);

    let mut sharded = Vec::new();
    for workers in WORKER_SWEEP {
        let mut scanner =
            ShardedScanner::from_config(pipeline_config(&pats), workers).expect("valid config");
        let pps = best_pps(&batch, runs, |pkts| {
            scanner.inspect_batch(pkts);
        });
        let speedup = pps / seq_pps;
        // Lifetime high-water mark of each shard's ingress queue across
        // the bench passes: how far behind the slowest shard got.
        let peaks: Vec<u64> = scanner
            .shard_telemetry()
            .iter()
            .map(|t| t.peak_queue_depth)
            .collect();
        print_row(&[
            "sharded".into(),
            format!("{workers}"),
            format!("{pps:.0}"),
            format!("{speedup:.2}x"),
        ]);
        sharded.push((workers, pps, speedup, peaks));
    }

    // Automaton representations over the same rule set.
    let mut builder = CombinedAcBuilder::new();
    builder
        .add_set(PatternSet::new(MiddleboxId(0), pats.clone()))
        .expect("generated patterns are valid");
    let full = builder.build_full();
    let compact = builder.build_compact();
    let auto_repr = builder.build_auto().repr_name();
    let full_mbps = throughput_mbps(&full, &payloads, runs);
    println!(
        "automaton: {} states, auto-selected {auto_repr}",
        full.state_count()
    );
    print_row(&[
        "repr".into(),
        "bytes".into(),
        "Mbit/s".into(),
        String::new(),
    ]);
    print_row(&[
        "full-u32".into(),
        format!("{}", full.memory_bytes()),
        format!("{full_mbps:.0}"),
        String::new(),
    ]);
    let compact_json = match &compact {
        Some(c) => {
            let mbps = throughput_mbps(c, &payloads, runs);
            let pct = c.memory_bytes() as f64 * 100.0 / full.memory_bytes() as f64;
            print_row(&[
                "compact-u16".into(),
                format!("{}", c.memory_bytes()),
                format!("{mbps:.0}"),
                format!("{pct:.1}% of full"),
            ]);
            format!(
                "{{\"bytes\": {}, \"mbps\": {:.0}, \"pct_of_full\": {:.1}}}",
                c.memory_bytes(),
                mbps,
                pct
            )
        }
        None => "null".into(),
    };

    // Per entry: `peak_queue_depths[i]` is shard i's ingress-queue
    // high-water mark over every pass at that worker count.
    let sharded_json: Vec<String> = sharded
        .iter()
        .map(|(w, pps, s, peaks)| {
            let peaks: Vec<String> = peaks.iter().map(u64::to_string).collect();
            format!(
                "{{\"workers\": {w}, \"pps\": {pps:.0}, \"speedup\": {s:.2}, \
                 \"peak_queue_depths\": [{}]}}",
                peaks.join(", ")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"host_cores\": {},\n  \"quick\": {},\n  \"patterns\": {},\n  \
         \"packets\": {},\n  \"bytes\": {},\n  \"sequential_pps\": {:.0},\n  \
         \"sharded\": [{}],\n  \"automaton\": {{\"states\": {}, \"auto_repr\": \
         \"{}\", \"full\": {{\"bytes\": {}, \"mbps\": {:.0}}}, \"compact\": {}}}\n}}\n",
        host_cores(),
        quick,
        npat,
        npkt,
        bytes,
        seq_pps,
        sharded_json.join(", "),
        full.state_count(),
        auto_repr,
        full.memory_bytes(),
        full_mbps,
        compact_json,
    );
    std::fs::write("BENCH_pipeline.json", &json).expect("writable working directory");
    println!("wrote BENCH_pipeline.json");
}
