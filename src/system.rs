//! End-to-end system assembly: the paper's Figure 5 in one builder.
//!
//! [`SystemBuilder`] wires together a DPI controller, a simulated
//! single-switch star network (the §6.1 experimental topology), a fleet
//! of one or more DPI service instance nodes and any number of
//! service-consuming middlebox nodes, installs the Traffic Steering
//! Application's chain rules, and returns a [`SystemHandle`] to drive
//! traffic through and observe every component.
//!
//! # Fault tolerance
//!
//! With [`SystemBuilder::with_dpi_instances`] > 1 the builder deploys a
//! fleet: every instance shares the one compiled automaton, each flow is
//! pinned to an instance by a per-flow steering rule on first sight, and
//! the controller tracks liveness through the heartbeat protocol
//! ([`SystemHandle::heartbeat_round`]). When an instance is declared
//! `Dead`, its flows are re-steered to a survivor. Mid-flow automaton
//! state on the dead instance is lost — the survivor restarts each
//! re-steered flow's scan from a fresh DFA state, which can *miss* a
//! pattern straddling the failover point but can never *fabricate* a
//! match (the paper's accepted failover semantics; see DESIGN.md §8).
//!
//! [`SystemBuilder::with_chaos`] attaches a deterministic
//! [`FaultPlan`]: instance kills, shard stalls/panics and result-packet
//! loss all replay identically from one seed.

use dpi_ac::{KernelKind, MiddleboxId};
use dpi_controller::{
    BalancePolicy, DpiController, HealthEvent, HealthPolicy, InstanceId, LoadBalancer,
    PreparedUpdate, UpdateOrchestrator, UpdateTarget,
};
use dpi_core::chaos::{ChaosEngine, FaultPlan, RetryPolicy};
use dpi_core::instance::ScanEngine;
use dpi_core::metrics::{MetricKind, MetricsText};
use dpi_core::overload::{InstanceLoadGauge, LoadWindow, OverloadPolicy};
use dpi_core::pipeline::ShardedScanner;
use dpi_core::rules::RuleKind;
use dpi_core::telemetry::{merge_tenant_counters, ShardTelemetry, TenantCounters};
use dpi_core::trace::{to_jsonl, TraceEvent, TraceKind, TraceSource, Tracer};
use dpi_core::{
    ConflictPolicy, DpiInstance, GenerationId, TenantId, TenantQuota, UpdateArtifact, UpdateError,
};
use dpi_middlebox::boxes::MiddleboxTemplate;
use dpi_middlebox::{
    FleetDpiNode, FleetDpiStats, MiddleboxNode, ResultsDelivery, ServiceMiddlebox,
};
use dpi_packet::report::ResultPacket;
use dpi_packet::{FlowKey, MacAddr, Packet};
use dpi_sdn::flowtable::Port;
use dpi_sdn::{Network, NodeId, Switch, TrafficSteeringApp};
use dpi_traffic::evasive_flow;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

// `parking_lot` is pulled transitively; re-exported types below keep the
// facade's public API self-contained.
use dpi_middlebox::MiddleboxStats;

/// Errors during system assembly.
#[derive(Debug)]
pub enum SystemError {
    /// Relayed controller error.
    Controller(dpi_controller::ControllerError),
    /// Relayed DPI instance build error.
    Instance(dpi_core::InstanceError),
    /// A chain referenced a middlebox that was never added.
    UnknownMiddlebox(u16),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Controller(e) => write!(f, "controller: {e}"),
            SystemError::Instance(e) => write!(f, "instance: {e}"),
            SystemError::UnknownMiddlebox(id) => write!(f, "unknown middlebox {id}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<dpi_controller::ControllerError> for SystemError {
    fn from(e: dpi_controller::ControllerError) -> SystemError {
        SystemError::Controller(e)
    }
}

impl From<dpi_core::InstanceError> for SystemError {
    fn from(e: dpi_core::InstanceError) -> SystemError {
        SystemError::Instance(e)
    }
}

/// Builds a complete simulated deployment.
///
/// ```
/// use dpi_service::ac::MiddleboxId;
/// use dpi_service::middlebox::ids;
/// use dpi_service::packet::ipv4::IpProtocol;
/// use dpi_service::packet::packet::flow;
/// use dpi_service::SystemBuilder;
///
/// let mut sys = SystemBuilder::new()
///     .with_middlebox(ids(MiddleboxId(1), &[b"evil-sig".to_vec()]))
///     .with_chain(&[MiddleboxId(1)])
///     .build()
///     .unwrap();
/// let f = flow([10, 0, 0, 1], 1000, [10, 0, 0, 2], 80, IpProtocol::Tcp);
/// sys.send(f, 0, b"carrying evil-sig right here");
/// assert_eq!(sys.stats_of(MiddleboxId(1)).unwrap().matches, 1);
/// assert_eq!(sys.sink.count(), 1); // IDS is read-only: packet delivered
/// ```
pub struct SystemBuilder {
    templates: Vec<MiddleboxTemplate>,
    chains: Vec<Vec<MiddleboxId>>,
    delivery: ResultsDelivery,
    dpi_workers: usize,
    dpi_instances: usize,
    chaos: Option<FaultPlan>,
    health_policy: HealthPolicy,
    retry: RetryPolicy,
    overload: Option<OverloadPolicy>,
    balance: Option<BalancePolicy>,
    kernel: KernelKind,
    conflict_policy: ConflictPolicy,
    l7: Option<dpi_core::L7Policy>,
    tenant_quotas: Vec<(TenantId, TenantQuota)>,
}

impl Default for SystemBuilder {
    fn default() -> SystemBuilder {
        SystemBuilder::new()
    }
}

impl SystemBuilder {
    /// An empty system using dedicated result packets (the prototype's
    /// delivery method).
    pub fn new() -> SystemBuilder {
        SystemBuilder {
            templates: Vec::new(),
            chains: Vec::new(),
            delivery: ResultsDelivery::DedicatedPacket,
            dpi_workers: 1,
            dpi_instances: 1,
            chaos: None,
            health_policy: HealthPolicy::default(),
            retry: RetryPolicy::default(),
            overload: None,
            balance: None,
            kernel: KernelKind::Auto,
            conflict_policy: ConflictPolicy::FirstWins,
            l7: None,
            tenant_quotas: Vec::new(),
        }
    }

    /// Declares a tenant's quota and fair-share weight (DESIGN.md §16).
    /// Assign middleboxes to tenants with
    /// [`MiddleboxTemplate::owned_by`]; tenants never declared here run
    /// unlimited at weight 1. The quotas are registered with the
    /// controller, so engines rebuilt by live rule updates keep them.
    pub fn with_tenant_quota(mut self, tenant: TenantId, quota: TenantQuota) -> SystemBuilder {
        self.tenant_quotas.retain(|(t, _)| *t != tenant);
        self.tenant_quotas.push((tenant, quota));
        self
    }

    /// Selects the byte-scanning kernel every engine in the system runs
    /// (default [`KernelKind::Auto`], the historical width-based
    /// selection). The choice is stamped into the instance configuration,
    /// so engines rebuilt by live rule updates keep it.
    pub fn with_scan_kernel(mut self, kernel: KernelKind) -> SystemBuilder {
        self.kernel = kernel;
        self
    }

    /// Selects how every reassembler in the system resolves byte-level
    /// conflicts between overlapping TCP segment copies (default
    /// [`ConflictPolicy::FirstWins`], the historical Snort-style rule).
    /// Like the kernel choice, the policy is stamped into the instance
    /// configuration, so engines rebuilt by live rule updates keep it.
    pub fn with_conflict_policy(mut self, policy: ConflictPolicy) -> SystemBuilder {
        self.conflict_policy = policy;
        self
    }

    /// Enables L7 protocol inspection (identify → decode → scan,
    /// DESIGN.md §14) on every engine's TCP path with the given
    /// per-protocol policy. Off by default: without it the engines scan
    /// reassembled bytes raw, exactly as before the L7 layer existed.
    /// Like the kernel choice, the policy is stamped into the instance
    /// configuration, so engines rebuilt by live rule updates keep it.
    pub fn with_l7_policy(mut self, policy: dpi_core::L7Policy) -> SystemBuilder {
        self.l7 = Some(policy);
        self
    }

    /// Sets the worker count of the batched scan pipeline exposed as
    /// [`SystemHandle::scanner`] (default 1). The pipeline shares the
    /// compiled automaton with the in-network DPI node, so raising the
    /// worker count costs per-shard flow tables, not another engine.
    pub fn with_dpi_workers(mut self, workers: usize) -> SystemBuilder {
        self.dpi_workers = workers.max(1);
        self
    }

    /// Sets the number of in-network DPI service instances (default 1).
    /// All instances share the one compiled automaton; flows are pinned
    /// to instances by per-flow steering rules.
    pub fn with_dpi_instances(mut self, instances: usize) -> SystemBuilder {
        self.dpi_instances = instances.max(1);
        self
    }

    /// Attaches a deterministic fault plan. Instance kills apply to the
    /// in-network fleet, shard faults to the batch pipeline, result drop
    /// and duplication to every instance's result delivery.
    pub fn with_chaos(mut self, plan: FaultPlan) -> SystemBuilder {
        self.chaos = Some(plan);
        self
    }

    /// Sets the controller's heartbeat miss thresholds.
    pub fn with_health_policy(mut self, policy: HealthPolicy) -> SystemBuilder {
        self.health_policy = policy;
        self
    }

    /// Sets the result-packet delivery retry policy.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> SystemBuilder {
        self.retry = retry;
        self
    }

    /// Arms adaptive overload control (DESIGN.md §11). The batch
    /// pipeline's shards watch queue depth and scan latency against the
    /// policy's watermarks; the in-network fleet instances get a
    /// per-heartbeat-window packet gauge with the same `queue_high` /
    /// `queue_low` values reinterpreted as packets-per-window marks.
    /// While overloaded, forwarded packets are CE-marked and fail-open
    /// chains may be shed; fail-closed chains are always scanned.
    pub fn with_overload_policy(mut self, policy: OverloadPolicy) -> SystemBuilder {
        self.overload = Some(policy);
        self
    }

    /// Arms telemetry-driven fleet rebalancing: each
    /// [`SystemHandle::heartbeat_round`] feeds per-instance load deltas
    /// to a [`LoadBalancer`], and bounded whole-flow migrations move
    /// flows from the hottest instance to the coldest.
    pub fn with_balance_policy(mut self, policy: BalancePolicy) -> SystemBuilder {
        self.balance = Some(policy);
        self
    }

    /// Switches result delivery to the in-band NSH-like header.
    pub fn in_band_results(mut self) -> SystemBuilder {
        self.delivery = ResultsDelivery::InBand;
        self
    }

    /// Switches result delivery to MPLS result labels (with dedicated
    /// result packets as overflow fallback).
    pub fn mpls_results(mut self) -> SystemBuilder {
        self.delivery = ResultsDelivery::MplsTags;
        self
    }

    /// Adds a middlebox (see [`dpi_middlebox::boxes`] for templates).
    pub fn with_middlebox(mut self, template: MiddleboxTemplate) -> SystemBuilder {
        self.templates.push(template);
        self
    }

    /// Adds a policy chain over previously-added middleboxes.
    pub fn with_chain(mut self, members: &[MiddleboxId]) -> SystemBuilder {
        self.chains.push(members.to_vec());
        self
    }

    /// Assembles the network. Port map on the single switch: 0 = traffic
    /// source, 1 = destination host, 2..2+N-1 = one port per DPI service
    /// instance, then one port per middlebox in insertion order.
    pub fn build(self) -> Result<SystemHandle, SystemError> {
        let controller = DpiController::new();
        controller.set_health_policy(self.health_policy);
        for (tenant, quota) in &self.tenant_quotas {
            controller.set_tenant_quota(*tenant, *quota);
        }

        // Register every middlebox and its rules with the controller.
        for t in &self.templates {
            controller.register(t.profile.id, &t.name, None, t.profile)?;
            for rule in &t.rules {
                controller.add_pattern(t.profile.id, rule.id, &rule.spec)?;
            }
        }

        // Register chains; remember their ids.
        let mut chain_ids = Vec::new();
        for members in &self.chains {
            chain_ids.push(controller.register_chain(members)?);
        }

        // One engine serving every chain (deployment grouping is
        // exercised separately in dpi-controller), compiled once and
        // shared between every in-network instance and the batch
        // pipeline.
        let mut cfg = controller
            .instance_config(&chain_ids)?
            .with_kernel(self.kernel)
            .with_conflict_policy(self.conflict_policy);
        cfg.l7 = self.l7;
        let mut orchestrator = UpdateOrchestrator::new(&cfg);
        let engine = Arc::new(ScanEngine::new(cfg)?);
        let mut scanner = ShardedScanner::new(engine.clone(), self.dpi_workers);
        if let Some(policy) = self.overload {
            scanner.set_overload_policy(Some(policy));
        }

        // Chains any of whose members demand verdicts: never shed under
        // overload (the gauge-armed fleet nodes consult this set).
        let fail_closed_chains: HashSet<u16> = self
            .chains
            .iter()
            .zip(&chain_ids)
            .filter(|(members, _)| {
                members.iter().any(|m| {
                    self.templates
                        .iter()
                        .any(|t| t.profile.id == *m && t.profile.fail_closed)
                })
            })
            .map(|(_, id)| *id)
            .collect();

        // One tracer for the whole deployment: every layer appends to the
        // same ring so a post-mortem reads one merged, seq-ordered
        // timeline (DESIGN.md §10).
        let tracer = Arc::new(Tracer::new());
        controller.attach_tracer(Arc::clone(&tracer));
        orchestrator.attach_tracer(Arc::clone(&tracer));
        scanner.attach_tracer(Arc::clone(&tracer));

        let chaos = self.chaos.map(FaultPlan::start);
        if let Some(c) = &chaos {
            c.attach_tracer(Arc::clone(&tracer));
            scanner.attach_chaos(Arc::clone(c));
        }

        // The pattern pool the chaos adversary plants evasion attempts
        // around (`FaultPlan::evasive_flows`): every exact literal
        // registered with any middlebox. Regex rules are skipped — the
        // generator needs concrete bytes to hide in a conflict copy.
        let evasion_patterns: Vec<Vec<u8>> = self
            .templates
            .iter()
            .flat_map(|t| t.rules.iter())
            .filter_map(|r| match &r.spec.kind {
                RuleKind::Exact(p) => Some(p.clone()),
                _ => None,
            })
            .collect();

        // Build the star network.
        let mut net = Network::new(1_000_000);
        let switch = Switch::new("s1");
        let tsa = TrafficSteeringApp::new(&switch);
        let sw = net.add_node(Box::new(switch));

        let sink = dpi_sdn::network::SinkHost::new();
        let sink_id = net.add_node(Box::new(sink.clone()));
        net.link(sw, 1, sink_id, 0);

        // The DPI fleet: ports 2..2+N-1.
        let mut dpi_handles = Vec::new();
        let mut fleet_stats = Vec::new();
        let mut dpi_ports = Vec::new();
        let mut instance_ids = Vec::new();
        let mut load_gauges = Vec::new();
        for i in 0..self.dpi_instances {
            let port = 2 + i as Port;
            let instance = DpiInstance::from_engine(engine.clone());
            let (mut node, handle, stats) = FleetDpiNode::new(
                instance,
                self.delivery,
                MacAddr::local(100 + i as u32),
                i,
                chaos.clone(),
                self.retry,
            );
            node.attach_tracer(Arc::clone(&tracer));
            let gauge = Arc::new(InstanceLoadGauge::default());
            if self.overload.is_some() {
                node.attach_load_gauge(Arc::clone(&gauge), fail_closed_chains.clone());
            }
            load_gauges.push(gauge);
            let id = net.add_node(Box::new(node));
            net.link(sw, port, id, 0);
            dpi_handles.push(handle);
            fleet_stats.push(stats);
            dpi_ports.push(port);
            instance_ids.push(controller.deploy_instance(chain_ids.clone()));
        }

        let mut mb_handles = HashMap::new();
        let mut mb_port = HashMap::new();
        for (i, t) in self.templates.iter().enumerate() {
            let port = 2 + self.dpi_instances as Port + i as Port;
            let last_on_any_chain = self.chains.iter().any(|c| c.last() == Some(&t.profile.id));
            let mb = ServiceMiddlebox::new(t.profile.id, &t.name, t.logic.clone());
            let (node, handle) = MiddleboxNode::new(mb, last_on_any_chain);
            let id = net.add_node(Box::new(node));
            net.link(sw, port, id, 0);
            mb_handles.insert(t.profile.id, handle);
            mb_port.insert(t.profile.id, port);
        }

        // TSA rules: ingress 0 → fleet → members' ports → egress 1.
        for (members, chain_id) in self.chains.iter().zip(&chain_ids) {
            let mut via = Vec::new();
            for m in members {
                via.push(*mb_port.get(m).ok_or(SystemError::UnknownMiddlebox(m.0))?);
            }
            tsa.install_chain_fleet(*chain_id, 0, &dpi_ports, &via, 1);
        }

        // Instance-level overload windows: the same high/low watermarks,
        // reinterpreted as packets per heartbeat window.
        let load_windows = self
            .overload
            .map(|p| {
                (0..self.dpi_instances)
                    .map(|_| LoadWindow::new(p.queue_high as u64, p.queue_low as u64))
                    .collect()
            })
            .unwrap_or_default();

        Ok(SystemHandle {
            controller,
            net,
            switch_id: sw,
            sink,
            dpi: dpi_handles[0].clone(),
            dpi_instances: dpi_handles,
            fleet_stats,
            dpi_ports,
            instance_ids,
            chaos,
            heartbeat_seq: vec![0; self.dpi_instances],
            steered: HashMap::new(),
            evasion_patterns,
            flow_evasive: HashMap::new(),
            next_instance: 0,
            scanner,
            middleboxes: mb_handles,
            chain_ids,
            tsa,
            orchestrator,
            tracer,
            load_gauges,
            load_windows,
            overload: self.overload,
            balancer: self.balance.map(LoadBalancer::new),
            kernel: self.kernel,
            conflict_policy: self.conflict_policy,
            l7: self.l7,
        })
    }
}

/// What one [`SystemHandle::apply_update`] did.
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// The generation that was rolled out (or attempted).
    pub generation: GenerationId,
    /// Whether the whole fleet committed to it.
    pub committed: bool,
    /// Bytes shipped per instance for this update (Fig. 11's unit).
    pub transfer_bytes: u64,
    /// Longest observed swap pause across the fleet and the batch
    /// pipeline — the drain-barrier cost; compilation happens off the
    /// packet path and is excluded by construction.
    pub swap_pause: Duration,
    /// Why the update rolled back, if it did.
    pub failure: Option<String>,
}

/// Adapter: one in-network fleet instance as a staged-rollout target.
struct FleetTarget {
    id: InstanceId,
    instance: Arc<Mutex<DpiInstance>>,
    pause: Duration,
}

impl UpdateTarget for FleetTarget {
    fn instance_id(&self) -> InstanceId {
        self.id
    }

    fn begin_update(&mut self, artifact: &UpdateArtifact) -> Result<GenerationId, UpdateError> {
        // Validation and compilation happen here, outside the instance
        // lock — the packet path never waits on them.
        let engine = artifact.compile()?;
        let mut g = self.instance.lock();
        let current = g.engine().generation();
        if engine.generation() <= current {
            return Err(UpdateError::StaleGeneration {
                current,
                offered: engine.generation(),
            });
        }
        let t = Instant::now();
        g.swap_engine(engine);
        self.pause = self.pause.max(t.elapsed());
        Ok(artifact.generation)
    }

    fn rollback(&mut self, artifact: &UpdateArtifact) -> Result<GenerationId, UpdateError> {
        let engine = artifact.compile()?;
        let t = Instant::now();
        self.instance.lock().swap_engine(engine);
        self.pause = self.pause.max(t.elapsed());
        Ok(artifact.generation)
    }
}

/// A running simulated deployment.
pub struct SystemHandle {
    /// The DPI controller.
    pub controller: DpiController,
    /// The simulated network.
    pub net: Network,
    /// The switch's node id.
    pub switch_id: NodeId,
    /// The destination host (inspect received traffic here).
    pub sink: dpi_sdn::network::SinkHost,
    /// The first DPI service instance (kept for single-instance callers).
    pub dpi: Arc<Mutex<DpiInstance>>,
    /// Every DPI service instance, fleet order.
    pub dpi_instances: Vec<Arc<Mutex<DpiInstance>>>,
    /// Per-instance fault-handling counters (swallowed packets, result
    /// retries/losses/duplicates).
    pub fleet_stats: Vec<Arc<Mutex<FleetDpiStats>>>,
    /// Switch port of each instance, fleet order.
    pub dpi_ports: Vec<Port>,
    /// Controller id of each instance, fleet order.
    pub instance_ids: Vec<InstanceId>,
    /// The chaos engine, when a fault plan was attached.
    pub chaos: Option<Arc<ChaosEngine>>,
    heartbeat_seq: Vec<u64>,
    /// Flow → instance port pinning installed so far.
    steered: HashMap<FlowKey, Port>,
    /// Exact literals registered with the middleboxes — the pool the
    /// chaos adversary plants evasion attempts around.
    evasion_patterns: Vec<Vec<u8>>,
    /// Per-flow chaos verdict: `true` means the evasion adversary took
    /// the flow over on first sight (its generated segments replaced the
    /// caller's traffic), `false` means the draw came up benign and is
    /// never repeated.
    flow_evasive: HashMap<FlowKey, bool>,
    next_instance: usize,
    /// The batched scan pipeline: shares the in-network instances'
    /// compiled automaton, fans packets out across
    /// [`SystemBuilder::with_dpi_workers`] flow-affine shards. Drive it
    /// with [`SystemHandle::inspect_batch`] for bulk (out-of-network)
    /// inspection.
    pub scanner: ShardedScanner,
    /// Per-middlebox engine handles.
    pub middleboxes: HashMap<MiddleboxId, Arc<Mutex<ServiceMiddlebox>>>,
    /// Chain ids in the order chains were added to the builder.
    pub chain_ids: Vec<u16>,
    /// The traffic steering application.
    pub tsa: TrafficSteeringApp,
    /// Generation-versioned rule-update orchestrator (DESIGN.md §9).
    orchestrator: UpdateOrchestrator,
    /// Deployment-wide structured-event tracer (DESIGN.md §10).
    tracer: Arc<Tracer>,
    /// Per-instance overload gauges (always present; armed against the
    /// fleet nodes only when an overload policy was configured).
    pub load_gauges: Vec<Arc<InstanceLoadGauge>>,
    /// Per-instance window hysteresis, driven by
    /// [`SystemHandle::heartbeat_round`] (empty when overload control is
    /// off).
    load_windows: Vec<LoadWindow>,
    /// The overload policy in force, if any.
    overload: Option<OverloadPolicy>,
    /// Telemetry-driven flow rebalancer, when armed.
    balancer: Option<LoadBalancer>,
    /// Scan kernel stamped into every engine build (including updates).
    kernel: KernelKind,
    /// Reassembly conflict policy stamped into every engine build
    /// (including updates).
    conflict_policy: ConflictPolicy,
    /// L7 inspection policy stamped into every engine build (including
    /// updates), when enabled.
    l7: Option<dpi_core::L7Policy>,
}

impl SystemHandle {
    /// Sends one TCP payload from the source host into the network and
    /// runs it to quiescence. Returns the number of deliveries.
    ///
    /// In a fleet deployment the first packet of each flow installs a
    /// per-flow steering rule pinning the flow to a live instance
    /// (round-robin), so cross-packet scan state stays on one instance.
    /// A `burst_traffic` chaos fault amplifies sends: while a seeded
    /// burst window is active, each call injects the packet multiple
    /// times — the reproducible traffic spike the overload control
    /// absorbs.
    ///
    /// An `evasive_flows` chaos fault replaces flows wholesale: on first
    /// sight of a flow the engine draws
    /// [`ChaosEngine::next_flow_evasive`] and, on a hit, the flow is
    /// taken over by the reassembly adversary — the generated evasion
    /// attempt's segments (seeded by the draw, planting one of the
    /// registered exact literals) are injected instead of the caller's
    /// payload, and every later send on that flow is swallowed (returns
    /// 0): the adversary owns the flow for its lifetime.
    pub fn send(&mut self, flow: FlowKey, seq: u32, payload: &[u8]) -> usize {
        if self.dpi_ports.len() > 1 && !self.steered.contains_key(&flow) {
            let port = self.pick_instance_port();
            self.tsa.steer_flow(self.chain_ids[0], 0, &flow, port);
            self.steered.insert(flow, port);
        }
        if let Some(c) = &self.chaos {
            if !self.evasion_patterns.is_empty() {
                match self.flow_evasive.get(&flow) {
                    Some(true) => return 0,
                    Some(false) => {}
                    None => {
                        if let Some(seed) = c.next_flow_evasive() {
                            self.flow_evasive.insert(flow, true);
                            let f = evasive_flow(seed, &self.evasion_patterns);
                            for pkt in f.packets(flow) {
                                self.net.inject(self.switch_id, 0, pkt);
                            }
                            return self.net.run();
                        }
                        self.flow_evasive.insert(flow, false);
                    }
                }
            }
        }
        let copies = self
            .chaos
            .as_ref()
            .map(|c| c.send_multiplier())
            .unwrap_or(1);
        let pkt = Packet::tcp(
            MacAddr::local(1),
            MacAddr::local(2),
            flow,
            seq,
            payload.to_vec(),
        );
        for _ in 1..copies {
            self.net.inject(self.switch_id, 0, pkt.clone());
        }
        self.net.inject(self.switch_id, 0, pkt);
        self.net.run()
    }

    /// Round-robin over instances the controller still considers usable
    /// (not `Dead`). Falls back to the first instance if the controller
    /// has written off the whole fleet.
    fn pick_instance_port(&mut self) -> Port {
        let usable: Vec<usize> = (0..self.dpi_ports.len())
            .filter(|&i| {
                self.controller.instance_health(self.instance_ids[i])
                    != Some(dpi_controller::InstanceHealth::Dead)
            })
            .collect();
        if usable.is_empty() {
            return self.dpi_ports[0];
        }
        let pick = usable[self.next_instance % usable.len()];
        self.next_instance += 1;
        self.dpi_ports[pick]
    }

    /// Runs one heartbeat window: every chaos-alive instance beats, the
    /// controller closes the window, and each `BecameDead` transition
    /// triggers failover — the dead instance's ingress steering rules are
    /// rewritten to a surviving instance. Returns the health events.
    ///
    /// Failover restarts mid-flow scan state: the survivor sees
    /// re-steered flows as fresh, which may miss a pattern straddling the
    /// failover point but can never produce a false match.
    pub fn heartbeat_round(&mut self) -> Vec<HealthEvent> {
        for i in 0..self.dpi_instances.len() {
            let alive = self
                .chaos
                .as_ref()
                .map(|c| c.instance_alive(i))
                .unwrap_or(true);
            if alive {
                self.heartbeat_seq[i] += 1;
                let load = self.dpi_instances[i].lock().telemetry().packets;
                let _ =
                    self.controller
                        .heartbeat(self.instance_ids[i], self.heartbeat_seq[i], load);
            }
        }
        let events = self.controller.health_tick();
        for ev in &events {
            if let HealthEvent::BecameDead(id) = ev {
                self.fail_over(*id);
            }
        }
        self.close_overload_windows();
        self.rebalance_round();
        // A heartbeat window is also the fleet's tenant quota window:
        // each instance's per-tenant scan-byte buckets refill here (the
        // batch pipeline refills its own at batch boundaries).
        for d in &self.dpi_instances {
            d.lock().refill_tenant_window();
        }
        events
    }

    /// Closes each armed instance's load window against its hysteresis
    /// thresholds and publishes the overloaded flag + load score back to
    /// the gauge the data plane consults.
    fn close_overload_windows(&mut self) {
        let Some(policy) = self.overload else {
            return;
        };
        for (i, (gauge, window)) in self
            .load_gauges
            .iter()
            .zip(self.load_windows.iter_mut())
            .enumerate()
        {
            let packets = gauge.take_window();
            if let Some(transition) = window.observe(packets) {
                gauge.set_overloaded(window.is_overloaded());
                let kind = match transition {
                    dpi_core::OverloadTransition::Entered => TraceKind::OverloadEntered {
                        depth: packets,
                        ewma_us: 0,
                    },
                    dpi_core::OverloadTransition::Cleared => TraceKind::OverloadCleared {
                        depth: packets,
                        ewma_us: 0,
                    },
                };
                self.tracer.record(TraceSource::Instance(i as u32), kind);
                if let Some(c) = &self.chaos {
                    c.note(format!(
                        "overload: instance {i} {} at {packets} packets/window",
                        match transition {
                            dpi_core::OverloadTransition::Entered => "entered overload",
                            dpi_core::OverloadTransition::Cleared => "cleared overload",
                        }
                    ));
                }
            }
            gauge.set_load_score(packets as f64 / policy.queue_high.max(1) as f64);
        }
    }

    /// One balancer round: feed cumulative per-instance loads, and when a
    /// plan comes back migrate up to its budget of the hot instance's
    /// flows to the cold instance.
    fn rebalance_round(&mut self) {
        let Some(balancer) = &mut self.balancer else {
            return;
        };
        // Only instances the controller would steer to participate.
        // Load is *arrivals*: scanned packets plus packets the overload
        // policy shed unscanned. Counting only scanned packets would let
        // an overloaded instance hide behind its own shedding and look
        // idle to the balancer, so the skew would never drain.
        let loads: Vec<(InstanceId, u64)> = (0..self.dpi_instances.len())
            .filter(|&i| {
                self.controller.instance_health(self.instance_ids[i])
                    != Some(dpi_controller::InstanceHealth::Dead)
            })
            .map(|i| {
                let scanned = self.dpi_instances[i].lock().telemetry().packets;
                let shed = self
                    .load_gauges
                    .get(i)
                    .map(|g| g.shed_packets())
                    .unwrap_or(0);
                (self.instance_ids[i], scanned + shed)
            })
            .collect();
        let Some(plan) = balancer.observe_round(&loads) else {
            return;
        };
        let hot_idx = self
            .instance_ids
            .iter()
            .position(|&id| id == plan.hot)
            .expect("plan instances come from instance_ids");
        let cold_idx = self
            .instance_ids
            .iter()
            .position(|&id| id == plan.cold)
            .expect("plan instances come from instance_ids");
        let (hot_port, cold_port) = (self.dpi_ports[hot_idx], self.dpi_ports[cold_idx]);
        // Candidates: flows currently pinned to the hot instance, keyed
        // by their stable hash so selection is deterministic.
        let by_key: HashMap<u64, FlowKey> = self
            .steered
            .iter()
            .filter(|(_, &port)| port == hot_port)
            .map(|(flow, _)| (flow.stable_hash(), *flow))
            .collect();
        let keys: Vec<u64> = by_key.keys().copied().collect();
        let picked = balancer.select_flows(&plan, &keys);
        if picked.is_empty() {
            return;
        }
        for key in &picked {
            let flow = by_key[key];
            self.tsa.steer_flow(self.chain_ids[0], 0, &flow, cold_port);
            self.steered.insert(flow, cold_port);
        }
        self.tracer.record(
            TraceSource::Controller,
            TraceKind::FlowsRebalanced {
                hot_instance: hot_idx as u32,
                cold_instance: cold_idx as u32,
                flows: picked.len() as u64,
            },
        );
        if let Some(c) = &self.chaos {
            c.note(format!(
                "controller: rebalanced {} flow(s) from instance {hot_idx} (Δ{}) to instance {cold_idx} (Δ{})",
                picked.len(),
                plan.hot_delta,
                plan.cold_delta,
            ));
        }
    }

    /// Total flows the balancer has migrated (0 when rebalancing is off).
    pub fn rebalance_migrations(&self) -> u64 {
        self.balancer.as_ref().map(|b| b.migrations()).unwrap_or(0)
    }

    /// The instance a flow is currently steered to, if it was pinned.
    pub fn steered_instance_of(&self, flow: &FlowKey) -> Option<usize> {
        let port = *self.steered.get(flow)?;
        self.dpi_ports.iter().position(|&p| p == port)
    }

    /// Re-steers a dead instance's flows to the first surviving instance.
    fn fail_over(&mut self, dead: InstanceId) {
        let Some(dead_idx) = self.instance_ids.iter().position(|&i| i == dead) else {
            return;
        };
        let dead_port = self.dpi_ports[dead_idx];
        let survivor = (0..self.dpi_ports.len()).find(|&i| {
            i != dead_idx
                && self.controller.instance_health(self.instance_ids[i])
                    != Some(dpi_controller::InstanceHealth::Dead)
        });
        let Some(survivor_idx) = survivor else {
            if let Some(c) = &self.chaos {
                c.note(format!(
                    "controller: instance {dead_idx} dead, no survivor to re-steer to"
                ));
            }
            return;
        };
        let survivor_port = self.dpi_ports[survivor_idx];
        let rewritten = self.tsa.resteer(dead_port, survivor_port);
        for port in self.steered.values_mut() {
            if *port == dead_port {
                *port = survivor_port;
            }
        }
        self.tracer.record(
            TraceSource::Controller,
            TraceKind::Resteered {
                dead_instance: dead_idx as u32,
                survivor: survivor_idx as u32,
                rules: rewritten as u64,
            },
        );
        if let Some(c) = &self.chaos {
            c.note(format!(
                "controller: instance {dead_idx} dead; re-steered {rewritten} rule(s) to instance {survivor_idx}"
            ));
        }
    }

    /// Stats of one middlebox.
    pub fn stats_of(&self, id: MiddleboxId) -> Option<MiddleboxStats> {
        self.middleboxes.get(&id).map(|h| h.lock().stats())
    }

    /// The first DPI instance's telemetry (see
    /// [`SystemHandle::fleet_telemetry`] for the whole fleet).
    pub fn dpi_telemetry(&self) -> dpi_core::Telemetry {
        self.dpi.lock().telemetry()
    }

    /// Telemetry of every instance, fleet order.
    pub fn fleet_telemetry(&self) -> Vec<dpi_core::Telemetry> {
        self.dpi_instances
            .iter()
            .map(|d| d.lock().telemetry())
            .collect()
    }

    /// Per-shard telemetry of the batch pipeline, including error
    /// counters, peak queue depth and supervision counters (restarts,
    /// watchdog trips, lost scans).
    pub fn shard_telemetry(&self) -> Vec<ShardTelemetry> {
        self.scanner.shard_telemetry()
    }

    /// Deployment-wide per-tenant attribution (DESIGN.md §16): the merge
    /// of every fleet instance's and every pipeline shard's tenant
    /// counters, sorted by tenant. Untenanted traffic accrues to
    /// [`TenantId::DEFAULT`].
    pub fn tenant_telemetry(&self) -> Vec<(TenantId, TenantCounters)> {
        let mut agg: Vec<(TenantId, TenantCounters)> = Vec::new();
        for d in &self.dpi_instances {
            merge_tenant_counters(&mut agg, d.lock().tenant_counters());
        }
        merge_tenant_counters(&mut agg, &self.scanner.tenant_telemetry());
        agg
    }

    /// The chaos fault log (empty without an attached plan).
    pub fn fault_log(&self) -> Vec<String> {
        self.chaos
            .as_ref()
            .map(|c| c.fault_log())
            .unwrap_or_default()
    }

    /// The deployment-wide tracer. Hand clones of this to external
    /// components, or use [`SystemHandle::trace_events`] /
    /// [`SystemHandle::trace_jsonl`] to read what the system recorded.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// A seq-ordered snapshot of the buffered trace events (the ring is
    /// left intact; use [`Tracer::drain`] via [`SystemHandle::tracer`] to
    /// consume them).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.tracer.snapshot()
    }

    /// The buffered trace as JSON Lines — one event object per line,
    /// ready to archive next to a chaos fault log for post-mortems.
    pub fn trace_jsonl(&self) -> String {
        to_jsonl(&self.tracer.snapshot())
    }

    /// The deployment's state as a Prometheus text-format scrape:
    /// per-instance packet/byte/match counters, per-shard pipeline
    /// counters and peak queue depth, fleet health-state counts, the
    /// committed rule generation, and the tracer's own buffering health.
    pub fn metrics_text(&self) -> String {
        let mut m = MetricsText::new();

        m.family(
            "dpi_instance_packets_total",
            "Packets scanned per fleet instance",
            MetricKind::Counter,
        );
        m.family(
            "dpi_instance_bytes_total",
            "Payload bytes scanned per fleet instance",
            MetricKind::Counter,
        );
        m.family(
            "dpi_instance_matches_total",
            "Pattern matches reported per fleet instance",
            MetricKind::Counter,
        );
        m.family(
            "dpi_reassembly_conflicts_total",
            "Byte-level reassembly conflicts detected per fleet instance",
            MetricKind::Counter,
        );
        m.family(
            "dpi_flows_quarantined_total",
            "Flows quarantined by the RejectFlow conflict policy per instance",
            MetricKind::Counter,
        );
        m.family(
            "dpi_flows_evicted_total",
            "Flows evicted from the bounded flow arena by capacity or byte pressure",
            MetricKind::Counter,
        );
        m.family(
            "dpi_quarantined_flow_evictions_total",
            "Quarantined flows force-evicted under full-arena pressure (lost verdicts)",
            MetricKind::Counter,
        );
        m.family(
            "dpi_flows_aged_total",
            "Flows aged out by the idle-timeout timer wheel",
            MetricKind::Counter,
        );
        for (i, t) in self.fleet_telemetry().iter().enumerate() {
            let i = i.to_string();
            let l = [("instance", i.as_str())];
            m.sample("dpi_instance_packets_total", &l, t.packets);
            m.sample("dpi_instance_bytes_total", &l, t.bytes);
            m.sample("dpi_instance_matches_total", &l, t.matches);
            m.sample("dpi_reassembly_conflicts_total", &l, t.reassembly_conflicts);
            m.sample("dpi_flows_quarantined_total", &l, t.flows_quarantined);
            m.sample("dpi_flows_evicted_total", &l, t.flows_evicted);
            m.sample(
                "dpi_quarantined_flow_evictions_total",
                &l,
                t.quarantined_flow_evictions,
            );
            m.sample("dpi_flows_aged_total", &l, t.flows_aged);
        }

        m.family(
            "dpi_instance_tracked_flows",
            "Flows currently tracked in each instance's flow arena",
            MetricKind::Gauge,
        );
        m.family(
            "dpi_instance_flow_state_bytes",
            "Estimated bytes of per-flow state (scan, reassembly, L7) per instance",
            MetricKind::Gauge,
        );
        for (i, d) in self.dpi_instances.iter().enumerate() {
            let d = d.lock();
            let i = i.to_string();
            let l = [("instance", i.as_str())];
            m.sample("dpi_instance_tracked_flows", &l, d.tracked_flows() as u64);
            m.sample("dpi_instance_flow_state_bytes", &l, d.flow_bytes());
        }

        m.family(
            "dpi_l7_flows_identified_total",
            "Flows identified per L7 protocol per instance",
            MetricKind::Counter,
        );
        m.family(
            "dpi_l7_matches_total",
            "Pattern matches inside decoded L7 payloads per protocol per instance",
            MetricKind::Counter,
        );
        m.family(
            "dpi_l7_decoded_bytes_total",
            "Decoded L7 payload bytes scanned per instance",
            MetricKind::Counter,
        );
        m.family(
            "dpi_l7_decode_errors_total",
            "L7 decode errors (fail-open to raw scanning) per instance",
            MetricKind::Counter,
        );
        m.family(
            "dpi_l7_truncations_total",
            "L7 payloads truncated at the per-protocol inspection size limit",
            MetricKind::Counter,
        );
        m.family(
            "dpi_l7_blocked_flows_total",
            "Flows blocked by L7 policy per instance",
            MetricKind::Counter,
        );
        m.family(
            "dpi_l7_bypassed_flows_total",
            "Flows bypassed by L7 policy per instance",
            MetricKind::Counter,
        );
        m.family(
            "dpi_l7_detoured_flows_total",
            "Flows detoured by L7 policy per instance",
            MetricKind::Counter,
        );
        for (i, t) in self.fleet_telemetry().iter().enumerate() {
            let i = i.to_string();
            for p in dpi_core::L7Protocol::ALL {
                let l = [("instance", i.as_str()), ("protocol", p.name())];
                m.sample(
                    "dpi_l7_flows_identified_total",
                    &l,
                    t.l7_flows_identified[p.index()],
                );
                m.sample("dpi_l7_matches_total", &l, t.l7_matches[p.index()]);
            }
            let l = [("instance", i.as_str())];
            m.sample("dpi_l7_decoded_bytes_total", &l, t.l7_decoded_bytes);
            m.sample("dpi_l7_decode_errors_total", &l, t.l7_decode_errors);
            m.sample("dpi_l7_truncations_total", &l, t.l7_truncations);
            m.sample("dpi_l7_blocked_flows_total", &l, t.l7_blocked_flows);
            m.sample("dpi_l7_bypassed_flows_total", &l, t.l7_bypassed_flows);
            m.sample("dpi_l7_detoured_flows_total", &l, t.l7_detoured_flows);
        }

        m.family(
            "dpi_instance_shed_packets_total",
            "Packets forwarded unscanned by the instance overload policy",
            MetricKind::Counter,
        );
        m.family(
            "dpi_instance_shed_bytes_total",
            "Payload bytes of shed packets per instance",
            MetricKind::Counter,
        );
        m.family(
            "dpi_instance_ce_marked_total",
            "Packets CE-marked under overload per instance",
            MetricKind::Counter,
        );
        m.family(
            "dpi_instance_load_score",
            "Instance load relative to its overload watermark (1.0 = at the high mark)",
            MetricKind::Gauge,
        );
        m.family(
            "dpi_instance_overloaded",
            "Whether the instance is currently past its overload watermark",
            MetricKind::Gauge,
        );
        for (i, g) in self.load_gauges.iter().enumerate() {
            let i = i.to_string();
            let l = [("instance", i.as_str())];
            m.sample("dpi_instance_shed_packets_total", &l, g.shed_packets());
            m.sample("dpi_instance_shed_bytes_total", &l, g.shed_bytes());
            m.sample("dpi_instance_ce_marked_total", &l, g.ce_marked());
            m.sample_f64("dpi_instance_load_score", &l, g.load_score());
            m.sample("dpi_instance_overloaded", &l, u64::from(g.is_overloaded()));
        }

        m.family(
            "dpi_shard_packets_total",
            "Packets scanned per pipeline shard",
            MetricKind::Counter,
        );
        m.family(
            "dpi_shard_bytes_total",
            "Payload bytes scanned per pipeline shard",
            MetricKind::Counter,
        );
        m.family(
            "dpi_shard_matches_total",
            "Pattern matches reported per pipeline shard",
            MetricKind::Counter,
        );
        m.family(
            "dpi_shard_queue_depth_peak",
            "High-water mark of the shard ingress queue",
            MetricKind::Gauge,
        );
        m.family(
            "dpi_shard_restarts_total",
            "Supervisor restarts of the shard worker",
            MetricKind::Counter,
        );
        m.family(
            "dpi_shard_lost_scans_total",
            "Packets never scanned because the shard worker died",
            MetricKind::Counter,
        );
        m.family(
            "dpi_shard_shed_packets_total",
            "Packets whose scan the shard's overload policy skipped",
            MetricKind::Counter,
        );
        m.family(
            "dpi_shard_shed_bytes_total",
            "Payload bytes of shed packets per shard",
            MetricKind::Counter,
        );
        m.family(
            "dpi_shard_ce_marked_total",
            "Packets CE-marked under overload per shard",
            MetricKind::Counter,
        );
        for t in self.shard_telemetry() {
            let s = t.shard.to_string();
            let l = [("shard", s.as_str())];
            m.sample("dpi_shard_packets_total", &l, t.packets);
            m.sample("dpi_shard_bytes_total", &l, t.bytes);
            m.sample("dpi_shard_matches_total", &l, t.matches);
            m.sample("dpi_shard_queue_depth_peak", &l, t.peak_queue_depth);
            m.sample("dpi_shard_restarts_total", &l, t.restarts);
            m.sample("dpi_shard_lost_scans_total", &l, t.lost_scans);
            m.sample("dpi_shard_shed_packets_total", &l, t.shed_packets);
            m.sample("dpi_shard_shed_bytes_total", &l, t.shed_bytes);
            m.sample("dpi_shard_ce_marked_total", &l, t.ce_marked);
        }

        m.family(
            "dpi_tenant_packets_total",
            "Packets scanned per tenant across the fleet and the pipeline",
            MetricKind::Counter,
        );
        m.family(
            "dpi_tenant_bytes_total",
            "Payload bytes scanned per tenant",
            MetricKind::Counter,
        );
        m.family(
            "dpi_tenant_matches_total",
            "Pattern matches reported per tenant",
            MetricKind::Counter,
        );
        m.family(
            "dpi_tenant_shed_packets_total",
            "Fail-open packets shed under overload per tenant",
            MetricKind::Counter,
        );
        m.family(
            "dpi_tenant_shed_bytes_total",
            "Payload bytes of shed packets per tenant",
            MetricKind::Counter,
        );
        m.family(
            "dpi_tenant_quota_rejections_total",
            "Scans skipped because the tenant's scan-byte window was exhausted",
            MetricKind::Counter,
        );
        m.family(
            "dpi_tenant_rule_generation",
            "Rule generation each tenant's results are stamped with",
            MetricKind::Gauge,
        );
        for (tenant, c) in self.tenant_telemetry() {
            let t = tenant.0.to_string();
            let l = [("tenant", t.as_str())];
            m.sample("dpi_tenant_packets_total", &l, c.packets);
            m.sample("dpi_tenant_bytes_total", &l, c.bytes);
            m.sample("dpi_tenant_matches_total", &l, c.matches);
            m.sample("dpi_tenant_shed_packets_total", &l, c.shed_packets);
            m.sample("dpi_tenant_shed_bytes_total", &l, c.shed_bytes);
            m.sample("dpi_tenant_quota_rejections_total", &l, c.quota_rejections);
            m.sample(
                "dpi_tenant_rule_generation",
                &l,
                u64::from(self.orchestrator.tenant_committed_stamp(tenant)),
            );
        }

        m.family(
            "dpi_fleet_health",
            "Fleet instances currently in each health state",
            MetricKind::Gauge,
        );
        let (mut healthy, mut suspect, mut dead) = (0u64, 0u64, 0u64);
        for id in &self.instance_ids {
            match self.controller.instance_health(*id) {
                Some(dpi_controller::InstanceHealth::Suspect) => suspect += 1,
                Some(dpi_controller::InstanceHealth::Dead) => dead += 1,
                _ => healthy += 1,
            }
        }
        m.sample("dpi_fleet_health", &[("state", "healthy")], healthy);
        m.sample("dpi_fleet_health", &[("state", "suspect")], suspect);
        m.sample("dpi_fleet_health", &[("state", "dead")], dead);

        m.family(
            "dpi_rebalance_migrations_total",
            "Flows migrated hot-to-cold by the load balancer",
            MetricKind::Counter,
        );
        m.sample(
            "dpi_rebalance_migrations_total",
            &[],
            self.rebalance_migrations(),
        );

        m.family(
            "dpi_rule_generation",
            "Rule generation the whole deployment last committed to",
            MetricKind::Gauge,
        );
        m.sample(
            "dpi_rule_generation",
            &[],
            u64::from(self.orchestrator.committed_generation()),
        );

        m.family(
            "dpi_scan_kernel_info",
            "Active byte-scanning kernel (constant 1, kernel in the label)",
            MetricKind::Gauge,
        );
        m.sample(
            "dpi_scan_kernel_info",
            &[("kernel", self.dpi.lock().engine().kernel_name())],
            1,
        );

        m.family(
            "dpi_trace_events_buffered",
            "Trace events currently buffered in the global ring",
            MetricKind::Gauge,
        );
        m.sample("dpi_trace_events_buffered", &[], self.tracer.len() as u64);
        m.family(
            "dpi_trace_events_dropped_total",
            "Trace events overwritten before they were drained",
            MetricKind::Counter,
        );
        m.sample("dpi_trace_events_dropped_total", &[], self.tracer.dropped());

        m.finish()
    }

    /// Scans a batch of chain-tagged packets through the parallel
    /// pipeline, bypassing the simulated network. Matched packets are
    /// ECN-marked in place; results come back in batch order with
    /// sequential packet ids, byte-identical to feeding a sequential
    /// instance the same batch.
    pub fn inspect_batch(&mut self, packets: &mut [Packet]) -> Vec<ResultPacket> {
        self.scanner.inspect_batch(packets)
    }

    /// The rule generation the whole deployment last committed to.
    pub fn rule_generation(&self) -> GenerationId {
        self.orchestrator.committed_generation()
    }

    /// The generation a committed controller version maps to.
    pub fn generation_of_version(&self, version: u64) -> Option<GenerationId> {
        self.orchestrator.generation_of_version(version)
    }

    /// Rolls the controller's *current* configuration out to the running
    /// deployment as a new rule generation — the live-update pipeline
    /// (DESIGN.md §9). Mutate rules first
    /// (`controller.add_pattern`/`remove_pattern`), then call this.
    ///
    /// Staged: the artifact is compiled and swapped into a canary (fleet
    /// instance 0), the canary is verified (it must actually serve the
    /// new generation and keep its telemetry intact), then the remaining
    /// instances and the batch pipeline follow. A failure anywhere — in
    /// particular a chaos-corrupted artifact, which fails checksum
    /// validation *before* compilation — rolls every updated instance
    /// back to the previous committed generation; the fleet never serves
    /// a generation mix and never goes down over a bad update.
    pub fn apply_update(&mut self) -> Result<UpdateOutcome, SystemError> {
        let version = self.controller.version();
        let cfg = self.update_config()?;
        let prepared = self.orchestrator.prepare(version, &cfg);
        self.roll_out(prepared)
    }

    /// Like [`SystemHandle::apply_update`], but scoped to one tenant
    /// (DESIGN.md §16): the new generation pins every other tenant at
    /// its committed stamp, so after the commit only `tenant`'s results
    /// carry the new generation — and a rollback (chaos corruption, a
    /// failed canary) cannot disturb the other tenants' stamps either.
    pub fn apply_update_for_tenant(
        &mut self,
        tenant: TenantId,
    ) -> Result<UpdateOutcome, SystemError> {
        let version = self.controller.version();
        let cfg = self.update_config()?;
        let prepared = self.orchestrator.prepare_for_tenant(version, &cfg, tenant);
        self.roll_out(prepared)
    }

    /// The generation `tenant`'s results are stamped with under the
    /// committed configuration.
    pub fn tenant_rule_generation(&self, tenant: TenantId) -> GenerationId {
        self.orchestrator.tenant_committed_stamp(tenant)
    }

    /// The controller's current configuration with the builder's
    /// deployment-wide choices stamped in — what every update ships.
    fn update_config(&self) -> Result<dpi_core::InstanceConfig, SystemError> {
        let mut cfg = self
            .controller
            .instance_config(&self.chain_ids)?
            .with_kernel(self.kernel)
            .with_conflict_policy(self.conflict_policy);
        cfg.l7 = self.l7;
        Ok(cfg)
    }

    /// Stages a prepared update across the fleet and the batch pipeline:
    /// canary → verify → rest of fleet, rollback on any failure.
    fn roll_out(&mut self, mut prepared: PreparedUpdate) -> Result<UpdateOutcome, SystemError> {
        let transfer_bytes = prepared.transfer_bytes;

        // The artifact is now "in transit" — chaos may garble it.
        if let Some(c) = &self.chaos {
            if c.next_rule_update_corrupted() {
                prepared.artifact.corrupt();
            }
        }

        let mut targets: Vec<FleetTarget> = self
            .dpi_instances
            .iter()
            .zip(&self.instance_ids)
            .map(|(instance, id)| FleetTarget {
                id: *id,
                instance: Arc::clone(instance),
                pause: Duration::ZERO,
            })
            .collect();
        let canary = Arc::clone(&self.dpi_instances[0]);
        let canary_packets = canary.lock().telemetry().packets;
        let want = prepared.generation;
        let mut verify = move |_: &mut dyn UpdateTarget| {
            let g = canary.lock();
            // The canary must serve the new generation with its history
            // intact — a swap that lost telemetry (or didn't happen)
            // vetoes the fleet stage.
            g.engine().generation() == want && g.telemetry().packets >= canary_packets
        };
        let mut refs: Vec<&mut dyn UpdateTarget> = targets
            .iter_mut()
            .map(|t| t as &mut dyn UpdateTarget)
            .collect();
        let report = self.orchestrator.rollout(&prepared, &mut refs, &mut verify);

        let mut swap_pause = targets.iter().map(|t| t.pause).max().unwrap_or_default();
        let failure = report
            .failure
            .as_ref()
            .map(|(id, reason)| format!("instance {}: {reason}", id.0));

        if report.committed() {
            // The batch pipeline swaps at its next batch boundary; its
            // generation is published through the same artifact.
            let engine = prepared.artifact.compile().map_err(|e| {
                SystemError::Controller(dpi_controller::ControllerError::InconsistentConfig(
                    e.to_string(),
                ))
            })?;
            if let Ok(pause) = self.scanner.swap_engine(engine) {
                swap_pause = swap_pause.max(pause);
            }
            self.scanner.note_update_transfer(transfer_bytes);
            for id in &self.instance_ids {
                let _ = self
                    .controller
                    .mark_instance_current(*id, prepared.generation);
            }
            if let Some(c) = &self.chaos {
                c.note(format!(
                    "controller: rule update committed as generation {}",
                    prepared.generation
                ));
            }
        } else if let Some(c) = &self.chaos {
            c.note(format!(
                "controller: rule update {} rejected, rolled back to generation {} ({})",
                prepared.generation,
                self.orchestrator.committed_generation(),
                failure.as_deref().unwrap_or("unknown failure"),
            ));
        }

        Ok(UpdateOutcome {
            generation: prepared.generation,
            committed: report.committed(),
            transfer_bytes,
            swap_pause,
            failure,
        })
    }
}
