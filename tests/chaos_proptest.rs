//! Property: no fault plan can fabricate a match. Instance kills, shard
//! panics, result loss and duplication may all *lose* verdicts (the
//! accepted failover semantics), but a match report only ever exists for
//! a payload that really contains the pattern — the fail-closed half of
//! the resilience contract, checked over random traces and fault plans.

use dpi_service::ac::MiddleboxId;
use dpi_service::controller::HealthPolicy;
use dpi_service::core::chaos::FaultPlan;
use dpi_service::core::instance::ScanEngine;
use dpi_service::core::{DpiInstance, InstanceConfig, MiddleboxProfile, RuleSpec};
use dpi_service::middlebox::ids;
use dpi_service::packet::ipv4::IpProtocol;
use dpi_service::packet::packet::{flow, PacketBody};
use dpi_service::packet::{MacAddr, Packet};
use dpi_service::{ShardedScanner, SystemBuilder};
use proptest::prelude::*;
use std::sync::Arc;

const IDS_ID: MiddleboxId = MiddleboxId(1);
const SIG: &[u8] = b"evil-sig";

/// One packet of the random trace: which flow it belongs to, whether it
/// really carries the signature, and some filler variety.
#[derive(Debug, Clone)]
struct TracePkt {
    flow_port: u16,
    has_sig: bool,
    filler: u8,
}

fn payload(p: &TracePkt) -> Vec<u8> {
    // Fillers are letters only — no fragment of "evil-sig" can be
    // assembled across packet boundaries by accident.
    let filler = vec![b'a' + p.filler % 26; 3 + (p.filler as usize % 9)];
    if p.has_sig {
        let mut v = filler.clone();
        v.extend_from_slice(SIG);
        v.extend_from_slice(&filler);
        v
    } else {
        filler
    }
}

/// Random fault-plan ingredients (the plan itself is assembled in the
/// test so shrinking stays meaningful).
#[derive(Debug, Clone)]
struct PlanSpec {
    seed: u64,
    kills: Vec<(usize, u64)>,
    panics: Vec<(usize, u64)>,
    drop_p: f64,
    dup_p: f64,
}

fn plan_spec() -> impl Strategy<Value = PlanSpec> {
    (
        any::<u64>(),
        proptest::collection::vec((0usize..3, 0u64..8), 0..3),
        proptest::collection::vec((0usize..8, 0u64..6), 0..3),
        0u32..=100,
        0u32..=100,
    )
        .prop_map(|(seed, kills, panics, drop_pct, dup_pct)| PlanSpec {
            seed,
            kills,
            panics,
            drop_p: f64::from(drop_pct) / 100.0,
            dup_p: f64::from(dup_pct) / 100.0,
        })
}

fn trace() -> impl Strategy<Value = Vec<TracePkt>> {
    proptest::collection::vec(
        (1000u16..1006, any::<bool>(), any::<u8>()).prop_map(|(flow_port, has_sig, filler)| {
            TracePkt {
                flow_port,
                has_sig,
                filler,
            }
        }),
        1..32,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whole-system invariant: however the fleet is tortured, the IDS
    /// never reports more matches than signatures actually sent, and no
    /// result packet ever escapes to the destination host.
    #[test]
    fn no_fault_plan_yields_a_false_match_end_to_end(
        spec in plan_spec(),
        pkts in trace(),
    ) {
        let mut plan = FaultPlan::new(spec.seed)
            .drop_result_packets(spec.drop_p)
            .duplicate_result_packets(spec.dup_p);
        for &(i, k) in &spec.kills {
            plan = plan.kill_instance_at_packet(i, k);
        }
        let mut sys = SystemBuilder::new()
            .with_middlebox(ids(IDS_ID, &[SIG.to_vec()]))
            .with_chain(&[IDS_ID])
            .with_dpi_instances(3)
            .with_health_policy(HealthPolicy { suspect_after: 1, dead_after: 2 })
            .with_chaos(plan)
            .build()
            .unwrap();

        let mut sig_sent = 0u64;
        for (i, p) in pkts.iter().enumerate() {
            let f = flow([10, 0, 0, 1], p.flow_port, [10, 0, 0, 2], 80, IpProtocol::Tcp);
            sys.send(f, i as u32 * 1000, &payload(p));
            sig_sent += u64::from(p.has_sig);
            if i % 3 == 2 {
                sys.heartbeat_round();
            }
        }
        // Let any pending deaths finish failing over.
        for _ in 0..3 {
            sys.heartbeat_round();
        }

        let st = sys.stats_of(IDS_ID).unwrap();
        prop_assert!(
            st.matches <= sig_sent,
            "false match: {} reported, only {} signatures sent (log: {:?})",
            st.matches, sig_sent, sys.fault_log()
        );
        for p in sys.sink.received() {
            prop_assert!(matches!(p.body, PacketBody::Ipv4 { .. }), "result leaked to host");
            prop_assert!(p.vlan.is_empty(), "chain tag leaked to host");
        }
        prop_assert_eq!(sys.net.dropped(), 0);
    }

    /// Pipeline invariant: shard panics lose scans but every verdict the
    /// supervised scanner does deliver exists in a fault-free sequential
    /// run of the same trace.
    #[test]
    fn panicking_shards_never_fabricate_pipeline_verdicts(
        spec in plan_spec(),
        pkts in trace(),
        workers in 1usize..8,
    ) {
        let engine = Arc::new(ScanEngine::new(
            InstanceConfig::new()
                .with_middlebox(
                    MiddleboxProfile::stateless(IDS_ID),
                    vec![RuleSpec::exact(SIG.to_vec())],
                )
                .with_chain(5, vec![IDS_ID]),
        ).unwrap());

        let mut batch: Vec<Packet> = pkts.iter().enumerate().map(|(i, p)| {
            let f = flow([10, 0, 0, 1], p.flow_port, [10, 0, 0, 2], 80, IpProtocol::Tcp);
            let mut pk = Packet::tcp(MacAddr::local(1), MacAddr::local(2), f, i as u32 * 1000, payload(p));
            pk.push_chain_tag(5).unwrap();
            pk
        }).collect();

        // Fault-free sequential reference.
        let mut seq = DpiInstance::from_engine(engine.clone());
        let mut reference = Vec::new();
        for p in &batch {
            let mut c = p.clone();
            if let Some(mut r) = seq.inspect(&mut c).unwrap() {
                r.packet_id = 0;
                reference.push(r);
            }
        }

        let mut plan = FaultPlan::new(spec.seed);
        for &(s, at) in &spec.panics {
            plan = plan.panic_shard(s, at);
        }
        let mut scanner = ShardedScanner::new(engine, workers);
        scanner.attach_chaos(plan.start());
        let delivered = scanner.inspect_batch(&mut batch);

        // Ordered-subsequence check: nothing fabricated, nothing reordered.
        let mut it = reference.iter();
        for d in &delivered {
            let mut d = d.clone();
            d.packet_id = 0;
            prop_assert!(
                it.any(|r| *r == d),
                "verdict {:?} does not exist in the fault-free sequential run", d
            );
        }
    }
}
