//! The Traffic Steering Application (SIMPLE-style, §4).
//!
//! The paper's experimental topology is a star: "two user hosts, two
//! middlebox hosts, and a DPI service instance host. All hosts are
//! connected through a single switch and the TSA, implemented as a POX
//! module, steering traffic from one user host to the other according to
//! the defined policy chains" (§6.1). [`StarTopology`] captures that
//! layout and [`TrafficSteeringApp`] compiles policy chains into the
//! switch's flow rules:
//!
//! * ingress: untagged traffic from the source host is tagged with its
//!   chain id and sent to the first element (the DPI instance, which the
//!   controller inserts "prior to any middlebox that requires DPI");
//! * per element: tagged traffic returning from element *i* goes to
//!   element *i+1* — data packets and dedicated result packets alike,
//!   since both carry the tag;
//! * egress: tagged traffic leaving the last element has its tag popped
//!   and is delivered to the destination host; result packets are dropped
//!   at egress (they are meaningless to hosts).

use crate::flowtable::{Action, FlowMatch, FlowRule, FlowTable, Port};
use crate::switch::Switch;
use parking_lot::Mutex;
use std::sync::Arc;

/// Port layout of the paper's single-switch star.
#[derive(Debug, Clone)]
pub struct StarTopology {
    /// Port towards the traffic source (user host 1).
    pub ingress: Port,
    /// Port towards the traffic sink (user host 2).
    pub egress: Port,
    /// Ports of service elements (DPI instances, middleboxes), by name.
    pub elements: Vec<(String, Port)>,
}

impl StarTopology {
    /// Looks up an element's port by name.
    pub fn port_of(&self, name: &str) -> Option<Port> {
        self.elements
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| *p)
    }
}

/// The TSA: owns a handle to the switch's table and installs steering
/// rules.
#[derive(Debug, Clone)]
pub struct TrafficSteeringApp {
    table: Arc<Mutex<FlowTable>>,
}

/// Rule priorities used by the TSA (leaving room above for overrides,
/// e.g. MCA² heavy-flow diversions).
const PRIO_CHAIN: u16 = 100;
const PRIO_EGRESS_RESULT_DROP: u16 = 110;

impl TrafficSteeringApp {
    /// A TSA controlling `switch` directly.
    pub fn new(switch: &Switch) -> TrafficSteeringApp {
        TrafficSteeringApp {
            table: switch.table(),
        }
    }

    /// A TSA programming through the SDN controller — the layering of
    /// Figure 5, where the TSA is an application on the controller.
    pub fn via_controller(
        ctrl: &crate::controller::SdnController,
        dpid: crate::controller::DatapathId,
    ) -> Result<TrafficSteeringApp, crate::controller::SdnError> {
        Ok(TrafficSteeringApp {
            table: ctrl.table(dpid)?,
        })
    }

    /// Installs the rules of one policy chain: traffic entering at
    /// `ingress` is tagged `chain_id`, visits `via` ports in order, then
    /// leaves untagged at `egress`.
    ///
    /// The first entry of `via` should be the DPI service instance — the
    /// §4 invariant that the DPI service precedes every middlebox that
    /// consumes its results.
    pub fn install_chain(&self, chain_id: u16, ingress: Port, via: &[Port], egress: Port) {
        let mut t = self.table.lock();
        // Ingress: tag and go to the first element (or straight to egress
        // for an empty chain).
        let first_hop = via.first().copied().unwrap_or(egress);
        let mut ingress_actions = vec![Action::PushTag(chain_id), Action::Output(first_hop)];
        if via.is_empty() {
            ingress_actions = vec![Action::Output(egress)];
        }
        t.install(FlowRule {
            priority: PRIO_CHAIN,
            m: FlowMatch::any().from_port(ingress).untagged(),
            actions: ingress_actions,
        });
        // Element i → element i+1.
        for (i, &port) in via.iter().enumerate() {
            let next = via.get(i + 1).copied();
            let actions = match next {
                Some(n) => vec![Action::Output(n)],
                None => vec![Action::PopTag, Action::Output(egress)],
            };
            t.install(FlowRule {
                priority: PRIO_CHAIN,
                m: FlowMatch::any().from_port(port).with_tag(chain_id),
                actions,
            });
        }
        // Result packets must not leak to the destination host: drop any
        // result body that would leave via the last element's egress rule.
        if let Some(&last) = via.last() {
            t.install(FlowRule {
                priority: PRIO_EGRESS_RESULT_DROP,
                m: FlowMatch {
                    in_port: Some(last),
                    vlan_vid: Some(chain_id),
                    tagged: Some(true),
                    body_is_result: Some(true),
                    ..FlowMatch::default()
                },
                actions: vec![Action::Drop],
            });
        }
    }

    /// Removes a chain's rules (chain re-routing, instance migration —
    /// §4.3's collaboration between DPI controller and TSA).
    pub fn remove_chain(&self, chain_id: u16) -> usize {
        self.table.lock().remove_where(|r| {
            r.m.vlan_vid == Some(chain_id)
                || r.actions
                    .iter()
                    .any(|a| matches!(a, Action::PushTag(id) if *id == chain_id))
        })
    }

    /// Diverts a chain's tagged traffic arriving from `from` to a
    /// different port (e.g. a dedicated MCA² instance) with an
    /// override-priority rule. Returns a priority that can be removed
    /// later via [`TrafficSteeringApp::remove_diversions`].
    pub fn divert(&self, chain_id: u16, from: Port, to: Port) {
        self.table.lock().install(FlowRule {
            priority: PRIO_EGRESS_RESULT_DROP + 10,
            m: FlowMatch::any().from_port(from).with_tag(chain_id),
            actions: vec![Action::Output(to)],
        });
    }

    /// Removes every diversion rule.
    pub fn remove_diversions(&self) -> usize {
        self.table
            .lock()
            .remove_where(|r| r.priority == PRIO_EGRESS_RESULT_DROP + 10)
    }

    /// Number of installed rules (diagnostics).
    pub fn rule_count(&self) -> usize {
        self.table.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Network, Node, PortId, SinkHost};
    use dpi_packet::ipv4::IpProtocol;
    use dpi_packet::packet::flow;
    use dpi_packet::{MacAddr, Packet};

    /// A service element that stamps nothing and bounces packets back on
    /// the port they came from (like a middlebox host with one NIC).
    struct Bounce;
    impl Node for Bounce {
        fn on_packet(&mut self, packet: Packet, port: PortId) -> Vec<(PortId, Packet)> {
            vec![(port, packet)]
        }
    }

    fn pkt() -> Packet {
        Packet::tcp(
            MacAddr::local(1),
            MacAddr::local(2),
            flow([10, 0, 0, 1], 9999, [10, 0, 0, 2], 80, IpProtocol::Tcp),
            0,
            b"through the chain".to_vec(),
        )
    }

    /// Builds the paper's star: switch port 0=src host, 1=dst host,
    /// 2=element A, 3=element B.
    fn star() -> (
        Network,
        crate::network::NodeId,
        SinkHost,
        TrafficSteeringApp,
    ) {
        let mut net = Network::new(1000);
        let sw = Switch::new("s1");
        let tsa = TrafficSteeringApp::new(&sw);
        let sw_id = net.add_node(Box::new(sw));
        let sink = SinkHost::new();
        let dst = net.add_node(Box::new(sink.clone()));
        let a = net.add_node(Box::new(Bounce));
        let b = net.add_node(Box::new(Bounce));
        net.link(sw_id, 1, dst, 0);
        net.link(sw_id, 2, a, 0);
        net.link(sw_id, 3, b, 0);
        (net, sw_id, sink, tsa)
    }

    #[test]
    fn chain_traverses_elements_and_arrives_untagged() {
        let (mut net, sw, sink, tsa) = star();
        tsa.install_chain(7, 0, &[2, 3], 1);
        net.inject(sw, 0, pkt());
        net.run();
        let received = sink.received();
        assert_eq!(received.len(), 1);
        assert!(received[0].vlan.is_empty(), "tag must be popped");
        assert_eq!(received[0].payload().unwrap(), b"through the chain");
    }

    #[test]
    fn empty_chain_goes_straight_to_egress() {
        let (mut net, sw, _dst, tsa) = star();
        tsa.install_chain(9, 0, &[], 1);
        net.inject(sw, 0, pkt());
        let delivered = net.run();
        assert!(delivered >= 2);
        assert!(net.dropped_at_edge.is_empty());
    }

    #[test]
    fn remove_chain_uninstalls_rules() {
        let (_net, _sw, _dst, tsa) = star();
        tsa.install_chain(7, 0, &[2, 3], 1);
        let n = tsa.rule_count();
        assert!(n >= 3);
        assert_eq!(tsa.remove_chain(7), n);
        assert_eq!(tsa.rule_count(), 0);
    }

    #[test]
    fn diversion_overrides_chain_rules() {
        let (_net, _sw, _dst, tsa) = star();
        tsa.install_chain(7, 0, &[2, 3], 1);
        tsa.divert(7, 2, 3);
        assert!(tsa.rule_count() > 3);
        assert_eq!(tsa.remove_diversions(), 1);
    }

    #[test]
    fn tsa_via_controller_programs_the_same_table() {
        let ctrl = crate::controller::SdnController::new();
        let sw = Switch::new("s1");
        ctrl.connect(3, &sw).unwrap();
        let tsa = TrafficSteeringApp::via_controller(&ctrl, 3).unwrap();
        tsa.install_chain(7, 0, &[2], 1);
        assert_eq!(ctrl.rule_count(3).unwrap(), tsa.rule_count());
        assert!(TrafficSteeringApp::via_controller(&ctrl, 99).is_err());
    }

    #[test]
    fn topology_port_lookup() {
        let topo = StarTopology {
            ingress: 0,
            egress: 1,
            elements: vec![("dpi".into(), 2), ("ids".into(), 3)],
        };
        assert_eq!(topo.port_of("dpi"), Some(2));
        assert_eq!(topo.port_of("nope"), None);
    }
}
