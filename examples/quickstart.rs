//! Quickstart: DPI as a Service in ~60 lines.
//!
//! Builds the paper's Figure 1(b) setup — an IDS and an anti-virus that
//! share one DPI service — sends a few packets through the simulated
//! network, and prints what each component saw.
//!
//! Run with: `cargo run --example quickstart`

use dpi_service::ac::MiddleboxId;
use dpi_service::middlebox::{antivirus, ids};
use dpi_service::packet::ipv4::IpProtocol;
use dpi_service::packet::packet::flow;
use dpi_service::SystemBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const IDS_ID: MiddleboxId = MiddleboxId(1);
    const AV_ID: MiddleboxId = MiddleboxId(2);

    // Two middleboxes with their own signature sets. "exploit-kit-99" is
    // registered by BOTH — the combined automaton stores it once and
    // reports it to each (§5.1).
    let ids_box = ids(
        IDS_ID,
        &[b"exploit-kit-99".to_vec(), b"reverse-shell".to_vec()],
    );
    let av_box = antivirus(
        AV_ID,
        &[b"exploit-kit-99".to_vec(), b"EICAR-TEST-SIGNATURE".to_vec()],
    );

    // One policy chain: DPI service first, then IDS, then AV (Figure 1b).
    let mut system = SystemBuilder::new()
        .with_middlebox(ids_box)
        .with_middlebox(av_box)
        .with_chain(&[IDS_ID, AV_ID])
        .build()?;

    let f = flow([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80, IpProtocol::Tcp);
    let payloads: [&[u8]; 3] = [
        b"GET /index.html HTTP/1.1 -- perfectly normal traffic",
        b"download exploit-kit-99 stage two",
        b"attachment EICAR-TEST-SIGNATURE inside",
    ];
    for (i, payload) in payloads.iter().enumerate() {
        system.send(f, i as u32 * 1500, payload);
    }

    let t = system.dpi_telemetry();
    println!(
        "DPI service : scanned {} packets / {} bytes, {} packets had matches",
        t.packets, t.bytes, t.packets_with_matches
    );
    let ids_stats = system.stats_of(IDS_ID).expect("ids registered");
    println!(
        "IDS         : {} packets, {} matches reported, {} rules fired, scanned {} bytes ITSELF",
        ids_stats.packets, ids_stats.matches, ids_stats.rules_fired, ids_stats.bytes_self_scanned
    );
    let av_stats = system.stats_of(AV_ID).expect("av registered");
    println!(
        "AntiVirus   : {} packets, {} matches reported, {} blocked, scanned {} bytes ITSELF",
        av_stats.packets, av_stats.matches, av_stats.blocked, av_stats.bytes_self_scanned
    );
    println!("Destination : received {} packets", system.sink.count());

    // The malware-carrying packets were blocked by the AV; the clean one
    // arrived; nobody but the DPI service touched payload bytes.
    assert_eq!(system.sink.count(), 1);
    assert_eq!(
        ids_stats.bytes_self_scanned + av_stats.bytes_self_scanned,
        0
    );
    println!("\npackets were scanned once, middleboxes consumed results only ✓");
    Ok(())
}
