//! MPLS label stacks.
//!
//! MPLS labels are the second tagging option of §4.2: "flexible pushing and
//! pulling of tags (e.g., MPLS labels …) supported in current
//! OpenFlow-based SDN networks". The simulator supports pushing a stack of
//! labels in front of the IPv4 header, which can encode either steering
//! information or (several labels deep) compact match results.

use crate::{need, ParseError, Result};
use serde::{Deserialize, Serialize};

/// Length of one MPLS label stack entry.
pub const MPLS_LABEL_LEN: usize = 4;

/// Maximum label value (20 bits).
pub const MAX_LABEL: u32 = (1 << 20) - 1;

/// One MPLS label stack entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MplsLabel {
    /// 20-bit label value.
    pub label: u32,
    /// 3-bit traffic class.
    pub tc: u8,
    /// Bottom-of-stack flag; set on the last entry before the IP header.
    pub bottom: bool,
    /// Time to live.
    pub ttl: u8,
}

impl MplsLabel {
    /// Builds a label entry.
    ///
    /// # Errors
    /// Returns an error when `label` exceeds the 20-bit space.
    pub fn new(label: u32, bottom: bool) -> Result<MplsLabel> {
        if label > MAX_LABEL {
            return Err(ParseError::Unsupported {
                layer: "mpls",
                what: "label out of 20-bit range",
                value: u64::from(label),
            });
        }
        Ok(MplsLabel {
            label,
            tc: 0,
            bottom,
            ttl: 64,
        })
    }

    /// Parses one stack entry, returning it and the bytes consumed.
    pub fn parse(buf: &[u8]) -> Result<(MplsLabel, usize)> {
        need("mpls", buf, MPLS_LABEL_LEN)?;
        let w = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        Ok((
            MplsLabel {
                label: w >> 12,
                tc: ((w >> 9) & 0x7) as u8,
                bottom: w & 0x100 != 0,
                ttl: (w & 0xff) as u8,
            },
            MPLS_LABEL_LEN,
        ))
    }

    /// Parses a whole stack: entries until (and including) the
    /// bottom-of-stack entry.
    pub fn parse_stack(buf: &[u8]) -> Result<(Vec<MplsLabel>, usize)> {
        let mut stack = Vec::new();
        let mut off = 0;
        loop {
            let (l, used) = MplsLabel::parse(&buf[off..])?;
            off += used;
            let bottom = l.bottom;
            stack.push(l);
            if bottom {
                return Ok((stack, off));
            }
        }
    }

    /// Serializes the entry.
    pub fn write(&self, out: &mut Vec<u8>) {
        let w = (self.label & 0xfffff) << 12
            | u32::from(self.tc & 0x7) << 9
            | u32::from(self.bottom) << 8
            | u32::from(self.ttl);
        out.extend_from_slice(&w.to_be_bytes());
    }

    /// Serializes a stack, forcing the bottom-of-stack bit to be set only on
    /// the last entry so a malformed input stack cannot produce an
    /// unparseable wire image.
    pub fn write_stack(stack: &[MplsLabel], out: &mut Vec<u8>) {
        for (i, entry) in stack.iter().enumerate() {
            let mut e = *entry;
            e.bottom = i + 1 == stack.len();
            e.write(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_round_trips() {
        let l = MplsLabel {
            label: 0xabcde,
            tc: 3,
            bottom: true,
            ttl: 17,
        };
        let mut buf = Vec::new();
        l.write(&mut buf);
        let (parsed, used) = MplsLabel::parse(&buf).unwrap();
        assert_eq!(used, MPLS_LABEL_LEN);
        assert_eq!(parsed, l);
    }

    #[test]
    fn new_rejects_oversized_label() {
        assert!(MplsLabel::new(MAX_LABEL, true).is_ok());
        assert!(MplsLabel::new(MAX_LABEL + 1, true).is_err());
    }

    #[test]
    fn stack_round_trips_and_fixes_bottom_bits() {
        let stack = vec![
            MplsLabel::new(1, true).unwrap(), // wrong bottom bit on purpose
            MplsLabel::new(2, false).unwrap(),
            MplsLabel::new(3, false).unwrap(), // wrong again
        ];
        let mut buf = Vec::new();
        MplsLabel::write_stack(&stack, &mut buf);
        let (parsed, used) = MplsLabel::parse_stack(&buf).unwrap();
        assert_eq!(used, 3 * MPLS_LABEL_LEN);
        assert_eq!(parsed.len(), 3);
        assert!(!parsed[0].bottom && !parsed[1].bottom && parsed[2].bottom);
        assert_eq!(
            parsed.iter().map(|l| l.label).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn unterminated_stack_is_truncated_error() {
        // One entry without the bottom bit, then nothing.
        let mut buf = Vec::new();
        MplsLabel::new(9, false).unwrap().write(&mut buf);
        assert!(matches!(
            MplsLabel::parse_stack(&buf).unwrap_err(),
            ParseError::Truncated { layer: "mpls", .. }
        ));
    }
}
