//! Session reconstruction as a service: the DPI instance reassembles TCP
//! streams once and scans in order, regardless of segment arrival order.

use dpi_core::report::expand_records;
use dpi_core::{DpiInstance, InstanceConfig, MiddleboxId, MiddleboxProfile, RuleSpec};
use dpi_packet::ipv4::IpProtocol;
use dpi_packet::packet::flow;
use dpi_packet::FlowKey;

const IDS: MiddleboxId = MiddleboxId(1);

fn instance() -> DpiInstance {
    DpiInstance::new(
        InstanceConfig::new()
            .with_middlebox(
                MiddleboxProfile::stateful(IDS),
                vec![RuleSpec::exact(b"CROSS-SEGMENT-SIG".to_vec())],
            )
            .with_chain(1, vec![IDS]),
    )
    .unwrap()
}

fn f(port: u16) -> FlowKey {
    flow([1, 1, 1, 1], port, [2, 2, 2, 2], 80, IpProtocol::Tcp)
}

fn all_hits(outs: &[dpi_core::ScanOutput]) -> Vec<(u16, u64)> {
    outs.iter()
        .flat_map(|o| {
            o.reports.iter().flat_map(move |r| {
                expand_records(&r.records)
                    .into_iter()
                    .map(move |(pid, pos)| (pid, o.flow_offset + u64::from(pos)))
            })
        })
        .collect()
}

#[test]
fn out_of_order_segments_still_match() {
    let mut dpi = instance();
    let fk = f(1);
    // The signature spans segments 2 and 3; segment 3 arrives first.
    let seg1 = b"preamble ";
    let seg2 = b"CROSS-SEG";
    let seg3 = b"MENT-SIG done";

    let o1 = dpi.scan_tcp_segment(1, fk, 1000, seg1).unwrap();
    assert!(all_hits(&o1).is_empty());
    // Segment 3 out of order: buffered, nothing scanned yet.
    let o3 = dpi.scan_tcp_segment(1, fk, 1000 + 9 + 9, seg3).unwrap();
    assert!(o3.is_empty());
    // Segment 2 fills the gap: both runs scan, signature completes.
    let o2 = dpi.scan_tcp_segment(1, fk, 1000 + 9, seg2).unwrap();
    let hits = all_hits(&o2);
    assert_eq!(hits.len(), 1);
    // Flow-absolute end position: starts at byte 9, 17 bytes long.
    assert_eq!(hits[0].1, 9 + 17 - 1);
}

#[test]
fn retransmission_does_not_double_report() {
    let mut dpi = instance();
    let fk = f(2);
    let o = dpi
        .scan_tcp_segment(1, fk, 0, b"CROSS-SEGMENT-SIG")
        .unwrap();
    assert_eq!(all_hits(&o).len(), 1);
    // Exact retransmission: no new bytes, no new report.
    let o = dpi
        .scan_tcp_segment(1, fk, 0, b"CROSS-SEGMENT-SIG")
        .unwrap();
    assert!(all_hits(&o).is_empty());
}

#[test]
fn in_order_segment_path_equals_plain_scans() {
    let mut via_segments = instance();
    let mut via_payloads = instance();
    let fk = f(3);
    let chunks: [&[u8]; 3] = [
        b"first CROSS-",
        b"SEGMENT-SIG and ",
        b"CROSS-SEGMENT-SIG again",
    ];
    let mut seq = 5000u32;
    let mut seg_hits = Vec::new();
    let mut plain_hits = Vec::new();
    for c in chunks {
        let outs = via_segments.scan_tcp_segment(1, fk, seq, c).unwrap();
        seg_hits.extend(all_hits(&outs));
        let out = via_payloads.scan_payload(1, Some(fk), c).unwrap();
        plain_hits.extend(all_hits(std::slice::from_ref(&out)));
        seq = seq.wrapping_add(c.len() as u32);
    }
    assert_eq!(seg_hits, plain_hits);
    assert_eq!(seg_hits.len(), 2);
}

#[test]
fn close_flow_drops_all_state() {
    let mut dpi = instance();
    let fk = f(4);
    dpi.scan_tcp_segment(1, fk, 0, b"CROSS-SEGMENT").unwrap();
    assert_eq!(dpi.tracked_flows(), 1);
    dpi.close_tcp_flow(&fk);
    assert_eq!(dpi.tracked_flows(), 0);
    // A new stream at the same 5-tuple starts clean: the half-signature
    // above must not combine with the rest.
    let o = dpi.scan_tcp_segment(1, fk, 100, b"-SIG").unwrap();
    assert!(all_hits(&o).is_empty());
}
