//! End-to-end behaviour of the three reassembly conflict policies
//! (DESIGN.md §13): shadow scans of losing copies under the permissive
//! policies, fail-closed quarantine under `RejectFlow`, trace events,
//! telemetry counters, and the `SystemBuilder` / metrics wiring.

use dpi_service::core::instance::{ScanEngine, ShardState};
use dpi_service::core::report::expand_records;
use dpi_service::core::{
    ConflictPolicy, DpiInstance, InstanceConfig, MiddleboxId, MiddleboxProfile, RuleSpec,
};
use dpi_service::middlebox::ids;
use dpi_service::packet::ipv4::IpProtocol;
use dpi_service::packet::packet::flow;
use dpi_service::packet::{FlowKey, MacAddr, Packet};
use dpi_service::{SystemBuilder, TraceKind, TraceSource, Tracer};
use std::sync::Arc;

const IDS: MiddleboxId = MiddleboxId(1);
const CHAIN: u16 = 1;
const PATTERN: &[u8] = b"attack-signature";

fn config(policy: ConflictPolicy) -> InstanceConfig {
    InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateful(IDS),
            vec![RuleSpec::exact(PATTERN.to_vec())],
        )
        .with_chain(CHAIN, vec![IDS])
        .with_conflict_policy(policy)
}

fn instance(policy: ConflictPolicy) -> DpiInstance {
    DpiInstance::new(config(policy)).unwrap()
}

fn fk() -> FlowKey {
    flow([9, 9, 9, 9], 999, [8, 8, 8, 8], 80, IpProtocol::Tcp)
}

/// All pattern ids reported by a slice of scan outputs (canonical and
/// shadow alike).
fn matched_pids(outs: &[dpi_service::core::instance::ScanOutput]) -> Vec<u16> {
    outs.iter()
        .flat_map(|o| o.reports.iter())
        .flat_map(|r| expand_records(&r.records))
        .map(|(pid, _)| pid)
        .collect()
}

#[test]
fn first_wins_shadow_scans_the_losing_copy() {
    let mut dpi = instance(ConflictPolicy::FirstWins);
    dpi.open_tcp_flow(fk(), 1000);
    // 16 innocuous bytes delivered, then a divergent retransmission of
    // the same range carrying the pattern — the classic hiding spot for
    // a first-copy DPI engine.
    let outs = dpi
        .scan_tcp_segment(CHAIN, fk(), 1000, b"0123456789abcdef")
        .unwrap();
    assert!(matched_pids(&outs).is_empty());
    let outs = dpi.scan_tcp_segment(CHAIN, fk(), 1000, PATTERN).unwrap();
    assert!(
        matched_pids(&outs).contains(&0),
        "pattern in the losing conflict copy must be shadow-scanned, not silently missed"
    );
    let t = dpi.telemetry();
    assert!(t.reassembly_conflicts >= 1);
    assert_eq!(t.flows_quarantined, 0);
    assert!(!dpi.flow_quarantined(&fk()));
}

#[test]
fn last_wins_rescans_the_overwritten_pending_range() {
    let mut dpi = instance(ConflictPolicy::LastWins);
    dpi.open_tcp_flow(fk(), 1000);
    // Two out-of-order copies of the same pending range; the second
    // (winning, under LastWins) completes the pattern once the gap
    // fills.
    assert!(matched_pids(
        &dpi.scan_tcp_segment(CHAIN, fk(), 1008, b"XXXXXXXX")
            .unwrap()
    )
    .is_empty());
    let outs = dpi
        .scan_tcp_segment(CHAIN, fk(), 1008, b"ignature")
        .unwrap();
    // The losing first copy is shadow-scanned but contains no pattern.
    assert!(matched_pids(&outs).is_empty());
    let outs = dpi
        .scan_tcp_segment(CHAIN, fk(), 1000, b"attack-s")
        .unwrap();
    assert!(
        matched_pids(&outs).contains(&0),
        "LastWins must deliver the overwriting copy as the canonical stream"
    );
    assert!(dpi.telemetry().reassembly_conflicts >= 1);
    assert!(!dpi.flow_quarantined(&fk()));
}

#[test]
fn reject_flow_quarantines_and_stays_closed() {
    let mut dpi = instance(ConflictPolicy::RejectFlow);
    dpi.open_tcp_flow(fk(), 1000);
    dpi.scan_tcp_segment(CHAIN, fk(), 1000, b"0123456789abcdef")
        .unwrap();
    let outs = dpi.scan_tcp_segment(CHAIN, fk(), 1000, PATTERN).unwrap();
    assert!(outs.iter().all(|o| o.reports.is_empty()));
    assert!(outs.iter().any(|o| o.quarantined));
    assert!(dpi.flow_quarantined(&fk()));
    let t = dpi.telemetry();
    assert!(t.reassembly_conflicts >= 1);
    assert_eq!(t.flows_quarantined, 1);

    // The quarantine is sticky: later segments produce no reports, only
    // the quarantined marker.
    let outs = dpi.scan_tcp_segment(CHAIN, fk(), 1016, b"after").unwrap();
    assert!(outs.iter().all(|o| o.reports.is_empty() && o.quarantined));
    // ... and it is counted once, not per segment.
    assert_eq!(dpi.telemetry().flows_quarantined, 1);

    // The packet path fails closed too: packets of a quarantined flow
    // are ECN-marked (suspect) and produce no fabricated result packet.
    let mut pk = Packet::tcp(
        MacAddr::local(1),
        MacAddr::local(2),
        fk(),
        2000,
        b"anything".to_vec(),
    );
    pk.push_chain_tag(CHAIN).unwrap();
    assert!(dpi.inspect(&mut pk).unwrap().is_none());
    assert!(
        pk.has_match_mark(),
        "quarantined flows' packets must carry the suspect mark"
    );

    // Other flows on the instance are unaffected.
    let other = flow([9, 9, 9, 9], 998, [8, 8, 8, 8], 80, IpProtocol::Tcp);
    dpi.open_tcp_flow(other, 1);
    let outs = dpi.scan_tcp_segment(CHAIN, other, 1, PATTERN).unwrap();
    assert!(matched_pids(&outs).contains(&0));
    assert!(!dpi.flow_quarantined(&other));
}

#[test]
fn quarantine_tears_down_the_reassembler_and_refuses_new_state() {
    let engine = Arc::new(ScanEngine::new(config(ConflictPolicy::RejectFlow)).unwrap());
    let mut shard = ShardState::new(&engine);

    shard.open_tcp_flow(fk(), 1000);
    engine
        .scan_tcp_segment(&mut shard, CHAIN, fk(), 1000, b"0123456789abcdef")
        .unwrap();
    assert!(shard.has_reassembler(&fk()));
    engine
        .scan_tcp_segment(&mut shard, CHAIN, fk(), 1000, PATTERN)
        .unwrap();
    assert!(shard.flow_quarantined(&fk()));
    assert!(
        !shard.has_reassembler(&fk()),
        "quarantine must free the flow's reassembly buffers"
    );

    // Later segments — in-order and out-of-order alike — are refused
    // before any reassembler could be (re-)created, so a quarantined
    // flow can never buffer attacker-controlled bytes again.
    for (seq, payload) in [(1016u32, &b"after"[..]), (5000, &b"far-ahead"[..])] {
        let outs = engine
            .scan_tcp_segment(&mut shard, CHAIN, fk(), seq, payload)
            .unwrap();
        assert!(outs.iter().all(|o| o.reports.is_empty() && o.quarantined));
        assert!(!shard.has_reassembler(&fk()));
    }
}

#[test]
fn conflict_and_quarantine_emit_trace_events() {
    let engine = Arc::new(ScanEngine::new(config(ConflictPolicy::RejectFlow)).unwrap());
    let mut shard = ShardState::new(&engine);
    let tracer = Arc::new(Tracer::new());
    shard.attach_trace_writer(tracer.writer(TraceSource::Shard(0)));

    shard.open_tcp_flow(fk(), 1000);
    engine
        .scan_tcp_segment(&mut shard, CHAIN, fk(), 1000, b"0123456789abcdef")
        .unwrap();
    engine
        .scan_tcp_segment(&mut shard, CHAIN, fk(), 1000, PATTERN)
        .unwrap();

    let mut w = shard.take_trace_writer().unwrap();
    tracer.absorb(&mut w);
    let events = tracer.snapshot();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::ReassemblyConflict { bytes } if bytes > 0)),
        "conflict must be traced"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::FlowQuarantined { .. })),
        "quarantine must be traced"
    );
}

#[test]
fn system_builder_threads_the_policy_and_exports_the_metrics() {
    let system = SystemBuilder::new()
        .with_middlebox(ids(IDS, &[PATTERN.to_vec()]))
        .with_chain(&[IDS])
        .with_conflict_policy(ConflictPolicy::RejectFlow)
        .build()
        .unwrap();
    let text = system.metrics_text();
    assert!(text.contains("dpi_reassembly_conflicts_total"));
    assert!(text.contains("dpi_flows_quarantined_total"));
}
