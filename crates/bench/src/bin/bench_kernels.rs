//! Kernel ablation sweep (DESIGN.md §12): single-threaded scan
//! throughput of every [`ScanKernel`] — naive, full, compact,
//! prefiltered — plus the SWAR prefilter's effectiveness counters (skip
//! fraction, false-positive residue) and an adversarial pattern-prefix
//! stream that forces the prefiltered kernel onto its bail-out path.
//! Writes `BENCH_kernels.json` (consumed by the CI bench job as an
//! artifact).
//!
//! Two pattern-set scenarios:
//!
//! * **anchored** — the headline sweep: rules that carry one of a small
//!   set of rare marker bytes (digits — version numbers, ports, hex
//!   runs) near their head, the shape literal prefilters exist for. The
//!   SWAR pair filter compiles and skips.
//! * **broad** — the full Snort-like set with ~25 distinct first bytes.
//!   The 8-slot first-byte budget cannot cover it, the filter refuses to
//!   compile, and `prefiltered` must ride its stride-2 fallback at no
//!   loss versus `full`.
//!
//! Set `DPI_BENCH_QUICK=1` for a CI-sized run. The JSON records
//! `host_cores` so readers can judge the numbers' noise floor; all
//! throughput here is single-threaded by design.

use dpi_ac::{
    Automaton, CombinedAc, CombinedAcBuilder, DepthSamples, KernelKind, MiddleboxId, PatternSet,
    PrefilterStats, ScanKernel,
};
use dpi_bench::{host_cores, print_row};
use dpi_traffic::patterns::snort_like;
use dpi_traffic::trace::TraceConfig;
use std::time::Instant;

/// The engine's telemetry grid (`Telemetry::SAMPLE` / `DEEP_DEPTH`):
/// the bench scans through `scan_sampled` so the measured loop is the
/// exact hot path the data plane runs, sampling cost included.
const SAMPLE: usize = 16;
const DEEP: u16 = 4;

/// Marker bytes the anchored scenario selects on — all rare in the
/// background byte distribution, so the prefilter's selectivity gate
/// accepts a cover built from them. A pattern qualifies when a marker
/// can serve as a pair's *first* byte: anywhere in the pair window
/// except the pattern's final byte.
const ANCHORS: &[u8] = b"012345";
const ANCHOR_WINDOW: usize = 15;

/// Best Mbit/s of `runs` passes of the kernel over the trace — best-of-N
/// because on a shared host any slower pass measures a neighbor's noise,
/// not the kernel.
fn kernel_mbps(ac: &CombinedAc, trace: &[Vec<u8>], runs: usize) -> f64 {
    let bytes: usize = trace.iter().map(|p| p.len()).sum();
    (0..runs.max(1))
        .map(|_| {
            let mut sink = 0u64;
            let mut depth = DepthSamples::default();
            let t0 = Instant::now();
            for p in trace {
                ac.scan_sampled(ac.start(), p, SAMPLE, DEEP, &mut depth, &mut |_, st| {
                    sink = sink.wrapping_add(u64::from(st));
                });
            }
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box((sink, depth));
            bytes as f64 * 8.0 / dt / 1e6
        })
        .fold(0.0, f64::max)
}

fn build(pats: &[Vec<u8>]) -> CombinedAcBuilder {
    let mut builder = CombinedAcBuilder::new();
    builder
        .add_set(PatternSet::new(MiddleboxId(0), pats.to_vec()))
        .expect("generated patterns are valid");
    builder
}

fn trace_for(pats: &[Vec<u8>], packets: usize) -> Vec<Vec<u8>> {
    TraceConfig {
        packets,
        match_density: 0.02,
        prefix_density: 3.0,
        seed: 7,
        ..TraceConfig::default()
    }
    .generate(pats)
}

/// A payload the prefilter hates: a dense tiling of real pattern
/// prefixes, so nearly every SWAR lane holds candidate first bytes and
/// pair confirmations keep firing without ever completing a match.
fn adversarial_trace(pats: &[Vec<u8>], packets: usize, payload_len: usize) -> Vec<Vec<u8>> {
    let mut tile = Vec::new();
    for p in pats.iter().take(64) {
        tile.extend_from_slice(&p[..p.len().min(6)]);
    }
    (0..packets)
        .map(|i| {
            let rot = (i * 7) % tile.len();
            let mut v: Vec<u8> = tile[rot..].to_vec();
            v.extend_from_slice(&tile[..rot]);
            while v.len() < payload_len {
                let take = (payload_len - v.len()).min(tile.len());
                let head: Vec<u8> = v[..take].to_vec();
                v.extend_from_slice(&head);
            }
            v.truncate(payload_len);
            v
        })
        .collect()
}

/// Aggregates [`PrefilterStats`] for one automaton over a whole trace.
fn prefilter_stats(ac: &CombinedAc, trace: &[Vec<u8>]) -> PrefilterStats {
    let pf = ac.as_prefiltered().expect("prefiltered kernel requested");
    let mut stats = PrefilterStats::default();
    for p in trace {
        pf.scan_with_stats(pf.start(), p, &mut stats, |_, _| {});
    }
    stats
}

fn main() {
    let quick = std::env::var_os("DPI_BENCH_QUICK").is_some();
    let (npat, npkt, runs) = if quick {
        (500, 256, 3)
    } else {
        (2000, 2048, 5)
    };

    let broad_pats = snort_like(npat, 42);
    let anchored_pats: Vec<Vec<u8>> = broad_pats
        .iter()
        .filter(|p| {
            let window = (p.len() - 1).clamp(1, ANCHOR_WINDOW);
            p[..window].iter().any(|b| ANCHORS.contains(b))
        })
        .cloned()
        .collect();

    let anchored_trace = trace_for(&anchored_pats, npkt);
    let bytes: usize = anchored_trace.iter().map(|p| p.len()).sum();
    let builder = build(&anchored_pats);

    println!(
        "kernel bench: {} anchored patterns (of {npat} snort-like), {npkt} \
         packets ({bytes} bytes), {} host cores{}",
        anchored_pats.len(),
        host_cores(),
        if quick { ", quick mode" } else { "" }
    );
    print_row(&[
        "kernel".into(),
        "repr".into(),
        "Mbit/s".into(),
        "vs full".into(),
    ]);

    let full_mbps = kernel_mbps(
        &builder.build_kernel(KernelKind::Full),
        &anchored_trace,
        runs,
    );
    let mut kernel_json = Vec::new();
    for kind in KernelKind::ALL {
        let ac = builder.build_kernel(kind);
        let mbps = if kind == KernelKind::Full {
            full_mbps
        } else {
            kernel_mbps(&ac, &anchored_trace, runs)
        };
        let ratio = mbps / full_mbps;
        print_row(&[
            kind.name().into(),
            ac.repr_name().into(),
            format!("{mbps:.0}"),
            format!("{ratio:.2}x"),
        ]);
        kernel_json.push(format!(
            "{{\"kernel\": \"{}\", \"repr\": \"{}\", \"mbps\": {:.0}, \
             \"vs_full\": {:.3}, \"memory_bytes\": {}}}",
            kind.name(),
            ac.repr_name(),
            mbps,
            ratio,
            ac.memory_bytes()
        ));
    }

    // Prefilter effectiveness over the anchored trace: how much payload
    // the DFA never touched, and how often a confirmed candidate window
    // held no actual match (the filter's false-positive residue).
    let prefiltered = builder.build_kernel(KernelKind::Prefiltered);
    let stats = prefilter_stats(&prefiltered, &anchored_trace);
    println!(
        "prefilter: filtered={} skip_fraction={:.3} windows={} \
         quiet_window_fraction={:.3}",
        stats.filtered,
        stats.skip_fraction(),
        stats.windows,
        stats.quiet_window_fraction()
    );

    // Broad scenario: first-byte budget blown, filter off, stride-2
    // fallback must hold the line against plain full-table scanning.
    let broad_builder = build(&broad_pats);
    let broad_trace = trace_for(&broad_pats, npkt);
    let broad_full = kernel_mbps(
        &broad_builder.build_kernel(KernelKind::Full),
        &broad_trace,
        runs,
    );
    let broad_prefiltered = broad_builder.build_kernel(KernelKind::Prefiltered);
    let broad_pre = kernel_mbps(&broad_prefiltered, &broad_trace, runs);
    let broad_stats = prefilter_stats(&broad_prefiltered, &broad_trace);
    println!(
        "broad ({npat} patterns): full={broad_full:.0} Mbit/s, \
         prefiltered={broad_pre:.0} Mbit/s, ratio={:.2}x, filtered={}",
        broad_pre / broad_full,
        broad_stats.filtered
    );

    // Adversarial floor: a pattern-prefix tiling forces candidate
    // density past the bail-out threshold; the kernel must degrade to
    // plain full-table scanning, not below 0.9x of it.
    let adv = adversarial_trace(&anchored_pats, npkt.min(512), 2048);
    let adv_full = kernel_mbps(&builder.build_kernel(KernelKind::Full), &adv, runs);
    let adv_pre = kernel_mbps(&prefiltered, &adv, runs);
    let adv_ratio = adv_pre / adv_full;
    let adv_stats = prefilter_stats(&prefiltered, &adv);
    println!(
        "adversarial: full={adv_full:.0} Mbit/s, prefiltered={adv_pre:.0} \
         Mbit/s, ratio={adv_ratio:.2}x, bailed={}",
        adv_stats.bailed
    );

    let json = format!(
        "{{\n  \"host_cores\": {},\n  \"quick\": {},\n  \"anchored_patterns\": {},\n  \
         \"broad_patterns\": {},\n  \"packets\": {},\n  \"bytes\": {},\n  \
         \"sample_every\": {},\n  \"kernels\": [{}],\n  \"prefilter\": \
         {{\"filtered\": {}, \"skip_fraction\": {:.4}, \"windows\": {}, \
         \"quiet_window_fraction\": {:.4}}},\n  \"broad\": {{\"full_mbps\": {:.0}, \
         \"prefiltered_mbps\": {:.0}, \"ratio\": {:.3}, \"filtered\": {}}},\n  \
         \"adversarial\": {{\"full_mbps\": {:.0}, \"prefiltered_mbps\": {:.0}, \
         \"ratio\": {:.3}, \"bailed\": {}}}\n}}\n",
        host_cores(),
        quick,
        anchored_pats.len(),
        npat,
        npkt,
        bytes,
        SAMPLE,
        kernel_json.join(", "),
        stats.filtered,
        stats.skip_fraction(),
        stats.windows,
        stats.quiet_window_fraction(),
        broad_full,
        broad_pre,
        broad_pre / broad_full,
        broad_stats.filtered,
        adv_full,
        adv_pre,
        adv_ratio,
        adv_stats.bailed
    );
    std::fs::write("BENCH_kernels.json", &json).expect("writable working directory");
    println!("wrote BENCH_kernels.json");
}
