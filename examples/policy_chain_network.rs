//! Multiple policy chains through one DPI service — the Figure 3/Figure 5
//! scenario.
//!
//! Two traffic classes share a network:
//!
//! * chain 1 (HTTP):  DPI → L7 load balancer → traffic shaper
//! * chain 2 (other): DPI → IPS
//!
//! The DPI service scans each packet once against the union of the
//! *active* middleboxes' patterns (selected by the chain tag), and each
//! middlebox applies its own logic to the shared results. The example
//! also demonstrates the in-band (NSH-like) result delivery of §4.2.
//!
//! Run with: `cargo run --example policy_chain_network`

use dpi_service::ac::MiddleboxId;
use dpi_service::middlebox::{ips, l7_load_balancer, traffic_shaper};
use dpi_service::packet::ipv4::IpProtocol;
use dpi_service::packet::packet::flow;
use dpi_service::SystemBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const LB: MiddleboxId = MiddleboxId(1);
    const SHAPER: MiddleboxId = MiddleboxId(2);
    const IPS_ID: MiddleboxId = MiddleboxId(3);

    let lb = l7_load_balancer(
        LB,
        &[
            (b"GET /api/".to_vec(), 1),
            (b"GET /static/".to_vec(), 2),
            (b"GET /video/".to_vec(), 3),
        ],
    );
    let shaper = traffic_shaper(
        SHAPER,
        &[
            (b"GET /video/".to_vec(), 7), // video class
            (b"bittorrent-proto".to_vec(), 1),
        ],
    );
    let ips_box = ips(
        IPS_ID,
        &[b"SQL-INJECTION-ATTEMPT".to_vec(), b"xp_cmdshell".to_vec()],
    );

    let mut system = SystemBuilder::new()
        .in_band_results() // §4.2 option 1: results ride on the packet
        .with_middlebox(lb)
        .with_middlebox(shaper)
        .with_middlebox(ips_box)
        .with_chain(&[LB, SHAPER]) // chain for HTTP traffic
        .with_chain(&[IPS_ID]) // chain for everything else
        .build()?;

    // HTTP flows take chain 1 (installed first → first ingress rule wins
    // for this single-ingress demo; chain selection by traffic class is
    // the TSA's job and is demonstrated per-flow in the tests).
    let http_flow = flow([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80, IpProtocol::Tcp);
    let requests: [&[u8]; 4] = [
        b"GET /api/users HTTP/1.1\r\nHost: svc\r\n\r\n",
        b"GET /video/cat.mp4 HTTP/1.1\r\nHost: cdn\r\n\r\n",
        b"GET /static/app.js HTTP/1.1\r\nHost: cdn\r\n\r\n",
        b"POST /upload HTTP/1.1\r\nHost: svc\r\n\r\n",
    ];
    for (i, r) in requests.iter().enumerate() {
        system.send(http_flow, i as u32 * 1000, r);
    }

    let lb_stats = system.stats_of(LB).expect("lb registered");
    let shaper_stats = system.stats_of(SHAPER).expect("shaper registered");
    println!("chain 1 (HTTP): DPI → L7-LB → shaper");
    println!(
        "  load balancer : {} packets seen, {} steering rules fired",
        lb_stats.packets, lb_stats.rules_fired
    );
    println!(
        "  shaper        : {} packets seen, {} shaping rules fired",
        shaper_stats.packets, shaper_stats.rules_fired
    );
    let t = system.dpi_telemetry();
    println!(
        "  DPI service   : {} packets / {} bytes scanned once each",
        t.packets, t.bytes
    );
    println!(
        "  destination   : {} of {} packets delivered",
        system.sink.count(),
        requests.len()
    );

    assert_eq!(lb_stats.packets, 4);
    assert_eq!(lb_stats.rules_fired, 3); // /api, /video, /static
    assert_eq!(shaper_stats.rules_fired, 1); // /video
    assert_eq!(system.sink.count(), 4);
    println!("\nmultiple chains, one shared scan per packet ✓");
    Ok(())
}
