//! The unified, bounded per-flow state arena (DESIGN.md §15).
//!
//! The paper's §4.3 pitch is that a DPI instance keeps only tiny
//! per-flow state — "the current DFA state and an offset within the
//! packet" — which is what makes consolidation and migration cheap. The
//! instance as grown actually kept per-flow state in *four* independent
//! maps (scan state, reassemblers, stress counters, L7 sessions), of
//! which only the flow table was bounded; flow churn grew the rest
//! without limit. [`FlowArena`] unifies all four behind one `FlowKey`
//! lookup into a slab of [`FlowEntry`] records with:
//!
//! * **one bounded entry count** — a single capacity covers every kind
//!   of per-flow state, enforced by O(1) single-entry LRU eviction
//!   (replacing the old sort-half eviction that allocated and sorted on
//!   the hot path);
//! * **quarantine-preferring eviction** — fail-closed verdicts are
//!   skipped by the eviction walk, so churn cannot flush them (each
//!   forced drop is counted and surfaced, never silent);
//! * **per-flow byte accounting** — each entry caches its heap
//!   footprint (reassembly buffers, L7 decode buffers) and the arena
//!   keeps the running total, which the overload detector reads as a
//!   memory-pressure watermark and an optional byte budget enforces
//!   directly;
//! * **timer-wheel aging** — a hierarchical [`TimerWheel`] over the
//!   same logical clock the LRU uses expires idle flows (reassembly
//!   buffers included) deterministically, with no wall-clock reads.
//!
//! Losing an entry is always safe for correctness of the data path: the
//! next packet scans from the automaton root as if the flow were new
//! (the same argument as flow-table eviction). The one exception is a
//! quarantine verdict, which is why eviction prefers everything else
//! and aging skips quarantined entries entirely — they hold no buffers,
//! so keeping them costs one slab slot, not memory.

use crate::flowstate::FlowState;
use crate::l7::L7Session;
use crate::reassembly::StreamReassembler;
use crate::timerwheel::TimerWheel;
use dpi_packet::FlowKey;
use std::collections::HashMap;

/// Slab index niche for "no entry" in the intrusive LRU links.
const NIL: u32 = u32::MAX;

/// How many quarantined entries the eviction walk skips before giving
/// up and dropping the oldest verdict anyway (the bound must hold).
const EVICTION_WALK: usize = 64;

/// Estimated fixed cost of one tracked flow: the slab slot itself plus
/// the index map's key + index + bucket share. An estimate for the
/// watermark math, not an allocator census.
fn entry_base_bytes() -> u64 {
    (std::mem::size_of::<Slot>() + std::mem::size_of::<FlowKey>() + 24) as u64
}

/// Counters the arena accumulates while servicing the hot path, drained
/// by the owning shard into telemetry and trace events (the arena knows
/// nothing about writers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaEvents {
    /// Entries dropped by the capacity bound or byte budget.
    pub flows_evicted: u64,
    /// Evictions that were forced to drop a *quarantined* entry — a
    /// forgotten fail-closed verdict, worth alarming on.
    pub quarantined_evicted: u64,
    /// Entries expired by idle-timeout aging.
    pub flows_aged: u64,
}

impl ArenaEvents {
    /// Whether nothing happened since the last drain.
    pub fn is_empty(&self) -> bool {
        *self == ArenaEvents::default()
    }
}

/// Everything the instance knows about one flow, in one slab slot.
#[derive(Debug)]
struct FlowEntry {
    key: FlowKey,
    /// Scan state `(dfa_state, stream_offset, generation)` — the §4.3
    /// record. `None` for flows tracked only for reassembly/stress/L7.
    scan: Option<(u32, u64, u32)>,
    /// Sticky fail-closed verdict (DESIGN.md §13). Survives scan-state
    /// overwrites, generation re-anchoring, eviction preference and
    /// aging; cleared only by explicit teardown or forced eviction.
    quarantined: bool,
    /// TCP reassembly state, boxed: most flows in a million-flow table
    /// are idle and must not pay the reassembler's inline size.
    reassembler: Option<Box<StreamReassembler>>,
    /// Deep-state stress samples `(deep, total)` for MCA² heavy-flow
    /// selection (§4.3.1).
    stress: (u64, u64),
    /// L7 decode session (DESIGN.md §14), boxed like the reassembler.
    l7: Option<Box<L7Session>>,
    /// Logical tick of the last touch (LRU + aging).
    last_used: u64,
    /// Cached byte estimate for this entry (base + component heaps).
    bytes: u64,
    /// Intrusive LRU list: `prev` is toward most-recent, `next` toward
    /// least-recent. O(1) touch, O(1) evict, zero allocation.
    prev: u32,
    next: u32,
}

/// One slab slot. `stamp` increments on every free, so a stale timer
/// (lazy cancellation) can tell that its slot was reused.
#[derive(Debug)]
struct Slot {
    entry: Option<FlowEntry>,
    stamp: u32,
    next_free: u32,
}

/// The arena. See the module docs.
#[derive(Debug)]
pub struct FlowArena {
    index: HashMap<FlowKey, u32>,
    slots: Vec<Slot>,
    free_head: u32,
    /// Most-recently-used entry.
    lru_head: u32,
    /// Least-recently-used entry (eviction candidate).
    lru_tail: u32,
    capacity: usize,
    /// Logical clock: one tick per arena access, shared by LRU order
    /// and the timer wheel (deterministic, no wall time).
    clock: u64,
    /// Idle ticks before an entry is aged out; `None` disables aging.
    idle_timeout: Option<u64>,
    /// Total-byte budget; `None` disables budget eviction (the
    /// watermark integration still reads `total_bytes`).
    max_bytes: Option<u64>,
    total_bytes: u64,
    wheel: TimerWheel,
    /// Reusable expiry scratch (keeps `tick` allocation-free).
    expired: Vec<u64>,
    events: ArenaEvents,
}

impl FlowArena {
    /// An arena bounded to `capacity` entries (minimum 1), with aging
    /// and the byte budget disabled.
    pub fn new(capacity: usize) -> FlowArena {
        FlowArena::with_limits(capacity, None, None)
    }

    /// An arena with optional idle aging (in logical ticks — one tick
    /// per arena access) and an optional total-byte budget.
    pub fn with_limits(
        capacity: usize,
        idle_timeout: Option<u64>,
        max_bytes: Option<u64>,
    ) -> FlowArena {
        FlowArena {
            index: HashMap::new(),
            slots: Vec::new(),
            free_head: NIL,
            lru_head: NIL,
            lru_tail: NIL,
            capacity: capacity.max(1),
            clock: 0,
            idle_timeout: idle_timeout.filter(|&t| t > 0),
            max_bytes: max_bytes.filter(|&b| b > 0),
            total_bytes: 0,
            wheel: TimerWheel::new(),
            expired: Vec::new(),
            events: ArenaEvents::default(),
        }
    }

    /// Tracked flows.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Estimated bytes of all per-flow state currently held — what the
    /// overload detector's memory watermark reads.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The configured idle timeout, if aging is enabled.
    pub fn idle_timeout(&self) -> Option<u64> {
        self.idle_timeout
    }

    /// Counters accumulated since the last drain (see [`ArenaEvents`]).
    pub fn take_events(&mut self) -> ArenaEvents {
        std::mem::take(&mut self.events)
    }

    /// All tracked flow keys (diagnostics, migration candidate listing).
    pub fn keys(&self) -> impl Iterator<Item = &FlowKey> {
        self.index.keys()
    }

    // ---- scan state (FlowTable semantics) ---------------------------

    /// Looks up (and touches) a flow's scan state. Mirrors
    /// [`crate::flowstate::FlowTable::get`]: a quarantined flow without
    /// scan state reads as the zero record with the verdict set.
    pub fn get_scan(&mut self, key: &FlowKey) -> Option<FlowState> {
        let idx = self.lookup_touch(key)?;
        let e = self.slots[idx as usize].entry.as_ref().expect("indexed");
        match (e.scan, e.quarantined) {
            (Some((state, offset, generation)), q) => {
                Some(FlowState::assemble(state, offset, generation, q))
            }
            (None, true) => Some(FlowState::assemble(0, 0, 0, true)),
            (None, false) => None,
        }
    }

    /// Looks up a flow's scan state, but only if it was written under
    /// `generation`; a mismatch drops the stale scan state (the flow
    /// re-anchors at the new automaton's root, miss-only) while leaving
    /// the entry's other components — unlike the standalone flow table,
    /// the entry may also hold live reassembly/L7 state, and a
    /// quarantine verdict must never ride out on a generation swap.
    pub fn get_scan_if_generation(&mut self, key: &FlowKey, generation: u32) -> Option<FlowState> {
        let idx = self.lookup_touch(key)?;
        let e = self.slots[idx as usize].entry.as_mut().expect("indexed");
        match e.scan {
            Some((state, offset, g)) if g == generation => {
                Some(FlowState::assemble(state, offset, g, e.quarantined))
            }
            Some(_) => {
                e.scan = None;
                self.remove_if_hollow(idx);
                None
            }
            None => None,
        }
    }

    /// Stores a flow's scan state tagged with the generation of the
    /// automaton that produced it. Quarantine is sticky across writes.
    pub fn put_scan_gen(&mut self, key: FlowKey, state: u32, offset: u64, generation: u32) {
        let idx = self.ensure(key);
        let e = self.slots[idx as usize].entry.as_mut().expect("ensured");
        e.scan = Some((state, offset, generation));
    }

    /// Marks a flow quarantined (reassembly conflict under
    /// `ConflictPolicy::RejectFlow`), creating the entry if absent. The
    /// flow's reassembly and L7 state is torn down with it: a
    /// quarantined flow is never scanned again, so keeping (or later
    /// re-creating) buffers for it would only store attacker-controlled
    /// bytes. This also keeps the "quarantined entries are tiny"
    /// invariant the eviction preference relies on.
    pub fn quarantine(&mut self, key: FlowKey) {
        let idx = self.ensure(key);
        let e = self.slots[idx as usize].entry.as_mut().expect("ensured");
        e.quarantined = true;
        e.reassembler = None;
        e.l7 = None;
        self.refresh_idx(idx);
    }

    /// Whether a flow is quarantined. Non-mutating (no LRU touch, no
    /// clock tick) — this sits on the per-packet hot path.
    pub fn is_quarantined(&self, key: &FlowKey) -> bool {
        self.peek(key).is_some_and(|e| e.quarantined)
    }

    /// Removes a flow entirely — connection teardown. Every per-flow
    /// component (scan state, reassembler, stress, L7 session, verdict)
    /// goes with it; returns the scan-state record if one existed.
    pub fn remove(&mut self, key: &FlowKey) -> Option<FlowState> {
        let idx = *self.index.get(key)?;
        let e = self.slots[idx as usize].entry.as_ref().expect("indexed");
        let out = e
            .scan
            .map(|(s, o, g)| FlowState::assemble(s, o, g, e.quarantined))
            .or(e.quarantined.then(|| FlowState::assemble(0, 0, 0, true)));
        self.remove_idx(idx);
        out
    }

    /// Exports a flow's full scan-state record without touching LRU
    /// order — the migration path (§4.3). Quarantined flows export the
    /// verdict even when they hold no scan state.
    pub fn export_scan(&self, key: &FlowKey) -> Option<FlowState> {
        let e = self.peek(key)?;
        match (e.scan, e.quarantined) {
            (Some((s, o, g)), q) => Some(FlowState::assemble(s, o, g, q)),
            (None, true) => Some(FlowState::assemble(0, 0, 0, true)),
            (None, false) => None,
        }
    }

    /// Imports a migrated flow's record as exported — generation tag
    /// and quarantine verdict included (a quarantine already present
    /// locally is sticky; import never clears it).
    pub fn import_scan(&mut self, key: FlowKey, fs: FlowState) {
        let idx = self.ensure(key);
        let e = self.slots[idx as usize].entry.as_mut().expect("ensured");
        e.scan = Some((fs.state, fs.offset, fs.generation));
        e.quarantined |= fs.quarantined;
    }

    // ---- reassembly -------------------------------------------------

    /// The flow's reassembler, if it has one. Non-mutating.
    pub fn reassembler(&self, key: &FlowKey) -> Option<&StreamReassembler> {
        self.peek(key)?.reassembler.as_deref()
    }

    /// Whether `flow` currently holds TCP reassembly state.
    pub fn has_reassembler(&self, key: &FlowKey) -> bool {
        self.peek(key).is_some_and(|e| e.reassembler.is_some())
    }

    /// The flow's reassembler, created with `init` if absent (touches
    /// the flow). The caller must call [`FlowArena::refresh_bytes`]
    /// after mutating the returned reassembler so the arena's byte
    /// accounting tracks it.
    pub fn reassembler_or_insert_with(
        &mut self,
        key: FlowKey,
        init: impl FnOnce() -> StreamReassembler,
    ) -> &mut StreamReassembler {
        let idx = self.ensure(key);
        let e = self.slots[idx as usize].entry.as_mut().expect("ensured");
        e.reassembler.get_or_insert_with(|| Box::new(init()))
    }

    /// Installs (replacing any previous) reassembly state for a flow —
    /// the explicit stream-open path.
    pub fn set_reassembler(&mut self, key: FlowKey, r: StreamReassembler) {
        let idx = self.ensure(key);
        let e = self.slots[idx as usize].entry.as_mut().expect("ensured");
        e.reassembler = Some(Box::new(r));
        self.refresh_idx(idx);
    }

    /// Drops a flow's reassembly state, keeping the rest of the entry.
    pub fn drop_reassembler(&mut self, key: &FlowKey) {
        if let Some(&idx) = self.index.get(key) {
            let e = self.slots[idx as usize].entry.as_mut().expect("indexed");
            if e.reassembler.take().is_some() {
                self.refresh_idx(idx);
                self.remove_if_hollow(idx);
            }
        }
    }

    /// Re-estimates a flow's byte footprint after its reassembler or L7
    /// session was mutated in place, then enforces the byte budget.
    pub fn refresh_bytes(&mut self, key: &FlowKey) {
        if let Some(&idx) = self.index.get(key) {
            self.refresh_idx(idx);
            self.enforce_bytes();
        }
    }

    // ---- stress samples ---------------------------------------------

    /// Adds one scan's depth samples to a flow's stress window (the
    /// MCA² heavy-flow signal).
    pub fn record_stress(&mut self, key: FlowKey, deep: u64, samples: u64) {
        let idx = self.ensure(key);
        let e = self.slots[idx as usize].entry.as_mut().expect("ensured");
        e.stress.0 += deep;
        e.stress.1 += samples;
    }

    /// Per-flow deep-state ratios; flows with fewer than two samples
    /// are omitted (no signal), sorted hottest first.
    pub fn stress_ratios(&self) -> Vec<(FlowKey, f64)> {
        let mut v: Vec<(FlowKey, f64)> = self
            .entries()
            .filter(|e| e.stress.1 >= 2)
            .map(|e| (e.key, e.stress.0 as f64 / e.stress.1 as f64))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("ratios are finite"));
        v
    }

    /// Clears the stress window (after the controller consumed it).
    /// Entries that held nothing but stress samples are released.
    pub fn reset_stress(&mut self) {
        let stressed: Vec<u32> = self
            .index
            .values()
            .copied()
            .filter(|&idx| {
                let e = self.slots[idx as usize].entry.as_ref().expect("indexed");
                e.stress != (0, 0)
            })
            .collect();
        for idx in stressed {
            let e = self.slots[idx as usize].entry.as_mut().expect("indexed");
            e.stress = (0, 0);
            self.remove_if_hollow(idx);
        }
    }

    // ---- L7 sessions ------------------------------------------------

    /// Takes a flow's L7 session out of the arena (the scan loop owns
    /// it while decoding, then puts it back), touching the flow.
    pub fn take_l7(&mut self, key: &FlowKey) -> Option<L7Session> {
        let idx = self.lookup_touch(key)?;
        let e = self.slots[idx as usize].entry.as_mut().expect("indexed");
        let s = e.l7.take().map(|b| *b);
        if s.is_some() {
            self.refresh_idx(idx);
        }
        s
    }

    /// Stores a flow's L7 session (back), touching the flow.
    pub fn put_l7(&mut self, key: FlowKey, session: L7Session) {
        let idx = self.ensure(key);
        let e = self.slots[idx as usize].entry.as_mut().expect("ensured");
        e.l7 = Some(Box::new(session));
        self.refresh_idx(idx);
        self.enforce_bytes();
    }

    /// Drops a flow's L7 session, keeping the rest of the entry.
    pub fn drop_l7(&mut self, key: &FlowKey) {
        if let Some(&idx) = self.index.get(key) {
            let e = self.slots[idx as usize].entry.as_mut().expect("indexed");
            if e.l7.take().is_some() {
                self.refresh_idx(idx);
                self.remove_if_hollow(idx);
            }
        }
    }

    /// The flow's identified L7 protocol, if it has a session.
    pub fn l7_protocol(&self, key: &FlowKey) -> Option<crate::l7::L7Protocol> {
        self.peek(key)?.l7.as_ref().map(|s| s.protocol())
    }

    // ---- internals --------------------------------------------------

    fn entries(&self) -> impl Iterator<Item = &FlowEntry> {
        self.index
            .values()
            .map(|&idx| self.slots[idx as usize].entry.as_ref().expect("indexed"))
    }

    fn peek(&self, key: &FlowKey) -> Option<&FlowEntry> {
        let idx = *self.index.get(key)?;
        self.slots[idx as usize].entry.as_ref()
    }

    /// Advances the logical clock by one tick and runs any timers that
    /// came due. O(1) amortized; allocation-free in steady state.
    fn tick(&mut self) {
        self.clock += 1;
        if self.wheel.is_empty() {
            // Aging disabled (or nothing scheduled): just track time.
            let clock = self.clock;
            self.wheel.advance(clock, |_, _| {});
            return;
        }
        let mut expired = std::mem::take(&mut self.expired);
        expired.clear();
        let clock = self.clock;
        self.wheel
            .advance(clock, |payload, _| expired.push(payload));
        for payload in expired.drain(..) {
            self.on_timer(payload);
        }
        self.expired = expired;
    }

    fn on_timer(&mut self, payload: u64) {
        let idx = (payload & 0xFFFF_FFFF) as u32;
        let stamp = (payload >> 32) as u32;
        let timeout = match self.idle_timeout {
            Some(t) => t,
            None => return,
        };
        let slot = match self.slots.get(idx as usize) {
            Some(s) if s.stamp == stamp => s,
            _ => return, // slot freed (and possibly reused) — stale timer
        };
        let e = match slot.entry.as_ref() {
            Some(e) => e,
            None => return,
        };
        if e.quarantined {
            // Verdicts don't age: letting a timer flush one would
            // re-open the fail-open hole eviction preference closed.
            // The entry holds no buffers, so it costs a slot, not
            // memory; it leaves by teardown or forced eviction.
            return;
        }
        let due = e.last_used + timeout;
        if due <= self.wheel.now() {
            self.events.flows_aged += 1;
            self.remove_idx(idx);
        } else {
            // Touched since scheduled: re-arm for its new idle horizon.
            self.wheel.schedule(due, payload);
        }
    }

    /// Looks up an existing entry and touches it (clock tick + LRU
    /// move). Returns its slab index.
    fn lookup_touch(&mut self, key: &FlowKey) -> Option<u32> {
        self.tick();
        let idx = *self.index.get(key)?;
        self.touch_idx(idx);
        Some(idx)
    }

    /// Finds or creates the entry for `key`, touching it either way and
    /// enforcing the entry bound on creation.
    fn ensure(&mut self, key: FlowKey) -> u32 {
        self.tick();
        if let Some(&idx) = self.index.get(&key) {
            self.touch_idx(idx);
            return idx;
        }
        if self.index.len() >= self.capacity {
            self.evict_one();
        }
        let idx = self.alloc();
        let entry = FlowEntry {
            key,
            scan: None,
            quarantined: false,
            reassembler: None,
            stress: (0, 0),
            l7: None,
            last_used: self.clock,
            bytes: entry_base_bytes(),
            prev: NIL,
            next: NIL,
        };
        self.total_bytes += entry.bytes;
        self.slots[idx as usize].entry = Some(entry);
        self.index.insert(key, idx);
        self.lru_push_front(idx);
        if let Some(timeout) = self.idle_timeout {
            let stamp = self.slots[idx as usize].stamp;
            self.wheel
                .schedule(self.clock + timeout, timer_payload(idx, stamp));
        }
        idx
    }

    fn alloc(&mut self) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            self.free_head = self.slots[idx as usize].next_free;
            self.slots[idx as usize].next_free = NIL;
            idx
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                entry: None,
                stamp: 0,
                next_free: NIL,
            });
            idx
        }
    }

    fn touch_idx(&mut self, idx: u32) {
        let e = self.slots[idx as usize].entry.as_mut().expect("touch live");
        e.last_used = self.clock;
        if self.lru_head == idx {
            return;
        }
        self.lru_unlink(idx);
        self.lru_push_front(idx);
    }

    fn lru_push_front(&mut self, idx: u32) {
        let old_head = self.lru_head;
        {
            let e = self.slots[idx as usize].entry.as_mut().expect("live");
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize]
                .entry
                .as_mut()
                .expect("live head")
                .prev = idx;
        }
        self.lru_head = idx;
        if self.lru_tail == NIL {
            self.lru_tail = idx;
        }
    }

    fn lru_unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let e = self.slots[idx as usize].entry.as_ref().expect("live");
            (e.prev, e.next)
        };
        if prev != NIL {
            self.slots[prev as usize].entry.as_mut().expect("live").next = next;
        } else {
            self.lru_head = next;
        }
        if next != NIL {
            self.slots[next as usize].entry.as_mut().expect("live").prev = prev;
        } else {
            self.lru_tail = prev;
        }
    }

    /// Evicts one entry to make room: the least-recently-used
    /// *non-quarantined* entry within [`EVICTION_WALK`] steps of the
    /// tail, else the tail itself (counted as a dropped verdict).
    fn evict_one(&mut self) {
        let mut cursor = self.lru_tail;
        let mut steps = 0usize;
        while cursor != NIL && steps < EVICTION_WALK {
            let e = self.slots[cursor as usize].entry.as_ref().expect("live");
            if !e.quarantined {
                self.events.flows_evicted += 1;
                self.remove_idx(cursor);
                return;
            }
            cursor = e.prev;
            steps += 1;
        }
        // Everything near the tail is a quarantine verdict; the bound
        // still holds, so the oldest verdict goes — counted, because a
        // forgotten fail-closed verdict must never be silent.
        let tail = self.lru_tail;
        if tail != NIL {
            self.events.flows_evicted += 1;
            self.events.quarantined_evicted += 1;
            self.remove_idx(tail);
        }
    }

    fn remove_idx(&mut self, idx: u32) {
        self.lru_unlink(idx);
        let slot = &mut self.slots[idx as usize];
        let entry = slot.entry.take().expect("remove live");
        slot.stamp = slot.stamp.wrapping_add(1);
        slot.next_free = self.free_head;
        self.free_head = idx;
        self.total_bytes -= entry.bytes;
        self.index.remove(&entry.key);
    }

    /// Releases an entry that no longer holds anything — no scan state,
    /// no verdict, no buffers, no stress — so stale bookkeeping doesn't
    /// occupy slots until aged out.
    fn remove_if_hollow(&mut self, idx: u32) {
        let e = self.slots[idx as usize].entry.as_ref().expect("live");
        if e.scan.is_none()
            && !e.quarantined
            && e.reassembler.is_none()
            && e.l7.is_none()
            && e.stress == (0, 0)
        {
            self.remove_idx(idx);
        }
    }

    fn refresh_idx(&mut self, idx: u32) {
        let e = self.slots[idx as usize].entry.as_mut().expect("live");
        let new = entry_base_bytes()
            + e.reassembler.as_ref().map_or(0, |r| r.heap_bytes())
            + e.l7.as_ref().map_or(0, |s| s.heap_bytes());
        self.total_bytes = self.total_bytes - e.bytes + new;
        e.bytes = new;
    }

    /// Enforces the optional byte budget by evicting cold entries
    /// (fail-open under memory pressure, like every other bound here).
    /// The most-recent entry is never evicted: the flow being serviced
    /// right now must not yank its own state out from under the caller.
    fn enforce_bytes(&mut self) {
        let Some(budget) = self.max_bytes else { return };
        while self.total_bytes > budget && self.index.len() > 1 {
            let before = self.index.len();
            self.evict_one();
            if self.index.len() == before {
                break; // nothing evictable
            }
        }
    }
}

fn timer_payload(idx: u32, stamp: u32) -> u64 {
    (u64::from(stamp) << 32) | u64::from(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_packet::ipv4::IpProtocol;
    use std::net::Ipv4Addr;

    fn key(n: u32) -> FlowKey {
        FlowKey {
            src_ip: Ipv4Addr::from(0x0a00_0000 | (n >> 16)),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            protocol: IpProtocol::Tcp,
            src_port: (n & 0xFFFF) as u16,
            dst_port: 80,
        }
    }

    #[test]
    fn scan_state_round_trip_matches_flow_table_semantics() {
        let mut a = FlowArena::new(16);
        assert!(a.get_scan(&key(1)).is_none());
        a.put_scan_gen(key(1), 42, 1000, 3);
        let fs = a.get_scan(&key(1)).unwrap();
        assert_eq!((fs.state, fs.offset, fs.generation), (42, 1000, 3));
        assert_eq!(
            a.get_scan_if_generation(&key(1), 3).map(|f| f.state),
            Some(42)
        );
        // Generation mismatch drops the scan state, flow reads fresh.
        assert!(a.get_scan_if_generation(&key(1), 4).is_none());
        assert!(a.get_scan(&key(1)).is_none());
    }

    #[test]
    fn capacity_bound_holds_with_single_entry_eviction() {
        let mut a = FlowArena::new(8);
        for i in 0..100 {
            a.put_scan_gen(key(i), i, 0, 0);
        }
        assert_eq!(a.len(), 8);
        // Most recent flows survive.
        for i in 92..100 {
            assert!(a.get_scan(&key(i)).is_some(), "flow {i} evicted");
        }
        assert_eq!(a.take_events().flows_evicted, 92);
    }

    #[test]
    fn eviction_prefers_non_quarantined() {
        let mut a = FlowArena::new(8);
        a.quarantine(key(0));
        for i in 1..100 {
            a.put_scan_gen(key(i), i, 0, 0);
        }
        assert!(a.is_quarantined(&key(0)), "churn flushed a verdict");
        let ev = a.take_events();
        assert_eq!(ev.quarantined_evicted, 0);
    }

    #[test]
    fn quarantine_dominated_arena_stays_bounded_and_counts() {
        let mut a = FlowArena::new(4);
        for i in 0..10 {
            a.quarantine(key(i));
        }
        assert_eq!(a.len(), 4);
        assert_eq!(a.take_events().quarantined_evicted, 6);
        // The newest verdicts are the ones kept.
        assert!(a.is_quarantined(&key(9)));
    }

    #[test]
    fn quarantine_is_sticky_and_drops_buffers() {
        let mut a = FlowArena::new(8);
        a.reassembler_or_insert_with(key(1), || StreamReassembler::new(0, 1 << 16));
        a.refresh_bytes(&key(1));
        a.quarantine(key(1));
        assert!(a.is_quarantined(&key(1)));
        assert!(!a.has_reassembler(&key(1)));
        // Scan-state writes don't clear it.
        a.put_scan_gen(key(1), 9, 100, 2);
        assert!(a.is_quarantined(&key(1)));
        // Teardown forgets the verdict with the flow.
        a.remove(&key(1));
        assert!(!a.is_quarantined(&key(1)));
    }

    #[test]
    fn migration_preserves_generation_and_quarantine() {
        let mut src = FlowArena::new(8);
        src.put_scan_gen(key(1), 7, 512, 5);
        src.quarantine(key(1));
        let fs = src.export_scan(&key(1)).unwrap();
        assert_eq!(
            (fs.state, fs.offset, fs.generation, fs.quarantined),
            (7, 512, 5, true)
        );

        let mut dst = FlowArena::new(8);
        dst.import_scan(key(1), fs);
        assert!(dst.is_quarantined(&key(1)));
        let got = dst.get_scan_if_generation(&key(1), 5).unwrap();
        assert_eq!((got.state, got.offset), (7, 512));
    }

    #[test]
    fn idle_flows_age_out_and_touched_flows_survive() {
        let mut a = FlowArena::with_limits(1024, Some(100), None);
        a.put_scan_gen(key(1), 1, 0, 0);
        a.put_scan_gen(key(2), 2, 0, 0);
        // Keep flow 2 warm past flow 1's idle horizon; every op ticks.
        for _ in 0..200 {
            assert!(a.get_scan(&key(2)).is_some());
        }
        assert!(a.get_scan(&key(1)).is_none(), "idle flow survived aging");
        assert_eq!(a.len(), 1);
        assert_eq!(a.take_events().flows_aged, 1);
    }

    #[test]
    fn aging_tears_down_reassembly_buffers() {
        let mut a = FlowArena::with_limits(1024, Some(50), None);
        let r = a.reassembler_or_insert_with(key(1), || StreamReassembler::new(0, 1 << 16));
        // Out-of-order segment: held in the buffer, counted in bytes.
        r.push(1000, &[0xAA; 512]);
        a.refresh_bytes(&key(1));
        assert!(a.total_bytes() > entry_base_bytes());
        // Unrelated churn advances the clock past the idle horizon.
        for i in 0..100 {
            a.put_scan_gen(key(100 + i), i, 0, 0);
        }
        assert!(!a.has_reassembler(&key(1)));
        assert!(a.take_events().flows_aged >= 1);
        // Only base-cost entries remain: the buffer's bytes left the
        // accounting with the aged flow.
        assert_eq!(a.total_bytes(), a.len() as u64 * entry_base_bytes());
    }

    #[test]
    fn quarantined_flows_do_not_age() {
        let mut a = FlowArena::with_limits(1024, Some(10), None);
        a.quarantine(key(1));
        for i in 0..100 {
            a.put_scan_gen(key(2 + i), i, 0, 0);
        }
        assert!(a.is_quarantined(&key(1)), "aging flushed a verdict");
        // The churn flows themselves aged (timeout 10 « 100 puts), but
        // no aged flow may be a quarantined one — the verdict stayed.
        assert!(a.take_events().quarantined_evicted == 0);
    }

    #[test]
    fn byte_budget_evicts_cold_buffer_holders() {
        // Budget fits a couple of fat flows at most: colder buffer
        // holders must be evicted as hotter ones grow. The guarantee is
        // `budget + one entry's footprint` — the flow being serviced is
        // never yanked out from under its own scan.
        let budget = 20 * 1024;
        let mut a = FlowArena::with_limits(1024, None, Some(budget));
        let mut max_entry = 0u64;
        for i in 0..8 {
            let r = a.reassembler_or_insert_with(key(i), || StreamReassembler::new(0, 1 << 20));
            // Out-of-order segment: held buffered, counted in bytes.
            r.push(5_000, &[0xBB; 8 * 1024]);
            a.refresh_bytes(&key(i));
            max_entry = max_entry.max(entry_base_bytes() + 8 * 1024 + 64);
        }
        assert!(
            a.total_bytes() <= budget + max_entry,
            "budget not enforced: {} > {} + {}",
            a.total_bytes(),
            budget,
            max_entry
        );
        assert!(a.take_events().flows_evicted >= 1);
        assert!(a.len() < 8, "no cold flow was evicted");
    }

    #[test]
    fn stress_and_l7_round_trip() {
        let mut a = FlowArena::new(16);
        a.record_stress(key(1), 3, 4);
        a.record_stress(key(1), 1, 4);
        let ratios = a.stress_ratios();
        assert_eq!(ratios.len(), 1);
        assert!((ratios[0].1 - 0.5).abs() < 1e-9);
        a.reset_stress();
        assert!(a.stress_ratios().is_empty());
        // A pure-stress entry is released by the reset.
        assert_eq!(a.len(), 0);

        let s = L7Session::default();
        a.put_l7(key(2), s);
        assert!(a.take_l7(&key(2)).is_some());
        assert!(a.take_l7(&key(2)).is_none());
    }

    #[test]
    fn total_bytes_returns_to_baseline_after_teardown() {
        let mut a = FlowArena::new(1024);
        for i in 0..100 {
            let r = a.reassembler_or_insert_with(key(i), || StreamReassembler::new(0, 1 << 16));
            r.push(1000, &[0x55; 256]);
            a.refresh_bytes(&key(i));
            a.record_stress(key(i), 1, 2);
            a.put_scan_gen(key(i), i, 64, 0);
        }
        assert!(a.total_bytes() > 0);
        for i in 0..100 {
            a.remove(&key(i));
        }
        assert_eq!(a.len(), 0);
        assert_eq!(a.total_bytes(), 0, "byte accounting leaked");
    }
}
