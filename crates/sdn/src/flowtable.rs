//! OpenFlow-style flow tables.

use dpi_packet::ethernet::EtherType;
use dpi_packet::ipv4::Ecn;
use dpi_packet::packet::PacketBody;
use dpi_packet::Packet;
use serde::{Deserialize, Serialize};

/// A port number on a switch.
pub type Port = u16;

/// Match fields; `None` is a wildcard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowMatch {
    /// Ingress port.
    pub in_port: Option<Port>,
    /// Outer EtherType as seen on the wire (VLAN if tagged).
    pub ethertype: Option<u16>,
    /// Outermost VLAN VID — the policy-chain tag (§4.1).
    pub vlan_vid: Option<u16>,
    /// Whether the packet carries any VLAN tag.
    pub tagged: Option<bool>,
    /// IPv4 source.
    pub ip_src: Option<std::net::Ipv4Addr>,
    /// IPv4 destination.
    pub ip_dst: Option<std::net::Ipv4Addr>,
    /// L4 source port.
    pub l4_src: Option<u16>,
    /// L4 destination port.
    pub l4_dst: Option<u16>,
    /// ECN codepoint — how middlebox-bound rules recognize the DPI
    /// match-mark (§6.1).
    pub ecn: Option<Ecn>,
    /// Whether the body is a dedicated DPI result packet — lets the TSA
    /// fork results-only traffic to read-only middleboxes (§4.2 option 3).
    pub body_is_result: Option<bool>,
}

impl FlowMatch {
    /// The match-anything entry.
    pub fn any() -> FlowMatch {
        FlowMatch::default()
    }

    /// Restricts to an ingress port.
    pub fn from_port(mut self, p: Port) -> FlowMatch {
        self.in_port = Some(p);
        self
    }

    /// Restricts to a chain tag.
    pub fn with_tag(mut self, vid: u16) -> FlowMatch {
        self.vlan_vid = Some(vid);
        self.tagged = Some(true);
        self
    }

    /// Restricts to untagged packets.
    pub fn untagged(mut self) -> FlowMatch {
        self.tagged = Some(false);
        self
    }

    /// Restricts to one directional flow (source/destination IPs and L4
    /// ports) — the match per-flow steering rules use.
    pub fn for_flow(mut self, flow: &dpi_packet::FlowKey) -> FlowMatch {
        self.ip_src = Some(flow.src_ip);
        self.ip_dst = Some(flow.dst_ip);
        self.l4_src = Some(flow.src_port);
        self.l4_dst = Some(flow.dst_port);
        self
    }

    /// Whether `packet` arriving on `in_port` satisfies every specified
    /// field.
    pub fn matches(&self, packet: &Packet, in_port: Port) -> bool {
        if let Some(p) = self.in_port {
            if p != in_port {
                return false;
            }
        }
        if let Some(r) = self.body_is_result {
            if r != matches!(packet.body, PacketBody::Result(_)) {
                return false;
            }
        }
        if let Some(t) = self.tagged {
            if t == packet.vlan.is_empty() {
                return false;
            }
        }
        if let Some(vid) = self.vlan_vid {
            if packet.chain_tag() != Some(vid) {
                return false;
            }
        }
        if let Some(et) = self.ethertype {
            let actual = if !packet.vlan.is_empty() {
                EtherType::Vlan.to_u16()
            } else {
                match &packet.body {
                    PacketBody::Ipv4 { .. } => EtherType::Ipv4.to_u16(),
                    PacketBody::Result(_) => EtherType::ResultPacket.to_u16(),
                    PacketBody::Raw(_) => packet.eth.ethertype.to_u16(),
                }
            };
            if et != actual {
                return false;
            }
        }
        if self.ip_src.is_some()
            || self.ip_dst.is_some()
            || self.l4_src.is_some()
            || self.l4_dst.is_some()
            || self.ecn.is_some()
        {
            match &packet.body {
                PacketBody::Ipv4 { header, l4, .. } => {
                    if let Some(s) = self.ip_src {
                        if header.src != s {
                            return false;
                        }
                    }
                    if let Some(d) = self.ip_dst {
                        if header.dst != d {
                            return false;
                        }
                    }
                    if let Some(p) = self.l4_src {
                        if l4.src_port() != p {
                            return false;
                        }
                    }
                    if let Some(p) = self.l4_dst {
                        if l4.dst_port() != p {
                            return false;
                        }
                    }
                    if let Some(e) = self.ecn {
                        if header.ecn != e {
                            return false;
                        }
                    }
                }
                _ => return false,
            }
        }
        true
    }
}

/// An OpenFlow-style action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Emit on a port.
    Output(Port),
    /// Push a policy-chain VLAN tag (§4.1).
    PushTag(u16),
    /// Pop the outermost tag.
    PopTag,
    /// Drop the packet (explicit, for readable rule sets).
    Drop,
}

/// A prioritized rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRule {
    /// Higher wins.
    pub priority: u16,
    /// The match.
    pub m: FlowMatch,
    /// Applied in order.
    pub actions: Vec<Action>,
}

/// A flow table: rules sorted by descending priority (stable for equal
/// priorities: first-installed wins, like OpenFlow's overlap behaviour
/// with `CHECK_OVERLAP` unset).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowTable {
    rules: Vec<FlowRule>,
}

impl FlowTable {
    /// An empty table (drops everything).
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Installs a rule.
    pub fn install(&mut self, rule: FlowRule) {
        let pos = self.rules.partition_point(|r| r.priority >= rule.priority);
        self.rules.insert(pos, rule);
    }

    /// Removes all rules matching a predicate; returns how many.
    pub fn remove_where<F: Fn(&FlowRule) -> bool>(&mut self, pred: F) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| !pred(r));
        before - self.rules.len()
    }

    /// The installed rules, highest priority first.
    pub fn rules(&self) -> &[FlowRule] {
        &self.rules
    }

    /// Mutates every rule in place (e.g. re-steering: rewriting output
    /// ports after an instance dies). The callback must not change
    /// priorities — the table's sort order is not re-derived.
    pub fn map_rules<F: FnMut(&mut FlowRule)>(&mut self, mut f: F) {
        for r in &mut self.rules {
            f(r);
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Looks up the highest-priority matching rule.
    pub fn lookup(&self, packet: &Packet, in_port: Port) -> Option<&FlowRule> {
        self.rules.iter().find(|r| r.m.matches(packet, in_port))
    }

    /// Applies a rule's actions, returning `(out_port, packet)` emissions.
    pub fn apply(rule: &FlowRule, mut packet: Packet) -> Vec<(Port, Packet)> {
        let mut out = Vec::new();
        for a in &rule.actions {
            match a {
                Action::Output(p) => out.push((*p, packet.clone())),
                Action::PushTag(vid) => {
                    // An invalid vid is a rule-authoring bug; drop rather
                    // than emit a malformed packet.
                    if packet.push_chain_tag(*vid).is_err() {
                        return Vec::new();
                    }
                }
                Action::PopTag => {
                    packet.pop_chain_tag();
                }
                Action::Drop => return Vec::new(),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_packet::ipv4::IpProtocol;
    use dpi_packet::packet::flow;
    use dpi_packet::MacAddr;

    fn pkt() -> Packet {
        Packet::tcp(
            MacAddr::local(1),
            MacAddr::local(2),
            flow([10, 0, 0, 1], 1000, [10, 0, 0, 2], 80, IpProtocol::Tcp),
            0,
            b"hello".to_vec(),
        )
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(FlowMatch::any().matches(&pkt(), 3));
    }

    #[test]
    fn port_and_tag_matching() {
        let mut p = pkt();
        assert!(FlowMatch::any().from_port(1).matches(&p, 1));
        assert!(!FlowMatch::any().from_port(1).matches(&p, 2));
        assert!(FlowMatch::any().untagged().matches(&p, 0));
        assert!(!FlowMatch::any().with_tag(5).matches(&p, 0));
        p.push_chain_tag(5).unwrap();
        assert!(FlowMatch::any().with_tag(5).matches(&p, 0));
        assert!(!FlowMatch::any().untagged().matches(&p, 0));
    }

    #[test]
    fn ecn_matching_sees_the_dpi_mark() {
        let mut p = pkt();
        let m = FlowMatch {
            ecn: Some(Ecn::Ect0),
            ..FlowMatch::default()
        };
        assert!(!m.matches(&p, 0));
        p.mark_matches();
        assert!(m.matches(&p, 0));
    }

    #[test]
    fn five_tuple_matching() {
        let p = pkt();
        let m = FlowMatch {
            ip_dst: Some([10, 0, 0, 2].into()),
            l4_dst: Some(80),
            ..FlowMatch::default()
        };
        assert!(m.matches(&p, 0));
        let wrong = FlowMatch {
            l4_dst: Some(443),
            ..FlowMatch::default()
        };
        assert!(!wrong.matches(&p, 0));
    }

    #[test]
    fn priority_order_and_stability() {
        let mut t = FlowTable::new();
        t.install(FlowRule {
            priority: 1,
            m: FlowMatch::any(),
            actions: vec![Action::Output(1)],
        });
        t.install(FlowRule {
            priority: 10,
            m: FlowMatch::any().from_port(7),
            actions: vec![Action::Output(2)],
        });
        // Specific rule wins on port 7.
        assert_eq!(
            t.lookup(&pkt(), 7).unwrap().actions,
            vec![Action::Output(2)]
        );
        assert_eq!(
            t.lookup(&pkt(), 3).unwrap().actions,
            vec![Action::Output(1)]
        );
    }

    #[test]
    fn empty_table_drops() {
        assert!(FlowTable::new().lookup(&pkt(), 0).is_none());
    }

    #[test]
    fn apply_tag_then_output() {
        let rule = FlowRule {
            priority: 0,
            m: FlowMatch::any(),
            actions: vec![Action::PushTag(9), Action::Output(4)],
        };
        let out = FlowTable::apply(&rule, pkt());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 4);
        assert_eq!(out[0].1.chain_tag(), Some(9));
    }

    #[test]
    fn apply_multicast_outputs() {
        let rule = FlowRule {
            priority: 0,
            m: FlowMatch::any(),
            actions: vec![Action::Output(1), Action::Output(2)],
        };
        assert_eq!(FlowTable::apply(&rule, pkt()).len(), 2);
    }

    #[test]
    fn drop_action_suppresses_all_output() {
        let rule = FlowRule {
            priority: 0,
            m: FlowMatch::any(),
            actions: vec![Action::Output(1), Action::Drop],
        };
        assert!(FlowTable::apply(&rule, pkt()).is_empty());
    }

    #[test]
    fn remove_where_uninstalls() {
        let mut t = FlowTable::new();
        for vid in 0..4 {
            t.install(FlowRule {
                priority: 5,
                m: FlowMatch::any().with_tag(vid),
                actions: vec![Action::Output(1)],
            });
        }
        assert_eq!(t.remove_where(|r| r.m.vlan_vid == Some(2)), 1);
        assert_eq!(t.len(), 3);
    }
}
