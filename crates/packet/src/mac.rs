//! Ethernet MAC addresses.

use serde::{Deserialize, Serialize};

/// A 48-bit IEEE 802 MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, used as a placeholder for "unset".
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Builds a locally-administered unicast address from a small integer.
    ///
    /// The simulator assigns host/middlebox MACs with this helper; the
    /// locally-administered bit (`0x02`) is set so generated addresses can
    /// never collide with real vendor OUIs.
    pub fn local(id: u32) -> MacAddr {
        let b = id.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// Returns `true` for group (multicast/broadcast) addresses.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Returns `true` for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Reads an address from the first six bytes of `buf`.
    ///
    /// # Panics
    /// Panics if `buf` is shorter than six bytes; callers validate length.
    pub fn from_slice(buf: &[u8]) -> MacAddr {
        let mut b = [0u8; 6];
        b.copy_from_slice(&buf[..6]);
        MacAddr(b)
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

impl std::fmt::Debug for MacAddr {
    // Addresses read better as `02:00:00:00:00:07` than as a byte array in
    // test failures, so `Debug` delegates to `Display`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_colon_hex() {
        let m = MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(m.to_string(), "de:ad:be:ef:00:01");
    }

    #[test]
    fn local_addresses_are_unicast_and_distinct() {
        let a = MacAddr::local(1);
        let b = MacAddr::local(2);
        assert_ne!(a, b);
        assert!(!a.is_multicast());
        assert!(!a.is_broadcast());
    }

    #[test]
    fn broadcast_is_multicast() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr::BROADCAST.is_broadcast());
    }

    #[test]
    fn from_slice_round_trips() {
        let m = MacAddr::local(77);
        assert_eq!(MacAddr::from_slice(&m.0), m);
    }
}
