//! Match results encoded as MPLS labels — §4.2's second delivery option.
//!
//! "An option that does not require reordering of service chains relies
//! on using some flexible pushing and pulling of tags (e.g., MPLS labels
//! …). The downside of the tagging option is that it might be messy as
//! each matching result may require several such tags, which in turn must
//! not collide with other tags used in the system."
//!
//! Both caveats are embodied here:
//!
//! * each reported pattern consumes one 20-bit label, so only packets
//!   with at most [`MAX_RESULT_LABELS`] distinct matches can use this
//!   path ([`encode_matches`] returns `None` otherwise — callers fall
//!   back to a dedicated result packet);
//! * match *positions do not fit*: a label carries (middlebox id,
//!   pattern id) only. Decoded records report position
//!   [`TAG_POSITION_UNKNOWN`]. Middleboxes that act on positions need one
//!   of the other two mechanisms;
//! * result labels are marked with a reserved traffic-class value so they
//!   cannot be confused with routing labels.

use crate::mpls::MplsLabel;
use crate::report::{MatchRecord, MiddleboxReport};

/// Traffic-class marker distinguishing result labels from routing labels.
pub const RESULT_TC: u8 = 0b101;

/// Most matches encodable as labels before falling back.
pub const MAX_RESULT_LABELS: usize = 8;

/// Position value for tag-delivered matches (positions don't fit a tag).
pub const TAG_POSITION_UNKNOWN: u16 = u16::MAX;

/// Bits of the label reserved for the middlebox id.
const MB_BITS: u32 = 6;
/// Bits for the pattern id.
const PATTERN_BITS: u32 = 14;

/// Encodes per-middlebox match lists into result labels. Returns `None`
/// when the reports do not fit: too many distinct matches, a middlebox id
/// ≥ 2⁶ or a pattern id ≥ 2¹⁴.
pub fn encode_matches(reports: &[MiddleboxReport]) -> Option<Vec<MplsLabel>> {
    let mut labels = Vec::new();
    for r in reports {
        if u32::from(r.middlebox_id) >= (1 << MB_BITS) {
            return None;
        }
        // One label per *distinct* pattern (occurrences collapse —
        // another lossy aspect of the tag option).
        let mut seen = std::collections::BTreeSet::new();
        for rec in &r.records {
            seen.insert(rec.pattern_id());
        }
        for pid in seen {
            if u32::from(pid) >= (1 << PATTERN_BITS) {
                return None;
            }
            if labels.len() >= MAX_RESULT_LABELS {
                return None;
            }
            let value = (u32::from(r.middlebox_id) << PATTERN_BITS) | u32::from(pid);
            let mut label = MplsLabel::new(value, false).expect("20-bit by construction");
            label.tc = RESULT_TC;
            labels.push(label);
        }
    }
    Some(labels)
}

/// Decodes result labels back into per-middlebox reports (skipping
/// routing labels, i.e. those without [`RESULT_TC`]). Positions are
/// [`TAG_POSITION_UNKNOWN`].
pub fn decode_matches(labels: &[MplsLabel]) -> Vec<MiddleboxReport> {
    let mut by_mb: std::collections::BTreeMap<u16, Vec<MatchRecord>> =
        std::collections::BTreeMap::new();
    for l in labels {
        if l.tc != RESULT_TC {
            continue;
        }
        let mb = (l.label >> PATTERN_BITS) as u16;
        let pid = (l.label & ((1 << PATTERN_BITS) - 1)) as u16;
        by_mb.entry(mb).or_default().push(MatchRecord::Single {
            pattern_id: pid,
            position: TAG_POSITION_UNKNOWN,
        });
    }
    by_mb
        .into_iter()
        .map(|(middlebox_id, records)| MiddleboxReport {
            middlebox_id,
            records,
        })
        .collect()
}

/// Strips result labels from a stack, leaving routing labels untouched —
/// the job of the last middlebox on the chain.
pub fn strip_result_labels(stack: &mut Vec<MplsLabel>) -> usize {
    let before = stack.len();
    stack.retain(|l| l.tc != RESULT_TC);
    before - stack.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(mb: u16, pids: &[u16]) -> MiddleboxReport {
        MiddleboxReport {
            middlebox_id: mb,
            records: pids
                .iter()
                .map(|&p| MatchRecord::Single {
                    pattern_id: p,
                    position: 42,
                })
                .collect(),
        }
    }

    #[test]
    fn encode_decode_round_trips_pattern_ids() {
        let reports = vec![report(1, &[7, 9]), report(3, &[7])];
        let labels = encode_matches(&reports).unwrap();
        assert_eq!(labels.len(), 3);
        assert!(labels.iter().all(|l| l.tc == RESULT_TC));
        let decoded = decode_matches(&labels);
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].middlebox_id, 1);
        let pids: Vec<u16> = decoded[0].records.iter().map(|r| r.pattern_id()).collect();
        assert_eq!(pids, vec![7, 9]);
        // Positions are lost by design.
        assert!(decoded[0]
            .records
            .iter()
            .all(|r| matches!(r, MatchRecord::Single { position, .. } if *position == TAG_POSITION_UNKNOWN)));
    }

    #[test]
    fn occurrences_collapse_to_one_label() {
        let r = MiddleboxReport {
            middlebox_id: 2,
            records: vec![
                MatchRecord::Single {
                    pattern_id: 5,
                    position: 1,
                },
                MatchRecord::Single {
                    pattern_id: 5,
                    position: 9,
                },
                MatchRecord::Range {
                    pattern_id: 5,
                    start: 20,
                    count: 10,
                },
            ],
        };
        assert_eq!(encode_matches(&[r]).unwrap().len(), 1);
    }

    #[test]
    fn too_many_matches_fall_back() {
        let r = report(1, &(0..9).collect::<Vec<u16>>());
        assert!(encode_matches(&[r]).is_none());
    }

    #[test]
    fn oversized_ids_fall_back() {
        assert!(encode_matches(&[report(64, &[1])]).is_none());
        assert!(encode_matches(&[report(1, &[1 << 14])]).is_none());
    }

    #[test]
    fn routing_labels_are_preserved_and_skipped() {
        let mut stack = encode_matches(&[report(1, &[2])]).unwrap();
        let routing = MplsLabel::new(0xbeef, false).unwrap();
        stack.insert(0, routing);
        assert_eq!(decode_matches(&stack).len(), 1);
        assert_eq!(strip_result_labels(&mut stack), 1);
        assert_eq!(stack, vec![routing]);
    }

    #[test]
    fn empty_reports_encode_to_no_labels() {
        assert_eq!(encode_matches(&[]).unwrap(), Vec::new());
        assert!(decode_matches(&[]).is_empty());
    }
}
