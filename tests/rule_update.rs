//! Live rule updates: the hitless hot-swap acceptance scenario.
//!
//! A fleet serves one IDS chain while the rule set moves underneath it:
//! a pattern is added, the update rolls out canary-first, and the swap
//! must be *hitless* — zero packets dropped, patterns present in both
//! generations matching byte-identically across the boundary, the new
//! pattern matching only after the swap and a removed pattern never
//! matching after its removal commits. The packet path never blocks on
//! recompilation: the only pause is the drain-barrier engine exchange,
//! which stays far below any compile time.
//!
//! The chaos scenario (satellite: `corrupt-rule-update`) garbles an
//! update artifact in transit: checksum validation must reject it before
//! compilation, the fleet must keep serving the previous generation, and
//! the rollback must land in the fault log.

use dpi_service::ac::MiddleboxId;
use dpi_service::core::chaos::FaultPlan;
use dpi_service::core::RuleSpec;
use dpi_service::middlebox::ids;
use dpi_service::packet::ipv4::IpProtocol;
use dpi_service::packet::packet::flow;
use dpi_service::packet::{FlowKey, MacAddr, Packet};
use dpi_service::{SystemBuilder, SystemHandle};
use std::time::Duration;

const IDS_ID: MiddleboxId = MiddleboxId(1);
const SEED: u64 = 11;

/// CI's chaos job sweeps seeds via `DPI_CHAOS_SEED`; local runs use the
/// fixed default. The corrupt-update fault is ordinal-scripted (the
/// seed only feeds the plan's RNG), so every assertion below is
/// seed-independent.
fn seed() -> u64 {
    std::env::var("DPI_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SEED)
}

/// When `DPI_CHAOS_LOG_DIR` is set (the CI chaos job), archive the run's
/// fault log there so failures are diagnosable from artifacts alone.
fn archive_fault_log(sys: &SystemHandle, name: &str) {
    if let Ok(dir) = std::env::var("DPI_CHAOS_LOG_DIR") {
        let _ = std::fs::create_dir_all(&dir);
        let path = format!("{dir}/{name}-seed-{}.log", seed());
        let _ = std::fs::write(path, sys.fault_log().join("\n"));
    }
}

fn flow_n(n: u16) -> FlowKey {
    flow([10, 0, 0, 1], 1000 + n, [10, 0, 0, 2], 80, IpProtocol::Tcp)
}

fn build(instances: usize, plan: Option<FaultPlan>) -> SystemHandle {
    let mut b = SystemBuilder::new()
        .with_middlebox(ids(
            IDS_ID,
            &[b"stable-sig".to_vec(), b"doomed-sig".to_vec()],
        ))
        .with_chain(&[IDS_ID])
        .with_dpi_instances(instances)
        .with_dpi_workers(2);
    if let Some(plan) = plan {
        b = b.with_chaos(plan);
    }
    b.build().expect("system builds")
}

fn tagged_packet(sys: &SystemHandle, f: FlowKey, seq: u32, payload: &[u8]) -> Packet {
    let mut p = Packet::tcp(
        MacAddr::local(1),
        MacAddr::local(2),
        f,
        seq,
        payload.to_vec(),
    );
    p.push_chain_tag(sys.chain_ids[0]).unwrap();
    p
}

#[test]
fn hot_swap_is_hitless_and_generation_attributable() {
    let mut sys = build(2, None);
    assert_eq!(sys.rule_generation(), 0);

    // Generation 0 serves: the stable pattern matches, the future one
    // does not.
    sys.send(flow_n(0), 0, b"with stable-sig inside");
    sys.send(flow_n(1), 0, b"with added-sig inside");
    assert_eq!(sys.stats_of(IDS_ID).unwrap().matches, 1);
    assert_eq!(sys.sink.count(), 2);

    // The batch pipeline stamps generation 0 on its results.
    let mut batch = vec![tagged_packet(&sys, flow_n(50), 0, b"xx stable-sig xx")];
    let results = sys.inspect_batch(&mut batch);
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].generation, 0);

    // A new pattern arrives at the controller and rolls out.
    sys.controller
        .add_pattern(IDS_ID, 7, &RuleSpec::exact(b"added-sig".to_vec()))
        .unwrap();
    let outcome = sys.apply_update().unwrap();
    assert!(
        outcome.committed,
        "update must commit: {:?}",
        outcome.failure
    );
    assert_eq!(outcome.generation, 1);
    assert!(outcome.transfer_bytes > 0);
    // The packet path never blocks on recompilation — the only pause is
    // the drain-barrier engine exchange.
    assert!(
        outcome.swap_pause < Duration::from_millis(250),
        "swap pause {:?} is not a pointer exchange",
        outcome.swap_pause
    );
    assert_eq!(sys.rule_generation(), 1);
    assert_eq!(sys.generation_of_version(sys.controller.version()), Some(1));

    // Every fleet instance acked the generation; none is pending.
    for status in sys.controller.instances() {
        assert_eq!(status.generation, 1);
        assert!(!status.pending_update);
    }

    // Generation 1 serves: the stable pattern still matches (same flow
    // as before the swap — state re-anchors, no false match, no crash),
    // and the new pattern matches now.
    sys.send(flow_n(0), 100, b"again stable-sig here");
    sys.send(flow_n(1), 100, b"again added-sig here");
    assert_eq!(sys.stats_of(IDS_ID).unwrap().matches, 3);
    // Zero packet drops across the swap: everything sent was delivered.
    assert_eq!(sys.sink.count(), 4);

    // Batch results are stamped with the new generation — every match
    // attributable to exactly one rule generation.
    let mut batch = vec![
        tagged_packet(&sys, flow_n(51), 0, b"xx stable-sig xx"),
        tagged_packet(&sys, flow_n(52), 0, b"xx added-sig xx"),
    ];
    let results = sys.inspect_batch(&mut batch);
    assert_eq!(results.len(), 2);
    for r in &results {
        assert_eq!(r.generation, 1);
        assert_eq!(r.reports.len(), 1);
    }
}

#[test]
fn removed_pattern_never_matches_after_the_swap() {
    let mut sys = build(2, None);
    sys.send(flow_n(0), 0, b"pre-removal doomed-sig hit");
    assert_eq!(sys.stats_of(IDS_ID).unwrap().matches, 1);

    sys.controller.remove_pattern(IDS_ID, 1).unwrap();
    // The mutation flags every instance pending until the rollout lands.
    for status in sys.controller.instances() {
        assert!(status.pending_update);
    }
    let outcome = sys.apply_update().unwrap();
    assert!(outcome.committed);

    // The removed pattern is gone everywhere, the stable one remains.
    sys.send(flow_n(2), 0, b"post-removal doomed-sig miss");
    sys.send(flow_n(3), 0, b"post-removal stable-sig hit");
    assert_eq!(sys.stats_of(IDS_ID).unwrap().matches, 2);
    assert_eq!(sys.sink.count(), 3, "no packet dropped over the update");
    // Fig. 11: the controller logged the removal's (negative) delta.
    let deltas = sys.controller.pattern_transfer_deltas();
    assert!(deltas.last().unwrap().delta_bytes < 0);
}

#[test]
fn corrupt_update_is_rejected_and_rolled_back() {
    // The chaos plan garbles the first rule update in transit.
    let mut sys = build(2, Some(FaultPlan::new(seed()).corrupt_rule_update(0)));
    sys.send(flow_n(0), 0, b"gen0 stable-sig traffic");
    assert_eq!(sys.stats_of(IDS_ID).unwrap().matches, 1);

    sys.controller
        .add_pattern(IDS_ID, 7, &RuleSpec::exact(b"added-sig".to_vec()))
        .unwrap();
    let outcome = sys.apply_update().unwrap();
    assert!(!outcome.committed, "corrupt artifact must not commit");
    let failure = outcome.failure.expect("a failure reason is reported");
    assert!(failure.contains("checksum"), "failure: {failure}");

    // The fleet keeps serving the previous generation: the old pattern
    // matches, the new one does not, nothing crashed.
    assert_eq!(sys.rule_generation(), 0);
    sys.send(flow_n(1), 0, b"still stable-sig serving");
    sys.send(flow_n(2), 0, b"not yet added-sig serving");
    assert_eq!(sys.stats_of(IDS_ID).unwrap().matches, 2);
    assert_eq!(sys.sink.count(), 3);
    for status in sys.controller.instances() {
        assert_eq!(status.generation, 0);
        assert!(status.pending_update, "instances stay flagged stale");
    }

    // The corruption and the rollback are both in the fault log.
    let log = sys.fault_log();
    assert!(
        log.iter().any(|e| e.contains("rule update 0 corrupted")),
        "log: {log:?}"
    );
    assert!(
        log.iter()
            .any(|e| e.contains("rolled back to generation 0")),
        "log: {log:?}"
    );

    // The retry (update ordinal 1, not corrupted) goes through.
    let outcome = sys.apply_update().unwrap();
    assert!(outcome.committed);
    assert_eq!(outcome.generation, 2, "generation numbers are not reused");
    sys.send(flow_n(3), 0, b"finally added-sig matches");
    assert_eq!(sys.stats_of(IDS_ID).unwrap().matches, 3);
    archive_fault_log(&sys, "corrupt-rule-update");
}

/// The CI chaos sweep's rule-update-under-load scenario: traffic streams
/// continuously while a corrupt update is rejected and its retry
/// commits. Every packet sent must reach the sink (updates never drop
/// traffic), the stable pattern must match in every phase, and the
/// rejected generation must never serve a packet.
#[test]
fn rule_update_under_load_survives_chaos() {
    let mut sys = build(2, Some(FaultPlan::new(seed()).corrupt_rule_update(0)));
    let mut sent = 0usize;
    let stream = |sys: &mut SystemHandle, sent: &mut usize, phase: u16| {
        for i in 0..8u16 {
            let f = flow_n(phase * 100 + i);
            sys.send(f, 0, b"load with stable-sig in it");
            *sent += 1;
        }
    };

    stream(&mut sys, &mut sent, 0);

    // Corrupt rollout under load: rejected, fleet keeps serving gen 0.
    sys.controller
        .add_pattern(IDS_ID, 7, &RuleSpec::exact(b"added-sig".to_vec()))
        .unwrap();
    assert!(!sys.apply_update().unwrap().committed);
    assert_eq!(sys.rule_generation(), 0);
    stream(&mut sys, &mut sent, 1);

    // Retry commits; traffic keeps matching on the new generation.
    assert!(sys.apply_update().unwrap().committed);
    stream(&mut sys, &mut sent, 2);

    assert_eq!(sys.sink.count(), sent, "updates never drop traffic");
    assert_eq!(
        sys.stats_of(IDS_ID).unwrap().matches,
        sent as u64,
        "the stable pattern matches in every phase"
    );
    archive_fault_log(&sys, "rule-update-under-load");
}

/// Tenant-scoped canary rollout (DESIGN.md §16): tenant A's generation
/// advances — and rolls back under a corrupt artifact — while tenant B's
/// results stay stamped with B's committed generation throughout.
#[test]
fn tenant_scoped_update_leaves_other_tenants_stamps_alone() {
    use dpi_service::core::TenantId;
    const A_ID: MiddleboxId = MiddleboxId(1);
    const B_ID: MiddleboxId = MiddleboxId(2);
    let (a, b) = (TenantId(1), TenantId(2));
    // The chaos plan garbles update ordinal 1 (the second prepare).
    let mut sys = SystemBuilder::new()
        .with_middlebox(ids(A_ID, &[b"alpha-sig".to_vec()]).owned_by(a))
        .with_middlebox(ids(B_ID, &[b"bravo-sig".to_vec()]).owned_by(b))
        .with_chain(&[A_ID])
        .with_chain(&[B_ID])
        .with_dpi_workers(2)
        .with_chaos(FaultPlan::new(seed()).corrupt_rule_update(1))
        .build()
        .expect("system builds");

    let tagged = |sys: &SystemHandle, chain: usize, n: u16, payload: &[u8]| {
        let mut p = Packet::tcp(
            MacAddr::local(1),
            MacAddr::local(2),
            flow_n(n),
            0,
            payload.to_vec(),
        );
        p.push_chain_tag(sys.chain_ids[chain]).unwrap();
        p
    };
    let stamps = |sys: &mut SystemHandle, n: u16| -> (u32, u32) {
        let mut batch = vec![
            tagged(sys, 0, n, b"xx alpha-sig xx"),
            tagged(sys, 1, n + 1, b"xx bravo-sig xx"),
        ];
        let r = sys.inspect_batch(&mut batch);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].reports.len(), 1, "tenant A's pattern matches");
        assert_eq!(r[1].reports.len(), 1, "tenant B's pattern matches");
        (r[0].generation, r[1].generation)
    };

    // Baseline: both tenants stamp generation 0.
    assert_eq!(stamps(&mut sys, 100), (0, 0));

    // Tenant A's rules change; only A's stamp may move.
    sys.controller
        .add_pattern(A_ID, 7, &RuleSpec::exact(b"alpha2-sig".to_vec()))
        .unwrap();
    let outcome = sys.apply_update_for_tenant(a).unwrap();
    assert!(
        outcome.committed,
        "tenant update commits: {:?}",
        outcome.failure
    );
    assert_eq!(sys.tenant_rule_generation(a), outcome.generation);
    assert_eq!(sys.tenant_rule_generation(b), 0);
    assert_eq!(stamps(&mut sys, 110), (outcome.generation, 0));
    // The new pattern serves on A's chain.
    let r = sys.inspect_batch(&mut [tagged(&sys, 0, 120, b"xx alpha2-sig xx")]);
    assert_eq!(r[0].reports.len(), 1);

    // A second tenant-A update is corrupted in transit: checksum
    // validation rejects it at the canary, the rollback re-ships the
    // committed artifact, and *both* tenants' stamps are exactly as
    // before the attempt.
    sys.controller
        .add_pattern(A_ID, 8, &RuleSpec::exact(b"alpha3-sig".to_vec()))
        .unwrap();
    let failed = sys.apply_update_for_tenant(a).unwrap();
    assert!(!failed.committed, "corrupt artifact must not commit");
    assert!(failed.failure.unwrap().contains("checksum"));
    assert_eq!(sys.tenant_rule_generation(a), outcome.generation);
    assert_eq!(sys.tenant_rule_generation(b), 0);
    assert_eq!(stamps(&mut sys, 130), (outcome.generation, 0));

    // A later fleet-wide update moves every tenant's stamp together.
    let fleet = sys.apply_update().unwrap();
    assert!(fleet.committed);
    assert_eq!(sys.tenant_rule_generation(a), fleet.generation);
    assert_eq!(sys.tenant_rule_generation(b), fleet.generation);
    assert_eq!(stamps(&mut sys, 140), (fleet.generation, fleet.generation));
    archive_fault_log(&sys, "tenant-scoped-update");
}

#[test]
fn successive_updates_advance_generations_monotonically() {
    let mut sys = build(1, None);
    for (i, (rule_id, sig)) in [(10u16, b"sig-aa".to_vec()), (11, b"sig-bb".to_vec())]
        .into_iter()
        .enumerate()
    {
        sys.controller
            .add_pattern(IDS_ID, rule_id, &RuleSpec::exact(sig))
            .unwrap();
        let outcome = sys.apply_update().unwrap();
        assert!(outcome.committed);
        assert_eq!(outcome.generation, i as u32 + 1);
    }
    assert_eq!(sys.rule_generation(), 2);
    sys.send(flow_n(0), 0, b"sig-aa and sig-bb and stable-sig");
    assert_eq!(sys.stats_of(IDS_ID).unwrap().matches, 3);
}
