//! Edge-case regression suite for the regex engine: constructions that
//! are easy to get subtly wrong in hand-written automata engines.

use dpi_regex::dfa::LazyDfa;
use dpi_regex::nfa::Nfa;
use dpi_regex::{parser, Regex};

fn matches(pattern: &str, haystack: &[u8]) -> bool {
    let re = Regex::new(pattern).unwrap();
    // NFA and lazy DFA must agree on every call in this suite.
    let nfa = Nfa::compile(&parser::parse(pattern).unwrap());
    let mut dfa = LazyDfa::new(&nfa);
    let a = re.is_match(haystack);
    let b = dfa.is_match(haystack);
    assert_eq!(a, b, "engines disagree on {pattern:?} / {haystack:?}");
    a
}

#[test]
fn nested_groups_and_repeats() {
    assert!(matches("(a(bc)*d)+", b"xx abcbcd abd yy"));
    assert!(matches("(a(bc)*d)+", b"ad"));
    assert!(!matches("^(a(bc)*d)+$", b"abcbc"));
    assert!(matches("((a|b)(c|d))+", b"zz acbd zz"));
}

#[test]
fn alternation_inside_repetition() {
    assert!(matches("(ab|cd){2}", b"abcd"));
    assert!(matches("(ab|cd){2}", b"cdab"));
    assert!(!matches("^(ab|cd){2}$", b"abc"));
    assert!(matches("(x|yy)+z", b"xyyxz"));
}

#[test]
fn counted_repetition_boundaries() {
    assert!(!matches("^a{3,5}$", b"aa"));
    assert!(matches("^a{3,5}$", b"aaa"));
    assert!(matches("^a{3,5}$", b"aaaaa"));
    assert!(!matches("^a{3,5}$", b"aaaaaa"));
    // {0,n} includes the empty match.
    assert!(matches("^a{0,2}$", b""));
    assert!(matches("^(ab){1,2}c$", b"ababc"));
}

#[test]
fn classes_with_metacharacters_and_ranges() {
    assert!(matches(r"[.+*?]", b"literal + inside class"));
    assert!(matches(r"[a\-z]", b"hy-phen")); // escaped dash is literal
    assert!(matches(r"[]x]", b"]")); // leading ] is literal
    assert!(!matches(r"[^\x00-\x7f]", b"pure ascii"));
    assert!(matches(r"[^\x00-\x7f]", &[0xc3, 0xa9])); // high bytes
}

#[test]
fn dot_and_dotall_semantics() {
    assert!(!matches("a.b", b"a\nb"));
    assert!(matches("(?s)a.b", b"a\nb"));
    assert!(matches("a.b", b"a\tb"));
}

#[test]
fn anchors_in_alternations() {
    assert!(matches("^start|end$", b"the end"));
    assert!(matches("^start|end$", b"start of it"));
    assert!(!matches("^start|end$", b"restarted ending"));
    // Empty-string pattern with anchors.
    assert!(matches("^$", b""));
    assert!(!matches("^$", b"x"));
}

#[test]
fn binary_bytes_via_hex_escapes() {
    assert!(matches(r"\x00\x01\x02", &[9, 0, 1, 2, 9]));
    assert!(matches(r"\xff+", &[0xff, 0xff]));
    assert!(!matches(r"\xff{3}", &[0xff, 0xff]));
}

#[test]
fn case_insensitivity_is_ascii_only() {
    assert!(matches("(?i)rust", b"RuSt"));
    assert!(matches("(?i)[a-z]+!", b"ABC!"));
    // Digits unaffected by (?i): 'q' does not case-fold to '7'.
    assert!(matches("(?i)7seven", b"x7SEVENx"));
    assert!(!matches("(?i)7seven", b"xqSEVENx"));
}

#[test]
fn long_input_linear_behaviour() {
    // A pattern with heavy nondeterminism over a long input must finish
    // fast (automata engines are immune to catastrophic backtracking).
    let pattern = "(a|ab|aab)*c";
    let mut input = vec![b'a'; 20_000];
    input.push(b'b');
    let t0 = std::time::Instant::now();
    let _ = matches(pattern, &input);
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "matching took {:?}",
        t0.elapsed()
    );
}

#[test]
fn anchor_extraction_on_compound_rules() {
    let re = Regex::new(r"(GET|POST) /admin/[a-z]+\.php\?cmd=\w+").unwrap();
    // The alternation kills the method anchor; "/admin/" survives.
    let anchors: Vec<String> = re
        .anchors()
        .iter()
        .map(|a| String::from_utf8_lossy(a).into_owned())
        .collect();
    assert!(anchors.contains(&" /admin/".to_string()), "{anchors:?}");
}
