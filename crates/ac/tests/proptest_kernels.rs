//! Kernel-equivalence properties (DESIGN.md §12): every [`ScanKernel`]
//! — naive, full, compact, prefiltered — must produce the exact same
//! match stream and resume state as the full-table reference on
//! arbitrary pattern sets and payloads, including payloads that straddle
//! the prefilter's 16-byte SWAR lanes, both stride parities of the
//! 2-byte root DFA, and scans chopped at arbitrary chunk boundaries.
//!
//! Depth-sample contract: the `total` sample count is grid-exact for
//! every kernel. `deep` is exact for the byte-at-a-time kernels; the
//! prefiltered kernel may only *undercount* deep samples, inside regions
//! it proved match-free (those sample as shallow by design).

use dpi_ac::{
    Automaton, CombinedAcBuilder, DepthSamples, KernelKind, MiddleboxId, PatternSet, ScanKernel,
    StateId,
};
use proptest::prelude::*;

/// Pattern alphabet mixing rare bytes (which let the SWAR pair filter
/// compile) with common ones (which push it past the selectivity gate),
/// so both the filtered and fallback paths of the prefiltered kernel are
/// exercised. Single-byte patterns hit the wildcard pair rows.
fn pattern_sets() -> impl Strategy<Value = Vec<PatternSet>> {
    prop::collection::vec(
        prop::collection::vec(
            prop::collection::vec(
                prop::sample::select(vec![b'q', b'z', b'|', b'%', b'a', b'e', b' ']),
                1..10,
            ),
            1..6,
        ),
        1..3,
    )
    .prop_map(|sets| {
        sets.into_iter()
            .enumerate()
            .map(|(i, patterns)| PatternSet::new(MiddleboxId(i as u16), patterns))
            .collect()
    })
}

/// Payloads long enough to span many SWAR lanes, over the pattern
/// alphabet plus quiet filler so skip runs actually occur.
fn input() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop::sample::select(vec![b'q', b'z', b'|', b'%', b'a', b'e', b' ', b'x', b't']),
        0..400,
    )
}

fn build(sets: &[PatternSet]) -> CombinedAcBuilder {
    let mut b = CombinedAcBuilder::new();
    for s in sets {
        b.add_set(s.clone()).unwrap();
    }
    b
}

/// One `scan_sampled` run reduced to comparable facts.
fn run(
    ac: &dyn ScanKernel,
    start: StateId,
    data: &[u8],
    sample_every: usize,
    deep_depth: u16,
) -> (Vec<(usize, StateId)>, StateId, DepthSamples) {
    let mut events = Vec::new();
    let mut samples = DepthSamples::default();
    let end = ac.scan_sampled(
        start,
        data,
        sample_every,
        deep_depth,
        &mut samples,
        &mut |p, s| events.push((p, s)),
    );
    (events, end, samples)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline invariant: all four kernels report the same accepting
    /// states at the same positions and return the same resume state.
    #[test]
    fn every_kernel_matches_the_full_reference(
        sets in pattern_sets(),
        data in input(),
        sample_every in 1usize..40,
        deep_depth in 1u16..6,
    ) {
        let builder = build(&sets);
        let reference = builder.build_full();
        let (want, want_end, want_samples) =
            run(&reference, reference.start(), &data, sample_every, deep_depth);

        for kind in KernelKind::ALL {
            let ac = builder.build_kernel(kind);
            let (got, end, samples) = run(&ac, ac.start(), &data, sample_every, deep_depth);
            prop_assert_eq!(&got, &want, "kernel {} match stream diverged", kind);
            prop_assert_eq!(end, want_end, "kernel {} resume state diverged", kind);
            prop_assert_eq!(
                samples.total, want_samples.total,
                "kernel {} sample grid diverged", kind
            );
            if kind == KernelKind::Prefiltered {
                prop_assert!(
                    samples.deep <= want_samples.deep,
                    "prefiltered kernel overcounted deep samples: {} > {}",
                    samples.deep, want_samples.deep
                );
            } else {
                prop_assert_eq!(samples.deep, want_samples.deep, "kernel {}", kind);
            }
        }
    }

    /// Chunked stateful scans (§5.2): cutting the payload at any byte and
    /// resuming from the returned state must replay the identical match
    /// stream for every kernel — chunk edges land inside SWAR lanes,
    /// inside stride pairs, and inside in-progress matches.
    #[test]
    fn chunked_scans_resume_exactly(
        sets in pattern_sets(),
        data in input(),
        cut in 0usize..400,
    ) {
        let builder = build(&sets);
        let reference = builder.build_full();
        let cut = cut.min(data.len());
        let (a, b) = data.split_at(cut);

        let mut want = Vec::new();
        let want_end = reference.scan(reference.start(), &data, |p, s| want.push((p, s)));

        for kind in KernelKind::ALL {
            let ac = builder.build_kernel(kind);
            let mut got = Vec::new();
            let mut samples = DepthSamples::default();
            let mid = ac.scan_sampled(ac.start(), a, 1, u16::MAX, &mut samples, &mut |p, s| {
                got.push((p, s))
            });
            let end = ac.scan_sampled(mid, b, 1, u16::MAX, &mut samples, &mut |p, s| {
                got.push((p + cut, s))
            });
            prop_assert_eq!(&got, &want, "kernel {} diverged at cut {}", kind, cut);
            prop_assert_eq!(end, want_end);
        }
    }

    /// A planted literal is found at every alignment: sweeping the
    /// leading pad walks the pattern across 16-byte lane boundaries (SWAR
    /// straddle) and across both stride parities of the 2-byte root DFA.
    #[test]
    fn planted_patterns_survive_every_alignment(
        pad in 0usize..48,
        tail in 0usize..24,
        which in 0usize..3,
    ) {
        let pats: Vec<Vec<u8>> = vec![
            b"evil|sig".to_vec(),
            b"q%z".to_vec(),
            b"zz".to_vec(),
        ];
        let mut b = CombinedAcBuilder::new();
        b.add_set(PatternSet::new(MiddleboxId(0), pats.clone())).unwrap();

        let mut data = vec![b'.'; pad];
        data.extend_from_slice(&pats[which]);
        data.extend(std::iter::repeat_n(b'.', tail));
        let end_pos = pad + pats[which].len() - 1;

        for kind in KernelKind::ALL {
            let ac = b.build_kernel(kind);
            let (events, _, _) = run(&ac, ac.start(), &data, 16, 4);
            prop_assert!(
                events.iter().any(|&(p, _)| p == end_pos),
                "kernel {} missed the literal planted at pad {}",
                kind, pad
            );
            prop_assert_eq!(events.len(), 1, "kernel {} fabricated a match", kind);
        }
    }
}
