//! Figure 11: "Cumulative distribution of non-empty match report size per
//! packet."
//!
//! Paper findings on the campus trace, with 6-byte encoding for both
//! single and range reports: >90% of packets have no matches at all; the
//! average non-empty report is 34 bytes; only ~1% of reports exceed 120
//! bytes.
//!
//! Here the DPI instance scans a campus-like trace (≤10% of packets carry
//! a planted pattern, matching the paper's observed density) and we
//! collect the wire size of every non-empty result packet's report
//! section.

use dpi_ac::MiddleboxId;
use dpi_core::{DpiInstance, InstanceConfig, MiddleboxProfile, RuleSpec};
use dpi_traffic::patterns::snort_like;
use dpi_traffic::trace::{TraceConfig, TraceKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut pats = snort_like(4356, 42);
    // Real signature sets contain repeated-character patterns (NOP sleds,
    // padding) — the very case the paper's range reports exist for.
    pats.push(vec![b'\x90'; 8]);
    pats.push(vec![b'A'; 8]);
    const MB: MiddleboxId = MiddleboxId(1);
    let cfg = InstanceConfig::new()
        .with_middlebox(MiddleboxProfile::stateless(MB), RuleSpec::exact_set(&pats))
        .with_chain(1, vec![MB]);
    let mut dpi = DpiInstance::new(cfg).expect("valid config");

    // Campus-like base trace (paper: >90% of packets have no matches).
    // Matched packets are bursty: an exploit payload rarely trips exactly
    // one signature — plant a geometric number of patterns, and give a
    // small fraction a long repeated-character run (NOP-sled-like), which
    // produces range reports.
    let mut trace = TraceConfig {
        kind: TraceKind::Campus,
        packets: 20_000,
        match_density: 0.0,
        seed: 11,
        ..TraceConfig::default()
    }
    .generate(&[]);
    let mut rng = StdRng::seed_from_u64(0x000f_1611);
    for payload in trace.iter_mut() {
        if !rng.gen_bool(0.08) {
            continue;
        }
        // Geometric burst: keep planting with probability 0.7 (real
        // exploit payloads trip several signatures at once).
        loop {
            let p = &pats[rng.gen_range(0..pats.len())];
            if p.len() <= payload.len() {
                let off = rng.gen_range(0..=payload.len() - p.len());
                payload[off..off + p.len()].copy_from_slice(p);
            }
            if !rng.gen_bool(0.7) {
                break;
            }
        }
        if rng.gen_bool(0.15) {
            // A NOP-sled-like run of 20–120 repeated bytes.
            let run = rng.gen_range(30..=250usize).min(payload.len());
            let off = rng.gen_range(0..=payload.len() - run);
            let c = if rng.gen_bool(0.5) { b'\x90' } else { b'A' };
            payload[off..off + run].fill(c);
        }
    }

    let mut sizes = Vec::new();
    for p in &trace {
        let out = dpi.scan_payload(1, None, p).expect("chain exists");
        if out.has_matches() {
            // Paper counts the match-report payload ("using 6 bytes per
            // match report" — we measure the actual 4/6-byte records plus
            // per-middlebox block headers).
            let report_bytes: usize = out
                .reports
                .iter()
                .map(dpi_packet::report::MiddleboxReport::wire_size)
                .sum();
            sizes.push(report_bytes);
        }
    }

    let empty = trace.len() - sizes.len();
    println!("# Figure 11 — match report size distribution\n");
    println!(
        "packets: {} total, {} with no matches ({:.1}%)",
        trace.len(),
        empty,
        100.0 * empty as f64 / trace.len() as f64
    );
    if sizes.is_empty() {
        println!("no matches generated — raise match_density");
        return;
    }
    sizes.sort_unstable();
    let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
    println!(
        "non-empty reports: {}, average size {avg:.1} bytes\n",
        sizes.len()
    );

    println!("{:>12}  {:>12}", "percentile", "report bytes");
    for pct in [10, 25, 50, 75, 90, 95, 99, 100] {
        let idx = ((sizes.len() - 1) * pct) / 100;
        println!("{:>11}%  {:>12}", pct, sizes[idx]);
    }
    let over_120 = sizes.iter().filter(|&&s| s > 120).count();
    println!(
        "\n# reports over 120 bytes: {:.1}% (paper: ~1%)",
        100.0 * over_120 as f64 / sizes.len() as f64
    );
    println!("# paper: >90% of packets empty, mean report 34 B");
}
