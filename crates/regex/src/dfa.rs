//! A bounded-memory lazy DFA over the NFA.
//!
//! Determinizes the Thompson NFA on the fly, caching subset-construction
//! states as they are visited. Gives full-speed O(1)-per-byte scanning on
//! the hot path while bounding memory: if the cache exceeds
//! [`LazyDfa::MAX_CACHED_STATES`] it is cleared and rebuilt, so a hostile
//! input can slow the engine down but never exhaust memory — the DFA
//! "state explosion" problem §3 mentions is contained by construction.

use crate::nfa::{Nfa, State};
use std::borrow::Borrow;
use std::collections::HashMap;

/// The lazy DFA, generic over NFA ownership: `LazyDfa<&Nfa>` borrows
/// (scratch usage), `LazyDfa<Nfa>` owns (long-lived engines such as the
/// DPI instance's always-on parallel regex path). The cache grows with
/// use.
#[derive(Debug)]
pub struct LazyDfa<N: Borrow<Nfa>> {
    nfa: N,
    /// Sorted NFA-state set → DFA state id.
    cache: HashMap<Vec<u32>, u32>,
    /// The NFA set of each DFA state.
    sets: Vec<Vec<u32>>,
    /// 256 transitions per DFA state; `UNKNOWN` = not yet computed.
    transitions: Vec<u32>,
    /// Whether each DFA state contains an unconditional match.
    matching: Vec<bool>,
    /// Whether each DFA state matches once the input ends (via `$`).
    matching_at_end: Vec<bool>,
    start: u32,
}

const UNKNOWN: u32 = u32::MAX;
/// The all-transitions-dead state.
const DEAD: u32 = 0;

impl<N: Borrow<Nfa>> LazyDfa<N> {
    /// Cache bound; exceeding it flushes the cache.
    pub const MAX_CACHED_STATES: usize = 8192;

    /// Creates a lazy DFA for `nfa`.
    pub fn new(nfa: N) -> LazyDfa<N> {
        let mut dfa = LazyDfa {
            nfa,
            cache: HashMap::new(),
            sets: Vec::new(),
            transitions: Vec::new(),
            matching: Vec::new(),
            matching_at_end: Vec::new(),
            start: 0,
        };
        dfa.reset();
        dfa
    }

    fn reset(&mut self) {
        self.cache.clear();
        self.sets.clear();
        self.transitions.clear();
        self.matching.clear();
        self.matching_at_end.clear();
        // DFA state 0 is the dead state (empty NFA set).
        self.intern(Vec::new());
        // The start state: epsilon closure of the NFA start at position 0.
        let set = self.closure_of_start(true);
        self.start = self.intern(set);
    }

    /// Epsilon closure of the NFA start state.
    fn closure_of_start(&self, at_start: bool) -> Vec<u32> {
        let nfa = self.nfa.borrow();
        let mut out = Vec::new();
        let mut seen = vec![false; nfa.len()];
        closure(nfa, nfa.start_state(), at_start, &mut seen, &mut out);
        out.sort_unstable();
        out
    }

    fn intern(&mut self, set: Vec<u32>) -> u32 {
        if let Some(&id) = self.cache.get(&set) {
            return id;
        }
        let id = self.sets.len() as u32;
        let nfa = self.nfa.borrow();
        let states = nfa.states();
        self.matching.push(
            set.iter()
                .any(|&s| matches!(states[s as usize], State::Match)),
        );
        self.matching_at_end.push(end_closure_matches(nfa, &set));
        self.cache.insert(set.clone(), id);
        self.sets.push(set);
        self.transitions.extend([UNKNOWN; 256]);
        id
    }

    fn compute_transition(&mut self, from: u32, byte: u8) -> u32 {
        let nfa = self.nfa.borrow();
        let mut seen = vec![false; nfa.len()];
        let mut out = Vec::new();
        let states = nfa.states();
        for &s in &self.sets[from as usize] {
            if let State::Byte { set, next } = &states[s as usize] {
                if set.contains(byte) {
                    closure(nfa, *next, false, &mut seen, &mut out);
                }
            }
        }
        // Unanchored search folds the restart into every transition.
        if !nfa.anchored_start() {
            closure(nfa, nfa.start_state(), false, &mut seen, &mut out);
        }
        out.sort_unstable();

        if self.sets.len() >= Self::MAX_CACHED_STATES {
            // Flush and re-intern only what this transition needs.
            self.reset();
        }
        let to = self.intern(out);
        // `from` may have been flushed by reset(); guard against stale ids.
        if (from as usize) < self.sets.len() {
            self.transitions[from as usize * 256 + usize::from(byte)] = to;
        }
        to
    }

    /// Whether any match exists in `haystack`. Equivalent to
    /// [`Nfa::is_match`] — the property tests check that.
    pub fn is_match(&mut self, haystack: &[u8]) -> bool {
        self.find_end(haystack).is_some()
    }

    /// The exclusive end offset of the earliest-completing match.
    pub fn find_end(&mut self, haystack: &[u8]) -> Option<usize> {
        let mut s = self.start;
        if self.matching[s as usize] {
            return Some(0);
        }
        for (i, &b) in haystack.iter().enumerate() {
            let cached = self.transitions[s as usize * 256 + usize::from(b)];
            s = if cached == UNKNOWN {
                self.compute_transition(s, b)
            } else {
                cached
            };
            if self.matching[s as usize] {
                return Some(i + 1);
            }
            if s == DEAD {
                return None;
            }
        }
        if self.matching_at_end[s as usize] {
            return Some(haystack.len());
        }
        None
    }

    /// Number of cached DFA states (diagnostics).
    pub fn cached_states(&self) -> usize {
        self.sets.len()
    }
}

/// Epsilon closure helper shared with the DFA: collects Byte/Match states.
fn closure(nfa: &Nfa, state: u32, at_start: bool, seen: &mut [bool], out: &mut Vec<u32>) {
    let states = nfa.states();
    let mut stack = vec![state];
    while let Some(s) = stack.pop() {
        if seen[s as usize] {
            continue;
        }
        seen[s as usize] = true;
        match &states[s as usize] {
            State::Split(a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            State::AssertStart(n) => {
                if at_start {
                    stack.push(*n);
                }
            }
            State::AssertEnd(_) => {
                // End assertions are resolved by `end_closure_matches`.
                out.push(s);
            }
            State::Byte { .. } | State::Match => out.push(s),
        }
    }
}

/// Whether `set`, at end of input, can epsilon-reach a match (resolving
/// `$` assertions positively).
fn end_closure_matches(nfa: &Nfa, set: &[u32]) -> bool {
    let states = nfa.states();
    let mut seen = vec![false; nfa.len()];
    let mut stack: Vec<u32> = set.to_vec();
    while let Some(s) = stack.pop() {
        if seen[s as usize] {
            continue;
        }
        seen[s as usize] = true;
        match &states[s as usize] {
            State::Match => return true,
            State::AssertEnd(n) => stack.push(*n),
            State::Split(a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(pattern: &str, haystack: &[u8]) {
        let nfa = Nfa::compile(&parse(pattern).unwrap());
        let mut dfa = LazyDfa::new(&nfa);
        assert_eq!(
            dfa.find_end(haystack),
            nfa.find_end(haystack),
            "pattern {pattern:?} on {haystack:?}"
        );
    }

    #[test]
    fn dfa_agrees_with_nfa_on_basics() {
        for (p, h) in [
            ("abc", b"xxabcxx".as_slice()),
            ("abc", b"abd".as_slice()),
            ("a+b", b"caaab".as_slice()),
            ("^ab", b"xab".as_slice()),
            ("^ab", b"abx".as_slice()),
            ("ab$", b"ab".as_slice()),
            ("ab$", b"abx".as_slice()),
            ("a|b|c", b"zzzb".as_slice()),
            (r"\d{3}", b"ab12cd345".as_slice()),
            ("", b"anything".as_slice()),
        ] {
            check(p, h);
        }
    }

    #[test]
    fn dfa_handles_end_anchor_at_eoi_only() {
        let nfa = Nfa::compile(&parse("end$").unwrap());
        let mut dfa = LazyDfa::new(&nfa);
        assert_eq!(dfa.find_end(b"the end"), Some(7));
        assert_eq!(dfa.find_end(b"the end."), None);
    }

    #[test]
    fn cache_is_reused_across_calls() {
        let nfa = Nfa::compile(&parse("needle").unwrap());
        let mut dfa = LazyDfa::new(&nfa);
        assert!(dfa.is_match(b"find the needle here"));
        let after_first = dfa.cached_states();
        assert!(dfa.is_match(b"another needle haystack"));
        // Mostly the same byte classes: the cache barely grows.
        assert!(dfa.cached_states() <= after_first + 2);
    }

    #[test]
    fn dead_state_short_circuits() {
        let nfa = Nfa::compile(&parse("^never").unwrap());
        let mut dfa = LazyDfa::new(&nfa);
        assert!(!dfa.is_match(&[b'x'; 10_000]));
    }
}
