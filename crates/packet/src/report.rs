//! Match-report encoding and the dedicated *result packet*.
//!
//! §6.5 of the paper: "A single match can be reported with up to 4 bytes.
//! Occasionally, when a pattern consists of the same character one or more
//! times, and this character appears in a packet multiple times
//! sequentially, multiple matches of the same pattern (or set of patterns)
//! should be reported. For these cases we also allow reporting ranges of
//! matches, with a given starting position and length. Such ranges can be
//! reported with up to 6 bytes."
//!
//! The wire encoding used here:
//!
//! * **Single** (4 bytes): `[0 | pattern_id:15][position:16]`
//! * **Range** (6 bytes): `[1 | pattern_id:15][start:16][count:16]`
//!
//! where `position` is the 0-based offset of the byte at which the match
//! *ends* within the scanned packet (the `cnt` value of §5.2). For stateful
//! middleboxes the result packet carries a single 64-bit `flow_offset`
//! (`offset` of §5.2), so the middlebox reconstructs `cnt + offset` without
//! widening every record.
//!
//! A *result packet* (option 3 of §4.2, and the prototype's method) carries
//! all match-lists of one data packet, grouped per middlebox, and is sent
//! right after the ECN-marked data packet.

use crate::flow::FlowKey;
use crate::ipv4::IpProtocol;
use crate::{need, ParseError, Result};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Magic number identifying a result packet ("DPI" + version nibble).
pub const RESULT_MAGIC: u16 = 0xd791;

/// Largest pattern identifier encodable in a match record (15 bits).
pub const MAX_REPORTABLE_PATTERN_ID: u16 = 0x7fff;

/// One reported match (§6.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchRecord {
    /// A single occurrence of `pattern_id` ending at byte `position`.
    Single {
        /// Middlebox-local pattern identifier (≤ 15 bits).
        pattern_id: u16,
        /// Offset of the last byte of the match within the packet.
        position: u16,
    },
    /// `count` consecutive occurrences of `pattern_id`, the first ending at
    /// `start` (stride of one byte — the repeated-character case).
    Range {
        /// Middlebox-local pattern identifier (≤ 15 bits).
        pattern_id: u16,
        /// Offset of the last byte of the first occurrence.
        start: u16,
        /// Number of consecutive occurrences (≥ 2).
        count: u16,
    },
}

impl MatchRecord {
    /// Size of this record on the wire: 4 bytes for singles, 6 for ranges.
    pub fn wire_size(&self) -> usize {
        match self {
            MatchRecord::Single { .. } => 4,
            MatchRecord::Range { .. } => 6,
        }
    }

    /// The pattern identifier of either variant.
    pub fn pattern_id(&self) -> u16 {
        match self {
            MatchRecord::Single { pattern_id, .. } | MatchRecord::Range { pattern_id, .. } => {
                *pattern_id
            }
        }
    }

    /// Number of individual matches this record represents.
    pub fn occurrences(&self) -> u32 {
        match self {
            MatchRecord::Single { .. } => 1,
            MatchRecord::Range { count, .. } => u32::from(*count),
        }
    }

    /// Serializes the record.
    pub fn write(&self, out: &mut Vec<u8>) {
        match *self {
            MatchRecord::Single {
                pattern_id,
                position,
            } => {
                out.extend_from_slice(&(pattern_id & MAX_REPORTABLE_PATTERN_ID).to_be_bytes());
                out.extend_from_slice(&position.to_be_bytes());
            }
            MatchRecord::Range {
                pattern_id,
                start,
                count,
            } => {
                out.extend_from_slice(
                    &((pattern_id & MAX_REPORTABLE_PATTERN_ID) | 0x8000).to_be_bytes(),
                );
                out.extend_from_slice(&start.to_be_bytes());
                out.extend_from_slice(&count.to_be_bytes());
            }
        }
    }

    /// Parses one record, returning it and the bytes consumed.
    pub fn parse(buf: &[u8]) -> Result<(MatchRecord, usize)> {
        need("match-record", buf, 4)?;
        let tag = u16::from_be_bytes([buf[0], buf[1]]);
        let pattern_id = tag & MAX_REPORTABLE_PATTERN_ID;
        if tag & 0x8000 == 0 {
            Ok((
                MatchRecord::Single {
                    pattern_id,
                    position: u16::from_be_bytes([buf[2], buf[3]]),
                },
                4,
            ))
        } else {
            need("match-record", buf, 6)?;
            Ok((
                MatchRecord::Range {
                    pattern_id,
                    start: u16::from_be_bytes([buf[2], buf[3]]),
                    count: u16::from_be_bytes([buf[4], buf[5]]),
                },
                6,
            ))
        }
    }
}

/// The match-list destined for one middlebox.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MiddleboxReport {
    /// The registered middlebox identifier (§4.1).
    pub middlebox_id: u16,
    /// Matches relevant to this middlebox, in scan order.
    pub records: Vec<MatchRecord>,
}

impl MiddleboxReport {
    /// Bytes this block occupies on the wire (4-byte block header plus
    /// records).
    pub fn wire_size(&self) -> usize {
        4 + self
            .records
            .iter()
            .map(MatchRecord::wire_size)
            .sum::<usize>()
    }

    pub(crate) fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.middlebox_id.to_be_bytes());
        out.extend_from_slice(&(self.records.len() as u16).to_be_bytes());
        for r in &self.records {
            r.write(out);
        }
    }

    pub(crate) fn parse(buf: &[u8]) -> Result<(MiddleboxReport, usize)> {
        need("mb-report", buf, 4)?;
        let middlebox_id = u16::from_be_bytes([buf[0], buf[1]]);
        let n = usize::from(u16::from_be_bytes([buf[2], buf[3]]));
        let mut off = 4;
        let mut records = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let (r, used) = MatchRecord::parse(&buf[off..])?;
            off += used;
            records.push(r);
        }
        Ok((
            MiddleboxReport {
                middlebox_id,
                records,
            },
            off,
        ))
    }
}

/// A dedicated result packet: the match-lists of one scanned data packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResultPacket {
    /// Identifier pairing this result with its data packet (the DPI instance
    /// copies the data packet's IPv4 identification plus an internal
    /// sequence; uniqueness only matters per flow, per small window).
    pub packet_id: u32,
    /// The rule generation of the automaton that produced these matches.
    /// Every match result is attributable to exactly one generation, so a
    /// consumer can reject results from an instance that has not yet
    /// picked up (or has already moved past) a rule update.
    pub generation: u32,
    /// Flow the scanned packet belongs to.
    pub flow: FlowKey,
    /// The flow-relative byte offset of the scanned packet's first payload
    /// byte (`offset` of §5.2); zero for stateless scans.
    pub flow_offset: u64,
    /// Per-middlebox match lists. Only middleboxes with at least one match
    /// appear (empty reports are never sent — §4.2: "a packet with no
    /// matches is always forwarded as is").
    pub reports: Vec<MiddleboxReport>,
}

impl ResultPacket {
    /// Fixed header length: magic(2) version(1) count(1) packet_id(4)
    /// generation(4) flow_offset(8) flow key(13).
    pub const HEADER_LEN: usize = 2 + 1 + 1 + 4 + 4 + 8 + 13;
    /// Wire-format version (v2 added the rule-generation word).
    pub const VERSION: u8 = 2;

    /// Total size on the wire.
    pub fn wire_size(&self) -> usize {
        Self::HEADER_LEN
            + self
                .reports
                .iter()
                .map(MiddleboxReport::wire_size)
                .sum::<usize>()
    }

    /// Total number of individual match occurrences across all middleboxes.
    pub fn total_matches(&self) -> u64 {
        self.reports
            .iter()
            .flat_map(|r| r.records.iter())
            .map(|r| u64::from(r.occurrences()))
            .sum()
    }

    /// The report for `middlebox_id`, if it had any matches.
    pub fn report_for(&self, middlebox_id: u16) -> Option<&MiddleboxReport> {
        self.reports.iter().find(|r| r.middlebox_id == middlebox_id)
    }

    /// Serializes the whole result packet.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&RESULT_MAGIC.to_be_bytes());
        out.push(Self::VERSION);
        out.push(self.reports.len() as u8);
        out.extend_from_slice(&self.packet_id.to_be_bytes());
        out.extend_from_slice(&self.generation.to_be_bytes());
        out.extend_from_slice(&self.flow_offset.to_be_bytes());
        out.extend_from_slice(&self.flow.src_ip.octets());
        out.extend_from_slice(&self.flow.dst_ip.octets());
        out.push(self.flow.protocol.to_u8());
        out.extend_from_slice(&self.flow.src_port.to_be_bytes());
        out.extend_from_slice(&self.flow.dst_port.to_be_bytes());
        for r in &self.reports {
            r.write(out);
        }
    }

    /// Serializes into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size());
        self.write(&mut out);
        out
    }

    /// Parses a result packet, returning it and the bytes consumed.
    pub fn parse(buf: &[u8]) -> Result<(ResultPacket, usize)> {
        need("result-packet", buf, Self::HEADER_LEN)?;
        let magic = u16::from_be_bytes([buf[0], buf[1]]);
        if magic != RESULT_MAGIC {
            return Err(ParseError::Unsupported {
                layer: "result-packet",
                what: "magic",
                value: u64::from(magic),
            });
        }
        if buf[2] != Self::VERSION {
            return Err(ParseError::Unsupported {
                layer: "result-packet",
                what: "version",
                value: u64::from(buf[2]),
            });
        }
        let n_reports = usize::from(buf[3]);
        let packet_id = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);
        let generation = u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]);
        let flow_offset = u64::from_be_bytes([
            buf[12], buf[13], buf[14], buf[15], buf[16], buf[17], buf[18], buf[19],
        ]);
        let flow = FlowKey {
            src_ip: Ipv4Addr::new(buf[20], buf[21], buf[22], buf[23]),
            dst_ip: Ipv4Addr::new(buf[24], buf[25], buf[26], buf[27]),
            protocol: IpProtocol::from_u8(buf[28]),
            src_port: u16::from_be_bytes([buf[29], buf[30]]),
            dst_port: u16::from_be_bytes([buf[31], buf[32]]),
        };
        let mut off = Self::HEADER_LEN;
        let mut reports = Vec::with_capacity(n_reports);
        for _ in 0..n_reports {
            let (r, used) = MiddleboxReport::parse(&buf[off..])?;
            off += used;
            reports.push(r);
        }
        Ok((
            ResultPacket {
                packet_id,
                generation,
                flow,
                flow_offset,
                reports,
            },
            off,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowKey {
        FlowKey {
            src_ip: Ipv4Addr::new(192, 168, 1, 10),
            dst_ip: Ipv4Addr::new(10, 9, 8, 7),
            protocol: IpProtocol::Tcp,
            src_port: 55555,
            dst_port: 443,
        }
    }

    fn sample() -> ResultPacket {
        ResultPacket {
            packet_id: 0xfeed0001,
            generation: 3,
            flow: flow(),
            flow_offset: 1 << 33,
            reports: vec![
                MiddleboxReport {
                    middlebox_id: 1,
                    records: vec![
                        MatchRecord::Single {
                            pattern_id: 7,
                            position: 120,
                        },
                        MatchRecord::Range {
                            pattern_id: 8,
                            start: 200,
                            count: 16,
                        },
                    ],
                },
                MiddleboxReport {
                    middlebox_id: 3,
                    records: vec![MatchRecord::Single {
                        pattern_id: 7,
                        position: 120,
                    }],
                },
            ],
        }
    }

    #[test]
    fn record_sizes_match_paper() {
        assert_eq!(
            MatchRecord::Single {
                pattern_id: 1,
                position: 2
            }
            .wire_size(),
            4
        );
        assert_eq!(
            MatchRecord::Range {
                pattern_id: 1,
                start: 2,
                count: 3
            }
            .wire_size(),
            6
        );
    }

    #[test]
    fn result_packet_round_trips() {
        let rp = sample();
        let bytes = rp.to_bytes();
        assert_eq!(bytes.len(), rp.wire_size());
        let (parsed, used) = ResultPacket::parse(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(parsed, rp);
    }

    #[test]
    fn total_matches_counts_range_occurrences() {
        assert_eq!(sample().total_matches(), 1 + 16 + 1);
    }

    #[test]
    fn report_for_finds_the_right_block() {
        let rp = sample();
        assert_eq!(rp.report_for(3).unwrap().records.len(), 1);
        assert!(rp.report_for(2).is_none());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0;
        assert!(matches!(
            ResultPacket::parse(&bytes).unwrap_err(),
            ParseError::Unsupported { what: "magic", .. }
        ));
    }

    #[test]
    fn generation_survives_the_wire() {
        let mut rp = sample();
        rp.generation = 0xdead_beef;
        let (parsed, _) = ResultPacket::parse(&rp.to_bytes()).unwrap();
        assert_eq!(parsed.generation, 0xdead_beef);
    }

    #[test]
    fn v1_packets_without_generation_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[2] = 1; // pre-generation wire format
        assert!(matches!(
            ResultPacket::parse(&bytes).unwrap_err(),
            ParseError::Unsupported {
                what: "version",
                ..
            }
        ));
    }

    #[test]
    fn truncated_records_are_rejected() {
        let bytes = sample().to_bytes();
        assert!(ResultPacket::parse(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn record_round_trip_masks_high_pattern_bit() {
        // Pattern ids must fit 15 bits; the encoder masks rather than
        // corrupting the type bit.
        let r = MatchRecord::Single {
            pattern_id: 0x7fff,
            position: 9,
        };
        let mut buf = Vec::new();
        r.write(&mut buf);
        let (parsed, _) = MatchRecord::parse(&buf).unwrap();
        assert_eq!(parsed, r);
    }
}
