//! Instance configuration: middlebox profiles and policy chains.
//!
//! "Upon instantiation, the DPI controller passes to the DPI instance the
//! pattern sets and the corresponding middlebox identifiers. Along with
//! these sets, the DPI controller may pass additional information, such as
//! a stopping condition for each middlebox …, or whether the middlebox is
//! stateless … or stateful …. Moreover, the DPI controller passes the
//! mapping between policy chain identifiers and the corresponding
//! middlebox identifiers in the chain." (§5.1)

use crate::reassembly::ConflictPolicy;
use crate::rules::RuleSpec;
use dpi_ac::{KernelKind, MiddleboxId};
use serde::{Deserialize, Serialize};

/// A tenant of the shared DPI service (DESIGN.md §16). Every middlebox
/// belongs to exactly one tenant; policy chains must be
/// tenant-homogeneous, so a match report can only ever reach the owning
/// tenant's middleboxes. Tenant 0 is the default: single-tenant
/// deployments never mention tenants and behave exactly as before the
/// concept existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u16);

impl TenantId {
    /// The implicit tenant of untenanted configurations.
    pub const DEFAULT: TenantId = TenantId(0);
}

// Hand-written so a missing/null `tenant` field in a serialized profile
// (anything written before tenancy existed) lands on the default tenant
// instead of failing to deserialize.
impl Serialize for TenantId {
    fn serialize(&self) -> serde::Value {
        serde::Value::U64(u64::from(self.0))
    }
}

impl Deserialize for TenantId {
    fn deserialize(v: &serde::Value) -> Result<TenantId, serde::DeError> {
        match v {
            serde::Value::Null => Ok(TenantId::DEFAULT),
            other => u16::deserialize(other).map(TenantId),
        }
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Resource limits and fair-share weight for one tenant (DESIGN.md §16).
/// All limits default to unlimited; the weight defaults to 1. Pattern
/// and automaton-state limits are enforced at compile time (a config
/// over quota fails to build, so an over-quota update rolls back); the
/// scan-byte budget is enforced per shard at scan time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantQuota {
    /// Maximum patterns the tenant's middleboxes may register, summed
    /// across the tenant. `None` = unlimited.
    #[serde(default)]
    pub max_patterns: Option<u32>,
    /// Automaton-state budget: an upper bound on the trie states the
    /// tenant's patterns may create, soundly approximated at compile
    /// time as the sum of pattern byte lengths (each byte adds at most
    /// one trie state). `None` = unlimited.
    #[serde(default)]
    pub max_state_bytes: Option<u64>,
    /// Scan-byte budget per shard per batch window — a token bucket
    /// refilled at every batch boundary. Fail-open scans past the budget
    /// are skipped (counted as quota rejections, packets still flow);
    /// fail-closed chains are exempt and always scanned. `None` =
    /// unlimited.
    #[serde(default)]
    pub scan_bytes_per_window: Option<u64>,
    /// Weighted-fairness share under overload: a tenant is only shed
    /// while its arrival share is at or above `weight / total_weight`.
    #[serde(default)]
    pub weight: u32,
}

impl Default for TenantQuota {
    fn default() -> TenantQuota {
        TenantQuota {
            max_patterns: None,
            max_state_bytes: None,
            scan_bytes_per_window: None,
            weight: 1,
        }
    }
}

impl TenantQuota {
    /// An unlimited quota at weight 1 — the implicit quota of tenants
    /// never given one.
    pub fn unlimited() -> TenantQuota {
        TenantQuota::default()
    }

    /// Caps the tenant's registered pattern count.
    pub fn with_max_patterns(mut self, n: u32) -> TenantQuota {
        self.max_patterns = Some(n);
        self
    }

    /// Caps the tenant's automaton-state budget (approximated as total
    /// pattern bytes).
    pub fn with_max_state_bytes(mut self, bytes: u64) -> TenantQuota {
        self.max_state_bytes = Some(bytes);
        self
    }

    /// Caps the tenant's scanned bytes per shard per batch window.
    pub fn with_scan_bytes_per_window(mut self, bytes: u64) -> TenantQuota {
        self.scan_bytes_per_window = Some(bytes);
        self
    }

    /// Sets the tenant's fair-share weight (clamped to at least 1).
    pub fn with_weight(mut self, weight: u32) -> TenantQuota {
        self.weight = weight.max(1);
        self
    }
}

/// A rule together with the middlebox-local identifier it is reported
/// under. Identifiers need not be dense — the controller preserves
/// whatever rule ids each middlebox reported (§4.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NumberedRule {
    /// The middlebox-local rule id.
    pub id: u16,
    /// The rule body.
    pub spec: RuleSpec,
}

impl NumberedRule {
    /// Numbers a rule list positionally (id = index).
    pub fn sequence(rules: Vec<RuleSpec>) -> Vec<NumberedRule> {
        rules
            .into_iter()
            .enumerate()
            .map(|(i, spec)| NumberedRule { id: i as u16, spec })
            .collect()
    }
}

/// Per-middlebox scanning properties (§4.1 registration options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiddleboxProfile {
    /// The middlebox's registered identifier.
    pub id: MiddleboxId,
    /// `true` if the DPI scan must "maintain state across the packet
    /// boundaries of a flow".
    pub stateful: bool,
    /// `true` if the middlebox "performs no actions at the packet itself
    /// and therefore requires receiving only pattern matching results" —
    /// an IDS, as opposed to an IPS. Read-only middleboxes can be served
    /// results-only packets, skipping data-packet routing entirely.
    pub read_only: bool,
    /// "How deep into L7 payload the DPI instance should look": matches
    /// ending after this many bytes (of the packet for stateless
    /// middleboxes, of the flow for stateful ones) are not reported.
    /// `None` = unbounded.
    pub stopping_condition: Option<u64>,
    /// `true` if this middlebox's verdicts are **fail-closed**: traffic on
    /// its chains must never skip scanning, even when the DPI service is
    /// overloaded (an IPS that blocks on verdicts, as opposed to an IDS
    /// that merely observes). Fail-open (`false`, the default) chains may
    /// have scans shed under overload — the packets still flow, CE-marked,
    /// they just produce no results (same split as result delivery:
    /// fail-open for data, fail-closed for verdicts).
    pub fail_closed: bool,
    /// L7 protocol subscription: this middlebox only receives matches
    /// from *decoded* payload units of protocols in the mask (DESIGN.md
    /// §14). `None` — the default — subscribes to everything. The raw
    /// fallback for unidentified flows is never filtered: when the L7
    /// layer can't name the protocol, every middlebox sees the bytes,
    /// exactly as before the layer existed.
    pub l7_protocols: Option<crate::l7::ProtocolMask>,
    /// The tenant this middlebox belongs to (DESIGN.md §16). Defaults to
    /// [`TenantId::DEFAULT`], so untenanted configurations (and old
    /// serialized ones) deserialize unchanged.
    #[serde(default)]
    pub tenant: TenantId,
}

impl MiddleboxProfile {
    /// A stateless, full-packet, read-write profile — the common default.
    pub fn stateless(id: MiddleboxId) -> MiddleboxProfile {
        MiddleboxProfile {
            id,
            stateful: false,
            read_only: false,
            stopping_condition: None,
            fail_closed: false,
            l7_protocols: None,
            tenant: TenantId::DEFAULT,
        }
    }

    /// A stateful profile (IDS-style cross-packet matching).
    pub fn stateful(id: MiddleboxId) -> MiddleboxProfile {
        MiddleboxProfile {
            stateful: true,
            ..MiddleboxProfile::stateless(id)
        }
    }

    /// Marks the profile read-only (results-only delivery).
    pub fn read_only(mut self) -> MiddleboxProfile {
        self.read_only = true;
        self
    }

    /// Sets the stopping condition.
    pub fn with_stop(mut self, bytes: u64) -> MiddleboxProfile {
        self.stopping_condition = Some(bytes);
        self
    }

    /// Marks the middlebox fail-closed: its chains' traffic is never
    /// shed under overload.
    pub fn fail_closed(mut self) -> MiddleboxProfile {
        self.fail_closed = true;
        self
    }

    /// Restricts the middlebox to decoded payloads of the given L7
    /// protocols (DESIGN.md §14).
    pub fn with_l7_protocols(mut self, mask: crate::l7::ProtocolMask) -> MiddleboxProfile {
        self.l7_protocols = Some(mask);
        self
    }

    /// Whether this middlebox subscribes to decoded units of `proto`.
    pub fn subscribes(&self, proto: crate::l7::L7Protocol) -> bool {
        self.l7_protocols.is_none_or(|m| m.contains(proto))
    }

    /// Assigns the middlebox to a tenant (DESIGN.md §16).
    pub fn owned_by(mut self, tenant: TenantId) -> MiddleboxProfile {
        self.tenant = tenant;
        self
    }
}

/// One policy chain: the ordered middlebox types a tagged packet visits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainSpec {
    /// The identifier the TSA encodes in the packet tag (§4.1).
    pub chain_id: u16,
    /// The middlebox types on the chain, in traversal order. Only members
    /// that registered pattern sets are relevant to the DPI instance.
    pub members: Vec<MiddleboxId>,
}

/// Everything a DPI service instance is initialized with (§5.1).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InstanceConfig {
    /// Scanning profiles for every registered middlebox.
    pub profiles: Vec<MiddleboxProfile>,
    /// Each middlebox's rule list with explicit rule ids.
    pub pattern_sets: Vec<(MiddleboxId, Vec<NumberedRule>)>,
    /// Policy-chain-id → members mapping.
    pub chains: Vec<ChainSpec>,
    /// Maximum tracked flows before the flow table evicts (stateful scans
    /// only). Defaults to [`InstanceConfig::DEFAULT_MAX_FLOWS`].
    pub max_flows: Option<usize>,
    /// Which scan kernel the instance's engine runs its byte-scanning hot
    /// path on. [`KernelKind::Auto`] (the default) keeps the historical
    /// width-based selection.
    pub kernel: KernelKind,
    /// How the shared reassembler resolves byte-level conflicts between
    /// overlapping TCP segment copies. [`ConflictPolicy::FirstWins`] (the
    /// default) preserves the historical Snort-style behaviour.
    pub conflict_policy: ConflictPolicy,
    /// L7 inspection policy (DESIGN.md §14). `None` — the default — runs
    /// the engine exactly as before the L7 layer existed: every
    /// reassembled byte run is scanned raw, no protocol identification.
    pub l7: Option<crate::l7::L7Policy>,
    /// Idle-flow aging horizon in logical ticks (one tick per flow-state
    /// access): a flow untouched for this many ticks is torn down —
    /// reassembly buffers and L7 session included — by the flow arena's
    /// timer wheel (DESIGN.md §15). `None` — the default — disables
    /// aging; flows then leave only by teardown or capacity eviction.
    #[serde(default)]
    pub flow_idle_timeout: Option<u64>,
    /// Total per-shard flow-state byte budget. When the arena's byte
    /// accounting exceeds it, cold flows are evicted (fail-open) until
    /// the total fits again. `None` — the default — disables the budget;
    /// the entry-count bound and the overload memory watermark still
    /// apply.
    #[serde(default)]
    pub max_flow_bytes: Option<u64>,
    /// Per-tenant quotas and fair-share weights (DESIGN.md §16).
    /// Tenants absent from the list get [`TenantQuota::unlimited`].
    /// Empty — the default — means every tenant is unlimited at weight
    /// 1, which is byte-identical to the untenanted service.
    #[serde(default)]
    pub tenants: Vec<(TenantId, TenantQuota)>,
    /// Per-tenant rule-generation overrides for tenant-scoped canary
    /// rollouts (DESIGN.md §16): results on a tenant's chains are
    /// stamped with the tenant's entry here instead of the engine-wide
    /// generation. Tenants absent from the list use the engine
    /// generation, so the empty default reproduces the fleet-wide
    /// stamping exactly.
    #[serde(default)]
    pub tenant_generations: Vec<(TenantId, u32)>,
}

impl InstanceConfig {
    /// Default flow-table capacity.
    pub const DEFAULT_MAX_FLOWS: usize = 65536;

    /// Starts an empty config.
    pub fn new() -> InstanceConfig {
        InstanceConfig::default()
    }

    /// Adds a middlebox with its profile and positionally-numbered rules.
    pub fn with_middlebox(self, profile: MiddleboxProfile, rules: Vec<RuleSpec>) -> InstanceConfig {
        self.with_middlebox_numbered(profile, NumberedRule::sequence(rules))
    }

    /// Adds a middlebox with explicitly-numbered rules.
    pub fn with_middlebox_numbered(
        mut self,
        profile: MiddleboxProfile,
        rules: Vec<NumberedRule>,
    ) -> InstanceConfig {
        self.pattern_sets.push((profile.id, rules));
        self.profiles.push(profile);
        self
    }

    /// Adds a policy chain.
    pub fn with_chain(mut self, chain_id: u16, members: Vec<MiddleboxId>) -> InstanceConfig {
        self.chains.push(ChainSpec { chain_id, members });
        self
    }

    /// Selects the scan kernel for the instance's engine.
    pub fn with_kernel(mut self, kernel: KernelKind) -> InstanceConfig {
        self.kernel = kernel;
        self
    }

    /// Selects the reassembly conflict policy for the instance's shards.
    pub fn with_conflict_policy(mut self, policy: ConflictPolicy) -> InstanceConfig {
        self.conflict_policy = policy;
        self
    }

    /// Enables L7 protocol inspection on the instance's TCP path with
    /// the given per-protocol policy (DESIGN.md §14).
    pub fn with_l7_policy(mut self, policy: crate::l7::L7Policy) -> InstanceConfig {
        self.l7 = Some(policy);
        self
    }

    /// Ages out flows idle for `ticks` logical flow-state accesses
    /// (DESIGN.md §15). Zero disables aging, like the default.
    pub fn with_flow_idle_timeout(mut self, ticks: u64) -> InstanceConfig {
        self.flow_idle_timeout = (ticks > 0).then_some(ticks);
        self
    }

    /// Caps each shard's flow-state bytes; cold flows are evicted
    /// (fail-open) to stay under the budget. Zero disables the cap.
    pub fn with_max_flow_bytes(mut self, bytes: u64) -> InstanceConfig {
        self.max_flow_bytes = (bytes > 0).then_some(bytes);
        self
    }

    /// Sets (or replaces) one tenant's quota and fair-share weight.
    pub fn with_tenant_quota(mut self, tenant: TenantId, quota: TenantQuota) -> InstanceConfig {
        self.tenants.retain(|(t, _)| *t != tenant);
        self.tenants.push((tenant, quota));
        self
    }

    /// The quota in force for `tenant` (unlimited when never set).
    pub fn tenant_quota(&self, tenant: TenantId) -> TenantQuota {
        self.tenants
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, q)| *q)
            .unwrap_or_default()
    }

    /// Overrides the generation stamped on one tenant's results
    /// (tenant-scoped canary rollouts; DESIGN.md §16).
    pub fn with_tenant_generation(mut self, tenant: TenantId, generation: u32) -> InstanceConfig {
        self.tenant_generations.retain(|(t, _)| *t != tenant);
        self.tenant_generations.push((tenant, generation));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_builders() {
        let p = MiddleboxProfile::stateful(MiddleboxId(3))
            .read_only()
            .with_stop(512);
        assert!(p.stateful && p.read_only);
        assert_eq!(p.stopping_condition, Some(512));
        let q = MiddleboxProfile::stateless(MiddleboxId(1));
        assert!(!q.stateful && !q.read_only && q.stopping_condition.is_none());
    }

    #[test]
    fn config_builder_accumulates() {
        let cfg = InstanceConfig::new()
            .with_middlebox(
                MiddleboxProfile::stateless(MiddleboxId(0)),
                vec![RuleSpec::exact(b"x".to_vec())],
            )
            .with_chain(1, vec![MiddleboxId(0)]);
        assert_eq!(cfg.profiles.len(), 1);
        assert_eq!(cfg.pattern_sets.len(), 1);
        assert_eq!(cfg.chains.len(), 1);
    }

    #[test]
    fn config_round_trips_as_json() {
        let cfg = InstanceConfig::new().with_middlebox(
            MiddleboxProfile::stateful(MiddleboxId(9)),
            vec![RuleSpec::regex("a+")],
        );
        let j = serde_json::to_string(&cfg).unwrap();
        let back: InstanceConfig = serde_json::from_str(&j).unwrap();
        assert_eq!(back.profiles, cfg.profiles);
        assert_eq!(back.pattern_sets, cfg.pattern_sets);
        assert_eq!(back.conflict_policy, cfg.conflict_policy);
    }

    #[test]
    fn l7_policy_round_trips_and_defaults_off() {
        use crate::l7::{L7Action, L7Policy, L7Protocol, ProtocolMask, ProtocolPolicy};
        assert!(InstanceConfig::new().l7.is_none());
        let cfg = InstanceConfig::new()
            .with_middlebox(
                MiddleboxProfile::stateless(MiddleboxId(2))
                    .with_l7_protocols(ProtocolMask::only(&[L7Protocol::Tls])),
                vec![RuleSpec::exact(b"evil".to_vec())],
            )
            .with_l7_policy(L7Policy::default().with(
                L7Protocol::WebSocket,
                ProtocolPolicy::intercept(4096).with_action(L7Action::Bypass),
            ));
        let j = serde_json::to_string(&cfg).unwrap();
        let back: InstanceConfig = serde_json::from_str(&j).unwrap();
        assert_eq!(back.l7, cfg.l7);
        assert_eq!(back.profiles, cfg.profiles);
        assert!(back.profiles[0].subscribes(L7Protocol::Tls));
        assert!(!back.profiles[0].subscribes(L7Protocol::Http1));
        // Unsubscribed profiles see everything.
        assert!(MiddleboxProfile::stateless(MiddleboxId(1)).subscribes(L7Protocol::Http1));
    }

    #[test]
    fn tenant_fields_default_and_round_trip() {
        // Untenanted configs (and old serialized ones) land on tenant 0
        // with unlimited quotas.
        let plain = MiddleboxProfile::stateless(MiddleboxId(1));
        assert_eq!(plain.tenant, TenantId::DEFAULT);
        let old_json = r#"{"id":3,"stateful":false,"read_only":false,
            "stopping_condition":null,"fail_closed":false,"l7_protocols":null}"#;
        let back: MiddleboxProfile = serde_json::from_str(old_json).unwrap();
        assert_eq!(back.tenant, TenantId(0));
        assert!(InstanceConfig::new().tenants.is_empty());
        assert_eq!(
            InstanceConfig::new().tenant_quota(TenantId(9)),
            TenantQuota::unlimited()
        );

        let cfg = InstanceConfig::new()
            .with_middlebox(
                MiddleboxProfile::stateless(MiddleboxId(1)).owned_by(TenantId(2)),
                vec![RuleSpec::exact(b"x".to_vec())],
            )
            .with_tenant_quota(
                TenantId(2),
                TenantQuota::unlimited()
                    .with_max_patterns(4)
                    .with_max_state_bytes(256)
                    .with_scan_bytes_per_window(1024)
                    .with_weight(3),
            )
            .with_tenant_generation(TenantId(2), 7);
        let j = serde_json::to_string(&cfg).unwrap();
        let back: InstanceConfig = serde_json::from_str(&j).unwrap();
        assert_eq!(back, cfg);
        assert_eq!(back.profiles[0].tenant, TenantId(2));
        let q = back.tenant_quota(TenantId(2));
        assert_eq!(q.max_patterns, Some(4));
        assert_eq!(q.weight, 3);
        assert_eq!(back.tenant_generations, vec![(TenantId(2), 7)]);
        // Replacing a quota does not accumulate duplicates.
        let cfg = cfg.with_tenant_quota(TenantId(2), TenantQuota::unlimited());
        assert_eq!(cfg.tenants.len(), 1);
        assert_eq!(cfg.tenant_quota(TenantId(2)), TenantQuota::unlimited());
    }

    #[test]
    fn conflict_policy_round_trips_and_defaults() {
        // A fresh config defaults to the historical first-wins behaviour.
        assert_eq!(
            InstanceConfig::new().conflict_policy,
            ConflictPolicy::FirstWins
        );
        let cfg = InstanceConfig::new().with_conflict_policy(ConflictPolicy::RejectFlow);
        let j = serde_json::to_string(&cfg).unwrap();
        let back: InstanceConfig = serde_json::from_str(&j).unwrap();
        assert_eq!(back.conflict_policy, ConflictPolicy::RejectFlow);
    }
}
