//! 5-tuple flow keys.
//!
//! Stateful middleboxes require the DPI service to "maintain their state
//! across the packet boundaries of a flow" (§4.1); the flow key is how a
//! DPI instance finds that state. It is also what the stress monitor
//! migrates between instances (§4.3.1).

use crate::ipv4::IpProtocol;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A directional 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// IP protocol.
    pub protocol: IpProtocol,
    /// Source port (0 for non-TCP/UDP).
    pub src_port: u16,
    /// Destination port (0 for non-TCP/UDP).
    pub dst_port: u16,
}

impl FlowKey {
    /// The key for the reverse direction of this flow.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            protocol: self.protocol,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }

    /// A direction-insensitive key: both directions of a connection map to
    /// the same value. Useful for middleboxes that track sessions rather
    /// than unidirectional flows.
    pub fn bidirectional(&self) -> FlowKey {
        let rev = self.reversed();
        if (self.src_ip, self.src_port) <= (self.dst_ip, self.dst_port) {
            *self
        } else {
            rev
        }
    }

    /// A stable 64-bit hash of the key (FNV-1a), used by the simulator for
    /// deterministic load-balancing decisions independent of `HashMap`'s
    /// per-process seed.
    pub fn stable_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        };
        for b in self.src_ip.octets() {
            eat(b);
        }
        for b in self.dst_ip.octets() {
            eat(b);
        }
        eat(self.protocol.to_u8());
        for b in self.src_port.to_be_bytes() {
            eat(b);
        }
        for b in self.dst_port.to_be_bytes() {
            eat(b);
        }
        h
    }
}

impl std::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} ({:?})",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.protocol
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey {
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            protocol: IpProtocol::Tcp,
            src_port: 4242,
            dst_port: 80,
        }
    }

    #[test]
    fn reversed_twice_is_identity() {
        assert_eq!(key().reversed().reversed(), key());
    }

    #[test]
    fn bidirectional_is_direction_insensitive() {
        assert_eq!(key().bidirectional(), key().reversed().bidirectional());
    }

    #[test]
    fn stable_hash_distinguishes_flows_and_is_deterministic() {
        let a = key();
        let mut b = key();
        b.dst_port = 443;
        assert_ne!(a.stable_hash(), b.stable_hash());
        assert_eq!(a.stable_hash(), key().stable_hash());
    }
}
