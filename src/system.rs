//! End-to-end system assembly: the paper's Figure 5 in one builder.
//!
//! [`SystemBuilder`] wires together a DPI controller, a simulated
//! single-switch star network (the §6.1 experimental topology), one DPI
//! service instance node and any number of service-consuming middlebox
//! nodes, installs the Traffic Steering Application's chain rules, and
//! returns a [`SystemHandle`] to drive traffic through and observe every
//! component.

use dpi_ac::MiddleboxId;
use dpi_controller::DpiController;
use dpi_core::instance::ScanEngine;
use dpi_core::pipeline::ShardedScanner;
use dpi_core::DpiInstance;
use dpi_middlebox::boxes::MiddleboxTemplate;
use dpi_middlebox::{DpiServiceNode, MiddleboxNode, ResultsDelivery, ServiceMiddlebox};
use dpi_packet::report::ResultPacket;
use dpi_packet::{FlowKey, MacAddr, Packet};
use dpi_sdn::{Network, NodeId, Switch, TrafficSteeringApp};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

// `parking_lot` is pulled transitively; re-exported types below keep the
// facade's public API self-contained.
use dpi_middlebox::MiddleboxStats;

/// Errors during system assembly.
#[derive(Debug)]
pub enum SystemError {
    /// Relayed controller error.
    Controller(dpi_controller::ControllerError),
    /// Relayed DPI instance build error.
    Instance(dpi_core::InstanceError),
    /// A chain referenced a middlebox that was never added.
    UnknownMiddlebox(u16),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Controller(e) => write!(f, "controller: {e}"),
            SystemError::Instance(e) => write!(f, "instance: {e}"),
            SystemError::UnknownMiddlebox(id) => write!(f, "unknown middlebox {id}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<dpi_controller::ControllerError> for SystemError {
    fn from(e: dpi_controller::ControllerError) -> SystemError {
        SystemError::Controller(e)
    }
}

impl From<dpi_core::InstanceError> for SystemError {
    fn from(e: dpi_core::InstanceError) -> SystemError {
        SystemError::Instance(e)
    }
}

/// Builds a complete simulated deployment.
///
/// ```
/// use dpi_service::ac::MiddleboxId;
/// use dpi_service::middlebox::ids;
/// use dpi_service::packet::ipv4::IpProtocol;
/// use dpi_service::packet::packet::flow;
/// use dpi_service::SystemBuilder;
///
/// let mut sys = SystemBuilder::new()
///     .with_middlebox(ids(MiddleboxId(1), &[b"evil-sig".to_vec()]))
///     .with_chain(&[MiddleboxId(1)])
///     .build()
///     .unwrap();
/// let f = flow([10, 0, 0, 1], 1000, [10, 0, 0, 2], 80, IpProtocol::Tcp);
/// sys.send(f, 0, b"carrying evil-sig right here");
/// assert_eq!(sys.stats_of(MiddleboxId(1)).unwrap().matches, 1);
/// assert_eq!(sys.sink.count(), 1); // IDS is read-only: packet delivered
/// ```
pub struct SystemBuilder {
    templates: Vec<MiddleboxTemplate>,
    chains: Vec<Vec<MiddleboxId>>,
    delivery: ResultsDelivery,
    dpi_workers: usize,
}

impl Default for SystemBuilder {
    fn default() -> SystemBuilder {
        SystemBuilder::new()
    }
}

impl SystemBuilder {
    /// An empty system using dedicated result packets (the prototype's
    /// delivery method).
    pub fn new() -> SystemBuilder {
        SystemBuilder {
            templates: Vec::new(),
            chains: Vec::new(),
            delivery: ResultsDelivery::DedicatedPacket,
            dpi_workers: 1,
        }
    }

    /// Sets the worker count of the batched scan pipeline exposed as
    /// [`SystemHandle::scanner`] (default 1). The pipeline shares the
    /// compiled automaton with the in-network DPI node, so raising the
    /// worker count costs per-shard flow tables, not another engine.
    pub fn with_dpi_workers(mut self, workers: usize) -> SystemBuilder {
        self.dpi_workers = workers.max(1);
        self
    }

    /// Switches result delivery to the in-band NSH-like header.
    pub fn in_band_results(mut self) -> SystemBuilder {
        self.delivery = ResultsDelivery::InBand;
        self
    }

    /// Switches result delivery to MPLS result labels (with dedicated
    /// result packets as overflow fallback).
    pub fn mpls_results(mut self) -> SystemBuilder {
        self.delivery = ResultsDelivery::MplsTags;
        self
    }

    /// Adds a middlebox (see [`dpi_middlebox::boxes`] for templates).
    pub fn with_middlebox(mut self, template: MiddleboxTemplate) -> SystemBuilder {
        self.templates.push(template);
        self
    }

    /// Adds a policy chain over previously-added middleboxes.
    pub fn with_chain(mut self, members: &[MiddleboxId]) -> SystemBuilder {
        self.chains.push(members.to_vec());
        self
    }

    /// Assembles the network. Port map on the single switch: 0 = traffic
    /// source, 1 = destination host, 2 = DPI service instance, 3+ = one
    /// port per middlebox in insertion order.
    pub fn build(self) -> Result<SystemHandle, SystemError> {
        let controller = DpiController::new();

        // Register every middlebox and its rules with the controller.
        for t in &self.templates {
            controller.register(t.profile.id, &t.name, None, t.profile)?;
            for rule in &t.rules {
                controller.add_pattern(t.profile.id, rule.id, &rule.spec)?;
            }
        }

        // Register chains; remember their ids.
        let mut chain_ids = Vec::new();
        for members in &self.chains {
            chain_ids.push(controller.register_chain(members)?);
        }

        // One engine serving every chain (deployment grouping is
        // exercised separately in dpi-controller), compiled once and
        // shared between the in-network node and the batch pipeline.
        let cfg = controller.instance_config(&chain_ids)?;
        let engine = Arc::new(ScanEngine::new(cfg)?);
        let instance = DpiInstance::from_engine(engine.clone());
        let scanner = ShardedScanner::new(engine, self.dpi_workers);
        let _instance_id = controller.deploy_instance(chain_ids.clone());

        // Build the star network.
        let mut net = Network::new(1_000_000);
        let switch = Switch::new("s1");
        let tsa = TrafficSteeringApp::new(&switch);
        let sw = net.add_node(Box::new(switch));

        let sink = dpi_sdn::network::SinkHost::new();
        let sink_id = net.add_node(Box::new(sink.clone()));
        net.link(sw, 1, sink_id, 0);

        let (dpi_node, dpi_handle) =
            DpiServiceNode::new(instance, self.delivery, MacAddr::local(100));
        let dpi_id = net.add_node(Box::new(dpi_node));
        net.link(sw, 2, dpi_id, 0);

        let mut mb_handles = HashMap::new();
        let mut mb_port = HashMap::new();
        for (i, t) in self.templates.iter().enumerate() {
            let port = 3 + i as u16;
            let last_on_any_chain = self.chains.iter().any(|c| c.last() == Some(&t.profile.id));
            let mb = ServiceMiddlebox::new(t.profile.id, &t.name, t.logic.clone());
            let (node, handle) = MiddleboxNode::new(mb, last_on_any_chain);
            let id = net.add_node(Box::new(node));
            net.link(sw, port, id, 0);
            mb_handles.insert(t.profile.id, handle);
            mb_port.insert(t.profile.id, port);
        }

        // TSA rules: ingress 0 → DPI (port 2) → members' ports → egress 1.
        for (members, chain_id) in self.chains.iter().zip(&chain_ids) {
            let mut via = vec![2u16];
            for m in members {
                via.push(*mb_port.get(m).ok_or(SystemError::UnknownMiddlebox(m.0))?);
            }
            tsa.install_chain(*chain_id, 0, &via, 1);
        }

        Ok(SystemHandle {
            controller,
            net,
            switch_id: sw,
            sink,
            dpi: dpi_handle,
            scanner,
            middleboxes: mb_handles,
            chain_ids,
            tsa,
        })
    }
}

/// A running simulated deployment.
pub struct SystemHandle {
    /// The DPI controller.
    pub controller: DpiController,
    /// The simulated network.
    pub net: Network,
    /// The switch's node id.
    pub switch_id: NodeId,
    /// The destination host (inspect received traffic here).
    pub sink: dpi_sdn::network::SinkHost,
    /// The DPI service instance.
    pub dpi: Arc<Mutex<DpiInstance>>,
    /// The batched scan pipeline: shares the in-network instance's
    /// compiled automaton, fans packets out across
    /// [`SystemBuilder::with_dpi_workers`] flow-affine shards. Drive it
    /// with [`SystemHandle::inspect_batch`] for bulk (out-of-network)
    /// inspection.
    pub scanner: ShardedScanner,
    /// Per-middlebox engine handles.
    pub middleboxes: HashMap<MiddleboxId, Arc<Mutex<ServiceMiddlebox>>>,
    /// Chain ids in the order chains were added to the builder.
    pub chain_ids: Vec<u16>,
    /// The traffic steering application.
    pub tsa: TrafficSteeringApp,
}

impl SystemHandle {
    /// Sends one TCP payload from the source host into the network and
    /// runs it to quiescence. Returns the number of deliveries.
    pub fn send(&mut self, flow: FlowKey, seq: u32, payload: &[u8]) -> usize {
        let pkt = Packet::tcp(
            MacAddr::local(1),
            MacAddr::local(2),
            flow,
            seq,
            payload.to_vec(),
        );
        self.net.inject(self.switch_id, 0, pkt);
        self.net.run()
    }

    /// Stats of one middlebox.
    pub fn stats_of(&self, id: MiddleboxId) -> Option<MiddleboxStats> {
        self.middleboxes.get(&id).map(|h| h.lock().stats())
    }

    /// The DPI instance's telemetry.
    pub fn dpi_telemetry(&self) -> dpi_core::Telemetry {
        self.dpi.lock().telemetry()
    }

    /// Scans a batch of chain-tagged packets through the parallel
    /// pipeline, bypassing the simulated network. Matched packets are
    /// ECN-marked in place; results come back in batch order with
    /// sequential packet ids, byte-identical to feeding a sequential
    /// instance the same batch.
    pub fn inspect_batch(&mut self, packets: &mut [Packet]) -> Vec<ResultPacket> {
        self.scanner.inspect_batch(packets)
    }
}
