//! Concrete middlebox types from the paper's Table 1.
//!
//! Each constructor returns the middlebox's `(profile, rules, logic)`
//! triple: how it registers with the DPI controller (§4.1) and what it
//! does with reported matches. The DPI patterns differ per type exactly
//! as Table 1 lists — malicious-activity signatures for IDS/AV, URLs and
//! application tokens for load balancing and shaping.

use crate::logic::{MbAction, RuleLogic};
use dpi_ac::MiddleboxId;
use dpi_core::config::NumberedRule;
use dpi_core::{MiddleboxProfile, RuleSpec};

/// A fully-specified middlebox template.
#[derive(Debug, Clone)]
pub struct MiddleboxTemplate {
    /// Registration profile.
    pub profile: MiddleboxProfile,
    /// Display name.
    pub name: String,
    /// Rules to register with the DPI controller.
    pub rules: Vec<NumberedRule>,
    /// Local action logic.
    pub logic: RuleLogic,
}

impl MiddleboxTemplate {
    /// Assigns the template's middlebox to a tenant (DESIGN.md §16).
    /// Every member of a policy chain must share one tenant; the default
    /// [`dpi_core::TenantId::DEFAULT`] keeps untenanted deployments
    /// working unchanged.
    pub fn owned_by(mut self, tenant: dpi_core::TenantId) -> MiddleboxTemplate {
        self.profile.tenant = tenant;
        self
    }
}

fn numbered(rules: Vec<RuleSpec>) -> Vec<NumberedRule> {
    NumberedRule::sequence(rules)
}

/// An intrusion *detection* system: stateful (matches span packets),
/// read-only (consumes results only, never touches packets — §4.1's
/// example of a read-only middlebox), alerts on every signature.
pub fn ids(id: MiddleboxId, signatures: &[Vec<u8>]) -> MiddleboxTemplate {
    let rules = numbered(RuleSpec::exact_set(signatures));
    let logic = RuleLogic::one_per_pattern(rules.len() as u16, MbAction::Alert);
    MiddleboxTemplate {
        profile: MiddleboxProfile::stateful(id).read_only(),
        name: format!("ids-{}", id.0),
        rules,
        logic,
    }
}

/// An intrusion *prevention* system: like the IDS but inline — it blocks,
/// so it is not read-only.
pub fn ips(id: MiddleboxId, signatures: &[Vec<u8>]) -> MiddleboxTemplate {
    let rules = numbered(RuleSpec::exact_set(signatures));
    let logic = RuleLogic::one_per_pattern(rules.len() as u16, MbAction::Block);
    MiddleboxTemplate {
        profile: MiddleboxProfile::stateful(id),
        name: format!("ips-{}", id.0),
        rules,
        logic,
    }
}

/// An anti-virus: stateless per-packet signature blocking (ClamAV-style).
pub fn antivirus(id: MiddleboxId, signatures: &[Vec<u8>]) -> MiddleboxTemplate {
    let rules = numbered(RuleSpec::exact_set(signatures));
    let logic = RuleLogic::one_per_pattern(rules.len() as u16, MbAction::Block);
    MiddleboxTemplate {
        profile: MiddleboxProfile::stateless(id),
        name: format!("av-{}", id.0),
        rules,
        logic,
    }
}

/// An L7 firewall: regex rules over headers (ModSecurity-style), blocking,
/// with a stopping condition — application-layer headers have bounded
/// length, the very §5.1 use case for stopping conditions.
pub fn l7_firewall(
    id: MiddleboxId,
    header_rules: &[String],
    header_limit: u64,
) -> MiddleboxTemplate {
    let rules = numbered(header_rules.iter().map(RuleSpec::regex).collect());
    let logic = RuleLogic::one_per_pattern(rules.len() as u16, MbAction::Block);
    MiddleboxTemplate {
        profile: MiddleboxProfile::stateless(id).with_stop(header_limit),
        name: format!("l7fw-{}", id.0),
        rules,
        logic,
    }
}

/// A traffic shaper: application tokens map to shaping classes
/// (PacketShaper-style). `apps` pairs a token with its class.
pub fn traffic_shaper(id: MiddleboxId, apps: &[(Vec<u8>, u8)]) -> MiddleboxTemplate {
    let rules = numbered(
        apps.iter()
            .map(|(t, _)| RuleSpec::exact(t.clone()))
            .collect(),
    );
    let logic = RuleLogic::new(
        apps.iter()
            .enumerate()
            .map(|(i, (_, class))| crate::logic::MbRule {
                id: i as u16,
                condition: crate::logic::Condition::Pattern(i as u16),
                action: MbAction::Shape(*class),
            })
            .collect(),
    );
    MiddleboxTemplate {
        profile: MiddleboxProfile::stateless(id),
        name: format!("shaper-{}", id.0),
        rules,
        logic,
    }
}

/// An L7 load balancer: URL prefixes steer to backend pools (F5-style).
pub fn l7_load_balancer(id: MiddleboxId, urls: &[(Vec<u8>, u8)]) -> MiddleboxTemplate {
    let rules = numbered(
        urls.iter()
            .map(|(u, _)| RuleSpec::exact(u.clone()))
            .collect(),
    );
    let logic = RuleLogic::new(
        urls.iter()
            .enumerate()
            .map(|(i, (_, backend))| crate::logic::MbRule {
                id: i as u16,
                condition: crate::logic::Condition::Pattern(i as u16),
                action: MbAction::Steer(*backend),
            })
            .collect(),
    );
    MiddleboxTemplate {
        // Load balancing only needs the request line: stop early.
        profile: MiddleboxProfile::stateless(id).with_stop(512),
        name: format!("l7lb-{}", id.0),
        rules,
        logic,
    }
}

/// A data-leakage-prevention middlebox (Check Point DLP in Table 1):
/// regex rules for structured secrets (card numbers, SSNs, internal
/// markers), blocking, stateful — a document leaks across many packets.
pub fn dlp(id: MiddleboxId) -> MiddleboxTemplate {
    let rules = numbered(vec![
        // 16-digit card number in 4-4-4-4 groups.
        RuleSpec::regex(r"\d{4}[- ]\d{4}[- ]\d{4}[- ]\d{4}"),
        // US SSN shape.
        RuleSpec::regex(r"\d{3}-\d{2}-\d{4}"),
        // Explicit internal markers (these have anchors and ride the
        // Aho-Corasick pre-filter).
        RuleSpec::exact(b"COMPANY-CONFIDENTIAL".to_vec()),
        RuleSpec::regex(r"BEGIN RSA PRIVATE KEY"),
    ]);
    let logic = RuleLogic::one_per_pattern(rules.len() as u16, MbAction::Block);
    MiddleboxTemplate {
        profile: MiddleboxProfile::stateful(id),
        name: format!("dlp-{}", id.0),
        rules,
        logic,
    }
}

/// A network-analytics middlebox (Qosmos in Table 1): protocol
/// identification by magic strings. Read-only (it only observes), with a
/// tight stopping condition — protocol magics live in the first bytes.
pub fn network_analytics(id: MiddleboxId) -> MiddleboxTemplate {
    let protos: &[&[u8]] = &[
        b"HTTP/1.",    // HTTP response
        b"GET / HTTP", // HTTP request (anchored enough for a demo)
        b"SSH-2.0",    // SSH banner
        b"BitTorrent protocol",
        b"RFB 003.",     // VNC
        b"\x16\x03\x01", // TLS ClientHello (as literal bytes below)
    ];
    let mut rules: Vec<RuleSpec> = protos[..5]
        .iter()
        .map(|p| RuleSpec::exact(p.to_vec()))
        .collect();
    rules.push(RuleSpec::exact(vec![0x16, 0x03, 0x01]));
    let rules = numbered(rules);
    let logic = RuleLogic::one_per_pattern(rules.len() as u16, MbAction::Alert);
    MiddleboxTemplate {
        profile: MiddleboxProfile::stateless(id).read_only().with_stop(64),
        name: format!("analytics-{}", id.0),
        rules,
        logic,
    }
}

/// An SNI filter: a TLS-only middlebox blocking by server name. It
/// subscribes to decoded TLS units exclusively (DESIGN.md §14), so it
/// never sees HTTP bodies or raw bytes — only the SNI host names the L7
/// layer extracts from ClientHellos.
pub fn sni_filter(id: MiddleboxId, blocked_hosts: &[Vec<u8>]) -> MiddleboxTemplate {
    let rules = numbered(RuleSpec::exact_set(blocked_hosts));
    let logic = RuleLogic::one_per_pattern(rules.len() as u16, MbAction::Block);
    MiddleboxTemplate {
        profile: MiddleboxProfile::stateless(id)
            .with_l7_protocols(dpi_core::ProtocolMask::only(&[dpi_core::L7Protocol::Tls])),
        name: format!("sni-filter-{}", id.0),
        rules,
        logic,
    }
}

/// A web application firewall: HTTP-only signatures over decoded
/// request/response payloads (headers and dechunked, decompressed
/// bodies). Stateful — a signature may span decoded body units.
pub fn waf(id: MiddleboxId, signatures: &[Vec<u8>]) -> MiddleboxTemplate {
    let rules = numbered(RuleSpec::exact_set(signatures));
    let logic = RuleLogic::one_per_pattern(rules.len() as u16, MbAction::Block);
    MiddleboxTemplate {
        profile: MiddleboxProfile::stateful(id)
            .with_l7_protocols(dpi_core::ProtocolMask::only(&[dpi_core::L7Protocol::Http1])),
        name: format!("waf-{}", id.0),
        rules,
        logic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServiceMiddlebox;
    use dpi_core::{DpiInstance, InstanceConfig};

    fn run_one(template: MiddleboxTemplate, payloads: &[&[u8]]) -> Vec<crate::logic::Verdict> {
        let id = template.profile.id;
        let cfg = InstanceConfig::new()
            .with_middlebox_numbered(template.profile, template.rules)
            .with_chain(1, vec![id]);
        let mut dpi = DpiInstance::new(cfg).unwrap();
        let mut mb = ServiceMiddlebox::new(id, &template.name, template.logic);
        payloads
            .iter()
            .map(|p| {
                let out = dpi.scan_payload(1, None, p).unwrap();
                mb.process(out.reports.iter().find(|r| r.middlebox_id == id.0))
            })
            .collect()
    }

    #[test]
    fn ids_profile_is_stateful_readonly() {
        let t = ids(MiddleboxId(1), &[b"sigsig".to_vec()]);
        assert!(t.profile.stateful && t.profile.read_only);
        let vs = run_one(t, &[b"a sigsig b"]);
        assert!(vs[0].forwards());
        assert_eq!(vs[0].fired, vec![0]);
    }

    #[test]
    fn ips_blocks_what_ids_alerts() {
        let t = ips(MiddleboxId(2), &[b"exploit".to_vec()]);
        assert!(!t.profile.read_only);
        let vs = run_one(t, &[b"an exploit here", b"benign"]);
        assert!(vs[0].block);
        assert!(vs[1].forwards());
    }

    #[test]
    fn firewall_regexes_with_header_limit() {
        let t = l7_firewall(MiddleboxId(3), &[r"X-Evil-Header:\s*true".to_string()], 128);
        assert_eq!(t.profile.stopping_condition, Some(128));
        let vs = run_one(
            t,
            &[
                b"GET / HTTP/1.1\r\nX-Evil-Header: true\r\n\r\n".as_slice(),
                b"GET / HTTP/1.1\r\nHost: fine\r\n\r\n",
            ],
        );
        assert!(vs[0].block);
        assert!(vs[1].forwards());
    }

    #[test]
    fn shaper_assigns_classes() {
        let t = traffic_shaper(
            MiddleboxId(4),
            &[(b"bittorrent".to_vec(), 1), (b"netflix-stream".to_vec(), 3)],
        );
        let vs = run_one(t, &[b"netflix-stream chunk", b"plain web"]);
        assert_eq!(vs[0].shape, Some(3));
        assert_eq!(vs[1].shape, None);
    }

    #[test]
    fn dlp_blocks_leaks_with_and_without_anchors() {
        let t = dlp(MiddleboxId(6));
        assert!(t.profile.stateful);
        let vs = run_one(
            t,
            &[
                b"invoice total $99".as_slice(),
                b"card: 4111 1111 1111 1111 exp 11/29",
                b"ssn 078-05-1120 on file",
                b"doc marked COMPANY-CONFIDENTIAL v2",
            ],
        );
        assert!(vs[0].forwards());
        assert!(vs[1].block, "card number must block");
        assert!(vs[2].block, "ssn must block");
        assert!(vs[3].block, "marker must block");
    }

    #[test]
    fn analytics_identifies_protocols_readonly() {
        let t = network_analytics(MiddleboxId(7));
        assert!(t.profile.read_only);
        assert_eq!(t.profile.stopping_condition, Some(64));
        let vs = run_one(
            t,
            &[
                b"SSH-2.0-OpenSSH_8.9".as_slice(),
                &[0x16, 0x03, 0x01, 0x02, 0x00, 0x01],
                b"completely unknown protocol",
            ],
        );
        assert_eq!(vs[0].fired, vec![2]); // SSH rule id
        assert_eq!(vs[1].fired, vec![5]); // TLS rule id
        assert!(vs[2].fired.is_empty());
        assert!(vs.iter().all(|v| v.forwards()));
    }

    #[test]
    fn load_balancer_steers_by_url() {
        let t = l7_load_balancer(
            MiddleboxId(5),
            &[(b"GET /api/".to_vec(), 1), (b"GET /static/".to_vec(), 2)],
        );
        let vs = run_one(t, &[b"GET /static/logo.png HTTP/1.1"]);
        assert_eq!(vs[0].steer, Some(2));
    }
}
