//! A larger assembled deployment: six middlebox types from Table 1, three
//! policy chains, mixed traffic — checking global conservation properties
//! rather than single behaviours.

use dpi_service::ac::MiddleboxId;
use dpi_service::middlebox::{
    antivirus, dlp, ids, l7_firewall, l7_load_balancer, network_analytics,
};
use dpi_service::packet::ipv4::IpProtocol;
use dpi_service::packet::packet::flow;
use dpi_service::traffic::trace::TraceConfig;
use dpi_service::SystemBuilder;

const IDS_ID: MiddleboxId = MiddleboxId(1);
const AV_ID: MiddleboxId = MiddleboxId(2);
const FW_ID: MiddleboxId = MiddleboxId(3);
const LB_ID: MiddleboxId = MiddleboxId(4);
const AN_ID: MiddleboxId = MiddleboxId(5);
const DLP_ID: MiddleboxId = MiddleboxId(6);

#[test]
fn six_middleboxes_three_chains_conserve_packets() {
    let signatures = vec![b"attack-sig-0001".to_vec(), b"attack-sig-0002".to_vec()];
    let viruses = vec![b"virus-body-0001".to_vec()];

    let mut sys = SystemBuilder::new()
        .with_middlebox(ids(IDS_ID, &signatures))
        .with_middlebox(antivirus(AV_ID, &viruses))
        .with_middlebox(l7_firewall(FW_ID, &[r"X-Block-Me:\s*yes".to_string()], 256))
        .with_middlebox(l7_load_balancer(
            LB_ID,
            &[(b"GET /api/".to_vec(), 1), (b"GET /static/".to_vec(), 2)],
        ))
        .with_middlebox(network_analytics(AN_ID))
        .with_middlebox(dlp(DLP_ID))
        // Chain 1: the full security gauntlet.
        .with_chain(&[AN_ID, IDS_ID, FW_ID, AV_ID, DLP_ID])
        // Chain 2: web serving path.
        .with_chain(&[LB_ID])
        // Chain 3: detection only.
        .with_chain(&[IDS_ID])
        .build()
        .expect("system builds");

    // Mixed traffic on one flow through chain 1 (the first-installed
    // ingress rule; chain selection per traffic class is the TSA's
    // concern and covered elsewhere).
    let f = flow([10, 1, 0, 1], 40000, [10, 2, 0, 1], 80, IpProtocol::Tcp);
    let benign = TraceConfig {
        packets: 120,
        match_density: 0.0,
        seed: 5,
        ..TraceConfig::default()
    }
    .generate(&[]);

    let mut sent = 0u64;
    let mut expect_blocked = 0u64;
    for (i, payload) in benign.iter().enumerate() {
        let mut payload = payload.clone();
        match i % 8 {
            0 => {
                payload[..15].copy_from_slice(b"attack-sig-0001"); // IDS alert only
            }
            1 => {
                payload[..15].copy_from_slice(b"virus-body-0001"); // AV blocks
                expect_blocked += 1;
            }
            2 => {
                let hdr = b"X-Block-Me: yes";
                payload[..hdr.len()].copy_from_slice(hdr); // FW blocks
                expect_blocked += 1;
            }
            3 => {
                let card = b"4111 1111 1111 1111";
                payload[..card.len()].copy_from_slice(card); // DLP blocks
                expect_blocked += 1;
            }
            _ => {}
        }
        sys.send(f, (i as u32) * 1500, &payload);
        sent += 1;
    }

    // Conservation: every sent packet either arrived or was blocked.
    let delivered = sys.sink.count() as u64;
    assert_eq!(
        delivered + expect_blocked,
        sent,
        "every packet must be delivered or accounted blocked"
    );
    // Every middlebox on chain 1 processed every packet that reached it.
    let an = sys.stats_of(AN_ID).unwrap();
    assert_eq!(an.packets, sent, "first element sees everything");
    let ids_stats = sys.stats_of(IDS_ID).unwrap();
    assert_eq!(ids_stats.rules_fired, (sent as usize).div_ceil(8) as u64);
    // The DPI service scanned each packet exactly once.
    assert_eq!(sys.dpi_telemetry().packets, sent);
    // Nothing leaked to unconnected ports.
    assert!(sys.net.dropped_at_edge.is_empty());
    // Nobody but the DPI service touched payload bytes.
    for id in [IDS_ID, AV_ID, FW_ID, LB_ID, AN_ID, DLP_ID] {
        assert_eq!(sys.stats_of(id).unwrap().bytes_self_scanned, 0);
    }
}

#[test]
fn analytics_stopping_condition_limits_scan_depth() {
    // AN-only chain: the 64-byte stopping condition caps scanned bytes.
    let mut sys = SystemBuilder::new()
        .with_middlebox(network_analytics(AN_ID))
        .with_chain(&[AN_ID])
        .build()
        .expect("system builds");
    let f = flow([10, 1, 0, 2], 40001, [10, 2, 0, 2], 80, IpProtocol::Tcp);
    let big = vec![b'x'; 1400];
    sys.send(f, 0, &big);
    let t = sys.dpi_telemetry();
    assert_eq!(t.bytes, 64, "scan must stop at the stopping condition");
}
