//! Synthetic packet-payload traces.
//!
//! Substitutes for the paper's two traces (§6.2): an HTTP crawl of popular
//! websites and a campus wireless tap. The shape that matters for DPI
//! throughput is the payload size distribution and the *match density*:
//! "in both traces we used, more than 90% of the packets have no matches"
//! (§6.5). Both are explicit parameters here.

use crate::patterns;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What kind of payload bytes to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// HTTP-like requests/responses: headers, HTML-ish text (the Alexa
    /// crawl stand-in).
    Http,
    /// Mixed binary/text (the campus-trace stand-in).
    Campus,
}

/// Trace generator configuration.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Payload flavour.
    pub kind: TraceKind,
    /// Number of packet payloads.
    pub packets: usize,
    /// Smallest payload in bytes.
    pub min_payload: usize,
    /// Largest payload in bytes.
    pub max_payload: usize,
    /// Fraction of packets that get a pattern planted into them
    /// (the paper's traces sit below 0.1).
    pub match_density: f64,
    /// Average number of pattern *prefixes* (near misses) spliced into
    /// each packet. Real traffic constantly brushes against signature
    /// prefixes — protocol keywords, common byte runs — which is what
    /// makes Aho-Corasick throughput fall as the pattern set (and thus
    /// the set of automaton rows the scan touches) grows. Zero keeps the
    /// trace maximally benign.
    pub prefix_density: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            kind: TraceKind::Http,
            packets: 1000,
            min_payload: 200,
            max_payload: 1400,
            match_density: 0.05,
            prefix_density: 0.0,
            seed: 42,
        }
    }
}

const HTTP_FRAGMENTS: &[&str] = &[
    "GET /index.html HTTP/1.1\r\nHost: www.example.com\r\n",
    "HTTP/1.1 200 OK\r\nContent-Type: text/html; charset=utf-8\r\n",
    "<html><head><title>Welcome</title></head><body>",
    "<div class=\"content\"><p>Lorem ipsum dolor sit amet, consectetur",
    "function init() { var x = document.getElementById('main'); }",
    "Accept-Encoding: gzip, deflate\r\nConnection: keep-alive\r\n",
    "<a href=\"/products/view?id=1234\">See more</a></div>",
    "Cache-Control: max-age=3600\r\nServer: nginx/1.14.0\r\n",
    "adipiscing elit sed do eiusmod tempor incididunt ut labore ",
    "<img src=\"/static/logo.png\" alt=\"logo\" width=\"120\"/>",
];

impl TraceConfig {
    /// Generates the payloads. When `plant` is non-empty, a
    /// `match_density` fraction of packets receive one pattern from
    /// `plant` spliced in at a random offset.
    pub fn generate(&self, plant: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5452414345); // "TRACE"
        let mut out = Vec::with_capacity(self.packets);
        for _ in 0..self.packets {
            let len = if self.min_payload >= self.max_payload {
                self.min_payload
            } else {
                rng.gen_range(self.min_payload..=self.max_payload)
            };
            let mut payload = match self.kind {
                TraceKind::Http => http_payload(&mut rng, len),
                TraceKind::Campus => campus_payload(&mut rng, len),
            };
            if !plant.is_empty() && rng.gen_bool(self.match_density.clamp(0.0, 1.0)) {
                let p = &plant[rng.gen_range(0..plant.len())];
                if p.len() <= payload.len() {
                    let off = rng.gen_range(0..=payload.len() - p.len());
                    payload[off..off + p.len()].copy_from_slice(p);
                }
            }
            if !plant.is_empty() && self.prefix_density > 0.0 {
                // Poisson-ish: floor(count) splices plus one more with the
                // fractional probability.
                let mut n = self.prefix_density.floor() as usize;
                if rng.gen_bool((self.prefix_density - n as f64).clamp(0.0, 1.0)) {
                    n += 1;
                }
                for _ in 0..n {
                    let p = &plant[rng.gen_range(0..plant.len())];
                    if p.len() < 6 {
                        continue;
                    }
                    // A proper prefix, at least 4 bytes, never the whole
                    // pattern (near miss, not a match).
                    let take = rng.gen_range(4..p.len());
                    if take <= payload.len() {
                        let off = rng.gen_range(0..=payload.len() - take);
                        payload[off..off + take].copy_from_slice(&p[..take]);
                    }
                }
            }
            out.push(payload);
        }
        out
    }

    /// Total bytes a generated trace will carry (after generation).
    pub fn total_bytes(payloads: &[Vec<u8>]) -> usize {
        payloads.iter().map(|p| p.len()).sum()
    }
}

fn http_payload(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut p = Vec::with_capacity(len);
    while p.len() < len {
        let frag = HTTP_FRAGMENTS[rng.gen_range(0..HTTP_FRAGMENTS.len())].as_bytes();
        p.extend_from_slice(frag);
    }
    p.truncate(len);
    p
}

fn campus_payload(rng: &mut StdRng, len: usize) -> Vec<u8> {
    // Roughly half text, half binary chunks, like a mixed campus tap.
    let mut p = Vec::with_capacity(len);
    while p.len() < len {
        if rng.gen_bool(0.5) {
            let frag = HTTP_FRAGMENTS[rng.gen_range(0..HTTP_FRAGMENTS.len())].as_bytes();
            p.extend_from_slice(frag);
        } else {
            let n = rng.gen_range(16..128usize).min(len - p.len() + 16);
            let start = p.len();
            p.resize(start + n, 0);
            rng.fill(&mut p[start..]);
        }
    }
    p.truncate(len);
    p
}

/// Builds a complexity-attack payload (§4.3.1): a stream of pattern
/// *prefixes* (last byte chopped) that drags the automaton into deep
/// states without completing matches — the cache-hostile traffic MCA²
/// diverts to dedicated instances.
pub fn heavy_payload(patterns: &[Vec<u8>], len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x48454156); // "HEAV"
    let mut p = Vec::with_capacity(len);
    let candidates: Vec<&Vec<u8>> = patterns.iter().filter(|p| p.len() >= 5).collect();
    if candidates.is_empty() {
        // Degenerate pattern set: fall back to random bytes.
        let mut v = vec![0u8; len];
        rng.fill(&mut v[..]);
        return v;
    }
    while p.len() < len {
        let pat = candidates[rng.gen_range(0..candidates.len())];
        let cut = pat.len() - 1;
        p.extend_from_slice(&pat[..cut]);
    }
    p.truncate(len);
    p
}

/// A quick default HTTP trace used by examples: `packets` payloads with
/// the paper's <10% match density against `plant`.
pub fn default_http_trace(packets: usize, plant: &[Vec<u8>], seed: u64) -> Vec<Vec<u8>> {
    TraceConfig {
        packets,
        seed,
        ..TraceConfig::default()
    }
    .generate(plant)
}

/// Convenience wrapper giving the standard Snort-like plant set.
pub fn http_trace_with_snort_plants(packets: usize, seed: u64) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let pats = patterns::snort_like(1000, seed);
    let trace = default_http_trace(packets, &pats, seed.wrapping_add(1));
    (trace, pats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic() {
        let cfg = TraceConfig::default();
        assert_eq!(cfg.generate(&[]), cfg.generate(&[]));
    }

    #[test]
    fn payload_lengths_respect_bounds() {
        let cfg = TraceConfig {
            packets: 200,
            min_payload: 64,
            max_payload: 256,
            ..TraceConfig::default()
        };
        for p in cfg.generate(&[]) {
            assert!(p.len() >= 64 && p.len() <= 256);
        }
    }

    #[test]
    fn match_density_controls_planting() {
        let plant = vec![b"UNIQUEPLANTEDPATTERN".to_vec()];
        let dense = TraceConfig {
            packets: 400,
            match_density: 0.5,
            ..TraceConfig::default()
        }
        .generate(&plant);
        let sparse = TraceConfig {
            packets: 400,
            match_density: 0.0,
            ..TraceConfig::default()
        }
        .generate(&plant);
        let count = |trace: &[Vec<u8>]| {
            trace
                .iter()
                .filter(|p| p.windows(plant[0].len()).any(|w| w == plant[0].as_slice()))
                .count()
        };
        assert_eq!(count(&sparse), 0);
        let hits = count(&dense);
        assert!(
            (120..=280).contains(&hits),
            "expected ~200 planted packets, got {hits}"
        );
    }

    #[test]
    fn zero_density_matches_paper_statement_inverse() {
        // With the default 5% density, >90% of packets must be clean.
        let plant = vec![b"XYZZYPLUGHPATTERN".to_vec()];
        let trace = TraceConfig {
            packets: 1000,
            ..TraceConfig::default()
        }
        .generate(&plant);
        let clean = trace
            .iter()
            .filter(|p| !p.windows(plant[0].len()).any(|w| w == plant[0].as_slice()))
            .count();
        assert!(clean > 900);
    }

    #[test]
    fn heavy_payload_is_made_of_prefixes() {
        let pats = crate::patterns::snort_like(50, 3);
        let hp = heavy_payload(&pats, 4096, 9);
        assert_eq!(hp.len(), 4096);
        // No complete pattern may appear… statistically; at minimum the
        // payload must start with a pattern prefix.
        let starts_with_prefix = pats
            .iter()
            .any(|p| p.len() >= 5 && hp.starts_with(&p[..p.len() - 1]));
        assert!(starts_with_prefix);
    }

    #[test]
    fn heavy_payload_handles_degenerate_sets() {
        let hp = heavy_payload(&[b"ab".to_vec()], 128, 1);
        assert_eq!(hp.len(), 128);
    }
}
