//! Synthetic Snort-like and ClamAV-like pattern sets.
//!
//! The generators reproduce the structural statistics the paper's
//! experiments depend on (§6.2: "exact-match patterns of length eight
//! characters or more from Snort (up to 4,356 patterns) and Clam-AV
//! (31,827 patterns)"):
//!
//! * Snort-like patterns are mostly printable protocol/exploit keywords,
//!   8–32 bytes, organized in *families* that share 4–10 byte prefixes
//!   (Snort rules cluster around protocol verbs and exploit stubs, which
//!   is what gives its AC automaton prefix sharing).
//! * ClamAV-like patterns are binary signature fragments, 8–64 bytes,
//!   nearly uniform bytes with little sharing (virus signatures are hashes
//!   of code sections).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic pattern set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternSetSpec {
    /// Number of patterns to generate.
    pub count: usize,
    /// Minimum pattern length (inclusive). The paper filters at 8.
    pub min_len: usize,
    /// Maximum pattern length (inclusive).
    pub max_len: usize,
    /// RNG seed; equal specs with equal seeds are byte-identical.
    pub seed: u64,
}

/// Published size of the full Snort exact-match set the paper uses.
pub const SNORT_FULL_COUNT: usize = 4356;
/// Published size of the ClamAV set the paper uses.
pub const CLAMAV_FULL_COUNT: usize = 31827;

const KEYWORDS: &[&str] = &[
    "GET /",
    "POST /",
    "HEAD /",
    "Host: ",
    "User-Agent:",
    "Content-Type",
    "cmd.exe",
    "/bin/sh",
    "SELECT ",
    "UNION ALL",
    "<script>",
    "javascript:",
    "powershell",
    "wget http",
    "curl -s",
    "/etc/passwd",
    "admin.php",
    "eval(base64",
    "document.cookie",
    "xp_cmdshell",
    "DROP TABLE",
    "onmouseover=",
    "%u9090%u6858",
    "\\x90\\x90\\x90",
    "shellcode",
    "Authorization:",
    "Proxy-Conn",
    "multipart/",
    "filename=",
    ".htaccess",
];

/// Generates a Snort-like exact-match pattern set.
///
/// Patterns are grouped into families of up to eight members sharing a
/// keyword-derived prefix; suffixes are printable ASCII. Duplicates are
/// avoided so `count` distinct patterns are always returned.
pub fn snort_like(count: usize, seed: u64) -> Vec<Vec<u8>> {
    let spec = PatternSetSpec {
        count,
        min_len: 8,
        max_len: 32,
        seed,
    };
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x534e4f5254); // "SNORT"
    let mut out = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::new();
    while out.len() < count {
        // Pick a family prefix: a keyword, possibly truncated.
        let kw = KEYWORDS[rng.gen_range(0..KEYWORDS.len())].as_bytes();
        let family = rng.gen_range(0..count.max(8) / 4 + 1);
        let members = rng.gen_range(1..=8usize);
        for m in 0..members {
            if out.len() >= count {
                break;
            }
            let target_len = rng.gen_range(spec.min_len..=spec.max_len);
            // The shared keyword prefix must leave room for the
            // family/member marker: a pattern that IS a bare protocol
            // keyword would light up on all benign traffic, which real
            // Snort signatures (and therefore this generator) avoid.
            let marker = format!("{family:x}{m:x}");
            let prefix_cap = target_len.saturating_sub(marker.len()).max(4);
            let prefix_len = rng.gen_range(4..=kw.len().min(10).min(prefix_cap));
            let mut p = Vec::with_capacity(target_len);
            p.extend_from_slice(&kw[..prefix_len]);
            p.extend_from_slice(marker.as_bytes());
            while p.len() < target_len {
                // Printable ASCII body.
                p.push(rng.gen_range(0x21..=0x7e));
            }
            p.truncate(target_len.max(prefix_len + marker.len()));
            if seen.insert(p.clone()) {
                out.push(p);
            }
        }
    }
    out
}

/// Generates a ClamAV-like binary signature set: near-uniform bytes,
/// 8–64 long, essentially no prefix sharing.
pub fn clamav_like(count: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x434c414d); // "CLAM"
    let mut out = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::new();
    while out.len() < count {
        let len = rng.gen_range(8..=64usize);
        let mut p = vec![0u8; len];
        rng.fill(&mut p[..]);
        if seen.insert(p.clone()) {
            out.push(p);
        }
    }
    out
}

/// Splits a pattern set into two disjoint random halves — the paper's
/// Snort1/Snort2 construction: "we took the patterns of Snort and randomly
/// divided them into two sets" (§6.4). The published split is 2,500 and
/// 1,856 patterns; pass `left` to control the first half's size.
pub fn split_set(patterns: &[Vec<u8>], left: usize, seed: u64) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x53504c49); // "SPLI"
    let mut idx: Vec<usize> = (0..patterns.len()).collect();
    // Fisher-Yates shuffle.
    for i in (1..idx.len()).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    let left = left.min(patterns.len());
    let a = idx[..left].iter().map(|&i| patterns[i].clone()).collect();
    let b = idx[left..].iter().map(|&i| patterns[i].clone()).collect();
    (a, b)
}

/// Generates Snort-like regular-expression rules with extractable anchors
/// (§5.3): `<kw1>\s*<kw2>\d{1,5}` shapes, where the keywords are ≥ 4 bytes.
pub fn snort_like_regexes(count: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x52454758); // "REGX"
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let k1 = KEYWORDS[rng.gen_range(0..KEYWORDS.len())].replace(
            ['\\', '/', ' ', ':', '%', '.', '<', '>', '(', ')', '=', '-'],
            "",
        );
        let k2 = KEYWORDS[rng.gen_range(0..KEYWORDS.len())].replace(
            ['\\', '/', ' ', ':', '%', '.', '<', '>', '(', ')', '=', '-'],
            "",
        );
        let k1 = if k1.len() < 4 {
            format!("anchor{i:04}")
        } else {
            k1
        };
        let k2 = if k2.len() < 4 {
            format!("tail{i:04}")
        } else {
            k2
        };
        let shape = rng.gen_range(0..3);
        out.push(match shape {
            0 => format!(r"{k1}{i:03}\s*{k2}\d+"),
            1 => format!(r"{k1}{i:03}[a-z]{{1,8}}{k2}"),
            _ => format!(r"{k1}{i:03}.*{k2}end"),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snort_like_is_deterministic_and_sized() {
        let a = snort_like(500, 7);
        let b = snort_like(500, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(a.iter().all(|p| p.len() >= 8 && p.len() <= 32));
        // All distinct.
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(snort_like(100, 1), snort_like(100, 2));
    }

    #[test]
    fn snort_like_has_prefix_sharing() {
        // Count patterns sharing their first 4 bytes with another pattern;
        // families should make this common.
        let ps = snort_like(1000, 3);
        let mut prefixes = std::collections::HashMap::new();
        for p in &ps {
            *prefixes.entry(&p[..4]).or_insert(0usize) += 1;
        }
        let shared: usize = prefixes.values().filter(|&&c| c > 1).sum();
        assert!(shared > 500, "only {shared} patterns share 4-byte prefixes");
    }

    #[test]
    fn clamav_like_is_binaryish_and_unshared() {
        let ps = clamav_like(1000, 9);
        assert_eq!(ps.len(), 1000);
        assert!(ps.iter().all(|p| p.len() >= 8 && p.len() <= 64));
        // Low prefix sharing: almost all 4-byte prefixes unique.
        let prefixes: std::collections::HashSet<_> = ps.iter().map(|p| &p[..4]).collect();
        assert!(prefixes.len() > 990);
        // Bytes are spread over the whole space, not just ASCII.
        let non_ascii = ps
            .iter()
            .flat_map(|p| p.iter())
            .filter(|&&b| !(0x20..0x7f).contains(&b))
            .count();
        let total: usize = ps.iter().map(|p| p.len()).sum();
        assert!(non_ascii * 2 > total, "{non_ascii}/{total} non-printable");
    }

    #[test]
    fn split_is_a_partition() {
        let ps = snort_like(300, 11);
        let (a, b) = split_set(&ps, 120, 5);
        assert_eq!(a.len(), 120);
        assert_eq!(b.len(), 180);
        let mut rejoined: Vec<_> = a.iter().chain(b.iter()).cloned().collect();
        rejoined.sort();
        let mut orig = ps.clone();
        orig.sort();
        assert_eq!(rejoined, orig);
    }

    #[test]
    fn regex_rules_compile_and_have_anchors() {
        for r in snort_like_regexes(50, 13) {
            let re = dpi_regex::Regex::new(&r).unwrap_or_else(|e| panic!("{r}: {e}"));
            assert!(
                !re.anchors().is_empty(),
                "rule {r} should have extractable anchors"
            );
        }
    }
}
