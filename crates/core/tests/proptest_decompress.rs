//! Property tests for the DEFLATE substrate and the decompress-once path.

use dpi_core::{
    deflate_fixed, deflate_stored, gunzip, gzip, inflate, DpiInstance, InflateError,
    InstanceConfig, MiddleboxId, MiddleboxProfile, RuleSpec,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn stored_round_trips(data in prop::collection::vec(any::<u8>(), 0..5000)) {
        let z = deflate_stored(&data);
        prop_assert_eq!(inflate(&z, data.len() + 1).unwrap(), data);
    }

    #[test]
    fn fixed_round_trips(data in prop::collection::vec(any::<u8>(), 0..5000)) {
        let z = deflate_fixed(&data);
        prop_assert_eq!(inflate(&z, data.len() + 1).unwrap(), data);
    }

    #[test]
    fn runs_round_trip_and_shrink(byte in any::<u8>(), n in 1usize..4000, pad in prop::collection::vec(any::<u8>(), 0..32)) {
        let mut data = pad.clone();
        data.extend(std::iter::repeat_n(byte, n));
        data.extend(pad.iter().rev());
        let z = deflate_fixed(&data);
        prop_assert_eq!(inflate(&z, data.len() + 1).unwrap(), data);
    }

    #[test]
    fn inflate_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = inflate(&bytes, 1 << 16);
    }

    #[test]
    fn gzip_round_trips_and_gunzip_never_panics(
        data in prop::collection::vec(any::<u8>(), 0..2000),
        garbage in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let z = gzip(&data);
        prop_assert_eq!(gunzip(&z, data.len() + 1).unwrap(), data);
        let _ = gunzip(&garbage, 1 << 16);
    }

    #[test]
    fn output_limit_is_respected(data in prop::collection::vec(any::<u8>(), 64..2000), limit in 0usize..64) {
        // Limit strictly below the decompressed size must error, and the
        // error must be OutputLimit (not a panic or wrong variant).
        let z = deflate_fixed(&data);
        prop_assert_eq!(inflate(&z, limit).unwrap_err(), InflateError::OutputLimit);
    }
}

#[test]
fn instance_scans_decompressed_content_once() {
    const MB1: MiddleboxId = MiddleboxId(1);
    const MB2: MiddleboxId = MiddleboxId(2);
    let cfg = InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateless(MB1),
            vec![RuleSpec::exact(b"hidden-sig".to_vec())],
        )
        .with_middlebox(
            MiddleboxProfile::stateless(MB2),
            vec![RuleSpec::exact(b"hidden-sig".to_vec())],
        )
        .with_chain(1, vec![MB1, MB2]);
    let mut dpi = DpiInstance::new(cfg).unwrap();

    let plain = b"some page body with hidden-sig inside".to_vec();
    let compressed = deflate_fixed(&plain);
    // The signature is invisible in the compressed bytes…
    assert!(!compressed
        .windows(10)
        .any(|w| w == b"hidden-sig".as_slice()));
    let out = dpi.scan_payload(1, None, &compressed).unwrap();
    assert!(out.reports.is_empty());

    // …but the decompress-once path finds it for BOTH middleboxes with a
    // single inflation.
    let out = dpi
        .scan_payload_deflated(1, None, &compressed, 1 << 16)
        .unwrap();
    assert_eq!(out.reports.len(), 2);
    let t = dpi.telemetry();
    assert_eq!(t.decompressions, 1);
    assert_eq!(t.decompressed_bytes, plain.len() as u64);
}

#[test]
fn instance_scans_gzip_bodies() {
    const MB: MiddleboxId = MiddleboxId(1);
    let cfg = InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateless(MB),
            vec![RuleSpec::exact(b"gzip-hidden-sig".to_vec())],
        )
        .with_chain(1, vec![MB]);
    let mut dpi = DpiInstance::new(cfg).unwrap();
    let body = gzip(b"response body with gzip-hidden-sig inside");
    let out = dpi.scan_payload_gzip(1, None, &body, 1 << 16).unwrap();
    assert_eq!(out.reports.len(), 1);
    // Corrupted trailer is rejected, not scanned.
    let mut bad = body.clone();
    let n = bad.len();
    bad[n - 2] ^= 0xff;
    assert!(matches!(
        dpi.scan_payload_gzip(1, None, &bad, 1 << 16),
        Err(dpi_core::InstanceError::BadGzipPayload(_))
    ));
}

#[test]
fn zip_bomb_is_rejected_with_error() {
    const MB: MiddleboxId = MiddleboxId(1);
    let cfg = InstanceConfig::new()
        .with_middlebox(MiddleboxProfile::stateless(MB), vec![])
        .with_chain(1, vec![MB]);
    let mut dpi = DpiInstance::new(cfg).unwrap();
    let bomb = deflate_fixed(&vec![b'B'; 1_000_000]);
    // ~2.6 bytes per 259-byte run: ≈100× expansion on the wire.
    assert!(bomb.len() < 32_000, "bomb must be small on the wire");
    let err = dpi
        .scan_payload_deflated(1, None, &bomb, 64 * 1024)
        .unwrap_err();
    assert!(matches!(
        err,
        dpi_core::InstanceError::BadCompressedPayload(InflateError::OutputLimit)
    ));
}
