//! Deterministic tenant-fairness burst scenario (DESIGN.md §16).
//!
//! A chaos `burst_traffic` fault amplifies *one* tenant's offered load —
//! the attacker — while a victim tenant keeps sending a steady trickle
//! into the same overloaded instance. Weighted-fair shedding must make
//! the attacker absorb its own burst:
//!
//! * the victim's shed count stays at its no-burst baseline (zero),
//! * the victim's per-batch verdict timeline — its contribution to each
//!   batch's output queue — is identical to the baseline run, including
//!   at the p99,
//! * every shed the trace ring records names the attacker; the shed
//!   timeline reconstructed from `BatchStart`/`TenantShed` events
//!   accounts for exactly the attacker's telemetry total.
//!
//! The chaos seed comes from `DPI_CHAOS_SEED` (CI sweeps 1/7/42); the
//! burst windows are ordinal-scripted, so every assertion holds for any
//! seed.

use dpi_service::ac::MiddleboxId;
use dpi_service::core::chaos::FaultPlan;
use dpi_service::core::overload::{OverloadPolicy, ShedMode};
use dpi_service::core::TenantId;
use dpi_service::middlebox::antivirus;
use dpi_service::packet::ipv4::IpProtocol;
use dpi_service::packet::packet::flow;
use dpi_service::packet::{FlowKey, MacAddr, Packet};
use dpi_service::{SystemBuilder, SystemHandle, TraceKind, TraceSource};

const MB_ATTACKER: MiddleboxId = MiddleboxId(1);
const MB_VICTIM: MiddleboxId = MiddleboxId(2);
const SIG_ATTACKER: &[u8] = b"attack-sig";
const SIG_VICTIM: &[u8] = b"victim-sig";
const ATTACKER: TenantId = TenantId(1);
const VICTIM: TenantId = TenantId(2);

/// Attacker source packets per round; each is further amplified by the
/// chaos burst multiplier in the burst run.
const SRC_PER_ROUND: usize = 8;
const ROUNDS: usize = 12;
const BURST_FACTOR: u32 = 4;
const SEED: u64 = 42;

fn seed() -> u64 {
    std::env::var("DPI_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SEED)
}

fn archive_fault_log(sys: &SystemHandle, name: &str) {
    if let Ok(dir) = std::env::var("DPI_CHAOS_LOG_DIR") {
        let _ = std::fs::create_dir_all(&dir);
        let path = format!("{dir}/{name}-seed-{}.log", seed());
        let _ = std::fs::write(path, sys.fault_log().join("\n"));
    }
}

fn build(workers: usize, burst: bool) -> SystemHandle {
    let mut b = SystemBuilder::new()
        .with_middlebox(antivirus(MB_ATTACKER, &[SIG_ATTACKER.to_vec()]).owned_by(ATTACKER))
        .with_middlebox(antivirus(MB_VICTIM, &[SIG_VICTIM.to_vec()]).owned_by(VICTIM))
        .with_chain(&[MB_ATTACKER])
        .with_chain(&[MB_VICTIM])
        .with_dpi_workers(workers)
        .with_overload_policy(OverloadPolicy::queue_only(1, 0).with_shed(ShedMode::FailOpen));
    if burst {
        // Amplify the first 3 of every 8 attacker source packets 4×.
        b = b.with_chaos(FaultPlan::new(seed()).burst_traffic(BURST_FACTOR, 8, 3));
    }
    b.build().expect("system builds")
}

fn flow_on_shard_of(sys: &SystemHandle, base_port: u16, shard: usize) -> FlowKey {
    (0u16..512)
        .map(|j| {
            flow(
                [10, 0, 0, 1],
                base_port + j,
                [10, 0, 0, 2],
                80,
                IpProtocol::Tcp,
            )
        })
        .find(|f| sys.scanner.shard_of(f) == shard)
        .expect("some flow hashes to the target shard")
}

fn tagged(sys: &SystemHandle, f: FlowKey, chain_slot: usize, seq: u32, payload: &[u8]) -> Packet {
    let mut p = Packet::tcp(
        MacAddr::local(1),
        MacAddr::local(2),
        f,
        seq,
        payload.to_vec(),
    );
    p.push_chain_tag(sys.chain_ids[chain_slot]).unwrap();
    p
}

/// What one run looked like, from the victim's side of the fence.
struct RunOutcome {
    /// Victim verdicts per batch — the victim's contribution to each
    /// batch's result queue.
    victim_verdicts_per_batch: Vec<u64>,
    victim_shed: u64,
    victim_packets: u64,
    attacker_shed: u64,
    /// `(batch_idx, tenant) -> packets` reconstructed from the trace
    /// ring, aggregated per batch: the per-shard `TenantShed` deltas of
    /// one batch land in scheduler order, but their per-batch sum is
    /// deterministic.
    shed_timeline: Vec<((usize, u16), u64)>,
    burst_windows: u64,
}

/// Drives `ROUNDS` batches: the attacker offers `SRC_PER_ROUND` source
/// packets (each replicated by the chaos send multiplier, when armed)
/// followed by one victim packet on the same shard. The victim flow
/// shares a shard with the attacker flow, so the victim sits far below
/// its fair share on every shard it touches.
fn run(workers: usize, burst: bool) -> RunOutcome {
    let mut sys = build(workers, burst);
    let attacker_flow = flow_on_shard_of(&sys, 1000, 0);
    let victim_shard = sys.scanner.shard_of(&attacker_flow);
    let victim_flow = flow_on_shard_of(&sys, 2000, victim_shard);

    let attacker_payload = [b"aaaa ", SIG_ATTACKER, b" aaaa"].concat();
    let victim_payload = [b"vvvv ", SIG_VICTIM, b" vvvv"].concat();

    let mut victim_verdicts_per_batch = Vec::with_capacity(ROUNDS);
    let mut seq = 0u32;
    for _ in 0..ROUNDS {
        let mut batch = Vec::new();
        for _ in 0..SRC_PER_ROUND {
            let copies = sys.chaos.as_ref().map(|c| c.send_multiplier()).unwrap_or(1);
            for _ in 0..copies {
                batch.push(tagged(&sys, attacker_flow, 0, seq, &attacker_payload));
                seq += 1;
            }
        }
        batch.push(tagged(&sys, victim_flow, 1, seq, &victim_payload));
        seq += 1;
        let results = sys.inspect_batch(&mut batch);
        let victim = results.iter().filter(|r| r.flow == victim_flow).count() as u64;
        victim_verdicts_per_batch.push(victim);
    }

    // Reconstruct the shed timeline from the trace ring: the scanner
    // records one `BatchStart` per batch, and every weighted-fair shed
    // lands as a `TenantShed` between that batch's start and end.
    let mut sheds: std::collections::BTreeMap<(usize, u16), u64> =
        std::collections::BTreeMap::new();
    let mut batch_idx: Option<usize> = None;
    let mut burst_windows = 0u64;
    for e in sys.trace_events() {
        match e.kind {
            TraceKind::BatchStart { .. } if e.source == TraceSource::Scanner => {
                batch_idx = Some(batch_idx.map_or(0, |i| i + 1));
            }
            TraceKind::TenantShed {
                tenant, packets, ..
            } => {
                let idx = batch_idx.expect("TenantShed outside any batch");
                *sheds.entry((idx, tenant)).or_default() += packets;
            }
            TraceKind::FaultBurstStarted { .. } => burst_windows += 1,
            _ => {}
        }
    }
    let shed_timeline: Vec<((usize, u16), u64)> = sheds.into_iter().collect();

    let tt = sys.tenant_telemetry();
    let of = |t: TenantId| {
        tt.iter()
            .find(|(id, _)| *id == t)
            .map(|(_, c)| *c)
            .unwrap_or_default()
    };
    let outcome = RunOutcome {
        victim_verdicts_per_batch,
        victim_shed: of(VICTIM).shed_packets,
        victim_packets: of(VICTIM).packets,
        attacker_shed: of(ATTACKER).shed_packets,
        shed_timeline,
        burst_windows,
    };
    archive_fault_log(
        &sys,
        if burst {
            "tenant-burst"
        } else {
            "tenant-burst-baseline"
        },
    );
    outcome
}

fn p99(sorted_desc_source: &[u64]) -> u64 {
    let mut v = sorted_desc_source.to_vec();
    v.sort_unstable();
    let idx = (v.len() as f64 * 0.99).ceil() as usize;
    v[idx.min(v.len()) - 1]
}

#[test]
fn attacker_burst_never_touches_victim() {
    let baseline = run(2, false);
    let bursty = run(2, true);

    // The baseline is itself clean: the victim — always below fair
    // share — is never shed and lands one verdict per batch.
    assert_eq!(baseline.victim_shed, 0, "baseline shed the victim");
    assert_eq!(baseline.victim_packets, ROUNDS as u64);
    assert!(baseline.victim_verdicts_per_batch.iter().all(|&v| v == 1));

    // The chaos plan actually fired: burst windows opened and the
    // attacker's amplified traffic was shed.
    assert!(bursty.burst_windows > 0, "no burst window ever opened");
    assert!(
        bursty.attacker_shed > baseline.attacker_shed,
        "the 4x burst did not increase the attacker's own sheds \
         ({} vs baseline {})",
        bursty.attacker_shed,
        baseline.attacker_shed
    );

    // Victim invariants under the burst: shed count at baseline (zero),
    // every packet scanned, and the per-batch verdict timeline — the
    // victim's queue contribution — byte-identical to the baseline run,
    // p99 included.
    assert_eq!(bursty.victim_shed, baseline.victim_shed);
    assert_eq!(bursty.victim_packets, ROUNDS as u64);
    assert_eq!(
        bursty.victim_verdicts_per_batch, baseline.victim_verdicts_per_batch,
        "the attacker's burst perturbed the victim's verdict timeline"
    );
    assert_eq!(
        p99(&bursty.victim_verdicts_per_batch),
        p99(&baseline.victim_verdicts_per_batch)
    );

    // The trace ring tells the same story: every shed names the
    // attacker, none the victim, and the reconstructed timeline accounts
    // for exactly the attacker's telemetry total.
    assert!(
        bursty
            .shed_timeline
            .iter()
            .all(|&((_, t), _)| t == ATTACKER.0),
        "trace ring recorded a shed for a non-attacker tenant: {:?}",
        bursty.shed_timeline
    );
    let traced: u64 = bursty.shed_timeline.iter().map(|&(_, p)| p).sum();
    assert_eq!(
        traced, bursty.attacker_shed,
        "trace-ring shed timeline disagrees with attacker telemetry"
    );
    // Sheds happened across multiple batches — a timeline, not a single
    // terminal spike.
    let batches: std::collections::BTreeSet<usize> =
        bursty.shed_timeline.iter().map(|&((i, _), _)| i).collect();
    assert!(
        batches.len() > 1,
        "expected sheds spread over the run, got batches {batches:?}"
    );
}

/// The burst run repeated with the same seed is bit-for-bit repeatable:
/// same shed timeline, same victim outcome. This is what lets CI sweep
/// seeds and archive fault logs that actually reproduce. Pinned to the
/// single-worker inline path: threaded workers observe live channel
/// depth, so *when* within a batch the detector first trips is
/// scheduler-dependent there (the fairness invariants above hold
/// regardless; the exact shed timeline only repeats single-worker).
#[test]
fn burst_run_is_deterministic() {
    let a = run(1, true);
    let b = run(1, true);
    assert_eq!(a.shed_timeline, b.shed_timeline);
    assert_eq!(a.victim_verdicts_per_batch, b.victim_verdicts_per_batch);
    assert_eq!(a.attacker_shed, b.attacker_shed);
    assert_eq!(a.burst_windows, b.burst_windows);
}
