//! Multi-tenant isolation cost and fairness convergence (DESIGN.md §16).
//!
//! Two questions, one JSON:
//!
//! * **Isolation overhead** — the same pattern budget and offered bytes,
//!   partitioned across 1→64 tenants (tenant-owned middleboxes, chains
//!   and quotas), versus an untenanted single-chain baseline. The
//!   per-packet tenancy cost is arrival-share bookkeeping plus a
//!   scan-byte bucket check; at one tenant it must stay within noise
//!   (the acceptance bar is ≤ 5%).
//! * **Fairness convergence** — one tenant of four offers 16× the
//!   others into an overloaded worker with fail-open shedding; the
//!   weighted-fair policy must converge onto the heavy tenant (every
//!   shed names it, none a victim) and the JSON records the first round
//!   the sheds land.
//!
//! Writes `BENCH_tenants.json` (uploaded by the CI bench job). Set
//! `DPI_BENCH_QUICK=1` for a CI-sized run.

use dpi_ac::MiddleboxId;
use dpi_bench::{host_cores, print_row};
use dpi_core::overload::{OverloadPolicy, ShedMode};
use dpi_core::pipeline::ShardedScanner;
use dpi_core::{InstanceConfig, MiddleboxProfile, RuleSpec, TenantId, TenantQuota};
use dpi_packet::ipv4::IpProtocol;
use dpi_packet::packet::flow;
use dpi_packet::{MacAddr, Packet};
use dpi_traffic::patterns::snort_like;
use dpi_traffic::{tenant_mix, TenantStream};
use std::time::Instant;

/// A config with `patterns` split evenly across `tenants` tenant-owned
/// stateless middleboxes, one chain per tenant (chain id = tenant id).
/// `tenants == 0` is the untenanted baseline: the same patterns on one
/// default-tenant middlebox, no quotas — tenancy machinery fully idle.
fn config(patterns: &[Vec<u8>], tenants: usize) -> InstanceConfig {
    let mut cfg = InstanceConfig::new();
    if tenants == 0 {
        return cfg
            .with_middlebox(
                MiddleboxProfile::stateless(MiddleboxId(1)),
                patterns
                    .iter()
                    .map(|p| RuleSpec::exact(p.clone()))
                    .collect(),
            )
            .with_chain(1, vec![MiddleboxId(1)]);
    }
    for t in 1..=tenants {
        // Round-robin split: every tenant gets a non-empty, near-equal
        // share of the pattern budget at any tenant count.
        let rules: Vec<RuleSpec> = patterns
            .iter()
            .skip(t - 1)
            .step_by(tenants)
            .map(|p| RuleSpec::exact(p.clone()))
            .collect();
        cfg = cfg
            .with_middlebox(
                MiddleboxProfile::stateless(MiddleboxId(t as u16)).owned_by(TenantId(t as u16)),
                rules,
            )
            .with_chain(t as u16, vec![MiddleboxId(t as u16)])
            .with_tenant_quota(TenantId(t as u16), TenantQuota::unlimited());
    }
    cfg
}

/// The offered load for `tenants` tenants: the same total packet and
/// byte budget, interleaved proportionally across one benign stream per
/// tenant (`tenants == 0` ⇒ one untenanted stream on chain 1).
fn workload(tenants: usize, total_packets: usize, payload_len: usize) -> Vec<Packet> {
    let n = tenants.max(1);
    let streams: Vec<TenantStream> = (1..=n)
        .map(|t| TenantStream::benign(t as u16, total_packets / n, 8, payload_len))
        .collect();
    tenant_mix(&streams, 77)
}

/// One timed pass of `batch` through `scanner`, in packets/sec.
fn one_pass_pps(scanner: &mut ShardedScanner, batch: &[Packet]) -> f64 {
    let mut pkts = batch.to_vec();
    let t0 = Instant::now();
    scanner.inspect_batch(&mut pkts);
    batch.len() as f64 / t0.elapsed().as_secs_f64()
}

/// One heavy tenant of four offers 16× the victims' load into an
/// overloaded single worker; returns
/// `(rounds, heavy_shed, victim_shed, first_shed_round)`.
fn fairness_convergence(patterns: &[Vec<u8>], rounds: usize) -> (usize, u64, u64, Option<usize>) {
    let policy = OverloadPolicy::queue_only(1, 0).with_shed(ShedMode::FailOpen);
    let mut scanner =
        ShardedScanner::from_config(config(patterns, 4), 1).expect("valid tenant config");
    scanner = scanner.with_overload_policy(policy);
    let mut seq = 0u32;
    let mut first_shed_round = None;
    for round in 0..rounds {
        let mut batch = Vec::new();
        for t in 1u16..=4 {
            let copies = if t == 1 { 16 } else { 1 };
            for _ in 0..copies {
                let f = flow(
                    [10, 0, 0, t as u8],
                    1000 + t,
                    [10, 0, 0, 99],
                    80,
                    IpProtocol::Tcp,
                );
                let mut p = Packet::tcp(
                    MacAddr::local(1),
                    MacAddr::local(2),
                    f,
                    seq,
                    vec![b'x'; 256],
                );
                seq = seq.wrapping_add(256);
                p.push_chain_tag(t).expect("fresh packet has tag room");
                batch.push(p);
            }
        }
        scanner.inspect_batch(&mut batch);
        let heavy_shed: u64 = scanner
            .tenant_telemetry()
            .iter()
            .find(|(t, _)| *t == TenantId(1))
            .map(|(_, c)| c.shed_packets)
            .unwrap_or(0);
        if heavy_shed > 0 && first_shed_round.is_none() {
            first_shed_round = Some(round);
        }
    }
    let tt = scanner.tenant_telemetry();
    let of = |t: u16| {
        tt.iter()
            .find(|(id, _)| id.0 == t)
            .map(|(_, c)| c.shed_packets)
            .unwrap_or(0)
    };
    let heavy = of(1);
    let victims = of(2) + of(3) + of(4);
    (rounds, heavy, victims, first_shed_round)
}

fn main() {
    let quick = std::env::var_os("DPI_BENCH_QUICK").is_some();
    let (npat, npkt, runs, rounds) = if quick {
        (500, 512, 3, 16)
    } else {
        (2000, 2048, 5, 48)
    };
    let sweep: &[usize] = if quick {
        &[1, 4, 16, 64]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    let payload_len = 600;
    let pats = snort_like(npat, 42);

    println!(
        "tenant bench: {npat} patterns, {npkt} packets x {payload_len} B, \
         {} host cores{}",
        host_cores(),
        if quick { ", quick mode" } else { "" }
    );

    // Untenanted baseline vs the tenant sweep, measured in interleaved
    // passes: the baseline and every tenant count take one timed pass
    // per round, so host drift (a shared box speeding up or slowing
    // down) lands on all configurations alike instead of skewing the
    // overhead ratio. Single worker — the inline path measures the
    // per-packet tenancy bookkeeping, not thread scheduling. Keep
    // best-of-rounds per configuration: anything slower than a
    // configuration's fastest pass measures a neighbor's noise.
    let mut configs: Vec<(usize, Vec<Packet>, ShardedScanner)> = std::iter::once(0usize)
        .chain(sweep.iter().copied())
        .map(|n| {
            let batch = workload(n, npkt, payload_len);
            let scanner =
                ShardedScanner::from_config(config(&pats, n), 1).expect("valid tenant config");
            (n, batch, scanner)
        })
        .collect();
    let mut best = vec![0.0f64; configs.len()];
    for _ in 0..runs.max(1) {
        for (i, (_, batch, scanner)) in configs.iter_mut().enumerate() {
            best[i] = best[i].max(one_pass_pps(scanner, batch));
        }
    }
    let baseline_pps = best[0];
    print_row(&[
        "tenants".into(),
        "pkts/s".into(),
        "overhead".into(),
        String::new(),
    ]);
    print_row(&[
        "untenanted".into(),
        format!("{baseline_pps:.0}"),
        "0.0%".into(),
        String::new(),
    ]);
    let mut rows = Vec::new();
    for (i, (n, _, _)) in configs.iter().enumerate().skip(1) {
        let pps = best[i];
        let overhead = (baseline_pps - pps) / baseline_pps * 100.0;
        print_row(&[
            format!("{n}"),
            format!("{pps:.0}"),
            format!("{overhead:.1}%"),
            String::new(),
        ]);
        rows.push((*n, pps, overhead));
    }

    let (fr_rounds, heavy_shed, victim_shed, first_shed) = fairness_convergence(&pats, rounds);
    println!(
        "fairness: heavy tenant shed {heavy_shed} packets over {fr_rounds} rounds \
         (first at round {:?}), victims shed {victim_shed}",
        first_shed
    );

    let rows_json: Vec<String> = rows
        .iter()
        .map(|(n, pps, o)| {
            format!("{{\"tenants\": {n}, \"pps\": {pps:.0}, \"overhead_pct\": {o:.2}}}")
        })
        .collect();
    let json = format!(
        "{{\n  \"host_cores\": {},\n  \"quick\": {},\n  \"patterns\": {},\n  \
         \"packets\": {},\n  \"payload_len\": {},\n  \"baseline_pps\": {:.0},\n  \
         \"tenants\": [{}],\n  \"fairness\": {{\"tenants\": 4, \"heavy_factor\": 16, \
         \"rounds\": {}, \"heavy_shed_packets\": {}, \"victim_shed_packets\": {}, \
         \"first_shed_round\": {}}}\n}}\n",
        host_cores(),
        quick,
        npat,
        npkt,
        payload_len,
        baseline_pps,
        rows_json.join(", "),
        fr_rounds,
        heavy_shed,
        victim_shed,
        first_shed.map_or("null".into(), |r| r.to_string()),
    );
    std::fs::write("BENCH_tenants.json", &json).expect("writable working directory");
    println!("wrote BENCH_tenants.json");
}
