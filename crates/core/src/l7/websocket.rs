//! WebSocket frame decoder: unmasks client frames and streams data
//! payloads to the scanner.
//!
//! A pattern split across frames (or across the 4-byte masking key's
//! XOR stream) is invisible to a raw-byte scan; this decoder rebuilds
//! the application byte stream. Data frames (text/binary/continuation)
//! feed the resumable [`SLOT_WS_BODY`] stream — one continuous scan
//! state across frames and segments. Control frames (close/ping/pong)
//! are framing, consumed unscanned. Reserved opcodes or RSV bits (no
//! extension support) fail open to raw scanning.

use super::{unit, DecodeOut, L7Field, SLOT_WS_BODY};

#[derive(Debug)]
enum WState {
    /// Waiting for a complete frame header (2–14 bytes).
    Header,
    /// Consuming frame payload.
    Payload {
        remaining: u64,
        mask: Option<[u8; 4]>,
        mask_pos: usize,
        /// Text/binary/continuation (scanned) vs control (skipped).
        data: bool,
    },
}

/// One WebSocket flow's frame state.
#[derive(Debug)]
pub struct WsDecoder {
    /// Unconsumed wire bytes carried across `push` calls.
    pending: Vec<u8>,
    state: WState,
    /// Decoded data bytes emitted for the flow.
    emitted: u64,
    /// The flow already hit the inspection size limit.
    truncated: bool,
    /// The next data unit is the first of the flow (slot reset).
    first_unit: bool,
}

impl Default for WsDecoder {
    fn default() -> WsDecoder {
        WsDecoder::new()
    }
}

impl WsDecoder {
    /// A fresh frame decoder.
    pub fn new() -> WsDecoder {
        WsDecoder {
            pending: Vec::new(),
            state: WState::Header,
            emitted: 0,
            truncated: false,
            first_unit: true,
        }
    }

    /// Heap bytes held across `push` calls (flow-arena accounting).
    pub(crate) fn heap_bytes(&self) -> u64 {
        self.pending.len() as u64
    }

    /// Feeds wire bytes through the frame state machine.
    pub(crate) fn push(&mut self, data: &[u8], limit: usize, out: &mut DecodeOut) {
        self.pending.extend_from_slice(data);
        let mut i = 0usize;
        loop {
            match &mut self.state {
                WState::Header => {
                    let hay = &self.pending[i..];
                    if hay.len() < 2 {
                        break;
                    }
                    let (b0, b1) = (hay[0], hay[1]);
                    let opcode = b0 & 0x0f;
                    if b0 & 0x70 != 0 || matches!(opcode, 3..=7 | 11..) {
                        out.errors += 1;
                        out.raw.push(self.pending[i..].to_vec());
                        self.pending.clear();
                        out.failed_open = true;
                        return;
                    }
                    let masked = b1 & 0x80 != 0;
                    let len7 = (b1 & 0x7f) as u64;
                    let ext = match len7 {
                        126 => 2,
                        127 => 8,
                        _ => 0,
                    };
                    let hdr_len = 2 + ext + if masked { 4 } else { 0 };
                    if hay.len() < hdr_len {
                        break;
                    }
                    let remaining = match ext {
                        2 => u64::from(u16::from_be_bytes([hay[2], hay[3]])),
                        8 => u64::from_be_bytes(hay[2..10].try_into().unwrap()),
                        _ => len7,
                    };
                    let mask = masked.then(|| {
                        let m = &hay[2 + ext..2 + ext + 4];
                        [m[0], m[1], m[2], m[3]]
                    });
                    i += hdr_len;
                    self.state = WState::Payload {
                        remaining,
                        mask,
                        mask_pos: 0,
                        data: opcode <= 2,
                    };
                }
                WState::Payload {
                    remaining,
                    mask,
                    mask_pos,
                    data,
                } => {
                    let avail = (self.pending.len() - i) as u64;
                    let take = (*remaining).min(avail) as usize;
                    if *data && take > 0 {
                        let mut bytes = self.pending[i..i + take].to_vec();
                        if let Some(m) = mask {
                            for (j, b) in bytes.iter_mut().enumerate() {
                                *b ^= m[(*mask_pos + j) % 4];
                            }
                        }
                        *mask_pos += take;
                        // Borrow of self.state ends here; emit below.
                        let first = self.first_unit;
                        let room = (limit as u64).saturating_sub(self.emitted) as usize;
                        let keep = room.min(bytes.len());
                        if keep > 0 {
                            bytes.truncate(keep);
                            out.units
                                .push(unit(L7Field::Body, bytes, Some(SLOT_WS_BODY), first));
                            self.first_unit = false;
                            self.emitted += keep as u64;
                        }
                        if keep < take && !self.truncated {
                            self.truncated = true;
                            out.truncations.push(self.emitted);
                        }
                    }
                    i += take;
                    if *remaining == take as u64 {
                        self.state = WState::Header;
                    } else {
                        *remaining -= take as u64;
                        break;
                    }
                }
            }
            if i == self.pending.len() {
                break;
            }
        }
        self.pending.drain(..i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Encodes one frame (test + generator mirror of the decoder).
    pub(crate) fn frame(opcode: u8, payload: &[u8], mask: Option<[u8; 4]>) -> Vec<u8> {
        let mut f = vec![0x80 | opcode];
        let mask_bit = if mask.is_some() { 0x80 } else { 0 };
        match payload.len() {
            n if n < 126 => f.push(mask_bit | n as u8),
            n if n < 65536 => {
                f.push(mask_bit | 126);
                f.extend_from_slice(&(n as u16).to_be_bytes());
            }
            n => {
                f.push(mask_bit | 127);
                f.extend_from_slice(&(n as u64).to_be_bytes());
            }
        }
        if let Some(m) = mask {
            f.extend_from_slice(&m);
            f.extend(payload.iter().enumerate().map(|(j, b)| b ^ m[j % 4]));
        } else {
            f.extend_from_slice(payload);
        }
        f
    }

    fn decode_all(wire: &[u8], limit: usize) -> (Vec<u8>, DecodeOut) {
        let mut d = WsDecoder::new();
        let mut out = DecodeOut::default();
        d.push(wire, limit, &mut out);
        let body = out
            .units
            .iter()
            .flat_map(|u| u.bytes.iter().copied())
            .collect();
        (body, out)
    }

    #[test]
    fn masked_text_frame_unmasks() {
        let wire = frame(1, b"hello EVIL world", Some([0xde, 0xad, 0xbe, 0xef]));
        let (body, out) = decode_all(&wire, 1 << 16);
        assert_eq!(body, b"hello EVIL world");
        assert_eq!(out.units[0].slot, Some(SLOT_WS_BODY));
        assert!(out.units[0].reset);
        assert_eq!(out.errors, 0);
    }

    #[test]
    fn stream_continues_across_frames_without_reset() {
        let mut wire = frame(1, b"EVIL", Some([1, 2, 3, 4]));
        wire.extend(frame(0, b"PATTERN", Some([5, 6, 7, 8])));
        let (body, out) = decode_all(&wire, 1 << 16);
        assert_eq!(body, b"EVILPATTERN");
        assert!(out.units[0].reset);
        assert!(!out.units[1].reset);
    }

    #[test]
    fn byte_at_a_time_delivery_decodes_identically() {
        let wire = frame(2, b"span the cut", Some([9, 8, 7, 6]));
        let mut d = WsDecoder::new();
        let mut body = Vec::new();
        for b in wire {
            let mut out = DecodeOut::default();
            d.push(&[b], 1 << 16, &mut out);
            for u in out.units {
                body.extend_from_slice(&u.bytes);
            }
        }
        assert_eq!(body, b"span the cut");
    }

    #[test]
    fn control_frames_are_skipped() {
        let mut wire = frame(9, b"ping-data", Some([1, 1, 1, 1]));
        wire.extend(frame(1, b"real", Some([2, 2, 2, 2])));
        let (body, _) = decode_all(&wire, 1 << 16);
        assert_eq!(body, b"real");
    }

    #[test]
    fn extended_16bit_length_parses() {
        let payload = vec![b'a'; 300];
        let wire = frame(2, &payload, None);
        let (body, _) = decode_all(&wire, 1 << 16);
        assert_eq!(body, payload);
    }

    #[test]
    fn reserved_bits_fail_open() {
        let mut wire = frame(1, b"x", None);
        wire[0] |= 0x40; // RSV1 without a negotiated extension
        let (_, out) = decode_all(&wire, 1 << 16);
        assert!(out.failed_open);
        assert_eq!(out.errors, 1);
        assert_eq!(out.raw.len(), 1);
    }

    #[test]
    fn size_limit_truncates_once_and_framing_survives() {
        let mut wire = frame(1, b"0123456789", Some([3, 1, 4, 1]));
        wire.extend(frame(1, b"abcdef", Some([5, 9, 2, 6])));
        let (body, out) = decode_all(&wire, 4);
        assert_eq!(body, b"0123");
        assert_eq!(out.truncations, vec![4]);
        assert_eq!(out.errors, 0);
    }
}
