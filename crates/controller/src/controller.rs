//! The DPI controller proper.

use crate::health::{HealthEvent, HealthMonitor, HealthPolicy, InstanceHealth};
use crate::proto::{ControllerMessage, ControllerReply};
use crate::registry::GlobalPatternSet;
use dpi_ac::MiddleboxId;
use dpi_core::{ChainSpec, InstanceConfig, MiddleboxProfile, Telemetry, TenantId, TenantQuota};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Identifier of a deployed DPI service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u32);

/// Controller-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControllerError {
    /// A message referenced an unregistered middlebox.
    UnknownMiddlebox(u16),
    /// Registration with an id that is already taken.
    AlreadyRegistered(u16),
    /// `inherit_from` referenced an unregistered middlebox.
    UnknownInheritSource(u16),
    /// A chain referenced an unregistered middlebox.
    ChainMemberUnknown(u16),
    /// Chain-id space exhausted (12-bit VLAN-encodable ids).
    ChainIdSpaceExhausted,
    /// An unknown instance id.
    UnknownInstance(InstanceId),
    /// The controller's stored configuration failed to build an instance
    /// (should be unreachable: rules are validated on ingestion).
    InconsistentConfig(String),
}

impl std::fmt::Display for ControllerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControllerError::UnknownMiddlebox(id) => write!(f, "unknown middlebox {id}"),
            ControllerError::AlreadyRegistered(id) => {
                write!(f, "middlebox {id} already registered")
            }
            ControllerError::UnknownInheritSource(id) => {
                write!(f, "inherit source {id} not registered")
            }
            ControllerError::ChainMemberUnknown(id) => {
                write!(f, "chain references unregistered middlebox {id}")
            }
            ControllerError::ChainIdSpaceExhausted => write!(f, "no chain ids left"),
            ControllerError::UnknownInstance(i) => write!(f, "unknown instance {}", i.0),
            ControllerError::InconsistentConfig(e) => {
                write!(f, "stored configuration failed to build: {e}")
            }
        }
    }
}

impl std::error::Error for ControllerError {}

/// A registered middlebox record.
#[derive(Debug, Clone)]
struct MiddleboxRecord {
    name: String,
    profile: MiddleboxProfile,
}

/// Telemetry bookkeeping per deployed instance.
#[derive(Debug, Default, Clone)]
struct InstanceRecord {
    chains: Vec<u16>,
    last_report: Telemetry,
    total: Telemetry,
    dedicated: bool,
    /// The rule generation the instance last acked (0 = initial build).
    generation: u32,
    /// Set when a pattern mutation touched a middlebox on one of this
    /// instance's chains after its last acked generation — the instance
    /// is serving stale rules until an update rolls out.
    pending_update: bool,
}

/// One deployed instance's controller-side status
/// ([`DpiController::instances`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceStatus {
    /// The instance.
    pub id: InstanceId,
    /// The chains it serves.
    pub chains: Vec<u16>,
    /// Whether it is MCA²-dedicated.
    pub dedicated: bool,
    /// The rule generation it last acked.
    pub generation: u32,
    /// Whether its configuration is stale (a pattern affecting its
    /// chains changed since that generation).
    pub pending_update: bool,
}

/// One pattern-set mutation's transfer-size record — the per-update
/// series behind the paper's Fig. 11 (bytes shipped per pattern-set
/// update, as opposed to the cumulative total).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRecord {
    /// Controller version after the mutation.
    pub version: u64,
    /// Signed change in serialized pattern bytes (negative for removals).
    pub delta_bytes: i64,
    /// Cumulative serialized pattern bytes after the mutation.
    pub total_bytes: usize,
}

/// The logically-centralized DPI controller. Thread-safe: the paper's
/// controller serves many middleboxes and instances concurrently, so all
/// state sits behind a mutex (coarse-grained — control-plane rates are
/// low).
#[derive(Debug, Default)]
pub struct DpiController {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    middleboxes: HashMap<MiddleboxId, MiddleboxRecord>,
    patterns: GlobalPatternSet,
    /// chain id → member middleboxes, in traversal order.
    chains: HashMap<u16, Vec<MiddleboxId>>,
    /// Dedup: member list → already-allocated chain id.
    chain_ids: HashMap<Vec<MiddleboxId>, u16>,
    next_chain_id: u16,
    instances: HashMap<InstanceId, InstanceRecord>,
    next_instance_id: u32,
    /// Heartbeat-driven liveness of deployed instances.
    health: HealthMonitor,
    /// Monotonic version, bumped on every pattern/registration change so
    /// deployed instances know when their configuration is stale.
    version: u64,
    /// Per-mutation transfer-size log ([`TransferRecord`]).
    transfer_log: Vec<TransferRecord>,
    /// Operator-declared per-tenant quotas (DESIGN.md §16), emitted into
    /// every [`InstanceConfig`] this controller builds. Sorted by tenant.
    tenant_quotas: Vec<(TenantId, TenantQuota)>,
    /// Optional structured-event tracer; health transitions are recorded
    /// as [`dpi_core::trace::TraceSource::Controller`] events.
    tracer: Option<std::sync::Arc<dpi_core::trace::Tracer>>,
}

impl Inner {
    /// Records a pattern-set mutation: logs the transfer delta against
    /// the just-bumped version and flags every instance whose chains
    /// include `mb` as pending an update.
    fn note_pattern_change(&mut self, mb: MiddleboxId, bytes_before: usize) {
        let total = self.patterns.transfer_bytes();
        self.transfer_log.push(TransferRecord {
            version: self.version,
            delta_bytes: total as i64 - bytes_before as i64,
            total_bytes: total,
        });
        let affected: Vec<u16> = self
            .chains
            .iter()
            .filter(|(_, members)| members.contains(&mb))
            .map(|(cid, _)| *cid)
            .collect();
        for rec in self.instances.values_mut() {
            if rec.chains.iter().any(|c| affected.contains(c)) {
                rec.pending_update = true;
            }
        }
    }
}

impl DpiController {
    /// A fresh controller.
    pub fn new() -> DpiController {
        DpiController::default()
    }

    /// Handles one JSON message from a middlebox and returns the JSON
    /// reply — the paper's §4.1 channel.
    pub fn handle_json(&self, json: &str) -> String {
        let msg = match ControllerMessage::from_json(json) {
            Ok(m) => m,
            Err(e) => {
                return ControllerReply::Error {
                    reason: format!("malformed message: {e}"),
                }
                .to_json()
            }
        };
        self.handle(msg).to_json()
    }

    /// Handles one typed message.
    pub fn handle(&self, msg: ControllerMessage) -> ControllerReply {
        let result = match msg {
            ControllerMessage::Register {
                middlebox_id,
                name,
                inherit_from,
                stateful,
                read_only,
                stopping_condition,
            } => self
                .register(
                    MiddleboxId(middlebox_id),
                    &name,
                    inherit_from.map(MiddleboxId),
                    MiddleboxProfile {
                        id: MiddleboxId(middlebox_id),
                        stateful,
                        read_only,
                        stopping_condition,
                        fail_closed: false,
                        l7_protocols: None,
                        tenant: TenantId::DEFAULT,
                    },
                )
                .map(|_| ControllerReply::Registered { middlebox_id }),
            ControllerMessage::AddPattern {
                middlebox_id,
                rule_id,
                rule,
            } => self
                .add_pattern(MiddleboxId(middlebox_id), rule_id, &rule)
                .map(|_| ControllerReply::Ok),
            ControllerMessage::RemovePattern {
                middlebox_id,
                rule_id,
            } => self
                .remove_pattern(MiddleboxId(middlebox_id), rule_id)
                .map(|_| ControllerReply::Ok),
            ControllerMessage::Deregister { middlebox_id } => self
                .deregister(MiddleboxId(middlebox_id))
                .map(|_| ControllerReply::Ok),
            ControllerMessage::AckGeneration {
                instance_id,
                generation,
            } => self
                .mark_instance_current(InstanceId(instance_id), generation)
                .map(|_| ControllerReply::Ok),
            // BeginUpdate/Rollback travel controller → instance; one
            // arriving *at* the controller is a misrouted message.
            ControllerMessage::BeginUpdate { instance_id, .. }
            | ControllerMessage::Rollback { instance_id, .. } => Ok(ControllerReply::Error {
                reason: format!("message for instance {instance_id} routed to the controller"),
            }),
            ControllerMessage::Heartbeat {
                instance_id,
                seq,
                load,
            } => self
                .heartbeat(InstanceId(instance_id), seq, load)
                .map(|_| ControllerReply::Ok),
        };
        match result {
            Ok(r) => r,
            Err(e) => ControllerReply::Error {
                reason: e.to_string(),
            },
        }
    }

    /// Registers a middlebox, optionally inheriting another's pattern set.
    pub fn register(
        &self,
        id: MiddleboxId,
        name: &str,
        inherit_from: Option<MiddleboxId>,
        profile: MiddleboxProfile,
    ) -> Result<(), ControllerError> {
        let mut g = self.inner.lock();
        if g.middleboxes.contains_key(&id) {
            return Err(ControllerError::AlreadyRegistered(id.0));
        }
        let inherited = match inherit_from {
            Some(src) => {
                if !g.middleboxes.contains_key(&src) {
                    return Err(ControllerError::UnknownInheritSource(src.0));
                }
                g.patterns.rules_of(src)
            }
            None => Vec::new(),
        };
        g.middleboxes.insert(
            id,
            MiddleboxRecord {
                name: name.to_string(),
                profile,
            },
        );
        let before = g.patterns.transfer_bytes();
        let inherited_any = !inherited.is_empty();
        for (rid, rule) in inherited {
            g.patterns.add(id, rid, &rule);
        }
        g.version += 1;
        if inherited_any {
            g.note_pattern_change(id, before);
        }
        Ok(())
    }

    /// Adds a rule for a registered middlebox.
    pub fn add_pattern(
        &self,
        id: MiddleboxId,
        rule_id: u16,
        rule: &dpi_core::RuleSpec,
    ) -> Result<(), ControllerError> {
        let mut g = self.inner.lock();
        if !g.middleboxes.contains_key(&id) {
            return Err(ControllerError::UnknownMiddlebox(id.0));
        }
        let before = g.patterns.transfer_bytes();
        g.patterns.add(id, rule_id, rule);
        g.version += 1;
        g.note_pattern_change(id, before);
        Ok(())
    }

    /// Removes a rule reference.
    pub fn remove_pattern(&self, id: MiddleboxId, rule_id: u16) -> Result<(), ControllerError> {
        let mut g = self.inner.lock();
        if !g.middleboxes.contains_key(&id) {
            return Err(ControllerError::UnknownMiddlebox(id.0));
        }
        let before = g.patterns.transfer_bytes();
        g.patterns.remove(id, rule_id);
        g.version += 1;
        g.note_pattern_change(id, before);
        Ok(())
    }

    /// Deregisters a middlebox entirely.
    pub fn deregister(&self, id: MiddleboxId) -> Result<(), ControllerError> {
        let mut g = self.inner.lock();
        if g.middleboxes.remove(&id).is_none() {
            return Err(ControllerError::UnknownMiddlebox(id.0));
        }
        let before = g.patterns.transfer_bytes();
        g.patterns.remove_middlebox(id);
        g.version += 1;
        // Flag affected instances before the chains themselves go away.
        g.note_pattern_change(id, before);
        g.chains.retain(|_, members| !members.contains(&id));
        g.chain_ids.retain(|members, _| !members.contains(&id));
        Ok(())
    }

    /// Receives a policy chain from the TSA and returns its identifier
    /// ("It assigns each policy chain a unique identifier that is used
    /// later by the DPI service instances", §4.1). Identical chains share
    /// one id. Chain ids fit VLAN tags (12 bits).
    pub fn register_chain(&self, members: &[MiddleboxId]) -> Result<u16, ControllerError> {
        let mut g = self.inner.lock();
        for m in members {
            if !g.middleboxes.contains_key(m) {
                return Err(ControllerError::ChainMemberUnknown(m.0));
            }
        }
        if let Some(&id) = g.chain_ids.get(members) {
            return Ok(id);
        }
        if g.next_chain_id > dpi_packet::vlan::MAX_VLAN_ID {
            return Err(ControllerError::ChainIdSpaceExhausted);
        }
        g.next_chain_id += 1;
        let id = g.next_chain_id;
        g.chains.insert(id, members.to_vec());
        g.chain_ids.insert(members.to_vec(), id);
        g.version += 1;
        Ok(id)
    }

    /// Members of a chain.
    pub fn chain_members(&self, chain_id: u16) -> Option<Vec<MiddleboxId>> {
        self.inner.lock().chains.get(&chain_id).cloned()
    }

    /// Current configuration version.
    pub fn version(&self) -> u64 {
        self.inner.lock().version
    }

    /// The registered name of a middlebox.
    pub fn middlebox_name(&self, id: MiddleboxId) -> Option<String> {
        self.inner
            .lock()
            .middleboxes
            .get(&id)
            .map(|r| r.name.clone())
    }

    /// Builds the [`InstanceConfig`] for an instance that will serve
    /// `chain_ids` — "a common deployment choice is to group together
    /// similar policy chains and to deploy instances that support only one
    /// group" (§4.3). Pass all chains for a serve-everything instance.
    pub fn instance_config(&self, chain_ids: &[u16]) -> Result<InstanceConfig, ControllerError> {
        let g = self.inner.lock();
        let mut cfg = InstanceConfig::new();
        let mut needed: Vec<MiddleboxId> = Vec::new();
        for cid in chain_ids {
            let members = g
                .chains
                .get(cid)
                .ok_or(ControllerError::ChainMemberUnknown(*cid))?;
            cfg.chains.push(ChainSpec {
                chain_id: *cid,
                members: members.clone(),
            });
            for m in members {
                if !needed.contains(m) {
                    needed.push(*m);
                }
            }
        }
        for m in needed {
            let rec = g
                .middleboxes
                .get(&m)
                .ok_or(ControllerError::UnknownMiddlebox(m.0))?;
            cfg.profiles.push(rec.profile);
            let rules: Vec<dpi_core::config::NumberedRule> = g
                .patterns
                .rules_of(m)
                .into_iter()
                .map(|(id, spec)| dpi_core::config::NumberedRule { id, spec })
                .collect();
            cfg.pattern_sets.push((m, rules));
        }
        cfg.tenants = g.tenant_quotas.clone();
        Ok(cfg)
    }

    /// Declares (or replaces) a tenant's quota and fair-share weight.
    /// Every [`InstanceConfig`] built afterwards carries it; like a
    /// pattern mutation it bumps the controller version, so deployed
    /// instances are flagged stale and a prepared update ships the new
    /// quota (DESIGN.md §16).
    pub fn set_tenant_quota(&self, tenant: TenantId, quota: TenantQuota) {
        let mut g = self.inner.lock();
        match g.tenant_quotas.binary_search_by_key(&tenant, |(t, _)| *t) {
            Ok(i) => g.tenant_quotas[i].1 = quota,
            Err(i) => g.tenant_quotas.insert(i, (tenant, quota)),
        }
        g.version += 1;
        for rec in g.instances.values_mut() {
            rec.pending_update = true;
        }
    }

    /// The quota a tenant is held to ([`TenantQuota::unlimited`] when
    /// none was declared).
    pub fn tenant_quota(&self, tenant: TenantId) -> TenantQuota {
        let g = self.inner.lock();
        g.tenant_quotas
            .binary_search_by_key(&tenant, |(t, _)| *t)
            .map(|i| g.tenant_quotas[i].1)
            .unwrap_or_default()
    }

    /// Registers a deployed instance serving `chain_ids`. The instance
    /// starts health-tracked as `Healthy`.
    pub fn deploy_instance(&self, chain_ids: Vec<u16>) -> InstanceId {
        let mut g = self.inner.lock();
        let id = InstanceId(g.next_instance_id);
        g.next_instance_id += 1;
        g.instances.insert(
            id,
            InstanceRecord {
                chains: chain_ids,
                ..InstanceRecord::default()
            },
        );
        g.health.register(id);
        id
    }

    /// Removes a deployed instance (and stops health-tracking it).
    pub fn remove_instance(&self, id: InstanceId) -> Result<(), ControllerError> {
        let mut g = self.inner.lock();
        g.health.unregister(id);
        g.instances
            .remove(&id)
            .map(|_| ())
            .ok_or(ControllerError::UnknownInstance(id))
    }

    /// Replaces the health thresholds (existing instance states and miss
    /// counts are kept only if re-registered; call before deploying).
    pub fn set_health_policy(&self, policy: HealthPolicy) {
        let mut g = self.inner.lock();
        let tracked: Vec<InstanceId> = g.instances.keys().copied().collect();
        g.health = HealthMonitor::new(policy);
        for id in tracked {
            g.health.register(id);
        }
    }

    /// Records a liveness beacon from a deployed instance. Stale beats
    /// (non-zero `seq` not beyond the last seen) are accepted but ignored
    /// by the monitor.
    pub fn heartbeat(&self, id: InstanceId, seq: u64, load: u64) -> Result<(), ControllerError> {
        let mut g = self.inner.lock();
        if !g.instances.contains_key(&id) {
            return Err(ControllerError::UnknownInstance(id));
        }
        g.health.heartbeat(id, seq, load);
        Ok(())
    }

    /// Attaches a structured-event tracer: every health transition the
    /// monitor reports becomes a trace event, giving post-mortems the
    /// controller's view of the failure timeline.
    pub fn attach_tracer(&self, tracer: std::sync::Arc<dpi_core::trace::Tracer>) {
        self.inner.lock().tracer = Some(tracer);
    }

    /// Closes the current heartbeat window for every deployed instance
    /// and returns the resulting health transitions in instance-id order.
    /// The caller (the failover driver) reacts to
    /// [`HealthEvent::BecameDead`] by re-steering flows.
    pub fn health_tick(&self) -> Vec<HealthEvent> {
        let mut g = self.inner.lock();
        let events = g.health.tick();
        if let Some(t) = &g.tracer {
            use dpi_core::trace::{TraceKind, TraceSource};
            for ev in &events {
                let kind = match ev {
                    HealthEvent::BecameSuspect(id) => TraceKind::HealthSuspect { instance: id.0 },
                    HealthEvent::BecameDead(id) => TraceKind::HealthDead { instance: id.0 },
                    HealthEvent::Recovered(id) => TraceKind::HealthRecovered { instance: id.0 },
                };
                t.record(TraceSource::Controller, kind);
            }
        }
        events
    }

    /// Current health of a deployed instance.
    pub fn instance_health(&self, id: InstanceId) -> Option<InstanceHealth> {
        self.inner.lock().health.state(id)
    }

    /// Deployed instances currently `Healthy`, in id order — the steering
    /// candidates.
    pub fn healthy_instances(&self) -> Vec<InstanceId> {
        self.inner.lock().health.healthy()
    }

    /// Last self-reported load of an instance.
    pub fn instance_load(&self, id: InstanceId) -> Option<u64> {
        self.inner.lock().health.load(id)
    }

    /// Records a telemetry report from an instance and returns the delta
    /// since its previous report (what the stress monitor consumes).
    pub fn report_telemetry(
        &self,
        id: InstanceId,
        t: Telemetry,
    ) -> Result<Telemetry, ControllerError> {
        let mut g = self.inner.lock();
        let rec = g
            .instances
            .get_mut(&id)
            .ok_or(ControllerError::UnknownInstance(id))?;
        let delta = t.delta_since(&rec.last_report);
        rec.last_report = t;
        rec.total.merge(&delta);
        Ok(delta)
    }

    /// Marks or unmarks an instance as MCA²-dedicated.
    pub fn set_dedicated(&self, id: InstanceId, dedicated: bool) -> Result<(), ControllerError> {
        let mut g = self.inner.lock();
        g.instances
            .get_mut(&id)
            .map(|r| r.dedicated = dedicated)
            .ok_or(ControllerError::UnknownInstance(id))
    }

    /// Deployed instances with their chains, dedicated flag, acked rule
    /// generation and pending-update status, in id order.
    pub fn instances(&self) -> Vec<InstanceStatus> {
        let g = self.inner.lock();
        let mut v: Vec<InstanceStatus> = g
            .instances
            .iter()
            .map(|(id, r)| InstanceStatus {
                id: *id,
                chains: r.chains.clone(),
                dedicated: r.dedicated,
                generation: r.generation,
                pending_update: r.pending_update,
            })
            .collect();
        v.sort_by_key(|s| s.id);
        v
    }

    /// The rule generation an instance last acked.
    pub fn instance_generation(&self, id: InstanceId) -> Option<u32> {
        self.inner.lock().instances.get(&id).map(|r| r.generation)
    }

    /// Whether an instance is flagged as serving stale rules.
    pub fn instance_pending_update(&self, id: InstanceId) -> Option<bool> {
        self.inner
            .lock()
            .instances
            .get(&id)
            .map(|r| r.pending_update)
    }

    /// Records that an instance now serves `generation` (its
    /// `AckGeneration`): stores the generation and clears the
    /// pending-update flag.
    pub fn mark_instance_current(
        &self,
        id: InstanceId,
        generation: u32,
    ) -> Result<(), ControllerError> {
        let mut g = self.inner.lock();
        let rec = g
            .instances
            .get_mut(&id)
            .ok_or(ControllerError::UnknownInstance(id))?;
        rec.generation = generation;
        rec.pending_update = false;
        Ok(())
    }

    /// Total serialized pattern bytes (§4.1's transfer-size argument).
    pub fn pattern_transfer_bytes(&self) -> usize {
        self.inner.lock().patterns.transfer_bytes()
    }

    /// Per-mutation transfer-size history — the paper's Fig. 11 series
    /// (bytes shipped per pattern-set update).
    pub fn pattern_transfer_deltas(&self) -> Vec<TransferRecord> {
        self.inner.lock().transfer_log.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_core::RuleSpec;

    fn register(c: &DpiController, id: u16, name: &str) {
        c.register(
            MiddleboxId(id),
            name,
            None,
            MiddleboxProfile::stateless(MiddleboxId(id)),
        )
        .unwrap();
    }

    #[test]
    fn register_add_and_build_config() {
        let c = DpiController::new();
        register(&c, 1, "ids");
        register(&c, 2, "av");
        c.add_pattern(MiddleboxId(1), 0, &RuleSpec::exact(b"sig-a".to_vec()))
            .unwrap();
        c.add_pattern(MiddleboxId(2), 0, &RuleSpec::exact(b"sig-b".to_vec()))
            .unwrap();
        let chain = c.register_chain(&[MiddleboxId(1), MiddleboxId(2)]).unwrap();
        let cfg = c.instance_config(&[chain]).unwrap();
        assert_eq!(cfg.pattern_sets.len(), 2);
        assert_eq!(cfg.chains.len(), 1);
        // And it actually builds a working instance.
        let mut dpi = dpi_core::DpiInstance::new(cfg).unwrap();
        let out = dpi.scan_payload(chain, None, b"xxsig-bxx").unwrap();
        assert_eq!(out.reports.len(), 1);
        assert_eq!(out.reports[0].middlebox_id, 2);
    }

    #[test]
    fn duplicate_registration_fails() {
        let c = DpiController::new();
        register(&c, 1, "ids");
        assert_eq!(
            c.register(
                MiddleboxId(1),
                "ids2",
                None,
                MiddleboxProfile::stateless(MiddleboxId(1))
            )
            .unwrap_err(),
            ControllerError::AlreadyRegistered(1)
        );
    }

    #[test]
    fn inheritance_copies_rules() {
        let c = DpiController::new();
        register(&c, 1, "ids");
        c.add_pattern(MiddleboxId(1), 0, &RuleSpec::exact(b"inherited".to_vec()))
            .unwrap();
        c.register(
            MiddleboxId(5),
            "ids-clone",
            Some(MiddleboxId(1)),
            MiddleboxProfile::stateless(MiddleboxId(5)),
        )
        .unwrap();
        let chain = c.register_chain(&[MiddleboxId(5)]).unwrap();
        let cfg = c.instance_config(&[chain]).unwrap();
        let mut dpi = dpi_core::DpiInstance::new(cfg).unwrap();
        let out = dpi.scan_payload(chain, None, b"the inherited sig").unwrap();
        assert_eq!(out.reports[0].middlebox_id, 5);
    }

    #[test]
    fn identical_chains_share_an_id() {
        let c = DpiController::new();
        register(&c, 1, "a");
        register(&c, 2, "b");
        let x = c.register_chain(&[MiddleboxId(1), MiddleboxId(2)]).unwrap();
        let y = c.register_chain(&[MiddleboxId(1), MiddleboxId(2)]).unwrap();
        let z = c.register_chain(&[MiddleboxId(2), MiddleboxId(1)]).unwrap();
        assert_eq!(x, y);
        assert_ne!(x, z); // order matters: it is a routing sequence
    }

    #[test]
    fn chain_with_unknown_member_fails() {
        let c = DpiController::new();
        assert_eq!(
            c.register_chain(&[MiddleboxId(9)]).unwrap_err(),
            ControllerError::ChainMemberUnknown(9)
        );
    }

    #[test]
    fn json_protocol_end_to_end() {
        let c = DpiController::new();
        let reply = c.handle_json(
            &ControllerMessage::Register {
                middlebox_id: 3,
                name: "l7fw".into(),
                inherit_from: None,
                stateful: false,
                read_only: false,
                stopping_condition: None,
            }
            .to_json(),
        );
        assert_eq!(
            ControllerReply::from_json(&reply).unwrap(),
            ControllerReply::Registered { middlebox_id: 3 }
        );
        let reply = c.handle_json(
            &ControllerMessage::AddPattern {
                middlebox_id: 3,
                rule_id: 0,
                rule: RuleSpec::exact(b"blocked".to_vec()),
            }
            .to_json(),
        );
        assert!(ControllerReply::from_json(&reply).unwrap().is_ok());
        // Unknown middlebox errors flow back as JSON errors.
        let reply = c.handle_json(
            &ControllerMessage::AddPattern {
                middlebox_id: 99,
                rule_id: 0,
                rule: RuleSpec::exact(b"x".to_vec()),
            }
            .to_json(),
        );
        assert!(!ControllerReply::from_json(&reply).unwrap().is_ok());
        // Garbage JSON is an error, not a panic.
        assert!(!ControllerReply::from_json(&c.handle_json("not json"))
            .unwrap()
            .is_ok());
    }

    #[test]
    fn pattern_removal_updates_configs() {
        let c = DpiController::new();
        register(&c, 1, "ids");
        c.add_pattern(MiddleboxId(1), 0, &RuleSpec::exact(b"gone-soon".to_vec()))
            .unwrap();
        let chain = c.register_chain(&[MiddleboxId(1)]).unwrap();
        let v1 = c.version();
        c.remove_pattern(MiddleboxId(1), 0).unwrap();
        assert!(c.version() > v1);
        let cfg = c.instance_config(&[chain]).unwrap();
        let mut dpi = dpi_core::DpiInstance::new(cfg).unwrap();
        let out = dpi.scan_payload(chain, None, b"gone-soon").unwrap();
        assert!(out.reports.is_empty());
    }

    #[test]
    fn telemetry_reports_return_deltas() {
        let c = DpiController::new();
        let inst = c.deploy_instance(vec![]);
        let t1 = Telemetry {
            packets: 10,
            bytes: 1000,
            ..Telemetry::default()
        };
        let d1 = c.report_telemetry(inst, t1).unwrap();
        assert_eq!(d1.packets, 10);
        let t2 = Telemetry {
            packets: 25,
            bytes: 2500,
            ..Telemetry::default()
        };
        let d2 = c.report_telemetry(inst, t2).unwrap();
        assert_eq!(d2.packets, 15);
        assert_eq!(d2.bytes, 1500);
    }

    #[test]
    fn heartbeats_drive_instance_health() {
        let c = DpiController::new();
        c.set_health_policy(HealthPolicy {
            suspect_after: 1,
            dead_after: 2,
        });
        let a = c.deploy_instance(vec![]);
        let b = c.deploy_instance(vec![]);
        assert_eq!(c.healthy_instances(), vec![a, b]);
        // Deployment grants one grace window; close it.
        assert!(c.health_tick().is_empty());
        // b goes silent: suspect after 1 missed window, dead after 2.
        c.heartbeat(a, 1, 100).unwrap();
        assert_eq!(c.health_tick(), vec![HealthEvent::BecameSuspect(b)]);
        c.heartbeat(a, 2, 100).unwrap();
        assert_eq!(c.health_tick(), vec![HealthEvent::BecameDead(b)]);
        assert_eq!(c.instance_health(b), Some(InstanceHealth::Dead));
        assert_eq!(c.healthy_instances(), vec![a]);
        assert_eq!(c.instance_load(a), Some(100));
        // Heartbeats to unknown instances are errors.
        assert!(c.heartbeat(InstanceId(99), 1, 0).is_err());
        // The JSON channel carries heartbeats too.
        let reply = c.handle_json(
            &ControllerMessage::Heartbeat {
                instance_id: b.0,
                seq: 3,
                load: 7,
            }
            .to_json(),
        );
        assert!(ControllerReply::from_json(&reply).unwrap().is_ok());
        c.heartbeat(a, 3, 100).unwrap();
        assert_eq!(c.health_tick(), vec![HealthEvent::Recovered(b)]);
    }

    #[test]
    fn removed_instances_stop_being_health_tracked() {
        let c = DpiController::new();
        let a = c.deploy_instance(vec![]);
        c.remove_instance(a).unwrap();
        assert_eq!(c.instance_health(a), None);
        assert!(c.health_tick().is_empty());
    }

    #[test]
    fn pattern_mutations_flag_affected_instances_pending() {
        let c = DpiController::new();
        register(&c, 1, "ids");
        register(&c, 2, "av");
        let chain_a = c.register_chain(&[MiddleboxId(1)]).unwrap();
        let chain_b = c.register_chain(&[MiddleboxId(2)]).unwrap();
        let on_a = c.deploy_instance(vec![chain_a]);
        let on_b = c.deploy_instance(vec![chain_b]);
        // Mutating middlebox 2's rules stales only the instance whose
        // chain contains middlebox 2.
        c.add_pattern(MiddleboxId(2), 0, &RuleSpec::exact(b"new-sig".to_vec()))
            .unwrap();
        assert_eq!(c.instance_pending_update(on_a), Some(false));
        assert_eq!(c.instance_pending_update(on_b), Some(true));
        let statuses = c.instances();
        assert_eq!(statuses.len(), 2);
        assert!(!statuses[0].pending_update);
        assert!(statuses[1].pending_update);
        assert_eq!(statuses[1].generation, 0);
        // An acked generation clears the flag and records the generation.
        c.mark_instance_current(on_b, 1).unwrap();
        assert_eq!(c.instance_pending_update(on_b), Some(false));
        assert_eq!(c.instance_generation(on_b), Some(1));
        // Removal stales it again (satellite: remove_pattern bumps the
        // version and re-flags).
        let v = c.version();
        c.remove_pattern(MiddleboxId(2), 0).unwrap();
        assert!(c.version() > v);
        assert_eq!(c.instance_pending_update(on_b), Some(true));
        assert_eq!(c.instance_pending_update(on_a), Some(false));
        // The ack flows over the JSON channel too.
        let reply = c.handle_json(
            &ControllerMessage::AckGeneration {
                instance_id: on_b.0,
                generation: 2,
            }
            .to_json(),
        );
        assert!(ControllerReply::from_json(&reply).unwrap().is_ok());
        assert_eq!(c.instance_generation(on_b), Some(2));
        assert_eq!(c.instance_pending_update(on_b), Some(false));
        // BeginUpdate/Rollback are controller→instance messages; the
        // controller rejects ones misrouted to itself.
        let cfg = c.instance_config(&[chain_b]).unwrap();
        let artifact = dpi_core::UpdateArtifact::build(3, &cfg);
        let reply = c.handle_json(&crate::proto::begin_update(on_b.0, &artifact).to_json());
        assert!(!ControllerReply::from_json(&reply).unwrap().is_ok());
    }

    #[test]
    fn transfer_deltas_record_per_update_bytes() {
        let c = DpiController::new();
        register(&c, 1, "ids");
        assert!(c.pattern_transfer_deltas().is_empty());
        c.add_pattern(MiddleboxId(1), 0, &RuleSpec::exact(b"12345678".to_vec()))
            .unwrap();
        c.add_pattern(MiddleboxId(1), 1, &RuleSpec::exact(b"abcd".to_vec()))
            .unwrap();
        c.remove_pattern(MiddleboxId(1), 0).unwrap();
        let log = c.pattern_transfer_deltas();
        assert_eq!(log.len(), 3);
        // Adds are positive, the removal negative, and each total matches
        // the cumulative count at that version.
        assert!(log[0].delta_bytes > 0);
        assert!(log[1].delta_bytes > 0);
        assert!(log[2].delta_bytes < 0);
        assert_eq!(log[2].delta_bytes, -log[0].delta_bytes);
        assert_eq!(log[2].total_bytes, c.pattern_transfer_bytes());
        // Versions are strictly increasing across mutations.
        assert!(log[0].version < log[1].version && log[1].version < log[2].version);
        // Inheritance is logged, but the global store dedups by content,
        // so inheriting an already-stored pattern ships zero new bytes —
        // §4.1's shared-pattern argument.
        c.register(
            MiddleboxId(9),
            "clone",
            Some(MiddleboxId(1)),
            MiddleboxProfile::stateless(MiddleboxId(9)),
        )
        .unwrap();
        let log = c.pattern_transfer_deltas();
        assert_eq!(log.len(), 4);
        assert_eq!(log[3].delta_bytes, 0);
    }

    #[test]
    fn deregistration_cleans_chains_and_patterns() {
        let c = DpiController::new();
        register(&c, 1, "a");
        register(&c, 2, "b");
        c.add_pattern(MiddleboxId(1), 0, &RuleSpec::exact(b"only-a".to_vec()))
            .unwrap();
        let chain = c.register_chain(&[MiddleboxId(1), MiddleboxId(2)]).unwrap();
        c.deregister(MiddleboxId(1)).unwrap();
        assert!(c.chain_members(chain).is_none());
        assert_eq!(c.pattern_transfer_bytes(), 0);
    }
}
