//! Converting raw match lists into wire records (§6.5).
//!
//! The scanner produces `(pattern id, end position)` pairs in scan order.
//! Runs of the same pattern at *consecutive* positions — the
//! repeated-character case the paper calls out — are compressed into
//! 6-byte range records; everything else becomes 4-byte singles.

use dpi_packet::report::{MatchRecord, MAX_REPORTABLE_PATTERN_ID};

/// Compresses an in-scan-order match list into wire records.
///
/// Pattern ids above the 15-bit record limit are clamped (the controller
/// never allocates such ids; the clamp is a belt-and-braces guard).
pub fn compress_matches(matches: &[(u16, u16)]) -> Vec<MatchRecord> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < matches.len() {
        let (pid, start) = matches[i];
        let pid = pid.min(MAX_REPORTABLE_PATTERN_ID);
        // Extend a run of the same pattern at consecutive positions.
        let mut j = i + 1;
        let mut last = start;
        while j < matches.len()
            && matches[j].0.min(MAX_REPORTABLE_PATTERN_ID) == pid
            && matches[j].1 == last.wrapping_add(1)
        {
            last = matches[j].1;
            j += 1;
        }
        let count = (j - i) as u16;
        if count >= 2 {
            out.push(MatchRecord::Range {
                pattern_id: pid,
                start,
                count,
            });
        } else {
            out.push(MatchRecord::Single {
                pattern_id: pid,
                position: start,
            });
        }
        i = j;
    }
    out
}

/// Expands records back to `(pattern id, position)` pairs — the inverse of
/// [`compress_matches`], used by middleboxes and tests.
pub fn expand_records(records: &[MatchRecord]) -> Vec<(u16, u16)> {
    let mut out = Vec::new();
    for r in records {
        match *r {
            MatchRecord::Single {
                pattern_id,
                position,
            } => out.push((pattern_id, position)),
            MatchRecord::Range {
                pattern_id,
                start,
                count,
            } => {
                for k in 0..count {
                    out.push((pattern_id, start.wrapping_add(k)));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singles_stay_single() {
        let m = vec![(1, 10), (2, 11), (1, 20)];
        let r = compress_matches(&m);
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|x| matches!(x, MatchRecord::Single { .. })));
        assert_eq!(expand_records(&r), m);
    }

    #[test]
    fn consecutive_runs_become_ranges() {
        // Pattern 7 matching at 5,6,7,8 — the "aaaa" case.
        let m = vec![(7, 5), (7, 6), (7, 7), (7, 8), (9, 20)];
        let r = compress_matches(&m);
        assert_eq!(r.len(), 2);
        assert_eq!(
            r[0],
            MatchRecord::Range {
                pattern_id: 7,
                start: 5,
                count: 4
            }
        );
        assert_eq!(expand_records(&r), m);
    }

    #[test]
    fn interleaved_patterns_do_not_merge() {
        let m = vec![(1, 5), (2, 6), (1, 7)];
        let r = compress_matches(&m);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn non_consecutive_same_pattern_does_not_merge() {
        let m = vec![(1, 5), (1, 7)];
        assert_eq!(compress_matches(&m).len(), 2);
    }

    #[test]
    fn wire_size_shrinks_for_runs() {
        let run: Vec<(u16, u16)> = (0..100).map(|i| (3u16, i as u16)).collect();
        let r = compress_matches(&run);
        let bytes: usize = r.iter().map(MatchRecord::wire_size).sum();
        assert_eq!(bytes, 6); // one range record instead of 400 bytes
        assert_eq!(expand_records(&r), run);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(compress_matches(&[]).is_empty());
    }
}
