//! Tentpole property: **no silent miss**. For every adversarial flow the
//! evasion generator produces, a pattern visible under *any* consistent
//! interpretation of the TCP stream is either reported (canonically or
//! via a shadow scan of the losing conflict copy) or the flow is loudly
//! quarantined — under all three conflict policies (DESIGN.md §13).
//! Patterns visible under *no* interpretation (out-of-window injections)
//! are never reported: no false positives either.

use dpi_service::core::chaos::FaultPlan;
use dpi_service::core::report::expand_records;
use dpi_service::core::{
    ConflictPolicy, DpiInstance, InstanceConfig, MiddleboxId, MiddleboxProfile, RuleSpec,
};
use dpi_service::middlebox::ids;
use dpi_service::packet::ipv4::IpProtocol;
use dpi_service::packet::packet::flow;
use dpi_service::packet::FlowKey;
use dpi_service::traffic::{evasive_flow, evasive_flows, EvasionTactic, EvasiveFlow};
use dpi_service::SystemBuilder;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::io::Write;

const IDS: MiddleboxId = MiddleboxId(1);
const CHAIN: u16 = 1;

fn patterns() -> Vec<Vec<u8>> {
    vec![b"attack-signature".to_vec(), b"EVIL/1.0".to_vec()]
}

fn instance(policy: ConflictPolicy) -> DpiInstance {
    DpiInstance::new(
        InstanceConfig::new()
            .with_middlebox(
                MiddleboxProfile::stateful(IDS),
                RuleSpec::exact_set(&patterns()),
            )
            .with_chain(CHAIN, vec![IDS])
            .with_conflict_policy(policy),
    )
    .unwrap()
}

fn fk() -> FlowKey {
    flow([9, 9, 9, 9], 999, [8, 8, 8, 8], 80, IpProtocol::Tcp)
}

/// What one adversarial flow produced under one policy.
#[derive(Debug)]
struct Outcome {
    /// Pattern ids reported, canonical and shadow scans alike.
    matched: BTreeSet<u16>,
    /// Flow-absolute `(pid, end)` pairs from canonical outputs only
    /// (shadow scans are stateless; their positions are copy-relative).
    canonical: BTreeSet<(u16, u64)>,
    quarantined: bool,
    conflicts: u64,
}

/// Drives one generated flow through a fresh instance under `policy`.
fn run(f: &EvasiveFlow, policy: ConflictPolicy) -> Outcome {
    let mut dpi = instance(policy);
    dpi.open_tcp_flow(fk(), f.initial_seq);
    let mut matched = BTreeSet::new();
    let mut canonical = BTreeSet::new();
    for seg in &f.segments {
        for out in dpi
            .scan_tcp_segment(CHAIN, fk(), seg.seq, &seg.payload)
            .unwrap()
        {
            for r in &out.reports {
                for (pid, pos) in expand_records(&r.records) {
                    matched.insert(pid);
                    // Shadow-scan positions are copy-relative (and
                    // `flow_offset` is 0), so they have no place in the
                    // flow-absolute canonical verdict set.
                    if !out.shadow {
                        canonical.insert((pid, out.flow_offset + u64::from(pos)));
                    }
                }
            }
        }
    }
    Outcome {
        matched,
        canonical,
        quarantined: dpi.flow_quarantined(&fk()),
        conflicts: dpi.telemetry().reassembly_conflicts,
    }
}

/// `(pid, end)` oracle: scanning `stream` whole through a fresh
/// instance.
fn oracle(stream: &[u8]) -> BTreeSet<(u16, u64)> {
    let mut dpi = instance(ConflictPolicy::FirstWins);
    let out = dpi.scan_payload(CHAIN, Some(fk()), stream).unwrap();
    out.reports
        .iter()
        .flat_map(|r| expand_records(&r.records))
        .map(|(pid, pos)| (pid, u64::from(pos)))
        .collect()
}

fn planted_pid(f: &EvasiveFlow) -> u16 {
    patterns()
        .iter()
        .position(|p| *p == f.planted)
        .expect("planted pattern comes from the registered set") as u16
}

/// The no-silent-miss check for one flow under one policy. Returns an
/// error description instead of panicking so the seed-sweep can collect
/// divergences.
fn check(f: &EvasiveFlow, policy: ConflictPolicy) -> Result<(), String> {
    let out = run(f, policy);
    let fail = |what: &str| {
        Err(format!(
            "policy={} tactic={} seed={}: {what} (matched={:?} quarantined={} conflicts={})",
            policy.name(),
            f.tactic.name(),
            f.seed,
            out.matched,
            out.quarantined,
            out.conflicts,
        ))
    };
    if !f.conflicting {
        // Conflict-free flows must behave identically under every
        // policy: exact oracle verdicts, no conflicts, no quarantine.
        if out.conflicts != 0 {
            return fail("spurious conflict on a conflict-free flow");
        }
        if out.quarantined {
            return fail("spurious quarantine on a conflict-free flow");
        }
        let expected = oracle(&f.keep_first);
        if f.tactic == EvasionTactic::OutOfWindowInjection && out.matched.contains(&planted_pid(f))
        {
            return fail("false positive: out-of-window bytes reported");
        }
        if out.canonical != expected {
            return fail("verdicts diverged from the whole-stream oracle");
        }
        return Ok(());
    }
    // Conflicting flows: the pattern hides in exactly one
    // interpretation.
    if out.conflicts == 0 {
        return fail("byte-level conflict went undetected");
    }
    match policy {
        ConflictPolicy::RejectFlow => {
            if !out.quarantined {
                return fail("RejectFlow must quarantine on conflict");
            }
        }
        ConflictPolicy::FirstWins | ConflictPolicy::LastWins => {
            if out.quarantined {
                return fail("permissive policy must not quarantine");
            }
            if !out.matched.contains(&planted_pid(f)) {
                return fail("SILENT MISS: pattern visible in an interpretation was not reported");
            }
        }
    }
    Ok(())
}

const POLICIES: [ConflictPolicy; 3] = [
    ConflictPolicy::FirstWins,
    ConflictPolicy::LastWins,
    ConflictPolicy::RejectFlow,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn no_silent_miss_under_any_policy(seed in any::<u64>()) {
        let f = evasive_flow(seed, &patterns());
        prop_assert!(
            f.tactic == EvasionTactic::OutOfWindowInjection
                || f.pattern_in_some_interpretation()
        );
        for policy in POLICIES {
            if let Err(e) = check(&f, policy) {
                prop_assert!(false, "{}", e);
            }
        }
    }
}

/// The standing sweep the CI `evasion` job runs: a fixed flow count per
/// seed (seeds 1/7/42, or `DPI_CHAOS_SEED` when set), all three
/// policies, divergences archived as JSONL when `DPI_CHAOS_LOG_DIR` is
/// set.
#[test]
fn seed_sweep_archives_divergences() {
    let seeds: Vec<u64> = match std::env::var("DPI_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("DPI_CHAOS_SEED must be a u64")],
        Err(_) => vec![1, 7, 42],
    };
    let log_dir = std::env::var("DPI_CHAOS_LOG_DIR").ok();
    let mut divergences = Vec::new();
    for &seed in &seeds {
        for f in evasive_flows(64, seed, &patterns()) {
            for policy in POLICIES {
                if let Err(e) = check(&f, policy) {
                    divergences.push(format!(
                        "{{\"seed\":{},\"flow_seed\":{},\"tactic\":\"{}\",\"policy\":\"{}\",\"error\":{:?}}}",
                        seed,
                        f.seed,
                        f.tactic.name(),
                        policy.name(),
                        e
                    ));
                }
            }
        }
    }
    if let Some(dir) = log_dir {
        if !divergences.is_empty() {
            std::fs::create_dir_all(&dir).unwrap();
            let mut file =
                std::fs::File::create(format!("{dir}/evasion-divergences.jsonl")).unwrap();
            for d in &divergences {
                writeln!(file, "{d}").unwrap();
            }
        }
    }
    assert!(
        divergences.is_empty(),
        "{} divergence(s):\n{}",
        divergences.len(),
        divergences.join("\n")
    );
}

/// The chaos hook is wired into the system traffic driver: with
/// `evasive_flows(1.0)` the first send on a fresh flow is taken over by
/// the adversary (the generated evasion attempt's segments are injected
/// instead of the caller's payload, and the takeover is logged), and
/// every later send on that flow is swallowed. With no evasive fault
/// configured, traffic flows untouched.
#[test]
fn chaos_evasive_flows_take_over_system_traffic() {
    let mut sys = SystemBuilder::new()
        .with_middlebox(ids(IDS, &patterns()))
        .with_chain(&[IDS])
        .with_chaos(FaultPlan::new(7).evasive_flows(1.0))
        .build()
        .unwrap();
    let delivered = sys.send(fk(), 0, b"caller payload, replaced by the adversary");
    assert!(
        delivered > 0,
        "the adversary's generated segments must reach the network"
    );
    assert!(
        sys.fault_log()
            .iter()
            .any(|e| e.contains("evasive flow injected")),
        "the takeover must be logged for replay"
    );
    assert_eq!(
        sys.send(fk(), 16, b"later caller bytes"),
        0,
        "the adversary owns the flow: later sends are swallowed"
    );

    // Without the fault, the driver is a bystander.
    let mut sys = SystemBuilder::new()
        .with_middlebox(ids(IDS, &patterns()))
        .with_chain(&[IDS])
        .with_chaos(FaultPlan::new(7))
        .build()
        .unwrap();
    assert!(sys.send(fk(), 0, b"ordinary traffic") > 0);
    assert!(sys.fault_log().is_empty());
}

/// The chaos hook is deterministic: the same plan seed yields the same
/// evasive-flow seeds, and each seed regenerates the identical flow.
#[test]
fn chaos_wiring_is_deterministic() {
    let draw = || {
        let chaos = FaultPlan::new(99).evasive_flows(1.0).start();
        (0..8)
            .map(|_| chaos.next_flow_evasive().expect("p=1.0 always injects"))
            .collect::<Vec<u64>>()
    };
    let a = draw();
    assert_eq!(a, draw());
    for s in a {
        assert_eq!(evasive_flow(s, &patterns()), evasive_flow(s, &patterns()));
    }
}
