//! §1's decompression argument: "the effect of decompression …, which
//! usually takes place prior to the DPI phase, may be reduced
//! significantly, as these heavy processes are executed only once for
//! each packet."
//!
//! Workload: DEFLATE-compressed HTTP-like payloads. Baseline: each of N
//! middleboxes inflates the payload itself before scanning its own set.
//! Service: the DPI instance inflates once and scans the merged set.

use dpi_ac::MiddleboxId;
use dpi_core::{inflate, DpiInstance, InstanceConfig, MiddleboxProfile, RuleSpec};
use dpi_traffic::patterns::{snort_like, split_set};
use dpi_traffic::trace::TraceConfig;
use std::time::Instant;

fn main() {
    let snort = snort_like(2000, 42);
    let (set_a, set_b) = split_set(&snort, 1000, 3);
    let plain = TraceConfig {
        packets: 1500,
        match_density: 0.05,
        seed: 21,
        ..TraceConfig::default()
    }
    .generate(&snort);
    let compressed: Vec<Vec<u8>> = plain.iter().map(|p| dpi_core::deflate_fixed(p)).collect();
    let wire_bytes: usize = compressed.iter().map(|p| p.len()).sum();
    let plain_bytes: usize = plain.iter().map(|p| p.len()).sum();

    const A: MiddleboxId = MiddleboxId(1);
    const B: MiddleboxId = MiddleboxId(2);

    // Baseline: two middleboxes, each inflating then scanning its own set.
    let mk = |id: MiddleboxId, pats: &[Vec<u8>]| {
        DpiInstance::new(
            InstanceConfig::new()
                .with_middlebox(MiddleboxProfile::stateless(id), RuleSpec::exact_set(pats))
                .with_chain(1, vec![id]),
        )
        .expect("valid config")
    };
    let mut mb_a = mk(A, &set_a);
    let mut mb_b = mk(B, &set_b);

    let t0 = Instant::now();
    let mut baseline_matches = 0usize;
    for z in &compressed {
        // Middlebox A: inflate + scan.
        let p = inflate(z, 1 << 16).expect("well-formed workload");
        baseline_matches += mb_a.scan_payload(1, None, &p).expect("scan").reports.len();
        // Middlebox B: inflate (again!) + scan.
        let p = inflate(z, 1 << 16).expect("well-formed workload");
        baseline_matches += mb_b.scan_payload(1, None, &p).expect("scan").reports.len();
    }
    let t_baseline = t0.elapsed();

    // Service: one instance, merged sets, decompress once.
    let cfg = InstanceConfig::new()
        .with_middlebox(MiddleboxProfile::stateless(A), RuleSpec::exact_set(&set_a))
        .with_middlebox(MiddleboxProfile::stateless(B), RuleSpec::exact_set(&set_b))
        .with_chain(1, vec![A, B]);
    let mut dpi = DpiInstance::new(cfg).expect("valid config");
    let t0 = Instant::now();
    let mut service_matches = 0usize;
    for z in &compressed {
        service_matches += dpi
            .scan_payload_deflated(1, None, z, 1 << 16)
            .expect("scan")
            .reports
            .len();
    }
    let t_service = t0.elapsed();

    assert_eq!(baseline_matches, service_matches, "verdict parity");
    println!("# §1 — decompress once before DPI\n");
    println!(
        "packets                 : {} ({} B wire, {} B inflated)",
        plain.len(),
        wire_bytes,
        plain_bytes
    );
    println!("reports (both modes)    : {baseline_matches}");
    println!("baseline (2x inflate + 2x scan) : {t_baseline:?}");
    println!("service  (1x inflate + 1x scan) : {t_service:?}");
    println!(
        "\nspeedup: {:.2}x (inflations: {} vs {})",
        t_baseline.as_secs_f64() / t_service.as_secs_f64(),
        2 * compressed.len(),
        dpi.telemetry().decompressions
    );
    println!("# expected shape: service ≈ 2x faster — both the inflate and the");
    println!("# scan halve; with longer chains the factor grows linearly.");
}
