//! Incremental HTTP/1.x framing decoder.
//!
//! Separates header blocks from bodies, decodes `Transfer-Encoding:
//! chunked`, buffers `Content-Encoding: gzip` bodies for whole-message
//! decompression through [`crate::decompress::gunzip_capped`], and
//! detects the WebSocket Upgrade handshake. Framing failures fail
//! *open*: the unparseable bytes flush to the raw scan path and the
//! rest of the flow is scanned undecoded — never silently dropped.
//!
//! Plain (identity) bodies stream out as resumable [`SLOT_HTTP_BODY`]
//! units so a pattern spanning a chunk or segment boundary still
//! matches; each message resets the slot. Gzip bodies necessarily
//! decode at message end (the deflate stream isn't seekable with the
//! vendored one-shot inflater), so they arrive as a single reset unit.

use super::{unit, DecodeOut, L7Direction, L7Field, SLOT_HTTP_BODY};
use crate::decompress::gunzip_capped;

/// Longest chunk-size line (hex size + extensions) before the decoder
/// declares the framing bogus and fails open.
const MAX_CHUNK_LINE: usize = 256;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HState {
    /// Accumulating a header block up to `\r\n\r\n`.
    Headers,
    /// Reading a Content-Length body; remaining bytes.
    BodyLen(u64),
    /// Reading a chunk-size line.
    ChunkSize,
    /// Reading chunk payload; remaining bytes.
    ChunkData(u64),
    /// Expecting the `\r\n` that closes a chunk.
    ChunkCrlf,
    /// Accumulating the trailer section after the last chunk.
    Trailers,
    /// Response body delimited by connection close: everything is body.
    BodyEof,
}

/// One HTTP/1 direction's decode state.
#[derive(Debug)]
pub struct Http1Decoder {
    dir: L7Direction,
    state: HState,
    /// Unconsumed wire bytes carried across `push` calls.
    pending: Vec<u8>,
    /// Current message body is gzip-encoded.
    gzip: bool,
    /// Compressed body accumulated for end-of-message decompression.
    gz_buf: Vec<u8>,
    /// Compressed input itself exceeded the inspection limit.
    gz_overflow: bool,
    /// Decoded body bytes emitted for the current message (plain path).
    body_emitted: u64,
    /// The current message's body already hit the size limit.
    body_truncated: bool,
    /// The next body unit starts a new message (slot reset).
    first_body_unit: bool,
}

impl Http1Decoder {
    /// A decoder for one direction (requests or responses).
    pub fn new(dir: L7Direction) -> Http1Decoder {
        Http1Decoder {
            dir,
            state: HState::Headers,
            pending: Vec::new(),
            gzip: false,
            gz_buf: Vec::new(),
            gz_overflow: false,
            body_emitted: 0,
            body_truncated: false,
            first_body_unit: true,
        }
    }

    /// Heap bytes held across `push` calls (flow-arena accounting).
    pub(crate) fn heap_bytes(&self) -> u64 {
        (self.pending.len() + self.gz_buf.len()) as u64
    }

    /// Feeds wire bytes through the framing state machine.
    pub(crate) fn push(&mut self, data: &[u8], limit: usize, out: &mut DecodeOut) {
        self.pending.extend_from_slice(data);
        let mut i = 0usize;
        loop {
            match self.state {
                HState::Headers => {
                    let hay = &self.pending[i..];
                    let Some(p) = find(hay, b"\r\n\r\n") else {
                        if hay.len() > limit {
                            self.fail_open(i, out);
                            return;
                        }
                        break;
                    };
                    let block = hay[..p + 4].to_vec();
                    i += p + 4;
                    let upgrade = self.on_headers(&block);
                    out.units.push(unit(L7Field::Header, block, None, false));
                    if upgrade {
                        out.upgrade_ws = Some(self.pending[i..].to_vec());
                        self.pending.clear();
                        return;
                    }
                }
                HState::BodyLen(rem) => {
                    let avail = self.pending.len() - i;
                    let take = (rem.min(avail as u64)) as usize;
                    self.emit_body(self.pending[i..i + take].to_vec(), limit, out);
                    i += take;
                    if rem == take as u64 {
                        self.finish_message(limit, out);
                    } else {
                        self.state = HState::BodyLen(rem - take as u64);
                        break;
                    }
                }
                HState::ChunkSize => {
                    let hay = &self.pending[i..];
                    let Some(p) = find(hay, b"\r\n") else {
                        if hay.len() > MAX_CHUNK_LINE {
                            out.errors += 1;
                            self.fail_open(i, out);
                            return;
                        }
                        break;
                    };
                    let Some(size) = parse_chunk_size(&hay[..p]) else {
                        out.errors += 1;
                        self.fail_open(i, out);
                        return;
                    };
                    i += p + 2;
                    self.state = if size == 0 {
                        HState::Trailers
                    } else {
                        HState::ChunkData(size)
                    };
                }
                HState::ChunkData(rem) => {
                    let avail = self.pending.len() - i;
                    let take = (rem.min(avail as u64)) as usize;
                    self.emit_body(self.pending[i..i + take].to_vec(), limit, out);
                    i += take;
                    if rem == take as u64 {
                        self.state = HState::ChunkCrlf;
                    } else {
                        self.state = HState::ChunkData(rem - take as u64);
                        break;
                    }
                }
                HState::ChunkCrlf => {
                    let hay = &self.pending[i..];
                    if hay.len() < 2 {
                        break;
                    }
                    if &hay[..2] != b"\r\n" {
                        out.errors += 1;
                        self.fail_open(i, out);
                        return;
                    }
                    i += 2;
                    self.state = HState::ChunkSize;
                }
                HState::Trailers => {
                    let hay = &self.pending[i..];
                    // Empty trailer section: the bare CRLF ends the
                    // message; otherwise trailers run to a blank line.
                    let end = if hay.starts_with(b"\r\n") {
                        Some(2)
                    } else {
                        find(hay, b"\r\n\r\n").map(|p| p + 4)
                    };
                    let Some(end) = end else {
                        if hay.len() > limit {
                            self.fail_open(i, out);
                            return;
                        }
                        break;
                    };
                    if end > 2 {
                        // Trailers are header-class content: scan them.
                        out.units
                            .push(unit(L7Field::Header, hay[..end].to_vec(), None, false));
                    }
                    i += end;
                    self.finish_message(limit, out);
                }
                HState::BodyEof => {
                    let rest = self.pending[i..].to_vec();
                    i = self.pending.len();
                    self.emit_body(rest, limit, out);
                    break;
                }
            }
            if i == self.pending.len() {
                break;
            }
        }
        self.pending.drain(..i);
    }

    /// Parses one header block, resets per-message body accounting and
    /// picks the body-framing state. Returns whether the block completes
    /// a WebSocket Upgrade handshake.
    fn on_headers(&mut self, block: &[u8]) -> bool {
        self.body_emitted = 0;
        self.body_truncated = false;
        self.first_body_unit = true;
        self.gz_buf.clear();
        self.gz_overflow = false;
        let chunked = header_value(block, b"transfer-encoding")
            .is_some_and(|v| contains_token(v, b"chunked"));
        let content_length = header_value(block, b"content-length")
            .and_then(|v| std::str::from_utf8(v).ok())
            .and_then(|v| v.trim().parse::<u64>().ok());
        self.gzip =
            header_value(block, b"content-encoding").is_some_and(|v| contains_token(v, b"gzip"));
        let upgrade = header_value(block, b"upgrade")
            .is_some_and(|v| contains_token(v, b"websocket"))
            && match self.dir {
                L7Direction::ClientToServer => true,
                L7Direction::ServerToClient => status_code(block) == Some(101),
            };
        if upgrade {
            return true;
        }
        self.state = if chunked {
            HState::ChunkSize
        } else if let Some(n) = content_length {
            if n == 0 {
                HState::Headers
            } else {
                HState::BodyLen(n)
            }
        } else if self.dir == L7Direction::ServerToClient {
            // A response without framing headers runs to connection
            // close. There is no message end to decompress at, so a
            // gzip body on this path is scanned undecoded.
            self.gzip = false;
            HState::BodyEof
        } else {
            // Requests without framing headers carry no body.
            HState::Headers
        };
        false
    }

    /// Emits decoded body bytes under the per-message size limit, or
    /// accumulates compressed input for end-of-message decompression.
    fn emit_body(&mut self, mut bytes: Vec<u8>, limit: usize, out: &mut DecodeOut) {
        if bytes.is_empty() {
            return;
        }
        if self.gzip {
            let room = limit.saturating_sub(self.gz_buf.len());
            if bytes.len() > room {
                self.gz_overflow = true;
                bytes.truncate(room);
            }
            self.gz_buf.extend_from_slice(&bytes);
            return;
        }
        if self.body_truncated {
            return;
        }
        let room = (limit as u64).saturating_sub(self.body_emitted) as usize;
        let total = bytes.len();
        let take = room.min(total);
        if take > 0 {
            bytes.truncate(take);
            out.units.push(unit(
                L7Field::Body,
                bytes,
                Some(SLOT_HTTP_BODY),
                self.first_body_unit,
            ));
            self.first_body_unit = false;
            self.body_emitted += take as u64;
        }
        if take < total {
            self.body_truncated = true;
            out.truncations.push(self.body_emitted);
        }
    }

    /// Ends the current message: decompresses a buffered gzip body and
    /// re-arms for the next keep-alive message.
    fn finish_message(&mut self, limit: usize, out: &mut DecodeOut) {
        if self.gzip && !self.gz_buf.is_empty() {
            match gunzip_capped(&self.gz_buf, limit) {
                Ok((bytes, truncated)) => {
                    let kept = bytes.len() as u64;
                    out.units
                        .push(unit(L7Field::Body, bytes, Some(SLOT_HTTP_BODY), true));
                    if truncated || self.gz_overflow {
                        out.truncations.push(kept);
                    }
                }
                Err(_) => {
                    // Fail open on the body only: the compressed bytes
                    // are scanned raw; framing continues.
                    out.errors += 1;
                    out.raw.push(std::mem::take(&mut self.gz_buf));
                }
            }
        }
        self.gzip = false;
        self.gz_buf.clear();
        self.gz_overflow = false;
        self.state = HState::Headers;
    }

    /// Abandons framing: everything unconsumed (and everything future,
    /// via the session's Raw phase) goes to the raw scan path.
    fn fail_open(&mut self, i: usize, out: &mut DecodeOut) {
        if i < self.pending.len() {
            out.raw.push(self.pending[i..].to_vec());
        }
        if !self.gz_buf.is_empty() {
            out.raw.push(std::mem::take(&mut self.gz_buf));
        }
        self.pending.clear();
        out.failed_open = true;
    }
}

/// First index of `needle` in `hay`.
fn find(hay: &[u8], needle: &[u8]) -> Option<usize> {
    hay.windows(needle.len()).position(|w| w == needle)
}

/// The value of the first header named `name` (lowercase) in a header
/// block, trimmed of surrounding whitespace.
fn header_value<'a>(block: &'a [u8], name: &[u8]) -> Option<&'a [u8]> {
    for line in block.split(|&b| b == b'\n') {
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        let Some(colon) = line.iter().position(|&b| b == b':') else {
            continue;
        };
        if line[..colon].len() == name.len()
            && line[..colon]
                .iter()
                .zip(name)
                .all(|(a, b)| a.to_ascii_lowercase() == *b)
        {
            let mut v = &line[colon + 1..];
            while let Some((first, rest)) = v.split_first() {
                if first.is_ascii_whitespace() {
                    v = rest;
                } else {
                    break;
                }
            }
            while let Some((last, rest)) = v.split_last() {
                if last.is_ascii_whitespace() {
                    v = rest;
                } else {
                    break;
                }
            }
            return Some(v);
        }
    }
    None
}

/// Whether a comma-separated header value contains `token`
/// (case-insensitive).
fn contains_token(value: &[u8], token: &[u8]) -> bool {
    value.split(|&b| b == b',').any(|part| {
        let part: Vec<u8> = part
            .iter()
            .filter(|b| !b.is_ascii_whitespace())
            .map(|b| b.to_ascii_lowercase())
            .collect();
        part == token
    })
}

/// The status code of a response header block.
fn status_code(block: &[u8]) -> Option<u16> {
    let line = block.split(|&b| b == b'\n').next()?;
    let sp = line.iter().position(|&b| b == b' ')?;
    let rest = &line[sp + 1..];
    if rest.len() < 3 {
        return None;
    }
    std::str::from_utf8(&rest[..3]).ok()?.parse().ok()
}

/// The hex chunk size from a chunk-size line (extensions after `;`
/// ignored).
fn parse_chunk_size(line: &[u8]) -> Option<u64> {
    let hex = line.split(|&b| b == b';').next()?;
    let hex = std::str::from_utf8(hex).ok()?.trim();
    if hex.is_empty() || hex.len() > 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompress::gzip;

    const LIMIT: usize = 1 << 16;

    fn push_all(d: &mut Http1Decoder, data: &[u8], limit: usize) -> DecodeOut {
        let mut out = DecodeOut::default();
        d.push(data, limit, &mut out);
        out
    }

    fn body_bytes(out: &DecodeOut) -> Vec<u8> {
        out.units
            .iter()
            .filter(|u| u.ctx.field == L7Field::Body)
            .flat_map(|u| u.bytes.iter().copied())
            .collect()
    }

    #[test]
    fn content_length_body_streams_with_reset() {
        let mut d = Http1Decoder::new(L7Direction::ClientToServer);
        let msg = b"POST /u HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let out = push_all(&mut d, msg, LIMIT);
        assert_eq!(out.units.len(), 2);
        assert_eq!(out.units[0].ctx.field, L7Field::Header);
        assert_eq!(out.units[1].bytes, b"hello");
        assert_eq!(out.units[1].slot, Some(SLOT_HTTP_BODY));
        assert!(out.units[1].reset);
        // Next keep-alive message resets the body slot again.
        let out2 = push_all(
            &mut d,
            b"POST /u HTTP/1.1\r\nContent-Length: 2\r\n\r\nok",
            LIMIT,
        );
        assert!(out2.units[1].reset);
    }

    #[test]
    fn split_delivery_emits_resumable_units() {
        let mut d = Http1Decoder::new(L7Direction::ClientToServer);
        let msg = b"POST /u HTTP/1.1\r\nContent-Length: 10\r\n\r\nhelloworld";
        let mut outs = Vec::new();
        for b in msg.iter() {
            outs.push(push_all(&mut d, &[*b], LIMIT));
        }
        let body: Vec<u8> = outs.iter().flat_map(body_bytes).collect();
        assert_eq!(body, b"helloworld");
        let resets: Vec<bool> = outs
            .iter()
            .flat_map(|o| o.units.iter())
            .filter(|u| u.ctx.field == L7Field::Body)
            .map(|u| u.reset)
            .collect();
        assert!(resets[0]);
        assert!(resets[1..].iter().all(|r| !r));
    }

    #[test]
    fn chunked_body_is_dechunked() {
        let mut d = Http1Decoder::new(L7Direction::ServerToClient);
        let msg = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                    5\r\nhello\r\n6;ext=1\r\n world\r\n0\r\n\r\n";
        let out = push_all(&mut d, msg, LIMIT);
        assert_eq!(body_bytes(&out), b"hello world");
        assert_eq!(out.errors, 0);
        assert!(!out.failed_open);
        assert_eq!(d.state, HState::Headers);
    }

    #[test]
    fn chunked_gzip_body_decompresses_at_message_end() {
        let plain = b"the secret is EVILPATTERN inside".to_vec();
        let gz = gzip(&plain);
        let mut msg = format!(
            "HTTP/1.1 200 OK\r\nContent-Encoding: gzip\r\nTransfer-Encoding: chunked\r\n\r\n{:x}\r\n",
            gz.len()
        )
        .into_bytes();
        msg.extend_from_slice(&gz);
        msg.extend_from_slice(b"\r\n0\r\n\r\n");
        let mut d = Http1Decoder::new(L7Direction::ServerToClient);
        let out = push_all(&mut d, &msg, LIMIT);
        assert_eq!(body_bytes(&out), plain);
        assert_eq!(out.errors, 0);
    }

    #[test]
    fn corrupt_gzip_body_fails_open_to_raw() {
        let msg = b"HTTP/1.1 200 OK\r\nContent-Encoding: gzip\r\nContent-Length: 4\r\n\r\nJUNK";
        let mut d = Http1Decoder::new(L7Direction::ServerToClient);
        let out = push_all(&mut d, msg, LIMIT);
        assert_eq!(out.errors, 1);
        assert_eq!(out.raw, vec![b"JUNK".to_vec()]);
        assert!(body_bytes(&out).is_empty());
        // Framing survives: the next message still parses.
        assert_eq!(d.state, HState::Headers);
    }

    #[test]
    fn plain_body_truncates_at_limit_and_keeps_framing() {
        let mut d = Http1Decoder::new(L7Direction::ClientToServer);
        let msg = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789GET";
        let out = push_all(&mut d, msg, 4);
        assert_eq!(body_bytes(&out), b"0123");
        assert_eq!(out.truncations, vec![4]);
        assert_eq!(d.state, HState::Headers);
    }

    #[test]
    fn bad_chunk_size_fails_open() {
        let mut d = Http1Decoder::new(L7Direction::ServerToClient);
        let msg = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\npayload";
        let out = push_all(&mut d, msg, LIMIT);
        assert!(out.failed_open);
        assert_eq!(out.errors, 1);
        assert_eq!(out.raw, vec![b"zz\r\npayload".to_vec()]);
    }

    #[test]
    fn upgrade_request_hands_off_leftover() {
        let mut d = Http1Decoder::new(L7Direction::ClientToServer);
        let msg =
            b"GET /chat HTTP/1.1\r\nUpgrade: websocket\r\nConnection: Upgrade\r\n\r\n\x81\x85";
        let out = push_all(&mut d, msg, LIMIT);
        assert_eq!(out.upgrade_ws.as_deref(), Some(&b"\x81\x85"[..]));
        assert_eq!(out.units.len(), 1);
    }

    #[test]
    fn upgrade_response_requires_101() {
        let mut d = Http1Decoder::new(L7Direction::ServerToClient);
        let ok = b"HTTP/1.1 101 Switching Protocols\r\nUpgrade: websocket\r\n\r\n";
        assert!(push_all(&mut d, ok, LIMIT).upgrade_ws.is_some());
        let mut d2 = Http1Decoder::new(L7Direction::ServerToClient);
        let no = b"HTTP/1.1 200 OK\r\nUpgrade: websocket\r\nContent-Length: 0\r\n\r\n";
        assert!(push_all(&mut d2, no, LIMIT).upgrade_ws.is_none());
    }

    #[test]
    fn response_without_framing_reads_to_eof() {
        let mut d = Http1Decoder::new(L7Direction::ServerToClient);
        let out = push_all(&mut d, b"HTTP/1.1 200 OK\r\n\r\nstream", LIMIT);
        assert_eq!(body_bytes(&out), b"stream");
        let out2 = push_all(&mut d, b" more", LIMIT);
        assert_eq!(body_bytes(&out2), b" more");
    }

    #[test]
    fn header_helpers_parse() {
        let block = b"HTTP/1.1 200 OK\r\nContent-Encoding:  GZIP \r\nTransfer-Encoding: foo, Chunked\r\n\r\n";
        assert!(contains_token(
            header_value(block, b"content-encoding").unwrap(),
            b"gzip"
        ));
        assert!(contains_token(
            header_value(block, b"transfer-encoding").unwrap(),
            b"chunked"
        ));
        assert_eq!(status_code(block), Some(200));
        assert_eq!(parse_chunk_size(b"1a;name=v"), Some(26));
        assert_eq!(parse_chunk_size(b"zz"), None);
    }
}
