//! Seeded application-layer flow generators with pattern-placement
//! ground truth — the workloads the L7 inspection layer (DESIGN.md §14)
//! is tested and benchmarked against.
//!
//! Each generator returns an [`L7Flow`]: the client byte stream exactly
//! as it would cross the wire, the payload the decoders should
//! reconstruct from it, and where the planted pattern sits in that
//! decoded payload. The point of every generator is that the pattern is
//! **invisible to a raw byte scan** of the stream (gzip-compressed,
//! split across chunk/frame boundaries, XOR-masked, or tucked inside a
//! TLS extension) and only a protocol-aware decoder surfaces it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated application-layer flow with its ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L7Flow {
    /// The bytes a TCP receiver reassembles, in stream order.
    pub stream: Vec<u8>,
    /// What a protocol-aware decoder extracts from the stream (the HTTP
    /// body after dechunking/decompression, the concatenated WebSocket
    /// message, the SNI host name).
    pub decoded: Vec<u8>,
    /// Offset of the planted pattern inside `decoded`.
    pub pattern_offset: usize,
    /// The planted pattern.
    pub pattern: Vec<u8>,
}

impl L7Flow {
    /// Whether a raw byte scan of the stream would see the pattern —
    /// `false` for every generator here, asserted by their tests.
    pub fn pattern_visible_raw(&self) -> bool {
        contains(&self.stream, &self.pattern)
    }
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
}

/// Lowercase filler that never contains `avoid`.
fn filler(rng: &mut StdRng, len: usize, avoid: &[u8]) -> Vec<u8> {
    loop {
        let v: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'z')).collect();
        if !contains(&v, avoid) {
            return v;
        }
    }
}

/// Splits `body` into an HTTP/1.1 chunked transfer encoding at seeded
/// cut points, so chunk boundaries land *inside* the pattern for most
/// seeds.
fn chunked(rng: &mut StdRng, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let n = rng.gen_range(1..=rest.len().min(96));
        out.extend_from_slice(format!("{n:x}\r\n").as_bytes());
        out.extend_from_slice(&rest[..n]);
        out.extend_from_slice(b"\r\n");
        rest = &rest[n..];
    }
    out.extend_from_slice(b"0\r\n\r\n");
    out
}

/// An HTTP/1.1 POST whose chunked, gzip-compressed body hides `pattern`
/// at a seeded offset. Raw scanning the stream sees only gzip bytes;
/// dechunk + gunzip recovers `decoded` with the pattern at
/// `pattern_offset`.
pub fn http1_chunked_gzip_request(seed: u64, pattern: &[u8]) -> L7Flow {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4854_5447); // "HTTG"
    let pre_len = rng.gen_range(32..512);
    let post_len = rng.gen_range(32..512);
    let pre = filler(&mut rng, pre_len, pattern);
    let post = filler(&mut rng, post_len, pattern);
    let decoded = [pre.as_slice(), pattern, &post].concat();
    let gz = dpi_core::gzip(&decoded);
    let mut stream = b"POST /upload HTTP/1.1\r\n\
         Host: example.test\r\n\
         Content-Encoding: gzip\r\n\
         Transfer-Encoding: chunked\r\n\r\n"
        .to_vec();
    stream.extend_from_slice(&chunked(&mut rng, &gz));
    L7Flow {
        stream,
        decoded,
        pattern_offset: pre.len(),
        pattern: pattern.to_vec(),
    }
}

/// An HTTP/1.1 POST with a plain chunked body, chunk cuts falling inside
/// the pattern: invisible to a per-chunk raw scan, visible to the
/// dechunking decoder's resumable body stream.
pub fn http1_chunked_request(seed: u64, pattern: &[u8]) -> L7Flow {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4854_5450); // "HTTP"
    let pre_len = rng.gen_range(32..512);
    let post_len = rng.gen_range(32..512);
    let pre = filler(&mut rng, pre_len, pattern);
    let post = filler(&mut rng, post_len, pattern);
    let decoded = [pre.as_slice(), pattern, &post].concat();
    let mut stream = b"POST /submit HTTP/1.1\r\n\
         Host: example.test\r\n\
         Transfer-Encoding: chunked\r\n\r\n"
        .to_vec();
    // Force a chunk cut strictly inside the pattern so no single chunk
    // payload contains it whole.
    let cut = pre.len()
        + rng
            .gen_range(1..pattern.len().max(2))
            .min(pattern.len() - 1)
            .max(1);
    let (a, b) = decoded.split_at(cut);
    let mut body = Vec::new();
    body.extend_from_slice(&chunked(&mut rng, a));
    body.truncate(body.len() - 5); // strip the final 0\r\n\r\n
    body.extend_from_slice(&chunked(&mut rng, b));
    stream.extend_from_slice(&body);
    L7Flow {
        stream,
        decoded,
        pattern_offset: pre.len(),
        pattern: pattern.to_vec(),
    }
}

/// A TLS ClientHello carrying `sni` in the server_name extension, split
/// into handshake records of at most `record_cap` body bytes (TLS
/// permits handshake messages to span records). The "decoded" payload is
/// the SNI host name itself — the one plaintext field the DPI scans.
pub fn tls_client_hello(seed: u64, sni: &[u8], record_cap: usize) -> L7Flow {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x544c_5331); // "TLS1"
    let body = client_hello_body(&mut rng, sni);
    let cap = record_cap.max(1);
    let mut stream = Vec::new();
    for part in body.chunks(cap) {
        stream.extend_from_slice(&[0x16, 0x03, 0x01]);
        stream.extend_from_slice(&(part.len() as u16).to_be_bytes());
        stream.extend_from_slice(part);
    }
    L7Flow {
        stream,
        decoded: sni.to_vec(),
        pattern_offset: 0,
        pattern: sni.to_vec(),
    }
}

/// The handshake-layer bytes of a minimal ClientHello with one SNI
/// extension.
fn client_hello_body(rng: &mut StdRng, sni: &[u8]) -> Vec<u8> {
    // server_name extension: list(type 0 = host_name, len, name).
    let mut ext = Vec::new();
    ext.extend_from_slice(&0u16.to_be_bytes()); // extension type 0
    let name_list_len = 3 + sni.len() as u16;
    ext.extend_from_slice(&(name_list_len + 2).to_be_bytes()); // ext data len
    ext.extend_from_slice(&name_list_len.to_be_bytes());
    ext.push(0); // name_type host_name
    ext.extend_from_slice(&(sni.len() as u16).to_be_bytes());
    ext.extend_from_slice(sni);

    let mut hello = Vec::new();
    hello.extend_from_slice(&[0x03, 0x03]); // client_version TLS 1.2
    let random: [u8; 32] = std::array::from_fn(|_| rng.gen());
    hello.extend_from_slice(&random);
    hello.push(0); // empty session id
    hello.extend_from_slice(&2u16.to_be_bytes()); // one cipher suite
    hello.extend_from_slice(&[0x13, 0x01]); // TLS_AES_128_GCM_SHA256
    hello.push(1); // one compression method
    hello.push(0); // null
    hello.extend_from_slice(&(ext.len() as u16).to_be_bytes());
    hello.extend_from_slice(&ext);

    let mut body = vec![1u8]; // handshake type: ClientHello
    let len = hello.len() as u32;
    body.extend_from_slice(&len.to_be_bytes()[1..]); // u24 length
    body.extend_from_slice(&hello);
    body
}

/// One client-masked WebSocket data frame.
fn ws_frame(rng: &mut StdRng, fin: bool, opcode: u8, payload: &[u8]) -> Vec<u8> {
    let mut f = vec![if fin { 0x80 | opcode } else { opcode }];
    let mask: [u8; 4] = std::array::from_fn(|_| rng.gen());
    if payload.len() < 126 {
        f.push(0x80 | payload.len() as u8);
    } else if payload.len() <= u16::MAX as usize {
        f.push(0x80 | 126);
        f.extend_from_slice(&(payload.len() as u16).to_be_bytes());
    } else {
        f.push(0x80 | 127);
        f.extend_from_slice(&(payload.len() as u64).to_be_bytes());
    }
    f.extend_from_slice(&mask);
    f.extend(payload.iter().enumerate().map(|(i, b)| b ^ mask[i % 4]));
    f
}

/// A client WebSocket session: the HTTP Upgrade handshake followed by
/// masked data frames whose concatenated payload hides `pattern` across
/// a frame boundary. The XOR masking keeps the pattern out of the raw
/// stream; unmasking plus the continuous message stream recovers it.
pub fn websocket_session(seed: u64, pattern: &[u8]) -> L7Flow {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5753_3031); // "WS01"
    let pre_len = rng.gen_range(16..256);
    let post_len = rng.gen_range(16..256);
    let pre = filler(&mut rng, pre_len, pattern);
    let post = filler(&mut rng, post_len, pattern);
    let decoded = [pre.as_slice(), pattern, &post].concat();
    let mut stream = b"GET /socket HTTP/1.1\r\n\
         Host: example.test\r\n\
         Upgrade: websocket\r\n\
         Connection: Upgrade\r\n\r\n"
        .to_vec();
    // Cut inside the pattern: the first frame ends mid-pattern.
    let cut = pre.len()
        + rng
            .gen_range(1..pattern.len().max(2))
            .min(pattern.len() - 1)
            .max(1);
    let (a, b) = decoded.split_at(cut);
    stream.extend_from_slice(&ws_frame(&mut rng, false, 0x2, a)); // binary, not final
    stream.extend_from_slice(&ws_frame(&mut rng, true, 0x0, b)); // continuation
    L7Flow {
        stream,
        decoded,
        pattern_offset: pre.len(),
        pattern: pattern.to_vec(),
    }
}

/// Cuts a stream into TCP segments of seeded sizes — in-order feed for
/// `scan_tcp_segment`, returned as `(seq_offset, payload)` pairs.
pub fn segment_stream(seed: u64, stream: &[u8], max_seg: usize) -> Vec<(u32, Vec<u8>)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5345_474d); // "SEGM"
    let mut segs = Vec::new();
    let mut off = 0usize;
    while off < stream.len() {
        let n = rng.gen_range(1..=max_seg.max(1)).min(stream.len() - off);
        segs.push((off as u32, stream[off..off + n].to_vec()));
        off += n;
    }
    segs
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAT: &[u8] = b"hidden-attack-signature";

    #[test]
    fn generators_are_deterministic() {
        for seed in [0u64, 1, 7, 42] {
            assert_eq!(
                http1_chunked_gzip_request(seed, PAT),
                http1_chunked_gzip_request(seed, PAT)
            );
            assert_eq!(
                http1_chunked_request(seed, PAT),
                http1_chunked_request(seed, PAT)
            );
            assert_eq!(
                tls_client_hello(seed, b"evil.example.com", 64),
                tls_client_hello(seed, b"evil.example.com", 64)
            );
            assert_eq!(websocket_session(seed, PAT), websocket_session(seed, PAT));
        }
    }

    #[test]
    fn gzip_flow_hides_the_pattern_from_raw_scans() {
        for seed in 0..20 {
            let f = http1_chunked_gzip_request(seed, PAT);
            assert!(!f.pattern_visible_raw(), "gzip must hide the pattern");
            assert_eq!(
                &f.decoded[f.pattern_offset..f.pattern_offset + PAT.len()],
                PAT
            );
            // The ground-truth decode round-trips through the real codec:
            // dechunk by hand, then gunzip.
            let body_start = find(&f.stream, b"\r\n\r\n").unwrap() + 4;
            let gz = dechunk(&f.stream[body_start..]);
            assert_eq!(dpi_core::gunzip(&gz, 1 << 20).unwrap(), f.decoded);
        }
    }

    #[test]
    fn chunked_flow_splits_the_pattern_across_chunks() {
        for seed in 0..20 {
            let f = http1_chunked_request(seed, PAT);
            assert_eq!(
                &f.decoded[f.pattern_offset..f.pattern_offset + PAT.len()],
                PAT
            );
            let body_start = find(&f.stream, b"\r\n\r\n").unwrap() + 4;
            assert_eq!(dechunk(&f.stream[body_start..]), f.decoded);
        }
    }

    #[test]
    fn tls_flow_carries_the_sni_across_capped_records() {
        let sni = b"blocked-host.example.com";
        for seed in 0..10 {
            let f = tls_client_hello(seed, sni, 16);
            assert_eq!(f.decoded, sni);
            // 16-byte record bodies: the SNI cannot sit whole in one
            // record payload, so raw per-record scans miss it; the full
            // stream does contain it (record headers interleave).
            assert!(f.stream.len() > sni.len());
            assert!(f.stream.starts_with(&[0x16, 0x03, 0x01]));
        }
    }

    #[test]
    fn websocket_masking_hides_the_pattern() {
        for seed in 0..20 {
            let f = websocket_session(seed, PAT);
            assert!(!f.pattern_visible_raw(), "masking must hide the pattern");
            assert_eq!(
                &f.decoded[f.pattern_offset..f.pattern_offset + PAT.len()],
                PAT
            );
        }
    }

    #[test]
    fn segment_stream_reconcatenates() {
        let f = http1_chunked_gzip_request(3, PAT);
        let segs = segment_stream(3, &f.stream, 100);
        let mut whole = Vec::new();
        for (off, p) in &segs {
            assert_eq!(*off as usize, whole.len());
            whole.extend_from_slice(p);
        }
        assert_eq!(whole, f.stream);
    }

    fn find(h: &[u8], n: &[u8]) -> Option<usize> {
        h.windows(n.len()).position(|w| w == n)
    }

    fn dechunk(mut data: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        loop {
            let i = find(data, b"\r\n").unwrap();
            let n = usize::from_str_radix(std::str::from_utf8(&data[..i]).unwrap(), 16).unwrap();
            if n == 0 {
                return out;
            }
            out.extend_from_slice(&data[i + 2..i + 2 + n]);
            data = &data[i + 2 + n + 2..];
        }
    }
}
