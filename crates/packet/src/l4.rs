//! TCP and UDP headers.
//!
//! The DPI service only needs ports (for flow keys) and the TCP sequence
//! number (for ordering stateful scans across a flow's packets), so both
//! headers are modelled in full but options are not interpreted.

use crate::checksum::l4_checksum;
use crate::ipv4::IpProtocol;
use crate::{need, ParseError, Result};
use serde::{Deserialize, Serialize};

/// Length of a TCP header without options.
pub const TCP_HEADER_LEN: usize = 20;
/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// TCP flags relevant to flow tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TcpFlags {
    /// Connection setup.
    pub syn: bool,
    /// Acknowledgement present.
    pub ack: bool,
    /// Graceful teardown.
    pub fin: bool,
    /// Abortive teardown.
    pub rst: bool,
    /// Push.
    pub psh: bool,
}

impl TcpFlags {
    fn to_bits(self) -> u8 {
        u8::from(self.fin)
            | u8::from(self.syn) << 1
            | u8::from(self.rst) << 2
            | u8::from(self.psh) << 3
            | u8::from(self.ack) << 4
    }

    fn from_bits(b: u8) -> TcpFlags {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A TCP header (options rejected, consistent with the IPv4 layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack_no: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Builds a data-segment header.
    pub fn new(src_port: u16, dst_port: u16, seq: u32) -> TcpHeader {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack_no: 0,
            flags: TcpFlags {
                ack: true,
                psh: true,
                ..TcpFlags::default()
            },
            window: 0xffff,
        }
    }

    /// Parses a header, returning it and bytes consumed.
    pub fn parse(buf: &[u8]) -> Result<(TcpHeader, usize)> {
        need("tcp", buf, TCP_HEADER_LEN)?;
        let data_off = usize::from(buf[12] >> 4) * 4;
        if data_off != TCP_HEADER_LEN {
            return Err(ParseError::Unsupported {
                layer: "tcp",
                what: "header with options (data offset != 5)",
                value: data_off as u64,
            });
        }
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
                ack_no: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
                flags: TcpFlags::from_bits(buf[13]),
                window: u16::from_be_bytes([buf[14], buf[15]]),
            },
            TCP_HEADER_LEN,
        ))
    }

    /// Serializes the header with a zero checksum; [`fill_l4_checksum`]
    /// patches it once the full segment is assembled.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack_no.to_be_bytes());
        out.push(0x50); // data offset = 5 words
        out.push(self.flags.to_bits());
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&[0, 0]); // urgent pointer
    }
}

/// A UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header + payload.
    pub length: u16,
}

impl UdpHeader {
    /// Builds a header for a payload of `payload_len` bytes.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> UdpHeader {
        UdpHeader {
            src_port,
            dst_port,
            length: (UDP_HEADER_LEN + payload_len) as u16,
        }
    }

    /// Parses a header, returning it and bytes consumed.
    pub fn parse(buf: &[u8]) -> Result<(UdpHeader, usize)> {
        need("udp", buf, UDP_HEADER_LEN)?;
        let length = u16::from_be_bytes([buf[4], buf[5]]);
        if usize::from(length) < UDP_HEADER_LEN {
            return Err(ParseError::BadLength {
                layer: "udp",
                claimed: usize::from(length),
                max: usize::MAX,
            });
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                length,
            },
            UDP_HEADER_LEN,
        ))
    }

    /// Serializes the header with a zero checksum; [`fill_l4_checksum`]
    /// patches it once the full datagram is assembled.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.length.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
    }
}

/// Either transport header, as carried by [`crate::Packet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum L4Header {
    /// A TCP segment header.
    Tcp(TcpHeader),
    /// A UDP datagram header.
    Udp(UdpHeader),
}

impl L4Header {
    /// Source port of either header.
    pub fn src_port(&self) -> u16 {
        match self {
            L4Header::Tcp(t) => t.src_port,
            L4Header::Udp(u) => u.src_port,
        }
    }

    /// Destination port of either header.
    pub fn dst_port(&self) -> u16 {
        match self {
            L4Header::Tcp(t) => t.dst_port,
            L4Header::Udp(u) => u.dst_port,
        }
    }

    /// The matching IP protocol number.
    pub fn protocol(&self) -> IpProtocol {
        match self {
            L4Header::Tcp(_) => IpProtocol::Tcp,
            L4Header::Udp(_) => IpProtocol::Udp,
        }
    }

    /// Header length on the wire.
    pub fn header_len(&self) -> usize {
        match self {
            L4Header::Tcp(_) => TCP_HEADER_LEN,
            L4Header::Udp(_) => UDP_HEADER_LEN,
        }
    }
}

/// Computes and patches the L4 checksum inside `segment` (header+payload),
/// given the pseudo-header addresses. Works for both TCP and UDP since both
/// keep the checksum at a fixed offset.
pub fn fill_l4_checksum(src: [u8; 4], dst: [u8; 4], protocol: IpProtocol, segment: &mut [u8]) {
    let off = match protocol {
        IpProtocol::Tcp => 16,
        IpProtocol::Udp => 6,
        IpProtocol::Other(_) => return,
    };
    if segment.len() < off + 2 {
        return;
    }
    segment[off] = 0;
    segment[off + 1] = 0;
    let ck = l4_checksum(src, dst, protocol.to_u8(), segment);
    // UDP transmits an all-zero checksum as 0xffff (RFC 768).
    let ck = if protocol == IpProtocol::Udp && ck == 0 {
        0xffff
    } else {
        ck
    };
    segment[off..off + 2].copy_from_slice(&ck.to_be_bytes());
}

/// Verifies the L4 checksum of `segment`; returns `Ok(())` when valid.
pub fn verify_l4_checksum(
    src: [u8; 4],
    dst: [u8; 4],
    protocol: IpProtocol,
    segment: &[u8],
) -> Result<()> {
    match protocol {
        IpProtocol::Tcp | IpProtocol::Udp => {
            if l4_checksum(src, dst, protocol.to_u8(), segment) != 0 {
                return Err(ParseError::BadChecksum {
                    layer: match protocol {
                        IpProtocol::Tcp => "tcp",
                        _ => "udp",
                    },
                });
            }
            Ok(())
        }
        IpProtocol::Other(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_round_trips() {
        let h = TcpHeader::new(1234, 80, 0xdeadbeef);
        let mut buf = Vec::new();
        h.write(&mut buf);
        assert_eq!(buf.len(), TCP_HEADER_LEN);
        let (parsed, used) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(used, TCP_HEADER_LEN);
        assert_eq!(parsed, h);
    }

    #[test]
    fn udp_round_trips() {
        let h = UdpHeader::new(53, 5353, 42);
        let mut buf = Vec::new();
        h.write(&mut buf);
        let (parsed, used) = UdpHeader::parse(&buf).unwrap();
        assert_eq!(used, UDP_HEADER_LEN);
        assert_eq!(parsed, h);
        assert_eq!(parsed.length, 50);
    }

    #[test]
    fn tcp_options_rejected() {
        let mut buf = Vec::new();
        TcpHeader::new(1, 2, 3).write(&mut buf);
        buf[12] = 0x60; // data offset 6
        assert!(TcpHeader::parse(&buf).is_err());
    }

    #[test]
    fn udp_bad_length_rejected() {
        let mut buf = Vec::new();
        UdpHeader::new(1, 2, 0).write(&mut buf);
        buf[4..6].copy_from_slice(&3u16.to_be_bytes());
        assert!(matches!(
            UdpHeader::parse(&buf).unwrap_err(),
            ParseError::BadLength { layer: "udp", .. }
        ));
    }

    #[test]
    fn l4_checksum_fill_then_verify() {
        let src = [10, 0, 0, 1];
        let dst = [10, 0, 0, 2];

        let mut tcp_seg = Vec::new();
        TcpHeader::new(5, 6, 7).write(&mut tcp_seg);
        tcp_seg.extend_from_slice(b"data");

        let mut udp_seg = Vec::new();
        UdpHeader::new(5, 6, 4).write(&mut udp_seg);
        udp_seg.extend_from_slice(b"data");

        for (proto, mut seg) in [(IpProtocol::Tcp, tcp_seg), (IpProtocol::Udp, udp_seg)] {
            fill_l4_checksum(src, dst, proto, &mut seg);
            assert!(verify_l4_checksum(src, dst, proto, &seg).is_ok());
            *seg.last_mut().unwrap() ^= 0x01;
            assert!(verify_l4_checksum(src, dst, proto, &seg).is_err());
        }
    }

    #[test]
    fn tcp_flag_bits_round_trip() {
        let f = TcpFlags {
            syn: true,
            ack: true,
            fin: false,
            rst: true,
            psh: false,
        };
        assert_eq!(TcpFlags::from_bits(f.to_bits()), f);
    }
}
