//! End-to-end L7 inspection (DESIGN.md §14): patterns that raw byte
//! scanning cannot see — gzip-compressed chunked HTTP bodies, XOR-masked
//! WebSocket messages, SNI host names split across TLS records — are
//! matched by the identify → decode → scan path, reported with protocol
//! context, and governed by per-protocol size limits and actions.

use dpi_service::core::instance::{ScanEngine, ShardState};
use dpi_service::core::report::expand_records;
use dpi_service::core::{
    DpiInstance, InstanceConfig, L7Action, L7Field, L7Policy, L7Protocol, MiddleboxId,
    MiddleboxProfile, ProtocolMask, ProtocolPolicy, RuleSpec,
};
use dpi_service::packet::ipv4::IpProtocol;
use dpi_service::packet::packet::flow;
use dpi_service::packet::FlowKey;
use dpi_service::traffic;
use dpi_service::{SystemBuilder, TraceKind, TraceSource, Tracer};
use std::sync::Arc;

const IDS: MiddleboxId = MiddleboxId(1);
const CHAIN: u16 = 1;
const PATTERN: &[u8] = b"hidden-attack-signature";

fn config(pattern: &[u8]) -> InstanceConfig {
    InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateful(IDS),
            vec![RuleSpec::exact(pattern.to_vec())],
        )
        .with_chain(CHAIN, vec![IDS])
}

fn fk(n: u16) -> FlowKey {
    flow([10, 0, 0, 1], 1000 + n, [10, 0, 0, 2], 80, IpProtocol::Tcp)
}

/// Feeds a stream in order as seeded TCP segments and returns every
/// scan output.
fn feed(
    dpi: &mut DpiInstance,
    f: FlowKey,
    seed: u64,
    stream: &[u8],
) -> Vec<dpi_service::core::ScanOutput> {
    let mut outs = Vec::new();
    for (off, seg) in traffic::segment_stream(seed, stream, 120) {
        outs.extend(
            dpi.scan_tcp_segment(CHAIN, f, 1_000_000 + off, &seg)
                .unwrap(),
        );
    }
    outs
}

/// `(pattern id, l7 context)` of every reported match.
fn matches_with_ctx(
    outs: &[dpi_service::core::ScanOutput],
) -> Vec<(u16, Option<dpi_service::core::L7Context>)> {
    outs.iter()
        .flat_map(|o| {
            o.reports
                .iter()
                .flat_map(|r| expand_records(&r.records))
                .map(move |(pid, _)| (pid, o.l7))
        })
        .collect()
}

#[test]
fn gzip_chunked_http_body_matches_with_protocol_context() {
    for seed in [1u64, 7, 42] {
        let gen = traffic::http1_chunked_gzip_request(seed, PATTERN);
        assert!(!gen.pattern_visible_raw());

        // Raw engine (no L7 policy): the gzip bytes hide the pattern.
        let mut raw = DpiInstance::new(config(PATTERN)).unwrap();
        let outs = feed(&mut raw, fk(0), seed, &gen.stream);
        assert!(
            matches_with_ctx(&outs).is_empty(),
            "raw scanning must not see through gzip (seed {seed})"
        );

        // L7 engine: dechunk + gunzip surfaces the pattern, reported
        // with HTTP body context.
        let mut dpi =
            DpiInstance::new(config(PATTERN).with_l7_policy(L7Policy::default())).unwrap();
        let outs = feed(&mut dpi, fk(1), seed, &gen.stream);
        let found = matches_with_ctx(&outs);
        assert!(
            found.iter().any(|(pid, ctx)| {
                *pid == 0
                    && ctx.is_some_and(|c| {
                        c.protocol == L7Protocol::Http1 && c.field == L7Field::Body
                    })
            }),
            "decoded body match with protocol context expected (seed {seed}), got {found:?}"
        );
        let t = dpi.telemetry();
        assert_eq!(t.l7_flows_identified[L7Protocol::Http1.index()], 1);
        assert!(t.l7_matches[L7Protocol::Http1.index()] >= 1);
        assert!(t.l7_decoded_bytes as usize >= gen.decoded.len());
        assert_eq!(t.l7_decode_errors, 0);
    }
}

#[test]
fn plain_chunked_body_spanning_chunks_matches() {
    for seed in [3u64, 9] {
        let gen = traffic::http1_chunked_request(seed, PATTERN);
        let mut dpi =
            DpiInstance::new(config(PATTERN).with_l7_policy(L7Policy::default())).unwrap();
        let outs = feed(&mut dpi, fk(2), seed, &gen.stream);
        assert!(
            matches_with_ctx(&outs)
                .iter()
                .any(|(pid, ctx)| *pid == 0
                    && ctx.is_some_and(|c| c.protocol == L7Protocol::Http1)),
            "pattern split across chunk boundaries must match via the resumable body slot"
        );
    }
}

#[test]
fn tls_client_hello_yields_an_sni_match() {
    let sni = b"blocked-host.example.com";
    // The SNI filter subscribes to decoded TLS units only.
    let cfg = InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateless(IDS)
                .with_l7_protocols(ProtocolMask::only(&[L7Protocol::Tls])),
            vec![RuleSpec::exact(sni.to_vec())],
        )
        .with_chain(CHAIN, vec![IDS])
        .with_l7_policy(L7Policy::default());
    let mut dpi = DpiInstance::new(cfg).unwrap();
    // 16-byte record bodies: the ClientHello spans many records, so no
    // raw record payload contains the host name whole.
    let gen = traffic::tls_client_hello(5, sni, 16);
    let outs = feed(&mut dpi, fk(3), 5, &gen.stream);
    assert!(
        matches_with_ctx(&outs).iter().any(|(pid, ctx)| *pid == 0
            && ctx.is_some_and(|c| c.protocol == L7Protocol::Tls && c.field == L7Field::Sni)),
        "SNI extracted from a record-split ClientHello must match"
    );
    let t = dpi.telemetry();
    assert_eq!(t.l7_flows_identified[L7Protocol::Tls.index()], 1);
    assert!(t.l7_matches[L7Protocol::Tls.index()] >= 1);
}

#[test]
fn websocket_masked_frames_match_across_the_boundary() {
    for seed in [2u64, 11] {
        let gen = traffic::websocket_session(seed, PATTERN);
        assert!(!gen.pattern_visible_raw());
        let mut dpi =
            DpiInstance::new(config(PATTERN).with_l7_policy(L7Policy::default())).unwrap();
        let outs = feed(&mut dpi, fk(4), seed, &gen.stream);
        assert!(
            matches_with_ctx(&outs).iter().any(|(pid, ctx)| *pid == 0
                && ctx.is_some_and(
                    |c| c.protocol == L7Protocol::WebSocket && c.field == L7Field::Body
                )),
            "unmasked message spanning two frames must match (seed {seed})"
        );
        let t = dpi.telemetry();
        // Identified twice: first as HTTP, then the Upgrade handoff.
        assert_eq!(t.l7_flows_identified[L7Protocol::Http1.index()], 1);
        assert_eq!(t.l7_flows_identified[L7Protocol::WebSocket.index()], 1);
    }
}

#[test]
fn size_limit_truncates_flags_and_suppresses_later_matches() {
    // Pattern parked beyond a 64-byte inspection limit.
    let mut body = vec![b'a'; 256];
    body.extend_from_slice(PATTERN);
    let mut stream = format!(
        "POST /big HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    stream.extend_from_slice(&body);

    let policy = L7Policy::default().with(L7Protocol::Http1, ProtocolPolicy::intercept(64));
    let engine = Arc::new(ScanEngine::new(config(PATTERN).with_l7_policy(policy)).unwrap());
    let mut shard = ShardState::new(&engine);
    let tracer = Arc::new(Tracer::new());
    shard.attach_trace_writer(tracer.writer(TraceSource::Shard(0)));

    let outs = engine
        .scan_tcp_segment(&mut shard, CHAIN, fk(5), 1000, &stream)
        .unwrap();
    assert!(
        matches_with_ctx(&outs).is_empty(),
        "bytes past the inspection limit must not be scanned"
    );
    assert_eq!(shard.telemetry().l7_truncations, 1);
    let mut w = shard.take_trace_writer().unwrap();
    tracer.absorb(&mut w);
    assert!(
        tracer.snapshot().iter().any(|e| matches!(
            e.kind,
            TraceKind::L7Truncated {
                protocol: L7Protocol::Http1,
                bytes: 64
            }
        )),
        "truncation must be traced with the retained byte count"
    );
}

#[test]
fn decompression_bomb_is_truncated_at_the_protocol_limit() {
    // A ~100× gzip bomb in a Content-Length body, pattern at the tail
    // (decodes past the limit, so it must NOT match — and must not OOM).
    let mut plain = vec![b'x'; 200_000];
    plain.extend_from_slice(PATTERN);
    let gz = dpi_service::core::gzip(&plain);
    let mut stream = format!(
        "POST /bomb HTTP/1.1\r\nContent-Encoding: gzip\r\nContent-Length: {}\r\n\r\n",
        gz.len()
    )
    .into_bytes();
    stream.extend_from_slice(&gz);

    let policy = L7Policy::default().with(L7Protocol::Http1, ProtocolPolicy::intercept(4096));
    let mut dpi = DpiInstance::new(config(PATTERN).with_l7_policy(policy)).unwrap();
    let outs = feed(&mut dpi, fk(6), 13, &stream);
    assert!(matches_with_ctx(&outs).is_empty());
    let t = dpi.telemetry();
    assert!(t.l7_truncations >= 1, "bomb must be flagged as truncated");
    assert!(
        t.l7_decoded_bytes <= 8192,
        "decoded output must stay near the limit, got {}",
        t.l7_decoded_bytes
    );
}

#[test]
fn block_and_bypass_actions_are_enforced_and_observable() {
    let gen = traffic::http1_chunked_gzip_request(21, PATTERN);

    // Block: fail-closed outputs, no reports, counter + trace.
    let policy = L7Policy::default().with(
        L7Protocol::Http1,
        ProtocolPolicy::intercept(1 << 16).with_action(L7Action::Block),
    );
    let engine = Arc::new(ScanEngine::new(config(PATTERN).with_l7_policy(policy)).unwrap());
    let mut shard = ShardState::new(&engine);
    let tracer = Arc::new(Tracer::new());
    shard.attach_trace_writer(tracer.writer(TraceSource::Shard(0)));
    let outs = engine
        .scan_tcp_segment(&mut shard, CHAIN, fk(7), 1000, &gen.stream)
        .unwrap();
    assert!(outs.iter().all(|o| o.reports.is_empty()));
    assert!(outs.iter().any(|o| o.blocked), "Block must mark outputs");
    assert_eq!(shard.telemetry().l7_blocked_flows, 1);
    let mut w = shard.take_trace_writer().unwrap();
    tracer.absorb(&mut w);
    assert!(tracer.snapshot().iter().any(|e| matches!(
        e.kind,
        TraceKind::L7ActionApplied {
            protocol: L7Protocol::Http1,
            action: L7Action::Block
        }
    )));

    // Bypass: nothing scanned, nothing blocked, counter says why.
    let policy = L7Policy::default().with(
        L7Protocol::Http1,
        ProtocolPolicy::intercept(1 << 16).with_action(L7Action::Bypass),
    );
    let mut dpi = DpiInstance::new(config(PATTERN).with_l7_policy(policy)).unwrap();
    let outs = feed(&mut dpi, fk(8), 21, &gen.stream);
    assert!(outs.iter().all(|o| o.reports.is_empty() && !o.blocked));
    let t = dpi.telemetry();
    assert_eq!(t.l7_bypassed_flows, 1);
    assert_eq!(t.l7_decoded_bytes, 0, "bypassed flows are not decoded");
}

#[test]
fn protocol_subscriptions_filter_decoded_units_but_not_raw() {
    const TLS_ONLY: MiddleboxId = MiddleboxId(2);
    let cfg = InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateful(IDS),
            vec![RuleSpec::exact(PATTERN.to_vec())],
        )
        .with_middlebox(
            MiddleboxProfile::stateful(TLS_ONLY)
                .with_l7_protocols(ProtocolMask::only(&[L7Protocol::Tls])),
            vec![RuleSpec::exact(PATTERN.to_vec())],
        )
        .with_chain(CHAIN, vec![IDS, TLS_ONLY])
        .with_l7_policy(L7Policy::default());

    // An HTTP body match: only the unrestricted middlebox reports it.
    let gen = traffic::http1_chunked_request(4, PATTERN);
    let mut dpi = DpiInstance::new(cfg.clone()).unwrap();
    let outs = feed(&mut dpi, fk(9), 4, &gen.stream);
    let reporters: Vec<u16> = outs
        .iter()
        .flat_map(|o| o.reports.iter().map(|r| r.middlebox_id))
        .collect();
    assert!(reporters.contains(&IDS.0));
    assert!(
        !reporters.contains(&TLS_ONLY.0),
        "a TLS-only subscriber must not see HTTP body matches"
    );

    // An unidentified flow falls back to raw scanning, which is never
    // subscription-filtered: both middleboxes see the match.
    let mut junk = b"\x00\x01junkjunk".to_vec();
    junk.extend_from_slice(PATTERN);
    let mut dpi = DpiInstance::new(cfg).unwrap();
    let outs = feed(&mut dpi, fk(10), 4, &junk);
    let reporters: Vec<u16> = outs
        .iter()
        .flat_map(|o| o.reports.iter().map(|r| r.middlebox_id))
        .collect();
    assert!(reporters.contains(&IDS.0));
    assert!(
        reporters.contains(&TLS_ONLY.0),
        "the Unknown raw fallback is fail-open for every subscriber"
    );
}

#[test]
fn system_builder_threads_the_policy_and_exports_l7_metrics() {
    let system = SystemBuilder::new()
        .with_middlebox(dpi_service::middlebox::ids(IDS, &[PATTERN.to_vec()]))
        .with_chain(&[IDS])
        .with_l7_policy(L7Policy::default())
        .build()
        .unwrap();
    let text = system.metrics_text();
    for family in [
        "dpi_l7_flows_identified_total",
        "dpi_l7_matches_total",
        "dpi_l7_decoded_bytes_total",
        "dpi_l7_decode_errors_total",
        "dpi_l7_truncations_total",
        "dpi_l7_blocked_flows_total",
        "dpi_l7_bypassed_flows_total",
        "dpi_l7_detoured_flows_total",
    ] {
        assert!(text.contains(family), "missing metric family {family}");
    }
    assert!(
        text.contains(r#"protocol="http1""#) && text.contains(r#"protocol="tls""#),
        "per-protocol labels must always be emitted"
    );
}

/// The README example, end to end: the in-network packet path routes
/// TCP flows through L7 session reconstruction when the builder arms a
/// policy — a WAF catches a gzipped signature, an SNI filter catches a
/// blocked TLS host, and the `dpi_l7_*` counters move.
#[test]
fn system_send_path_scans_decoded_payloads() {
    let sig = b"exploit-kit-99".to_vec();
    let host = b"evil.example".to_vec();
    let mut system = SystemBuilder::new()
        .with_middlebox(dpi_service::middlebox::waf(
            MiddleboxId(1),
            std::slice::from_ref(&sig),
        ))
        .with_middlebox(dpi_service::middlebox::sni_filter(
            MiddleboxId(2),
            std::slice::from_ref(&host),
        ))
        .with_chain(&[MiddleboxId(1), MiddleboxId(2)])
        .with_l7_policy(L7Policy::default())
        .build()
        .unwrap();

    // A gzip-compressed chunked HTTP request hiding the WAF signature.
    let gen = traffic::http1_chunked_gzip_request(42, &sig);
    assert!(!gen.pattern_visible_raw());
    let http_flow = flow([10, 0, 0, 1], 40001, [10, 0, 0, 2], 80, IpProtocol::Tcp);
    for (off, seg) in traffic::segment_stream(42, &gen.stream, 200) {
        system.send(http_flow, 1_000 + off, &seg);
    }

    // A record-split TLS ClientHello for the blocked host.
    let tls = traffic::tls_client_hello(7, &host, 16);
    let tls_flow = flow([10, 0, 0, 3], 40002, [10, 0, 0, 4], 443, IpProtocol::Tcp);
    for (off, seg) in traffic::segment_stream(7, &tls.stream, 64) {
        system.send(tls_flow, 5_000 + off, &seg);
    }

    let text = system.metrics_text();
    for needle in [
        "dpi_l7_flows_identified_total{instance=\"0\",protocol=\"http1\"} 1",
        "dpi_l7_flows_identified_total{instance=\"0\",protocol=\"tls\"} 1",
        "dpi_l7_matches_total{instance=\"0\",protocol=\"http1\"} 1",
        "dpi_l7_matches_total{instance=\"0\",protocol=\"tls\"} 1",
    ] {
        assert!(text.contains(needle), "missing: {needle}");
    }
    let decoded: u64 = text
        .lines()
        .find(|l| l.starts_with("dpi_l7_decoded_bytes_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap();
    assert!(decoded as usize >= gen.decoded.len());
}
