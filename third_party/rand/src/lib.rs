//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements exactly what this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range`, `gen_bool` and `fill`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across runs and
//! platforms, which is all the traffic/pattern generators need. Stream
//! values differ from the real `rand` crate; nothing in the workspace
//! depends on specific draws, only on determinism and rough uniformity.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::draw(self) < p
    }

    /// Fills a byte slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = r.gen_range(0x21..=0x7e);
            assert!((0x21..=0x7e).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
