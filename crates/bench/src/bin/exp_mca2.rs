//! §4.3.1 / Figure 6: benign goodput under a complexity attack, without
//! and with MCA²-style mitigation.
//!
//! Without mitigation, heavy near-miss traffic shares the instance with
//! benign traffic and drags the whole scan into deep, cache-hostile
//! automaton states. With mitigation, the stress monitor detects the
//! attack from the deep-state ratio, a dedicated instance absorbs the
//! heavy flows, and the regular instance's benign goodput recovers.

use dpi_ac::MiddleboxId;
use dpi_controller::{DpiController, Mca2Action, StressMonitor, StressPolicy};
use dpi_core::{DpiInstance, InstanceConfig, MiddleboxProfile, RuleSpec};
use dpi_packet::ipv4::IpProtocol;
use dpi_packet::packet::flow;
use dpi_traffic::heavy_payload;
use dpi_traffic::patterns::snort_like;
use dpi_traffic::trace::TraceConfig;
use std::time::Instant;

const MB: MiddleboxId = MiddleboxId(1);

fn new_instance(pats: &[Vec<u8>]) -> DpiInstance {
    DpiInstance::new(
        InstanceConfig::new()
            .with_middlebox(MiddleboxProfile::stateful(MB), RuleSpec::exact_set(pats))
            .with_chain(1, vec![MB]),
    )
    .expect("valid config")
}

/// Scans benign and heavy traffic interleaved on one instance; returns
/// benign Mbps (time attributed proportionally to actual scan work).
fn benign_goodput(dpi: &mut DpiInstance, benign: &[Vec<u8>], heavy: &[Vec<u8>]) -> f64 {
    let bflow = flow([1, 1, 1, 1], 1, [2, 2, 2, 2], 80, IpProtocol::Tcp);
    let hflow = flow([6, 6, 6, 6], 6, [2, 2, 2, 2], 80, IpProtocol::Tcp);
    let benign_bytes: usize = benign.iter().map(|p| p.len()).sum();
    let t0 = Instant::now();
    let mut h = heavy.iter().cycle();
    for p in benign {
        dpi.scan_payload(1, Some(bflow), p).expect("scan");
        if let Some(hp) = (!heavy.is_empty()).then(|| h.next().expect("cycle")) {
            dpi.scan_payload(1, Some(hflow), hp).expect("scan");
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    // Goodput = benign bytes over total elapsed time (the attack steals
    // the difference).
    benign_bytes as f64 * 8.0 / dt / 1e6
}

fn main() {
    let pats = snort_like(4356, 42);
    let benign = TraceConfig {
        packets: 1500,
        match_density: 0.02,
        seed: 13,
        ..TraceConfig::default()
    }
    .generate(&pats);
    let heavy: Vec<Vec<u8>> = (0..200u64).map(|i| heavy_payload(&pats, 1400, i)).collect();

    println!("# §4.3.1 — MCA²: benign goodput under complexity attack\n");

    // Phase A: no attack.
    let mut dpi = new_instance(&pats);
    let clean = benign_goodput(&mut dpi, &benign, &[]);
    println!("no attack                     : {clean:.0} Mbps benign goodput");

    // Phase B: attack, no mitigation (heavy flows share the instance).
    let mut dpi = new_instance(&pats);
    let attacked = benign_goodput(&mut dpi, &benign, &heavy);
    println!("under attack, no mitigation   : {attacked:.0} Mbps benign goodput");

    // Phase C: attack with MCA² — detect, allocate dedicated, migrate.
    let controller = DpiController::new();
    let regular_id = controller.deploy_instance(vec![1]);
    let mut regular = new_instance(&pats);
    let mut monitor = StressMonitor::new(StressPolicy::default());
    let hflow = flow([6, 6, 6, 6], 6, [2, 2, 2, 2], 80, IpProtocol::Tcp);

    // Detection rounds: the attack rages until the monitor reacts.
    let mut mitigated = false;
    for round in 0..6u64 {
        for i in 0..40 {
            let hp = heavy_payload(&pats, 1400, 100_000 + round * 100 + i);
            regular.scan_payload(1, Some(hflow), &hp).expect("scan");
        }
        let delta = controller
            .report_telemetry(regular_id, regular.telemetry())
            .expect("deployed");
        for action in monitor.evaluate(&[(regular_id, delta)]) {
            if let Mca2Action::MigrateHeavyFlows { .. } = action {
                // Dedicated instance takes over the heavy flow.
                let mut dedicated = new_instance(&pats);
                if let Some(exported) = regular.export_flow(&hflow) {
                    dedicated.import_flow(hflow, exported);
                }
                mitigated = true;
            }
        }
        if mitigated {
            println!("mitigation fired after round  : {round}");
            break;
        }
    }
    assert!(mitigated, "monitor must fire");

    // After migration, the regular instance sees only benign traffic.
    let recovered = benign_goodput(&mut regular, &benign, &[]);
    println!("under attack, with MCA²       : {recovered:.0} Mbps benign goodput");

    println!(
        "\n# attack cost without mitigation : -{:.0}% goodput",
        100.0 * (1.0 - attacked / clean)
    );
    println!(
        "# recovery with mitigation       : {:.0}% of clean goodput",
        100.0 * recovered / clean
    );
    println!("# expected shape: attacked ≪ clean; recovered ≈ clean");
}
