//! Criterion bench: one merged-set scan vs two separate-set scans of the
//! same payloads — the per-byte work behind Table 2 and Figure 9.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpi_ac::Automaton;
use dpi_bench::{build_ac, build_combined_ac, SNORT1_COUNT};
use dpi_traffic::patterns::{snort_like, split_set};
use dpi_traffic::trace::TraceConfig;

fn bench_combined(c: &mut Criterion) {
    let snort = snort_like(4356, 42);
    let (s1, s2) = split_set(&snort, SNORT1_COUNT, 7);
    let trace = TraceConfig {
        packets: 200,
        match_density: 0.02,
        prefix_density: 3.0,
        seed: 2,
        ..TraceConfig::default()
    }
    .generate(&snort);
    let bytes: usize = trace.iter().map(|p| p.len()).sum();

    let ac1 = build_ac(&s1);
    let ac2 = build_ac(&s2);
    let merged = build_combined_ac(&s1, &s2);

    let mut g = c.benchmark_group("scan_once_vs_twice");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.sample_size(20);

    g.bench_function("two_separate_scans", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &trace {
                ac1.scan(ac1.start(), p, |_, st| {
                    acc = acc.wrapping_add(u64::from(st))
                });
                ac2.scan(ac2.start(), p, |_, st| {
                    acc = acc.wrapping_add(u64::from(st))
                });
            }
            acc
        })
    });

    g.bench_function("one_combined_scan", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &trace {
                merged.scan(merged.start(), p, |_, st| {
                    acc = acc.wrapping_add(u64::from(st))
                });
            }
            acc
        })
    });

    g.finish();
}

criterion_group!(benches, bench_combined);
criterion_main!(benches);
