//! Offline stand-in for the `serde_derive` crate.
//!
//! Derives the vendored serde's [`Serialize`]/[`Deserialize`] traits
//! (which convert through an explicit `serde::Value` tree rather than
//! the real crate's visitor machinery). With no crates.io access there
//! is no `syn`/`quote`, so this macro parses the item out of the raw
//! `proc_macro::TokenStream` by hand and emits the impl as a string.
//!
//! Supported shapes — exactly what this workspace derives on:
//! named structs, unit structs, tuple structs (single-field newtypes
//! serialize transparently, wider ones as arrays), and enums with unit
//! / tuple / struct variants. Enums are externally tagged by default;
//! the container attributes `#[serde(tag = "...")]` (internal tagging)
//! and `#[serde(rename_all = "snake_case")]` (variant renaming) match
//! real serde's wire format for those cases. Generic items are not
//! supported and fail with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` for a non-generic struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---- item model ------------------------------------------------------

struct Item {
    name: String,
    /// `#[serde(tag = "...")]`: internally-tagged enum representation.
    tag: Option<String>,
    /// `#[serde(rename_all = "...")]`: only `snake_case` is supported.
    rename_all: Option<String>,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

impl Item {
    fn variant_wire_name(&self, variant: &str) -> String {
        match self.rename_all.as_deref() {
            Some("snake_case") => to_snake_case(variant),
            Some(other) => panic!("serde_derive stand-in: unsupported rename_all = {other:?}"),
            None => variant.to_string(),
        }
    }
}

fn to_snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// ---- token parsing ---------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut tag = None;
    let mut rename_all = None;

    // Leading attributes (doc comments arrive as `#[doc = ...]`) and the
    // container-level `#[serde(...)]` attributes we honor.
    while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            parse_container_attr(&g.stream(), &mut tag, &mut rename_all);
        }
        i += 2;
    }

    // Visibility.
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let is_enum = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => false,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => true,
        other => panic!("serde_derive stand-in: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;

    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stand-in: expected item name, found {other:?}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in: generic type `{name}` is not supported");
    }

    let kind = if is_enum {
        let body = match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde_derive stand-in: expected enum body, found {other:?}"),
        };
        ItemKind::Enum(parse_variants(&body))
    } else {
        match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => panic!("serde_derive stand-in: expected struct body, found {other:?}"),
        }
    };

    Item {
        name,
        tag,
        rename_all,
        kind,
    }
}

/// Extracts `tag` / `rename_all` out of one attribute's bracket content,
/// if it is a `serde(...)` attribute; ignores everything else.
fn parse_container_attr(
    bracket: &TokenStream,
    tag: &mut Option<String>,
    rename_all: &mut Option<String>,
) {
    let tokens: Vec<TokenTree> = bracket.clone().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            let args: Vec<TokenTree> = args.stream().into_iter().collect();
            let mut j = 0;
            while j < args.len() {
                if let (
                    Some(TokenTree::Ident(key)),
                    Some(TokenTree::Punct(eq)),
                    Some(TokenTree::Literal(lit)),
                ) = (args.get(j), args.get(j + 1), args.get(j + 2))
                {
                    if eq.as_char() == '=' {
                        let value = lit.to_string().trim_matches('"').to_string();
                        match key.to_string().as_str() {
                            "tag" => *tag = Some(value),
                            "rename_all" => *rename_all = Some(value),
                            other => panic!(
                                "serde_derive stand-in: unsupported serde attribute `{other}`"
                            ),
                        }
                        j += 3;
                        if matches!(args.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                            j += 1;
                        }
                        continue;
                    }
                }
                panic!("serde_derive stand-in: unsupported serde attribute syntax");
            }
        }
        _ => {}
    }
}

/// Skips any `#[...]` attributes starting at `i`, returning the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        i += 2;
    }
    i
}

/// Advances past a type (or any expression) to the next comma at
/// angle-bracket depth zero. Bracketed groups are single tokens, so only
/// `<`/`>` need explicit depth tracking.
fn skip_to_top_level_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0usize;
    while let Some(t) = tokens.get(i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(body: &TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(field)) = tokens.get(i) else {
            break; // trailing comma
        };
        fields.push(field.to_string());
        i += 1;
        assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde_derive stand-in: expected `:` after field name"
        );
        i = skip_to_top_level_comma(&tokens, i + 1);
        i += 1; // past the comma (or end)
    }
    fields
}

fn count_tuple_fields(body: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        count += 1;
        i = skip_to_top_level_comma(&tokens, i) + 1;
    }
    count
}

fn parse_variants(body: &TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break; // trailing comma
        };
        let name = name.to_string();
        i += 1;
        let fields = match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(&g.stream()))
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip any discriminant and land past the separating comma.
        i = skip_to_top_level_comma(&tokens, i) + 1;
    }
    variants
}

// ---- code generation -------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| gen_serialize_variant(item, v))
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}\n"
    )
}

fn gen_serialize_variant(item: &Item, v: &Variant) -> String {
    let enum_name = &item.name;
    let vname = &v.name;
    let wire = item.variant_wire_name(vname);
    if let Some(tag) = &item.tag {
        // Internally tagged: the tag entry is inlined into the variant's
        // own map, matching serde's `#[serde(tag = "...")]` layout.
        let tag_entry = format!(
            "(::std::string::String::from(\"{tag}\"), \
             ::serde::Value::Str(::std::string::String::from(\"{wire}\")))"
        );
        return match &v.fields {
            VariantFields::Unit => {
                format!("{enum_name}::{vname} => ::serde::Value::Map(::std::vec![{tag_entry}]),")
            }
            VariantFields::Named(fields) => {
                let binders = fields.join(", ");
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::serialize({f}))"
                        )
                    })
                    .collect();
                format!(
                    "{enum_name}::{vname} {{ {binders} }} => \
                     ::serde::Value::Map(::std::vec![{tag_entry}, {}]),",
                    entries.join(", ")
                )
            }
            VariantFields::Tuple(_) => {
                panic!("serde_derive stand-in: tuple variant `{vname}` in internally-tagged enum")
            }
        };
    }
    // Externally tagged (serde's default).
    match &v.fields {
        VariantFields::Unit => format!(
            "{enum_name}::{vname} => \
             ::serde::Value::Str(::std::string::String::from(\"{wire}\")),"
        ),
        VariantFields::Tuple(1) => format!(
            "{enum_name}::{vname}(__x0) => ::serde::Value::Map(::std::vec![\
             (::std::string::String::from(\"{wire}\"), \
             ::serde::Serialize::serialize(__x0))]),"
        ),
        VariantFields::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
            let entries: Vec<String> = binders
                .iter()
                .map(|b| format!("::serde::Serialize::serialize({b})"))
                .collect();
            format!(
                "{enum_name}::{vname}({}) => ::serde::Value::Map(::std::vec![\
                 (::std::string::String::from(\"{wire}\"), \
                 ::serde::Value::Seq(::std::vec![{}]))]),",
                binders.join(", "),
                entries.join(", ")
            )
        }
        VariantFields::Named(fields) => {
            let binders = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {binders} }} => ::serde::Value::Map(::std::vec![\
                 (::std::string::String::from(\"{wire}\"), \
                 ::serde::Value::Map(::std::vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

/// One named field's deserialization, looking the key up in the value
/// `source` (an expression of type `&serde::Value`). Missing keys fall
/// back to deserializing `Null`, which succeeds exactly for `Option`
/// fields — mirroring serde's treatment of absent optional fields.
fn gen_field_de(container: &str, source: &str, field: &str) -> String {
    format!(
        "{field}: match {source}.get(\"{field}\") {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::deserialize(__x)\n\
                 .map_err(|__e| ::serde::DeError::new(\
                     ::std::format!(\"{container}.{field}: {{}}\", __e)))?,\n\
             ::std::option::Option::None => \
                 ::serde::Deserialize::deserialize(&::serde::Value::Null)\n\
                 .map_err(|_| ::serde::DeError::new(\
                     \"missing field `{field}` in {container}\"))?,\n\
         }},"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let field_code: Vec<String> = fields
                .iter()
                .map(|f| gen_field_de(name, "__v", f))
                .collect();
            format!(
                "if __v.as_map().is_none() {{\n\
                     return ::std::result::Result::Err(\
                         ::serde::DeError::expected(\"object for {name}\", __v));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                field_code.join("\n")
            )
        }
        ItemKind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)\
             .map_err(|__e| ::serde::DeError::new(\
                 ::std::format!(\"{name}: {{}}\", __e)))?))"
        ),
        ItemKind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq()\
                     .ok_or_else(|| ::serde::DeError::expected(\"array for {name}\", __v))?;\n\
                 if __s.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::DeError::new(\
                         ::std::format!(\"expected {n} elements for {name}, found {{}}\", \
                         __s.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        ItemKind::UnitStruct => format!(
            "match __v {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 __other => ::std::result::Result::Err(\
                     ::serde::DeError::expected(\"null for {name}\", __other)),\n\
             }}"
        ),
        ItemKind::Enum(variants) => gen_deserialize_enum(item, variants),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_deserialize_enum(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    if let Some(tag) = &item.tag {
        let arms: Vec<String> = variants
            .iter()
            .map(|v| {
                let wire = item.variant_wire_name(&v.name);
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        format!("\"{wire}\" => ::std::result::Result::Ok({name}::{vname}),")
                    }
                    VariantFields::Named(fields) => {
                        let field_code: Vec<String> = fields
                            .iter()
                            .map(|f| gen_field_de(&format!("{name}::{vname}"), "__v", f))
                            .collect();
                        format!(
                            "\"{wire}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                            field_code.join("\n")
                        )
                    }
                    VariantFields::Tuple(_) => panic!(
                        "serde_derive stand-in: tuple variant `{vname}` in internally-tagged enum"
                    ),
                }
            })
            .collect();
        return format!(
            "let __tag = __v.get(\"{tag}\")\
                 .ok_or_else(|| ::serde::DeError::new(\"missing `{tag}` tag for {name}\"))?;\n\
             let ::serde::Value::Str(__tag) = __tag else {{\n\
                 return ::std::result::Result::Err(\
                     ::serde::DeError::expected(\"string `{tag}` tag for {name}\", __tag));\n\
             }};\n\
             match __tag.as_str() {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                     ::std::format!(\"unknown {name} variant {{:?}}\", __other))),\n\
             }}",
            arms.join("\n")
        );
    }

    // Externally tagged: unit variants are bare strings; data-carrying
    // variants are single-entry maps keyed by the variant name.
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| {
            let wire = item.variant_wire_name(&v.name);
            format!(
                "\"{wire}\" => ::std::result::Result::Ok({name}::{vn}),",
                vn = v.name
            )
        })
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let wire = item.variant_wire_name(&v.name);
            let vname = &v.name;
            match &v.fields {
                VariantFields::Unit => None,
                VariantFields::Tuple(1) => Some(format!(
                    "\"{wire}\" => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::deserialize(__inner)\
                     .map_err(|__e| ::serde::DeError::new(\
                         ::std::format!(\"{name}::{vname}: {{}}\", __e)))?)),"
                )),
                VariantFields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::deserialize(&__s[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{wire}\" => {{\n\
                             let __s = __inner.as_seq().ok_or_else(|| \
                                 ::serde::DeError::expected(\
                                     \"array for {name}::{vname}\", __inner))?;\n\
                             if __s.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::DeError::new(\
                                     ::std::format!(\
                                         \"expected {n} elements for {name}::{vname}, \
                                          found {{}}\", __s.len())));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n\
                         }},",
                        elems.join(", ")
                    ))
                }
                VariantFields::Named(fields) => {
                    let field_code: Vec<String> = fields
                        .iter()
                        .map(|f| gen_field_de(&format!("{name}::{vname}"), "__inner", f))
                        .collect();
                    Some(format!(
                        "\"{wire}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                        field_code.join("\n")
                    ))
                }
            }
        })
        .collect();
    format!(
        "match __v {{\n\
             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                     ::std::format!(\"unknown {name} variant {{:?}}\", __other))),\n\
             }},\n\
             ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                 let (__key, __inner) = &__m[0];\n\
                 match __key.as_str() {{\n\
                     {data}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::new(\
                         ::std::format!(\"unknown {name} variant {{:?}}\", __other))),\n\
                 }}\n\
             }},\n\
             __other => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"{name} variant\", __other)),\n\
         }}",
        unit = unit_arms.join("\n"),
        data = data_arms.join("\n"),
    )
}
