//! The full-table DFA — the paper's primary representation (§3, §5.1).
//!
//! Every state has a 256-entry transition row, so scanning is one indexed
//! load per input byte. Accepting states are renumbered to `{0..f-1}` so
//! the accepting test is `state < f` ("it is also possible to check whether
//! the state ID is less than a predefined constant whose value is the
//! number of accepting states", §5.1) and the match table is a
//! direct-access array indexed by the accepting state id.

use crate::kernel::{DepthSamples, ScanKernel};
use crate::trie::Trie;
use crate::{Automaton, MatchEntry, StateId};

/// The flattened full-table automaton.
#[derive(Debug, Clone)]
pub struct FullAc {
    /// `state * 256 + byte -> next state`, in the renumbered id space.
    pub(crate) transitions: Vec<u32>,
    /// Number of accepting states; accepting ids are `0..f`.
    pub(crate) f: u32,
    /// Root state id (after renumbering).
    pub(crate) root: u32,
    /// Per-accepting-state middlebox bitmap, indexed by state id.
    pub(crate) bitmaps: Vec<u64>,
    /// Direct-access match table: `offsets[i]..offsets[i+1]` indexes
    /// `entries` for accepting state `i` (§5.1's `match` array, flattened).
    pub(crate) offsets: Vec<u32>,
    /// All match entries, grouped by accepting state, each group sorted.
    pub(crate) entries: Vec<MatchEntry>,
    /// Depth (label length) per state — exported for the MCA²-style stress
    /// telemetry: complexity attacks drive scans unusually deep (§4.3.1).
    pub(crate) depth: Vec<u16>,
}

impl FullAc {
    /// Flattens a trie (whose failure links must already be built — the
    /// [`crate::CombinedAcBuilder`] handles the full pipeline).
    pub(crate) fn from_trie(trie: &Trie, bfs_order: &[u32]) -> FullAc {
        let n = trie.len();

        // 1. Renumber: accepting nodes first.
        let mut remap = vec![0u32; n];
        let mut next_accepting = 0u32;
        let mut next_plain = trie
            .nodes()
            .iter()
            .filter(|nd| !nd.outputs.is_empty())
            .count() as u32;
        let f = next_plain;
        for (old, node) in trie.nodes().iter().enumerate() {
            if node.outputs.is_empty() {
                remap[old] = next_plain;
                next_plain += 1;
            } else {
                remap[old] = next_accepting;
                next_accepting += 1;
            }
        }

        // 2. Full transition table in *old* numbering, computed in BFS
        //    order so each node's failure target row already exists.
        let mut old_table = vec![0u32; n * 256];
        for &u in bfs_order {
            let u = u as usize;
            let (fail, depth_is_zero) = {
                let node = trie.node(u as u32);
                (node.fail as usize, node.depth == 0)
            };
            // Start from the failure row (the root's row is all-zero
            // initially, which is correct: missing root transitions
            // self-loop). `fail(u) != u` for non-root nodes and the failure
            // target's row was completed earlier in BFS order.
            if !depth_is_zero {
                debug_assert_ne!(fail, u);
                // The rows are disjoint (`fail != u`), so the failure row
                // copies in place without a temporary allocation.
                old_table.copy_within(fail * 256..fail * 256 + 256, u * 256);
            }
            for (&b, &c) in &trie.node(u as u32).children {
                old_table[u * 256 + usize::from(b)] = c;
            }
        }

        // 3. Permute rows into the new numbering and rewrite targets.
        let mut transitions = vec![0u32; n * 256];
        for old in 0..n {
            let new = remap[old] as usize;
            for b in 0..256 {
                transitions[new * 256 + b] = remap[old_table[old * 256 + b] as usize];
            }
        }

        // 4. Match table, bitmaps and depths in the new numbering.
        let mut per_state: Vec<&[MatchEntry]> = vec![&[]; f as usize];
        let mut depth = vec![0u16; n];
        for (old, node) in trie.nodes().iter().enumerate() {
            let new = remap[old];
            depth[new as usize] = node.depth;
            if !node.outputs.is_empty() {
                per_state[new as usize] = &node.outputs;
            }
        }
        let mut offsets = Vec::with_capacity(f as usize + 1);
        let mut entries = Vec::new();
        offsets.push(0u32);
        let mut bitmaps = Vec::with_capacity(f as usize);
        for outs in per_state {
            entries.extend_from_slice(outs);
            offsets.push(entries.len() as u32);
            bitmaps.push(crate::bitmap_of(
                &outs.iter().map(|e| e.middlebox).collect::<Vec<_>>(),
            ));
        }

        FullAc {
            transitions,
            f,
            root: remap[0],
            bitmaps,
            offsets,
            entries,
            depth,
        }
    }

    /// Depth (label length) of a state — used by stress telemetry.
    pub fn state_depth(&self, state: StateId) -> u16 {
        self.depth[state as usize]
    }

    /// Maximum depth over all states (longest pattern).
    pub fn max_depth(&self) -> u16 {
        self.depth.iter().copied().max().unwrap_or(0)
    }
}

impl Automaton for FullAc {
    fn start(&self) -> StateId {
        self.root
    }

    #[inline(always)]
    fn step(&self, state: StateId, byte: u8) -> StateId {
        self.transitions[(state as usize) * 256 + usize::from(byte)]
    }

    #[inline(always)]
    fn is_accepting(&self, state: StateId) -> bool {
        state < self.f
    }

    fn bitmap(&self, state: StateId) -> u64 {
        if state < self.f {
            self.bitmaps[state as usize]
        } else {
            0
        }
    }

    fn entries(&self, state: StateId) -> &[MatchEntry] {
        if state < self.f {
            let lo = self.offsets[state as usize] as usize;
            let hi = self.offsets[state as usize + 1] as usize;
            &self.entries[lo..hi]
        } else {
            &[]
        }
    }

    fn state_count(&self) -> usize {
        self.transitions.len() / 256
    }

    fn accepting_count(&self) -> usize {
        self.f as usize
    }

    fn memory_bytes(&self) -> usize {
        self.transitions.len() * std::mem::size_of::<u32>()
            + self.bitmaps.len() * std::mem::size_of::<u64>()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.entries.len() * std::mem::size_of::<MatchEntry>()
            + self.depth.len() * std::mem::size_of::<u16>()
    }

    fn scan<F: FnMut(usize, StateId)>(
        &self,
        state: StateId,
        data: &[u8],
        mut on_match: F,
    ) -> StateId {
        // Unrolled 4 bytes per iteration: the per-byte work is a single
        // dependent load plus the `s < f` accepting compare (§5.1), so
        // unrolling amortizes loop control and exposes the address
        // computation of later bytes while the current load is in flight.
        let t = &self.transitions[..];
        let f = self.f;
        let mut s = state;
        let mut i = 0;
        let n4 = data.len() & !3;
        while i < n4 {
            s = t[(s as usize) * 256 + usize::from(data[i])];
            if s < f {
                on_match(i, s);
            }
            s = t[(s as usize) * 256 + usize::from(data[i + 1])];
            if s < f {
                on_match(i + 1, s);
            }
            s = t[(s as usize) * 256 + usize::from(data[i + 2])];
            if s < f {
                on_match(i + 2, s);
            }
            s = t[(s as usize) * 256 + usize::from(data[i + 3])];
            if s < f {
                on_match(i + 3, s);
            }
            i += 4;
        }
        while i < data.len() {
            s = t[(s as usize) * 256 + usize::from(data[i])];
            if s < f {
                on_match(i, s);
            }
            i += 1;
        }
        s
    }
}

impl ScanKernel for FullAc {
    fn kernel_name(&self) -> &'static str {
        "full"
    }

    fn scan_sampled(
        &self,
        state: StateId,
        data: &[u8],
        sample_every: usize,
        deep_depth: u16,
        samples: &mut DepthSamples,
        on_accept: &mut dyn FnMut(usize, StateId),
    ) -> StateId {
        // The same 4-byte unroll as `scan`, with the telemetry depth
        // sample folded into each step (grid positions are 1 in
        // `sample_every`, so the extra compare rarely takes its branch).
        let t = &self.transitions[..];
        let f = self.f;
        let depth = &self.depth[..];
        let mut s = state;
        let mut next_sample = 0usize;
        macro_rules! step_byte {
            ($i:expr) => {
                s = t[(s as usize) * 256 + usize::from(data[$i])];
                if $i == next_sample {
                    samples.total += 1;
                    if depth[s as usize] >= deep_depth {
                        samples.deep += 1;
                    }
                    next_sample = next_sample.saturating_add(sample_every);
                }
                if s < f {
                    on_accept($i, s);
                }
            };
        }
        let mut i = 0;
        let n4 = data.len() & !3;
        while i < n4 {
            step_byte!(i);
            step_byte!(i + 1);
            step_byte!(i + 2);
            step_byte!(i + 3);
            i += 4;
        }
        while i < data.len() {
            step_byte!(i);
            i += 1;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CombinedAcBuilder, PatternSet};
    use crate::{MiddleboxId, PatternId};

    /// The paper's running example (Figures 4 and 7):
    /// P0 = {E, BE, BD, BCD, BCAA, CDBCAB}, P1 = {EDAE, BE, CDBA, CBD}.
    fn paper_example() -> FullAc {
        let mut b = CombinedAcBuilder::new();
        b.add_set(PatternSet::from_strs(
            MiddleboxId(0),
            &["E", "BE", "BD", "BCD", "BCAA", "CDBCAB"],
        ))
        .unwrap();
        b.add_set(PatternSet::from_strs(
            MiddleboxId(1),
            &["EDAE", "BE", "CDBA", "CBD"],
        ))
        .unwrap();
        b.build_full()
    }

    #[test]
    fn paper_example_state_count_matches_figure7() {
        let ac = paper_example();
        // Figure 7 shows s_start plus s0..s19: 21 states in total.
        assert_eq!(ac.state_count(), 21);
    }

    #[test]
    fn paper_example_accepting_states() {
        let ac = paper_example();
        // Accepting = states with non-empty output lists. From Figure 7:
        // E, BE, BD, BCD, BCAA, CDBCAB, EDAE, CDBA, CBD are accepting (9
        // pattern-end states), plus CDBCAB's... no other state inherits an
        // output via failure links except those shown in the match table:
        // the figure's match table has entries for 10 states (0..9), since
        // EDAE's state also reports E (suffix), CBD reports BD, etc. —
        // those propagations land on already-accepting states, except none
        // new. Distinct pattern strings: 9 (BE shared).
        assert_eq!(ac.accepting_count(), 9);
        for s in 0..ac.accepting_count() as u32 {
            assert!(ac.is_accepting(s));
            assert!(!ac.entries(s).is_empty());
        }
        assert!(!ac.is_accepting(ac.accepting_count() as u32));
    }

    #[test]
    fn paper_example_shared_pattern_has_both_middleboxes() {
        let ac = paper_example();
        // Scanning "BE" must report BE for both middleboxes and E for mb 0.
        let matches = ac.find_all(b"BE");
        let mut mb0: Vec<_> = matches
            .iter()
            .filter(|(_, e)| e.middlebox == MiddleboxId(0))
            .collect();
        mb0.sort();
        let mb1: Vec<_> = matches
            .iter()
            .filter(|(_, e)| e.middlebox == MiddleboxId(1))
            .collect();
        // mb0: E at pos 1, BE at pos 1. mb1: BE at pos 1.
        assert_eq!(mb0.len(), 2);
        assert_eq!(mb1.len(), 1);
        assert!(matches.iter().all(|(pos, _)| *pos == 1));
    }

    #[test]
    fn paper_example_bitmaps() {
        let ac = paper_example();
        // Find the state reached by "BE": bitmap must have bits 0 and 1.
        let mut s = ac.start();
        for &b in b"BE" {
            s = ac.step(s, b);
        }
        assert_eq!(ac.bitmap(s), 0b11);
        // "BCAA" is only in set 0.
        let mut s = ac.start();
        for &b in b"BCAA" {
            s = ac.step(s, b);
        }
        assert_eq!(ac.bitmap(s), 0b01);
        // "CBD" is only in set 1 — but it ends with BD (set 0), so the
        // propagated bitmap covers both (Figure 7 marks CBD's state with
        // the striped/both-sets pattern via its match-table entries).
        let mut s = ac.start();
        for &b in b"CBD" {
            s = ac.step(s, b);
        }
        assert_eq!(ac.bitmap(s), 0b11);
    }

    #[test]
    fn overlapping_matches_are_all_reported() {
        let mut b = CombinedAcBuilder::new();
        b.add_set(PatternSet::from_strs(MiddleboxId(0), &["AA"]))
            .unwrap();
        let ac = b.build_full();
        let matches = ac.find_all(b"AAAA");
        // AA ends at positions 1, 2, 3.
        assert_eq!(
            matches.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn scan_resumes_across_packet_boundary() {
        let mut b = CombinedAcBuilder::new();
        b.add_set(PatternSet::from_strs(MiddleboxId(0), &["HELLO"]))
            .unwrap();
        let ac = b.build_full();
        let mut hits = Vec::new();
        let mid = ac.scan(ac.start(), b"xxHEL", |p, s| hits.push((p, s)));
        assert!(hits.is_empty());
        ac.scan(mid, b"LOyy", |p, s| hits.push((p, s)));
        // Match ends at index 1 of the second packet.
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 1);
    }

    #[test]
    fn empty_builder_produces_matchless_automaton() {
        let b = CombinedAcBuilder::new();
        let ac = b.build_full();
        assert_eq!(ac.accepting_count(), 0);
        assert!(ac.find_all(b"anything at all").is_empty());
    }

    #[test]
    fn single_byte_patterns_match_everywhere() {
        let mut b = CombinedAcBuilder::new();
        b.add_set(PatternSet::from_strs(MiddleboxId(3), &["x"]))
            .unwrap();
        let ac = b.build_full();
        assert_eq!(ac.find_all(b"xxaxx").len(), 4);
    }

    #[test]
    fn entry_lists_are_sorted() {
        let ac = paper_example();
        for s in 0..ac.accepting_count() as u32 {
            let es = ac.entries(s);
            let mut sorted = es.to_vec();
            sorted.sort();
            assert_eq!(es, &sorted[..]);
        }
    }

    #[test]
    fn depths_track_pattern_lengths() {
        let ac = paper_example();
        assert_eq!(ac.max_depth(), 6); // CDBCAB
        let mut s = ac.start();
        assert_eq!(ac.state_depth(s), 0);
        for &b in b"BCA" {
            s = ac.step(s, b);
        }
        assert_eq!(ac.state_depth(s), 3);
    }

    #[test]
    fn pattern_id_spaces_are_per_middlebox() {
        // Both middleboxes use pattern id 0 for different strings.
        let mut b = CombinedAcBuilder::new();
        b.add_set(PatternSet::from_strs(MiddleboxId(0), &["CAT"]))
            .unwrap();
        b.add_set(PatternSet::from_strs(MiddleboxId(1), &["DOG"]))
            .unwrap();
        let ac = b.build_full();
        let m = ac.find_all(b"CATDOG");
        assert_eq!(m.len(), 2);
        assert!(m
            .iter()
            .any(|(_, e)| e.middlebox == MiddleboxId(0) && e.pattern == PatternId(0)));
        assert!(m
            .iter()
            .any(|(_, e)| e.middlebox == MiddleboxId(1) && e.pattern == PatternId(0)));
    }
}
