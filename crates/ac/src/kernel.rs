//! The pluggable byte-scanning hot path.
//!
//! Every automaton representation exposes the same [`ScanKernel`]
//! interface: a resumable scan that reports accepting states and collects
//! the depth samples the MCA²-style stress telemetry needs
//! (DESIGN.md §12). Which kernel a deployment runs is a single
//! [`KernelKind`] flag in its instance configuration, so ablations —
//! naive vs. unrolled vs. compact vs. prefiltered — stay one flag apart
//! while producing byte-identical match streams and final states.

use crate::{Automaton, StateId};
use serde::{Deserialize, Serialize};

/// Which scan kernel an instance runs. Serialized inside
/// `InstanceConfig`, so the choice survives live rule updates and
/// staged rollouts unchanged.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum KernelKind {
    /// Reference kernel: one dependent table load per byte, no unrolling.
    /// The baseline every optimization is measured against.
    Naive,
    /// The `u32` full-table DFA with the 4-byte-unrolled scan loop.
    Full,
    /// The `u16` half-width table (cache residency) with a wider unroll
    /// to claw back the narrow-load throughput gap. Falls back to `full`
    /// when the automaton has too many states for 16-bit ids.
    Compact,
    /// Two-stage scanner: a SWAR literal prefilter skips lanes that
    /// cannot contain any match, and a 2-byte-stride root DFA covers the
    /// residue windows the filter flags. Falls back to `full` scanning
    /// when the pattern set yields no selective byte pairs.
    Prefiltered,
    /// Pick automatically: `compact` when the state count fits 16-bit
    /// ids, `full` otherwise — the pre-kernel default behavior.
    #[default]
    Auto,
}

impl KernelKind {
    /// Every concrete (non-auto) kernel, in ablation-sweep order.
    pub const ALL: [KernelKind; 4] = [
        KernelKind::Naive,
        KernelKind::Full,
        KernelKind::Compact,
        KernelKind::Prefiltered,
    ];

    /// The flag's wire/CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Naive => "naive",
            KernelKind::Full => "full",
            KernelKind::Compact => "compact",
            KernelKind::Prefiltered => "prefiltered",
            KernelKind::Auto => "auto",
        }
    }

    /// Parses the CLI/config spelling.
    pub fn parse(s: &str) -> Option<KernelKind> {
        match s {
            "naive" => Some(KernelKind::Naive),
            "full" => Some(KernelKind::Full),
            "compact" => Some(KernelKind::Compact),
            "prefiltered" => Some(KernelKind::Prefiltered),
            "auto" => Some(KernelKind::Auto),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Depth-sample accumulator a kernel fills during one scan: 1 in
/// `sample_every` byte positions contributes to `total`, and to `deep`
/// when the automaton state after that byte sits at or past the caller's
/// deep-depth threshold. Positions a prefilter proved match-free sample
/// as shallow — the state there is within a pair-offset of the root.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DepthSamples {
    /// Sampled positions.
    pub total: u64,
    /// Sampled positions at or past the deep threshold.
    pub deep: u64,
}

/// A resumable scanning hot path over one compiled automaton.
///
/// `scan_sampled` is [`Automaton::scan`] plus the telemetry the scan
/// engine needs inline: it invokes `on_accept(end_index, state)` for
/// every accepting state reached and samples scan depth on the
/// `sample_every` grid (position `i` is sampled when `i % sample_every
/// == 0`, matching the engine's historical loop). The returned final
/// state is exact — stateful cross-packet scans store it — and the match
/// stream is byte-identical across all kernels.
pub trait ScanKernel {
    /// The kernel's flag spelling (telemetry, trace events, benches).
    fn kernel_name(&self) -> &'static str;

    /// Scans `data` from `state`; see the trait docs for the contract.
    fn scan_sampled(
        &self,
        state: StateId,
        data: &[u8],
        sample_every: usize,
        deep_depth: u16,
        samples: &mut DepthSamples,
        on_accept: &mut dyn FnMut(usize, StateId),
    ) -> StateId;
}

/// The naive reference loop: per-byte step + accept check + sample, no
/// unrolling, shared by the `naive` kernel over any automaton with a
/// depth table.
#[allow(clippy::too_many_arguments)]
pub(crate) fn naive_scan_sampled<A: Automaton>(
    ac: &A,
    depth_of: impl Fn(StateId) -> u16,
    state: StateId,
    data: &[u8],
    sample_every: usize,
    deep_depth: u16,
    samples: &mut DepthSamples,
    on_accept: &mut dyn FnMut(usize, StateId),
) -> StateId {
    let mut s = state;
    let mut next_sample = 0usize;
    for (i, &b) in data.iter().enumerate() {
        s = ac.step(s, b);
        if i == next_sample {
            samples.total += 1;
            if depth_of(s) >= deep_depth {
                samples.deep += 1;
            }
            next_sample = next_sample.saturating_add(sample_every);
        }
        if ac.is_accepting(s) {
            on_accept(i, s);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrips_through_names() {
        for k in KernelKind::ALL.iter().chain([KernelKind::Auto].iter()) {
            assert_eq!(KernelKind::parse(k.name()), Some(*k));
        }
        assert_eq!(KernelKind::parse("vectorized"), None);
        assert_eq!(KernelKind::default(), KernelKind::Auto);
    }

    #[test]
    fn kind_serializes_as_snake_case_string() {
        let j = serde_json::to_string(&KernelKind::Prefiltered).unwrap();
        assert_eq!(j, "\"prefiltered\"");
        let back: KernelKind = serde_json::from_str("\"compact\"").unwrap();
        assert_eq!(back, KernelKind::Compact);
    }
}
