//! Live rule updates: generation-versioned automaton hot swap.
//!
//! §4.1 lets middleboxes add and remove patterns at runtime, but a
//! production fleet cannot stop the world to recompile: the combined
//! automaton must be rebuilt **off the hot path** and swapped into
//! running scan engines without blocking a single packet. This module is
//! the data-plane half of that pipeline:
//!
//! * [`GenerationId`] — every compiled [`ScanEngine`] carries the rule
//!   generation it was built from, and every
//!   [`dpi_packet::report::ResultPacket`] carries the generation that
//!   produced it, so **every match result is attributable to exactly one
//!   rule generation**.
//! * [`UpdateArtifact`] — the unit shipped from controller to instance: a
//!   serialized [`InstanceConfig`] plus generation and checksum. An
//!   artifact corrupted in transit (the chaos `corrupt-rule-update`
//!   fault) fails [`UpdateArtifact::validate`] and is **rejected**; the
//!   instance keeps serving its current generation.
//! * [`EngineSlot`] — the atomic publication point. A builder thread
//!   compiles the next generation and [`EngineSlot::publish`]es it;
//!   readers [`EngineSlot::load`] an `Arc` clone whenever they are at a
//!   safe point (for the sharded pipeline, the batch boundary — its
//!   drain barrier). Readers never block on compilation; old generations
//!   are reclaimed by the last `Arc` drop once in-flight batches drain.
//! * [`UpdateStats`] — per-engine swap telemetry: swaps applied,
//!   rejections, and the observed swap pause (the paper's Fig. 11
//!   companion metric, recorded by `bench_update`).
//!
//! Cross-packet flow state is tagged with the generation that wrote it
//! (see [`crate::flowstate::FlowTable`]); a flow whose state predates the
//! running generation deterministically re-anchors at the new automaton's
//! root. Re-anchoring can only *miss* a match straddling the swap — never
//! fabricate one — by the same stateless-deletion argument as failover
//! (DESIGN.md §8); the full generation semantics live in DESIGN.md §9.

use crate::config::InstanceConfig;
use crate::instance::{InstanceError, ScanEngine};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// A rule generation: monotonically increasing per deployment, starting
/// at 0 for the initially-compiled configuration.
pub type GenerationId = u32;

/// Why an update artifact was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// The artifact's checksum does not match its payload — it was
    /// corrupted in transit and must not be compiled.
    ChecksumMismatch {
        /// Checksum the artifact claims.
        expected: u64,
        /// Checksum of the payload as received.
        actual: u64,
    },
    /// The payload passed its checksum but did not deserialize into an
    /// [`InstanceConfig`].
    Malformed(String),
    /// The configuration deserialized but failed to compile.
    Build(String),
    /// A generation that must move forward tried to move backward (a
    /// stale `BeginUpdate` arriving after a newer one was applied).
    StaleGeneration {
        /// Generation currently running.
        current: GenerationId,
        /// Generation the artifact carries.
        offered: GenerationId,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::ChecksumMismatch { expected, actual } => write!(
                f,
                "artifact checksum mismatch (expected {expected:#018x}, got {actual:#018x})"
            ),
            UpdateError::Malformed(e) => write!(f, "artifact payload malformed: {e}"),
            UpdateError::Build(e) => write!(f, "artifact failed to compile: {e}"),
            UpdateError::StaleGeneration { current, offered } => write!(
                f,
                "stale generation {offered} offered while {current} is running"
            ),
        }
    }
}

impl std::error::Error for UpdateError {}

/// FNV-1a over the payload, mixed with the generation so an artifact
/// replayed under the wrong generation also fails validation.
fn checksum(generation: GenerationId, payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in u64::from(generation)
        .to_be_bytes()
        .iter()
        .chain(payload.iter())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The unit of a rule update in transit: one generation's full
/// [`InstanceConfig`], serialized, checksummed, attributable.
///
/// Shipping the *pattern set* rather than a compiled automaton is the
/// paper's §4.1 transfer-size argument; [`UpdateArtifact::transfer_bytes`]
/// is the per-update cost the controller reports (Fig. 11).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateArtifact {
    /// The generation this artifact installs.
    pub generation: GenerationId,
    /// Serialized [`InstanceConfig`] (JSON, same wire idiom as the
    /// controller protocol).
    pub payload: String,
    /// FNV-1a checksum of generation + payload, computed at build time.
    pub checksum: u64,
}

impl UpdateArtifact {
    /// Serializes `config` as generation `generation`.
    pub fn build(generation: GenerationId, config: &InstanceConfig) -> UpdateArtifact {
        let payload =
            serde_json::to_string(config).expect("instance configuration always serializes");
        let checksum = checksum(generation, payload.as_bytes());
        UpdateArtifact {
            generation,
            payload,
            checksum,
        }
    }

    /// Bytes this update moves from controller to instance (Fig. 11's
    /// bytes-per-pattern-set-update metric counts this).
    pub fn transfer_bytes(&self) -> usize {
        // generation + checksum words + the serialized configuration.
        4 + 8 + self.payload.len()
    }

    /// Simulates in-transit corruption (the chaos `corrupt-rule-update`
    /// fault): garbles the payload without touching the checksum, so
    /// validation must catch it.
    pub fn corrupt(&mut self) {
        let mut bytes = self.payload.clone().into_bytes();
        if let Some(b) = bytes.first_mut() {
            *b ^= 0x5a;
        }
        let mid = bytes.len() / 2;
        if let Some(b) = bytes.get_mut(mid) {
            *b ^= 0xa5;
        }
        self.payload = String::from_utf8_lossy(&bytes).into_owned();
    }

    /// Integrity-checks and deserializes the artifact. A corrupt artifact
    /// is rejected here, *before* any compilation — the receiving
    /// instance keeps serving its current generation.
    pub fn validate(&self) -> Result<InstanceConfig, UpdateError> {
        let actual = checksum(self.generation, self.payload.as_bytes());
        if actual != self.checksum {
            return Err(UpdateError::ChecksumMismatch {
                expected: self.checksum,
                actual,
            });
        }
        serde_json::from_str(&self.payload).map_err(|e| UpdateError::Malformed(e.to_string()))
    }

    /// Validates, then compiles the artifact into a [`ScanEngine`] at its
    /// generation — the off-hot-path build step. The caller swaps the
    /// returned engine in via an [`EngineSlot`] or
    /// `ShardedScanner::swap_engine`.
    pub fn compile(&self) -> Result<Arc<ScanEngine>, UpdateError> {
        let config = self.validate()?;
        ScanEngine::with_generation(config, self.generation)
            .map(Arc::new)
            .map_err(|e: InstanceError| UpdateError::Build(e.to_string()))
    }
}

/// The atomic generation slot a running data plane reads its engine
/// from. Writers publish a fully-compiled engine; readers clone an `Arc`
/// at their next safe point. Neither side ever waits on compilation.
#[derive(Debug)]
pub struct EngineSlot {
    engine: RwLock<Arc<ScanEngine>>,
}

impl EngineSlot {
    /// A slot currently serving `engine`.
    pub fn new(engine: Arc<ScanEngine>) -> EngineSlot {
        EngineSlot {
            engine: RwLock::new(engine),
        }
    }

    /// The engine currently published (an `Arc` clone; the generation it
    /// belongs to stays alive while the caller holds it).
    pub fn load(&self) -> Arc<ScanEngine> {
        self.engine
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Generation currently published.
    pub fn generation(&self) -> GenerationId {
        self.load().generation()
    }

    /// Publishes `engine` as the next generation. Refuses to move the
    /// slot backward: a stale publication (older or equal generation,
    /// e.g. a delayed duplicate `BeginUpdate`) is rejected so a rollback
    /// race cannot resurrect a withdrawn rule set.
    pub fn publish(&self, engine: Arc<ScanEngine>) -> Result<GenerationId, UpdateError> {
        let mut g = self.engine.write().unwrap_or_else(|e| e.into_inner());
        let current = g.generation();
        let offered = engine.generation();
        if offered <= current {
            return Err(UpdateError::StaleGeneration { current, offered });
        }
        *g = engine;
        Ok(offered)
    }

    /// Forces the slot back to `engine` regardless of generation order —
    /// the rollback path (the orchestrator re-publishes the last good
    /// generation after a failed rollout).
    pub fn rollback(&self, engine: Arc<ScanEngine>) -> GenerationId {
        let mut g = self.engine.write().unwrap_or_else(|e| e.into_inner());
        let generation = engine.generation();
        *g = engine;
        generation
    }
}

/// Per-data-plane swap telemetry.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct UpdateStats {
    /// Generation currently serving.
    pub generation: GenerationId,
    /// Hot swaps applied since start.
    pub swaps: u64,
    /// Update artifacts rejected (checksum, malformed, stale).
    pub rejected: u64,
    /// Pause of the most recent swap — the drain-barrier cost, *not*
    /// compilation (which happens off the hot path).
    pub last_swap_pause: Duration,
    /// Transfer bytes of the most recent applied update.
    pub last_transfer_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MiddleboxProfile;
    use crate::rules::RuleSpec;
    use dpi_ac::MiddleboxId;

    fn config(patterns: &[&[u8]]) -> InstanceConfig {
        InstanceConfig::new()
            .with_middlebox(
                MiddleboxProfile::stateless(MiddleboxId(1)),
                patterns
                    .iter()
                    .map(|p| RuleSpec::exact(p.to_vec()))
                    .collect(),
            )
            .with_chain(5, vec![MiddleboxId(1)])
    }

    #[test]
    fn artifact_round_trips_and_compiles_at_its_generation() {
        let art = UpdateArtifact::build(7, &config(&[b"sig-a", b"sig-b"]));
        assert_eq!(art.validate().unwrap(), config(&[b"sig-a", b"sig-b"]));
        let engine = art.compile().unwrap();
        assert_eq!(engine.generation(), 7);
        assert!(art.transfer_bytes() > art.payload.len());
    }

    #[test]
    fn corrupted_artifact_is_rejected_before_compilation() {
        let mut art = UpdateArtifact::build(1, &config(&[b"sig-a"]));
        art.corrupt();
        assert!(matches!(
            art.validate().unwrap_err(),
            UpdateError::ChecksumMismatch { .. }
        ));
        assert!(art.compile().is_err());
    }

    #[test]
    fn checksum_binds_the_generation() {
        let mut art = UpdateArtifact::build(1, &config(&[b"sig-a"]));
        // Replaying the same payload as a different generation must fail.
        art.generation = 2;
        assert!(matches!(
            art.validate().unwrap_err(),
            UpdateError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn slot_publish_is_monotonic_but_rollback_is_not() {
        let g0 = UpdateArtifact::build(0, &config(&[b"a"]))
            .compile()
            .unwrap();
        let g1 = UpdateArtifact::build(1, &config(&[b"b"]))
            .compile()
            .unwrap();
        let slot = EngineSlot::new(g0.clone());
        assert_eq!(slot.generation(), 0);
        assert_eq!(slot.publish(g1.clone()).unwrap(), 1);
        assert_eq!(slot.generation(), 1);
        // A delayed duplicate of the old generation cannot regress it…
        assert!(matches!(
            slot.publish(g0.clone()).unwrap_err(),
            UpdateError::StaleGeneration {
                current: 1,
                offered: 0
            }
        ));
        // …but an explicit rollback can.
        assert_eq!(slot.rollback(g0), 0);
        assert_eq!(slot.generation(), 0);
    }

    #[test]
    fn old_generation_is_reclaimed_when_the_last_reader_drops() {
        let g0 = UpdateArtifact::build(0, &config(&[b"a"]))
            .compile()
            .unwrap();
        let slot = EngineSlot::new(g0.clone());
        let in_flight = slot.load(); // a batch holding the old snapshot
        assert_eq!(Arc::strong_count(&g0), 3); // g0 + slot + in_flight
        let g1 = UpdateArtifact::build(1, &config(&[b"b"]))
            .compile()
            .unwrap();
        slot.publish(g1).unwrap();
        // The swap drops the slot's ref, but the old generation survives
        // while a batch still scans against it.
        assert_eq!(Arc::strong_count(&g0), 2); // g0 + in_flight
        drop(in_flight);
        // Last in-flight batch drained: only the test's own handle keeps
        // the old generation alive now.
        assert_eq!(Arc::strong_count(&g0), 1);
        assert_eq!(slot.generation(), 1);
    }
}
