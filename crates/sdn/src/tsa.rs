//! The Traffic Steering Application (SIMPLE-style, §4).
//!
//! The paper's experimental topology is a star: "two user hosts, two
//! middlebox hosts, and a DPI service instance host. All hosts are
//! connected through a single switch and the TSA, implemented as a POX
//! module, steering traffic from one user host to the other according to
//! the defined policy chains" (§6.1). [`StarTopology`] captures that
//! layout and [`TrafficSteeringApp`] compiles policy chains into the
//! switch's flow rules:
//!
//! * ingress: untagged traffic from the source host is tagged with its
//!   chain id and sent to the first element (the DPI instance, which the
//!   controller inserts "prior to any middlebox that requires DPI");
//! * per element: tagged traffic returning from element *i* goes to
//!   element *i+1* — data packets and dedicated result packets alike,
//!   since both carry the tag;
//! * egress: tagged traffic leaving the last element has its tag popped
//!   and is delivered to the destination host; result packets are dropped
//!   at egress (they are meaningless to hosts).

use crate::flowtable::{Action, FlowMatch, FlowRule, FlowTable, Port};
use crate::switch::Switch;
use parking_lot::Mutex;
use std::sync::Arc;

/// Port layout of the paper's single-switch star.
#[derive(Debug, Clone)]
pub struct StarTopology {
    /// Port towards the traffic source (user host 1).
    pub ingress: Port,
    /// Port towards the traffic sink (user host 2).
    pub egress: Port,
    /// Ports of service elements (DPI instances, middleboxes), by name.
    pub elements: Vec<(String, Port)>,
}

impl StarTopology {
    /// Looks up an element's port by name.
    pub fn port_of(&self, name: &str) -> Option<Port> {
        self.elements
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| *p)
    }
}

/// The TSA: owns a handle to the switch's table and installs steering
/// rules.
#[derive(Debug, Clone)]
pub struct TrafficSteeringApp {
    table: Arc<Mutex<FlowTable>>,
}

/// Rule priorities used by the TSA (leaving room above for overrides,
/// e.g. MCA² heavy-flow diversions).
const PRIO_CHAIN: u16 = 100;
/// Per-flow steering rules sit between the chain defaults and the
/// result-drop guard: specific enough to override the chain's default
/// DPI instance, never able to leak result packets to hosts.
const PRIO_STEER: u16 = 105;
const PRIO_EGRESS_RESULT_DROP: u16 = 110;

impl TrafficSteeringApp {
    /// A TSA controlling `switch` directly.
    pub fn new(switch: &Switch) -> TrafficSteeringApp {
        TrafficSteeringApp {
            table: switch.table(),
        }
    }

    /// A TSA programming through the SDN controller — the layering of
    /// Figure 5, where the TSA is an application on the controller.
    pub fn via_controller(
        ctrl: &crate::controller::SdnController,
        dpid: crate::controller::DatapathId,
    ) -> Result<TrafficSteeringApp, crate::controller::SdnError> {
        Ok(TrafficSteeringApp {
            table: ctrl.table(dpid)?,
        })
    }

    /// Installs the rules of one policy chain: traffic entering at
    /// `ingress` is tagged `chain_id`, visits `via` ports in order, then
    /// leaves untagged at `egress`.
    ///
    /// The first entry of `via` should be the DPI service instance — the
    /// §4 invariant that the DPI service precedes every middlebox that
    /// consumes its results.
    pub fn install_chain(&self, chain_id: u16, ingress: Port, via: &[Port], egress: Port) {
        let mut t = self.table.lock();
        // Ingress: tag and go to the first element (or straight to egress
        // for an empty chain).
        let first_hop = via.first().copied().unwrap_or(egress);
        let mut ingress_actions = vec![Action::PushTag(chain_id), Action::Output(first_hop)];
        if via.is_empty() {
            ingress_actions = vec![Action::Output(egress)];
        }
        t.install(FlowRule {
            priority: PRIO_CHAIN,
            m: FlowMatch::any().from_port(ingress).untagged(),
            actions: ingress_actions,
        });
        // Element i → element i+1.
        for (i, &port) in via.iter().enumerate() {
            let next = via.get(i + 1).copied();
            let actions = match next {
                Some(n) => vec![Action::Output(n)],
                None => vec![Action::PopTag, Action::Output(egress)],
            };
            t.install(FlowRule {
                priority: PRIO_CHAIN,
                m: FlowMatch::any().from_port(port).with_tag(chain_id),
                actions,
            });
        }
        // Result packets must not leak to the destination host: drop any
        // result body that would leave via the last element's egress rule.
        if let Some(&last) = via.last() {
            t.install(FlowRule {
                priority: PRIO_EGRESS_RESULT_DROP,
                m: FlowMatch {
                    in_port: Some(last),
                    vlan_vid: Some(chain_id),
                    tagged: Some(true),
                    body_is_result: Some(true),
                    ..FlowMatch::default()
                },
                actions: vec![Action::Drop],
            });
        }
    }

    /// Installs the rules of one policy chain served by a *fleet* of DPI
    /// instances: traffic entering at `ingress` is tagged `chain_id` and
    /// sent to `dpi_ports[0]` by default (per-flow
    /// [`TrafficSteeringApp::steer_flow`] rules override the choice of
    /// instance), tagged traffic returning from *any* instance port
    /// proceeds to the first middlebox in `middleboxes` (or straight to
    /// `egress`), and the middlebox path and result-packet guard match
    /// [`TrafficSteeringApp::install_chain`].
    pub fn install_chain_fleet(
        &self,
        chain_id: u16,
        ingress: Port,
        dpi_ports: &[Port],
        middleboxes: &[Port],
        egress: Port,
    ) {
        assert!(
            !dpi_ports.is_empty(),
            "a fleet chain needs at least one DPI instance"
        );
        let mut t = self.table.lock();
        // Ingress default: tag and go to the first instance.
        t.install(FlowRule {
            priority: PRIO_CHAIN,
            m: FlowMatch::any().from_port(ingress).untagged(),
            actions: vec![Action::PushTag(chain_id), Action::Output(dpi_ports[0])],
        });
        // Any instance → first middlebox (or egress for an empty chain).
        let after_dpi = middleboxes.first().copied();
        for &dp in dpi_ports {
            let actions = match after_dpi {
                Some(mb) => vec![Action::Output(mb)],
                None => vec![Action::PopTag, Action::Output(egress)],
            };
            t.install(FlowRule {
                priority: PRIO_CHAIN,
                m: FlowMatch::any().from_port(dp).with_tag(chain_id),
                actions,
            });
        }
        // Middlebox i → middlebox i+1, last → egress untagged.
        for (i, &port) in middleboxes.iter().enumerate() {
            let next = middleboxes.get(i + 1).copied();
            let actions = match next {
                Some(n) => vec![Action::Output(n)],
                None => vec![Action::PopTag, Action::Output(egress)],
            };
            t.install(FlowRule {
                priority: PRIO_CHAIN,
                m: FlowMatch::any().from_port(port).with_tag(chain_id),
                actions,
            });
        }
        // Result packets never reach hosts: guard the ports whose chain
        // rules point at the egress.
        let result_guard_ports: Vec<Port> = match middleboxes.last() {
            Some(&last) => vec![last],
            None => dpi_ports.to_vec(),
        };
        for port in result_guard_ports {
            t.install(FlowRule {
                priority: PRIO_EGRESS_RESULT_DROP,
                m: FlowMatch {
                    in_port: Some(port),
                    vlan_vid: Some(chain_id),
                    tagged: Some(true),
                    body_is_result: Some(true),
                    ..FlowMatch::default()
                },
                actions: vec![Action::Drop],
            });
        }
    }

    /// Pins one flow of a chain to a specific DPI instance port: an
    /// override rule matching the flow's 4-tuple at ingress. Replaces any
    /// previous steering rule for the same flow, so re-steering a single
    /// flow is this same call with a new port.
    pub fn steer_flow(
        &self,
        chain_id: u16,
        ingress: Port,
        flow: &dpi_packet::FlowKey,
        dpi_port: Port,
    ) {
        let m = FlowMatch::any()
            .from_port(ingress)
            .untagged()
            .for_flow(flow);
        let mut t = self.table.lock();
        t.remove_where(|r| r.priority == PRIO_STEER && r.m == m);
        t.install(FlowRule {
            priority: PRIO_STEER,
            m,
            actions: vec![Action::PushTag(chain_id), Action::Output(dpi_port)],
        });
    }

    /// Re-steers every ingress-side rule (per-flow steering rules and
    /// chain defaults) that currently sends traffic to `from_dpi`, so it
    /// sends to `to_dpi` instead — the failover action the controller
    /// takes when an instance is declared dead (§4: "re-steers its flows
    /// to surviving instances"). Returns how many rules were rewritten.
    pub fn resteer(&self, from_dpi: Port, to_dpi: Port) -> usize {
        let mut rewritten = 0;
        self.table.lock().map_rules(|r| {
            // Only ingress-side rules (they match untagged traffic);
            // rules *from* the dead instance's port are left alone — no
            // traffic will arrive from it.
            if r.m.tagged != Some(false) {
                return;
            }
            for a in &mut r.actions {
                if *a == Action::Output(from_dpi) {
                    *a = Action::Output(to_dpi);
                    rewritten += 1;
                }
            }
        });
        rewritten
    }

    /// Number of per-flow steering rules currently directing traffic to
    /// `dpi_port` (diagnostics for failover tests).
    pub fn steered_to(&self, dpi_port: Port) -> usize {
        self.table
            .lock()
            .rules()
            .iter()
            .filter(|r| r.priority == PRIO_STEER && r.actions.contains(&Action::Output(dpi_port)))
            .count()
    }

    /// Removes a chain's rules (chain re-routing, instance migration —
    /// §4.3's collaboration between DPI controller and TSA).
    pub fn remove_chain(&self, chain_id: u16) -> usize {
        self.table.lock().remove_where(|r| {
            r.m.vlan_vid == Some(chain_id)
                || r.actions
                    .iter()
                    .any(|a| matches!(a, Action::PushTag(id) if *id == chain_id))
        })
    }

    /// Diverts a chain's tagged traffic arriving from `from` to a
    /// different port (e.g. a dedicated MCA² instance) with an
    /// override-priority rule. Returns a priority that can be removed
    /// later via [`TrafficSteeringApp::remove_diversions`].
    pub fn divert(&self, chain_id: u16, from: Port, to: Port) {
        self.table.lock().install(FlowRule {
            priority: PRIO_EGRESS_RESULT_DROP + 10,
            m: FlowMatch::any().from_port(from).with_tag(chain_id),
            actions: vec![Action::Output(to)],
        });
    }

    /// Removes every diversion rule.
    pub fn remove_diversions(&self) -> usize {
        self.table
            .lock()
            .remove_where(|r| r.priority == PRIO_EGRESS_RESULT_DROP + 10)
    }

    /// Number of installed rules (diagnostics).
    pub fn rule_count(&self) -> usize {
        self.table.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Network, Node, PortId, SinkHost};
    use dpi_packet::ipv4::IpProtocol;
    use dpi_packet::packet::flow;
    use dpi_packet::{MacAddr, Packet};

    /// A service element that stamps nothing and bounces packets back on
    /// the port they came from (like a middlebox host with one NIC).
    struct Bounce;
    impl Node for Bounce {
        fn on_packet(&mut self, packet: Packet, port: PortId) -> Vec<(PortId, Packet)> {
            vec![(port, packet)]
        }
    }

    fn pkt() -> Packet {
        Packet::tcp(
            MacAddr::local(1),
            MacAddr::local(2),
            flow([10, 0, 0, 1], 9999, [10, 0, 0, 2], 80, IpProtocol::Tcp),
            0,
            b"through the chain".to_vec(),
        )
    }

    /// Builds the paper's star: switch port 0=src host, 1=dst host,
    /// 2=element A, 3=element B.
    fn star() -> (
        Network,
        crate::network::NodeId,
        SinkHost,
        TrafficSteeringApp,
    ) {
        let mut net = Network::new(1000);
        let sw = Switch::new("s1");
        let tsa = TrafficSteeringApp::new(&sw);
        let sw_id = net.add_node(Box::new(sw));
        let sink = SinkHost::new();
        let dst = net.add_node(Box::new(sink.clone()));
        let a = net.add_node(Box::new(Bounce));
        let b = net.add_node(Box::new(Bounce));
        net.link(sw_id, 1, dst, 0);
        net.link(sw_id, 2, a, 0);
        net.link(sw_id, 3, b, 0);
        (net, sw_id, sink, tsa)
    }

    #[test]
    fn chain_traverses_elements_and_arrives_untagged() {
        let (mut net, sw, sink, tsa) = star();
        tsa.install_chain(7, 0, &[2, 3], 1);
        net.inject(sw, 0, pkt());
        net.run();
        let received = sink.received();
        assert_eq!(received.len(), 1);
        assert!(received[0].vlan.is_empty(), "tag must be popped");
        assert_eq!(received[0].payload().unwrap(), b"through the chain");
    }

    #[test]
    fn empty_chain_goes_straight_to_egress() {
        let (mut net, sw, _dst, tsa) = star();
        tsa.install_chain(9, 0, &[], 1);
        net.inject(sw, 0, pkt());
        let delivered = net.run();
        assert!(delivered >= 2);
        assert!(net.dropped_at_edge.is_empty());
    }

    #[test]
    fn remove_chain_uninstalls_rules() {
        let (_net, _sw, _dst, tsa) = star();
        tsa.install_chain(7, 0, &[2, 3], 1);
        let n = tsa.rule_count();
        assert!(n >= 3);
        assert_eq!(tsa.remove_chain(7), n);
        assert_eq!(tsa.rule_count(), 0);
    }

    #[test]
    fn diversion_overrides_chain_rules() {
        let (_net, _sw, _dst, tsa) = star();
        tsa.install_chain(7, 0, &[2, 3], 1);
        tsa.divert(7, 2, 3);
        assert!(tsa.rule_count() > 3);
        assert_eq!(tsa.remove_diversions(), 1);
    }

    #[test]
    fn fleet_chain_accepts_traffic_from_any_instance_port() {
        // Star with two "DPI instances" (Bounce at ports 2 and 3) and no
        // middleboxes; both paths must deliver untagged to the sink.
        let (mut net, sw, sink, tsa) = star();
        tsa.install_chain_fleet(7, 0, &[2, 3], &[], 1);
        // Default path goes via port 2.
        net.inject(sw, 0, pkt());
        net.run();
        assert_eq!(sink.received().len(), 1);
        // Steer the flow to instance at port 3: still delivered.
        let f = pkt().flow_key().unwrap();
        tsa.steer_flow(7, 0, &f, 3);
        assert_eq!(tsa.steered_to(3), 1);
        net.inject(sw, 0, pkt());
        net.run();
        assert_eq!(sink.received().len(), 2);
        assert!(sink.received().iter().all(|p| p.vlan.is_empty()));
    }

    #[test]
    fn steer_flow_replaces_previous_rule_and_resteer_rewrites() {
        let (_net, _sw, _dst, tsa) = star();
        tsa.install_chain_fleet(7, 0, &[2, 3], &[], 1);
        let f = pkt().flow_key().unwrap();
        tsa.steer_flow(7, 0, &f, 2);
        tsa.steer_flow(7, 0, &f, 2);
        assert_eq!(tsa.steered_to(2), 1, "same flow must not stack rules");
        // Failover: everything aimed at port 2 (the steer rule and the
        // chain's default ingress rule) moves to port 3.
        let rewritten = tsa.resteer(2, 3);
        assert_eq!(rewritten, 2);
        assert_eq!(tsa.steered_to(2), 0);
        assert_eq!(tsa.steered_to(3), 1);
    }

    #[test]
    fn fleet_result_packets_do_not_reach_hosts_without_middleboxes() {
        let (mut net, sw, sink, tsa) = star();
        tsa.install_chain_fleet(7, 0, &[2], &[], 1);
        // Hand-craft a tagged result packet coming back from the
        // instance port, as a DPI node would emit it.
        let report = dpi_packet::report::ResultPacket {
            packet_id: 1,
            generation: 0,
            flow: pkt().flow_key().unwrap(),
            flow_offset: 0,
            reports: Vec::new(),
        };
        let mut rp = Packet::result(MacAddr::local(9), MacAddr::local(2), report);
        rp.push_chain_tag(7).unwrap();
        net.inject(sw, 2, rp);
        net.run();
        assert!(sink.received().is_empty(), "result packet must be dropped");
    }

    #[test]
    fn tsa_via_controller_programs_the_same_table() {
        let ctrl = crate::controller::SdnController::new();
        let sw = Switch::new("s1");
        ctrl.connect(3, &sw).unwrap();
        let tsa = TrafficSteeringApp::via_controller(&ctrl, 3).unwrap();
        tsa.install_chain(7, 0, &[2], 1);
        assert_eq!(ctrl.rule_count(3).unwrap(), tsa.rule_count());
        assert!(TrafficSteeringApp::via_controller(&ctrl, 99).is_err());
    }

    #[test]
    fn topology_port_lookup() {
        let topo = StarTopology {
            ingress: 0,
            egress: 1,
            elements: vec![("dpi".into(), 2), ("ids".into(), 3)],
        };
        assert_eq!(topo.port_of("dpi"), Some(2));
        assert_eq!(topo.port_of("nope"), None);
    }
}
