//! Failure injection: what happens when pieces of the result-delivery
//! machinery misbehave. The system's stance is fail-open for data
//! (packets keep flowing) and fail-closed for decisions that depend on
//! missing results (no false blocks).

use dpi_service::ac::MiddleboxId;
use dpi_service::core::chaos::FaultPlan;
use dpi_service::core::instance::ScanEngine;
use dpi_service::core::{DpiInstance, InstanceConfig, MiddleboxProfile, RuleSpec};
use dpi_service::middlebox::{
    DpiServiceNode, MbAction, MiddleboxNode, ResultsDelivery, RuleLogic, ServiceMiddlebox,
};
use dpi_service::packet::ipv4::IpProtocol;
use dpi_service::packet::packet::flow;
use dpi_service::packet::report::ResultPacket;
use dpi_service::packet::{MacAddr, Packet};
use dpi_service::sdn::Node;
use dpi_service::ShardedScanner;
use std::sync::Arc;
use std::time::Duration;

const MB: MiddleboxId = MiddleboxId(1);

fn dpi() -> DpiInstance {
    DpiInstance::new(
        InstanceConfig::new()
            .with_middlebox(
                MiddleboxProfile::stateless(MB),
                vec![RuleSpec::exact(b"match-me-sig".to_vec())],
            )
            .with_chain(5, vec![MB]),
    )
    .unwrap()
}

fn tagged(payload: &[u8], port: u16) -> Packet {
    let f = flow([1, 1, 1, 1], port, [2, 2, 2, 2], 80, IpProtocol::Tcp);
    let mut p = Packet::tcp(MacAddr::local(1), MacAddr::local(2), f, 0, payload.to_vec());
    p.push_chain_tag(5).unwrap();
    p
}

#[test]
fn lost_result_packets_fail_open_at_buffer_capacity() {
    let (mut dpi_node, _h) =
        DpiServiceNode::new(dpi(), ResultsDelivery::DedicatedPacket, MacAddr::local(9));
    let mb = ServiceMiddlebox::new(MB, "ids", RuleLogic::one_per_pattern(1, MbAction::Alert));
    let (mut mb_node, handle) = MiddleboxNode::with_buffer_capacity(mb, true, 2);

    // Three marked packets whose result packets we "lose" on the way.
    let mut released = Vec::new();
    for port in [1000u16, 1001, 1002] {
        let emitted = dpi_node.on_packet(tagged(b"a match-me-sig b", port), 0);
        assert_eq!(emitted.len(), 2, "data + result emitted");
        // Deliver only the data packet; drop the result.
        released.extend(mb_node.on_packet(emitted[0].1.clone(), 0));
    }
    // Capacity 2: the third data packet forces the oldest out, unpaired.
    assert_eq!(released.len(), 1, "fail-open release at capacity");
    // The unpaired packet was processed with no matches (fail-closed on
    // match-dependent decisions): it was forwarded, no rule fired on it.
    let stats = handle.lock().stats();
    assert_eq!(stats.packets, 1);
    assert_eq!(stats.matches, 0);
}

#[test]
fn duplicated_result_packets_do_not_double_fire() {
    let (mut dpi_node, _h) =
        DpiServiceNode::new(dpi(), ResultsDelivery::DedicatedPacket, MacAddr::local(9));
    let mb = ServiceMiddlebox::new(MB, "ids", RuleLogic::one_per_pattern(1, MbAction::Alert));
    let (mut mb_node, handle) = MiddleboxNode::new(mb, true);

    let emitted = dpi_node.on_packet(tagged(b"one match-me-sig", 2000), 0);
    let data = emitted[0].1.clone();
    let result = emitted[1].1.clone();
    // Data, then the result twice (a retransmitting network element).
    mb_node.on_packet(data, 0);
    mb_node.on_packet(result.clone(), 0);
    mb_node.on_packet(result, 0);
    let stats = handle.lock().stats();
    // One data packet processed once; the duplicate result waits for a
    // data packet that never comes (and would age out at capacity).
    assert_eq!(stats.packets, 1);
    assert_eq!(stats.rules_fired, 1);
}

#[test]
fn unknown_chain_packets_are_dropped_by_the_service_not_crashed_on() {
    let (mut dpi_node, _h) =
        DpiServiceNode::new(dpi(), ResultsDelivery::DedicatedPacket, MacAddr::local(9));
    let mut p = tagged(b"payload", 3000);
    p.pop_chain_tag();
    p.push_chain_tag(999).unwrap(); // a chain this instance does not serve
    assert!(dpi_node.on_packet(p, 0).is_empty());
    assert_eq!(dpi_node.error_count(), 1);
}

#[test]
fn corrupted_result_packet_bytes_do_not_poison_the_middlebox() {
    use dpi_service::packet::packet::PacketBody;
    let (mut dpi_node, _h) =
        DpiServiceNode::new(dpi(), ResultsDelivery::DedicatedPacket, MacAddr::local(9));
    let emitted = dpi_node.on_packet(tagged(b"xx match-me-sig", 4000), 0);
    let result = emitted[1].1.clone();

    // Serialize, corrupt a report byte, reparse: the packet layer rejects
    // it (or yields a different-but-valid report), so the wire path can
    // never deliver a half-garbage structure to the middlebox.
    let mut bytes = result.to_bytes();
    let n = bytes.len();
    bytes[n - 1] ^= 0xff;
    match Packet::parse(&bytes) {
        Err(_) => {}
        Ok(p) => {
            // If it still parses, it must be a structurally valid result.
            assert!(matches!(p.body, PacketBody::Result(_) | PacketBody::Raw(_)));
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded-pipeline failure injection: the same fail-open/fail-closed
// stance must hold when scanning runs on the parallel data plane, at
// every worker count.
// ---------------------------------------------------------------------------

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn engine() -> Arc<ScanEngine> {
    Arc::new(
        ScanEngine::new(
            InstanceConfig::new()
                .with_middlebox(
                    MiddleboxProfile::stateless(MB),
                    vec![RuleSpec::exact(b"match-me-sig".to_vec())],
                )
                .with_chain(5, vec![MB]),
        )
        .unwrap(),
    )
}

/// A batch spread over many flows (so every shard gets work); every third
/// packet carries the signature.
fn batch(n: usize) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            let payload: &[u8] = if i % 3 == 0 {
                b"xx match-me-sig yy"
            } else {
                b"nothing to see here"
            };
            tagged(payload, 1000 + i as u16)
        })
        .collect()
}

/// Reference verdicts: a sequential instance fed the same batch.
fn sequential_results(engine: &Arc<ScanEngine>, packets: &[Packet]) -> Vec<ResultPacket> {
    let mut seq = DpiInstance::from_engine(engine.clone());
    let mut out = Vec::new();
    for p in packets {
        let mut c = p.clone();
        if let Some(r) = seq.inspect(&mut c).unwrap() {
            out.push(r);
        }
    }
    out
}

/// Strips the (encounter-order) packet id so verdicts can be compared
/// across runs that lost different packets.
fn unnumbered(mut r: ResultPacket) -> ResultPacket {
    r.packet_id = 0;
    r
}

/// Asserts `delivered` is an ordered subsequence of `reference`, each
/// element byte-identical once ids are stripped.
fn assert_verdict_subsequence(delivered: &[ResultPacket], reference: &[ResultPacket]) {
    let mut it = reference.iter().map(|r| unnumbered(r.clone()));
    for d in delivered {
        let d = unnumbered(d.clone());
        assert!(
            it.any(|r| r == d),
            "delivered verdict {d:?} not found (in order) in the sequential reference"
        );
    }
}

#[test]
fn stalled_shard_is_condemned_and_delivered_verdicts_match_sequential() {
    let engine = engine();
    let packets = batch(48);
    let reference = sequential_results(&engine, &packets);
    assert!(!reference.is_empty());

    for workers in WORKER_COUNTS {
        let chaos = FaultPlan::new(21).stall_shard(0, 1, 60).start();
        let mut scanner =
            ShardedScanner::new(engine.clone(), workers).with_watchdog(Duration::from_millis(10));
        scanner.attach_chaos(chaos.clone());

        let mut copy = packets.clone();
        let delivered = scanner.inspect_batch(&mut copy);

        // The watchdog condemned the stalled shard and rebuilt it.
        assert_eq!(scanner.total_restarts(), 1, "workers={workers}");
        assert!(scanner.total_lost_scans() > 0, "workers={workers}");
        assert!(
            delivered.len() < reference.len(),
            "workers={workers}: the stalled shard's tail is lost"
        );
        // Fail-closed for verdicts: whatever was delivered is
        // byte-identical to the sequential path; nothing was fabricated.
        assert_verdict_subsequence(&delivered, &reference);
        assert!(chaos
            .fault_log()
            .iter()
            .any(|l| l.contains("watchdog deadline")));

        // The rebuilt shard scans the next batch in full.
        let mut copy = batch(48);
        let healed = scanner.inspect_batch(&mut copy);
        assert_eq!(healed.len(), reference.len(), "workers={workers}");
        assert_verdict_subsequence(&healed, &reference);
    }
}

#[test]
fn panicked_shard_loses_only_its_own_packets_at_every_worker_count() {
    let engine = engine();
    let packets = batch(48);
    let reference = sequential_results(&engine, &packets);

    for workers in WORKER_COUNTS {
        let chaos = FaultPlan::new(22).panic_shard(0, 2).start();
        let mut scanner = ShardedScanner::new(engine.clone(), workers);
        scanner.attach_chaos(chaos);

        let mut copy = packets.clone();
        let delivered = scanner.inspect_batch(&mut copy);
        assert_eq!(scanner.total_restarts(), 1, "workers={workers}");
        assert_verdict_subsequence(&delivered, &reference);
        if workers > 1 {
            // Other shards were unaffected: at least their matches came
            // through.
            assert!(!delivered.is_empty(), "workers={workers}");
        }
    }
}

#[test]
fn lost_and_duplicated_results_from_the_pipeline_never_double_fire() {
    let engine = engine();
    let packets = batch(30);

    // The pipeline's verdicts are identical at every worker count, so
    // the delivery faults below draw identical (seeded) decisions and
    // every observable middlebox stat must agree across {1, 2, 8}.
    let mut observed = Vec::new();
    for workers in WORKER_COUNTS {
        let mut scanner = ShardedScanner::new(engine.clone(), workers);
        let mut copy = packets.clone();
        let results = scanner.inspect_batch(&mut copy);

        let chaos = FaultPlan::new(33)
            .drop_result_packets(0.4)
            .duplicate_result_packets(0.3)
            .start();
        let mb = ServiceMiddlebox::new(MB, "ids", RuleLogic::one_per_pattern(1, MbAction::Alert));
        let (mut mb_node, handle) = MiddleboxNode::new(mb, true);

        // Deliver each data packet, then its result (result packets only
        // exist for matched data): chaos may drop or duplicate results.
        let mut by_id: std::collections::HashMap<u32, &ResultPacket> =
            results.iter().map(|r| (r.packet_id, r)).collect();
        let mut delivered_results = 0u64;
        let mut released = 0usize;
        let mut next_id = 0u32;
        for p in &copy {
            released += mb_node.on_packet(p.clone(), 0).len();
            if p.has_match_mark() {
                next_id += 1;
                let r = by_id.remove(&next_id).expect("marked packet has a result");
                if chaos.drop_result("pipeline delivery") {
                    continue; // lost on the wire
                }
                delivered_results += 1;
                let rp = Packet::result(MacAddr::local(9), MacAddr::local(2), r.clone());
                released += mb_node.on_packet(rp.clone(), 0).len();
                if chaos.duplicate_result("pipeline delivery") {
                    released += mb_node.on_packet(rp, 0).len();
                }
            }
        }
        let stats = handle.lock().stats();
        // Fail-closed: a rule fires once per *delivered* result — never
        // for a lost one, never twice for a duplicate.
        assert_eq!(stats.rules_fired, delivered_results, "workers={workers}");
        assert!(delivered_results < results.len() as u64, "some were lost");
        observed.push((stats, released, delivered_results));
    }
    assert_eq!(observed[0], observed[1], "workers 1 vs 2 agree");
    assert_eq!(observed[0], observed[2], "workers 1 vs 8 agree");
}
