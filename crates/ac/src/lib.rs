//! # dpi-ac
//!
//! Aho-Corasick multi-pattern string matching, built from scratch for the
//! *DPI as a Service* (CoNEXT 2014) reproduction.
//!
//! The centerpiece is the paper's §5.1 construction: pattern sets from
//! *several middleboxes* are merged into a **single** automaton so each
//! packet is scanned once, no matter how many middleboxes need the results:
//!
//! 1. A goto trie is built over the union `⋃ Pᵢ` of all pattern sets;
//!    patterns appearing in more than one set share one accepting state.
//! 2. Failure links are added breadth-first and the automaton is flattened
//!    into a full-table DFA (one 256-entry row per state) — the "de-facto
//!    standard for contemporary NIDS" representation (§3).
//! 3. State identifiers are remapped so the `f` accepting states are
//!    exactly `{0, …, f−1}` — "the state identifier in the DFA is
//!    meaningless; we use this degree of freedom" — which makes the
//!    accepting-state test a single compare (`state < f`) and lets the
//!    match table be a direct-access array.
//! 4. Each accepting state carries (a) a **bitmap** of the middlebox
//!    identifiers that registered any of its patterns, so a single
//!    bitwise-AND against the packet's active-middlebox bitmap decides
//!    whether the match table must be consulted at all, and (b) a sorted
//!    list of `(middlebox id, pattern id)` pairs. Patterns that are proper
//!    suffixes of other patterns are propagated along failure links, as the
//!    paper requires ("if we have a pattern i (e.g., DEF) that is a suffix
//!    of another pattern j (e.g., ABCDEF), we should add all the pairs
//!    corresponding to pattern i also to the j-th entry").
//!
//! Two automaton representations are provided:
//!
//! * [`FullAc`] — the full-table DFA: fastest, O(1) per byte,
//!   large (1 KiB per state).
//! * [`SparseAc`] — goto map + failure links: compact but
//!   may follow several failure links per byte. This is the space/time
//!   tradeoff the MCA² design exploits for heavy traffic (§4.3.1, paper ref.\[9\]).
//!
//! Both implement [`Automaton`] and produce identical match streams; the
//! property tests in this crate verify that against a naive reference
//! matcher.

pub mod builder;
pub mod combined;
pub mod compact;
pub mod full;
pub mod kernel;
pub mod naive;
mod prefilter;
pub mod prefiltered;
pub mod sparse;
pub mod trie;

pub use builder::{CombinedAcBuilder, PatternSet, PatternSetDelta};
pub use combined::CombinedAc;
pub use compact::CompactAc;
pub use full::FullAc;
pub use kernel::{DepthSamples, KernelKind, ScanKernel};
pub use prefiltered::{PrefilterStats, PrefilteredAc};
pub use sparse::SparseAc;

use serde::{Deserialize, Serialize};

/// Identifier of a registered middlebox *type* (§4.1: "we may assume
/// identifiers are sequential numbers in {1,…,n}" — this crate allows any
/// `u16`; the bitmap fast path covers identifiers below 64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MiddleboxId(pub u16);

/// A pattern's identifier *within its middlebox's rule set*. The DPI
/// service reports matches using these middlebox-local identifiers so each
/// middlebox can resolve them against its own rules (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PatternId(pub u16);

/// One entry of the match table: "a sorted list of ⟨middlebox id, pattern
/// id⟩ pairs" (§5.1), extended with the pattern length, which §5.2's
/// stateless-deletion rule needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MatchEntry {
    /// The middlebox that registered the pattern.
    pub middlebox: MiddleboxId,
    /// The pattern's identifier within that middlebox's set.
    pub pattern: PatternId,
    /// Length of the pattern in bytes.
    pub len: u16,
}

/// Builds the bit for `id` in an active-middlebox bitmap. Identifiers ≥ 63
/// conservatively share bit 63, so the bitmap test can yield false
/// positives (forcing a match-table check) but never false negatives.
pub fn bitmap_bit(id: MiddleboxId) -> u64 {
    1u64 << (id.0.min(63))
}

/// Builds an active-set bitmap from a list of middlebox ids.
pub fn bitmap_of(ids: &[MiddleboxId]) -> u64 {
    ids.iter().copied().map(bitmap_bit).fold(0, |a, b| a | b)
}

/// A DFA state handle. `FullAc` guarantees accepting states are
/// `0..accepting_count()`.
pub type StateId = u32;

/// Common interface over the two automaton representations.
///
/// A scan runs `state = step(state, byte)` per input byte; after each step
/// the caller checks [`Automaton::is_accepting`] (for [`FullAc`] this is
/// the single-compare `state < f` test of §5.1) and, if the bitmap test
/// passes, reads the match-table entries.
pub trait Automaton {
    /// The initial (root) state.
    fn start(&self) -> StateId;

    /// Advances by one input byte.
    fn step(&self, state: StateId, byte: u8) -> StateId;

    /// Whether `state` reports at least one pattern.
    fn is_accepting(&self, state: StateId) -> bool;

    /// The middlebox bitmap of an accepting state (0 for others).
    fn bitmap(&self, state: StateId) -> u64;

    /// The match-table entries of an accepting state (empty for others),
    /// sorted by `(middlebox, pattern)`.
    fn entries(&self, state: StateId) -> &[MatchEntry];

    /// Number of states.
    fn state_count(&self) -> usize;

    /// Number of accepting states (`f`).
    fn accepting_count(&self) -> usize;

    /// Approximate resident size of the automaton in bytes — the paper's
    /// Table 2 "Space" column.
    fn memory_bytes(&self) -> usize;

    /// Scans `data` starting from `state`, invoking `on_match(end_index,
    /// state)` for every accepting state reached (the match ends at
    /// `data[end_index]`). Returns the final state, which the caller stores
    /// for stateful cross-packet scanning (§5.2).
    fn scan<F: FnMut(usize, StateId)>(&self, state: StateId, data: &[u8], on_match: F) -> StateId;

    /// Convenience: all `(end_index, entry)` pairs in `data` scanning from
    /// the root.
    fn find_all(&self, data: &[u8]) -> Vec<(usize, MatchEntry)>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        self.scan(self.start(), data, |pos, st| {
            for e in self.entries(st) {
                out.push((pos, *e));
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_bit_saturates_at_63() {
        assert_eq!(bitmap_bit(MiddleboxId(0)), 1);
        assert_eq!(bitmap_bit(MiddleboxId(5)), 1 << 5);
        assert_eq!(bitmap_bit(MiddleboxId(63)), 1 << 63);
        assert_eq!(bitmap_bit(MiddleboxId(64)), 1 << 63);
        assert_eq!(bitmap_bit(MiddleboxId(1000)), 1 << 63);
    }

    #[test]
    fn bitmap_of_unions_bits() {
        let b = bitmap_of(&[MiddleboxId(0), MiddleboxId(2), MiddleboxId(2)]);
        assert_eq!(b, 0b101);
    }
}
