//! The Internet checksum (RFC 1071) shared by IPv4, TCP and UDP.

/// Incremental Internet-checksum accumulator.
///
/// Feed it byte slices (and pseudo-header words) in any order that preserves
/// 16-bit alignment per slice, then call [`Checksum::finish`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Creates an accumulator with a zero running sum.
    pub fn new() -> Checksum {
        Checksum::default()
    }

    /// Adds one 16-bit word.
    pub fn add_u16(&mut self, w: u16) {
        self.sum += u32::from(w);
    }

    /// Adds a byte slice, padding an odd trailing byte with zero as RFC 1071
    /// prescribes.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.add_u16(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.add_u16(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Folds the carries and returns the one's-complement checksum.
    pub fn finish(self) -> u16 {
        let mut s = self.sum;
        while s > 0xffff {
            s = (s & 0xffff) + (s >> 16);
        }
        !(s as u16)
    }
}

/// Computes the checksum of a stand-alone buffer (e.g. an IPv4 header with
/// its checksum field zeroed).
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Computes a TCP/UDP checksum including the IPv4 pseudo-header.
pub fn l4_checksum(src: [u8; 4], dst: [u8; 4], protocol: u8, segment: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(&src);
    c.add_bytes(&dst);
    c.add_u16(u16::from(protocol));
    c.add_u16(segment.len() as u16);
    c.add_bytes(segment);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The classic worked example from RFC 1071 §3.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold -> 0xddf2
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        // [0x01, 0x02, 0x03] is summed as 0x0102 + 0x0300.
        assert_eq!(checksum(&[0x01, 0x02, 0x03]), !0x0402u16);
    }

    #[test]
    fn verifying_a_correct_buffer_yields_zero() {
        // Place the computed checksum into the buffer; re-summing the whole
        // buffer must then give 0 (the standard receiver-side check).
        let mut buf = vec![
            0x45, 0x00, 0x00, 0x1c, 0xab, 0xcd, 0x00, 0x00, 0x40, 0x11, 0, 0,
        ];
        let ck = checksum(&buf);
        buf[10..12].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(checksum(&buf), 0);
    }

    #[test]
    fn empty_buffer_checksums_to_all_ones() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn pseudo_header_affects_l4_checksum() {
        let seg = [0u8; 8];
        let a = l4_checksum([10, 0, 0, 1], [10, 0, 0, 2], 6, &seg);
        let b = l4_checksum([10, 0, 0, 1], [10, 0, 0, 3], 6, &seg);
        assert_ne!(a, b);
    }
}
