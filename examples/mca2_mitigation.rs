//! MCA²-style complexity-attack mitigation (§4.3.1, Figure 6).
//!
//! A DPI service instance serves benign HTTP-like traffic until an
//! attacker starts sending *heavy* payloads — near-miss byte streams made
//! of pattern prefixes that drag the automaton into deep, cache-hostile
//! states. The instance's telemetry (deep-state ratio) reaches the DPI
//! controller's stress monitor, which allocates a dedicated instance and
//! migrates the suspicious flows to it — including their in-progress scan
//! state, so cross-packet matches survive the migration.
//!
//! Run with: `cargo run --example mca2_mitigation`

use dpi_service::ac::MiddleboxId;
use dpi_service::controller::{DpiController, Mca2Action, StressMonitor, StressPolicy};
use dpi_service::core::{DpiInstance, InstanceConfig, MiddleboxProfile, RuleSpec};
use dpi_service::packet::ipv4::IpProtocol;
use dpi_service::packet::packet::flow;
use dpi_service::traffic::{heavy_payload, patterns, trace::TraceConfig};

fn main() {
    const IDS: MiddleboxId = MiddleboxId(1);
    let signatures = patterns::snort_like(800, 5);

    let cfg = InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateful(IDS).read_only(),
            RuleSpec::exact_set(&signatures),
        )
        .with_chain(1, vec![IDS]);

    let controller = DpiController::new();
    let regular_id = controller.deploy_instance(vec![1]);
    let mut regular = DpiInstance::new(cfg.clone()).expect("valid config");
    let mut dedicated: Option<(dpi_service::controller::InstanceId, DpiInstance)> = None;

    let mut monitor = StressMonitor::new(StressPolicy::default());
    let benign = TraceConfig {
        packets: 300,
        seed: 11,
        ..TraceConfig::default()
    }
    .generate(&signatures);
    let benign_flow = flow([10, 0, 0, 5], 5555, [10, 0, 0, 9], 80, IpProtocol::Tcp);
    let attack_flow = flow([66, 6, 6, 6], 6666, [10, 0, 0, 9], 80, IpProtocol::Tcp);

    println!("phase 1: benign traffic only");
    for p in &benign[..150] {
        regular.scan_payload(1, Some(benign_flow), p).expect("scan");
    }
    let delta = controller
        .report_telemetry(regular_id, regular.telemetry())
        .expect("instance deployed");
    println!(
        "  deep-state ratio {:.3} → actions: {:?}",
        delta.deep_ratio(),
        monitor.evaluate(&[(regular_id, delta)])
    );

    println!("phase 2: complexity attack begins");
    let mut migrated = false;
    for round in 0..4 {
        for i in 0..50u64 {
            let hp = heavy_payload(&signatures, 1400, round * 100 + i);
            regular
                .scan_payload(1, Some(attack_flow), &hp)
                .expect("scan");
        }
        // A little benign traffic continues alongside.
        for p in &benign[150 + round as usize * 10..160 + round as usize * 10] {
            regular.scan_payload(1, Some(benign_flow), p).expect("scan");
        }
        let delta = controller
            .report_telemetry(regular_id, regular.telemetry())
            .expect("instance deployed");
        let actions = monitor.evaluate(&[(regular_id, delta)]);
        println!(
            "  round {round}: deep-state ratio {:.3} → {:?}",
            delta.deep_ratio(),
            actions
        );
        for action in actions {
            match action {
                Mca2Action::AllocateDedicated { count, .. } => {
                    let id = controller.deploy_instance(vec![1]);
                    controller.set_dedicated(id, true).expect("just deployed");
                    println!("    allocated {count} dedicated instance(s): {id:?}");
                    dedicated = Some((id, DpiInstance::new(cfg.clone()).expect("valid config")));
                }
                Mca2Action::MigrateHeavyFlows { from } => {
                    let (_, ded) = dedicated.as_mut().expect("allocated first");
                    if let Some(exported) = regular.export_flow(&attack_flow) {
                        let offset = exported.offset;
                        ded.import_flow(attack_flow, exported);
                        migrated = true;
                        println!(
                            "    migrated heavy flow {attack_flow} off {from:?} (offset {offset})"
                        );
                    }
                }
                Mca2Action::ReleaseDedicated { .. } => unreachable!("attack is ongoing"),
            }
        }
        if migrated {
            break;
        }
    }
    assert!(migrated, "mitigation must have fired");

    println!("phase 3: heavy flow now served by the dedicated instance");
    let (_, ded) = dedicated.as_mut().expect("allocated");
    for i in 0..50u64 {
        let hp = heavy_payload(&signatures, 1400, 10_000 + i);
        ded.scan_payload(1, Some(attack_flow), &hp).expect("scan");
    }
    for p in &benign[200..300] {
        regular.scan_payload(1, Some(benign_flow), p).expect("scan");
    }
    let regular_delta = controller
        .report_telemetry(regular_id, regular.telemetry())
        .expect("instance deployed");
    println!(
        "  regular instance deep-state ratio back to {:.3}; dedicated instance absorbs {:.3}",
        regular_delta.deep_ratio(),
        ded.telemetry().deep_ratio(),
    );
    let actions = monitor.evaluate(&[(regular_id, regular_delta)]);
    println!("  monitor now says: {actions:?}");
    assert!(matches!(
        actions.first(),
        Some(Mca2Action::ReleaseDedicated { .. })
    ));
    println!("\nattack detected, isolated and survived ✓");
}
