//! # dpi-bench
//!
//! The experiment harness: shared measurement helpers plus one binary per
//! table/figure of the paper's evaluation (§6). See `DESIGN.md` for the
//! experiment index and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! Binaries (run with `cargo run --release -p dpi-bench --bin <name>`):
//!
//! * `fig8_virtualization` — Figure 8: AC throughput vs pattern count,
//!   stand-alone vs concurrent instances.
//! * `table2_combined` — Table 2: Snort1/Snort2/combined space and
//!   throughput.
//! * `fig9_pipeline` — Figure 9(a)/(b): pipelined middleboxes vs combined
//!   virtual DPI.
//! * `fig10_region` — Figure 10(a)/(b): achievable-throughput regions.
//! * `fig11_report_cdf` — Figure 11: match-report size distribution.
//! * `exp_dpi_share` — §1's "DPI slows packet processing by ≥ 2.9×".
//! * `exp_patternset_size` — §4.1's pattern-set transfer-size argument.
//! * `exp_mca2` — §4.3.1: goodput under complexity attack, with and
//!   without MCA² mitigation.
//! * `bench_pipeline` — sequential vs sharded data-plane packets/sec and
//!   FullAc vs CompactAc footprint; writes `BENCH_pipeline.json`.
//! * `bench_update` — live rule-update cost: off-hot-path compile time,
//!   drain-barrier swap pause and per-update transfer bytes; writes
//!   `BENCH_update.json`.

use dpi_ac::{Automaton, CombinedAcBuilder, MiddleboxId, PatternSet};
use dpi_packet::{MacAddr, Packet};
use std::time::Instant;

/// Builds a single-set full-table automaton over `patterns`.
pub fn build_ac(patterns: &[Vec<u8>]) -> dpi_ac::FullAc {
    let mut b = CombinedAcBuilder::new();
    b.add_set(PatternSet::new(MiddleboxId(0), patterns.to_vec()))
        .expect("generated patterns are valid");
    b.build_full()
}

/// Builds a two-set combined automaton (the §5.1 merge).
pub fn build_combined_ac(a: &[Vec<u8>], b: &[Vec<u8>]) -> dpi_ac::FullAc {
    let mut builder = CombinedAcBuilder::new();
    builder
        .add_set(PatternSet::new(MiddleboxId(0), a.to_vec()))
        .expect("generated patterns are valid");
    builder
        .add_set(PatternSet::new(MiddleboxId(1), b.to_vec()))
        .expect("generated patterns are valid");
    builder.build_full()
}

/// Scans the whole trace once with `ac`, returning (seconds, bytes).
pub fn scan_trace<A: Automaton>(ac: &A, trace: &[Vec<u8>]) -> (f64, usize) {
    let bytes: usize = trace.iter().map(|p| p.len()).sum();
    let mut sink = 0u64;
    let t0 = Instant::now();
    for p in trace {
        ac.scan(ac.start(), p, |_, st| {
            sink = sink.wrapping_add(u64::from(st));
        });
    }
    let dt = t0.elapsed().as_secs_f64();
    // Keep the accumulator alive so the scan cannot be optimized away.
    std::hint::black_box(sink);
    (dt, bytes)
}

/// Single-threaded scan throughput in Mbit/s, best of `runs` passes —
/// the least-interference estimator: on a shared host anything slower
/// than the fastest pass measures a neighbor's noise, not the scan.
pub fn throughput_mbps<A: Automaton>(ac: &A, trace: &[Vec<u8>], runs: usize) -> f64 {
    (0..runs.max(1))
        .map(|_| {
            let (dt, bytes) = scan_trace(ac, trace);
            (bytes as f64 * 8.0) / dt / 1e6
        })
        .fold(0.0, f64::max)
}

/// Per-thread average and aggregate throughput when `threads` copies of
/// the scan run concurrently — the "4 VMs" series of Figure 8. Our
/// substitution models VM co-location as cache/memory-bandwidth sharing
/// between threads; on hosts with fewer cores than `threads` the per-VM
/// number degrades to `aggregate / threads` by pure time-slicing, so the
/// *aggregate* is the co-location-overhead signal to read there.
pub fn concurrent_throughput_mbps(
    ac: &(impl Automaton + Sync),
    trace: &[Vec<u8>],
    threads: usize,
) -> (f64, f64) {
    // Wall-clock the whole group: per-thread medians would hide the
    // time-slicing on small hosts.
    let bytes: usize = trace.iter().map(|p| p.len()).sum();
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| s.spawn(|| scan_trace(ac, trace)))
            .collect();
        for h in handles {
            h.join().expect("no panic");
        }
    });
    let dt = t0.elapsed().as_secs_f64();
    let aggregate = (threads * bytes) as f64 * 8.0 / dt / 1e6;
    (aggregate / threads as f64, aggregate)
}

/// Number of cores the host actually offers.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pretty row printer: fixed-width columns for the experiment tables.
pub fn print_row(cols: &[String]) {
    let line: Vec<String> = cols.iter().map(|c| format!("{c:>16}")).collect();
    println!("{}", line.join("  "));
}

/// Formats bytes as MB with two decimals.
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.2} MB", bytes as f64 / 1e6)
}

/// Formats a throughput in Mbit/s.
pub fn fmt_mbps(v: f64) -> String {
    format!("{v:.0} Mbps")
}

/// A ClamAV-scale pattern set shrunk to a bench-friendly footprint: the
/// full 31,827-pattern set at 8–64 bytes builds a ~1 GiB full-table DFA;
/// at `DEFAULT_CLAMAV_BENCH` patterns the structure (binary, unshared
/// prefixes) is identical and the automaton fits CI memory. Set
/// `DPI_BENCH_FULL=1` to run the paper-scale set.
pub fn clamav_bench_set(seed: u64) -> Vec<Vec<u8>> {
    let count = if std::env::var_os("DPI_BENCH_FULL").is_some() {
        dpi_traffic::patterns::CLAMAV_FULL_COUNT
    } else {
        DEFAULT_CLAMAV_BENCH
    };
    dpi_traffic::patterns::clamav_like(count, seed)
}

/// Bench-default ClamAV-like pattern count.
pub const DEFAULT_CLAMAV_BENCH: usize = 6000;

/// The paper's Snort1/Snort2 split sizes (§6.4 / Table 2).
pub const SNORT1_COUNT: usize = 2500;
/// See [`SNORT1_COUNT`].
pub const SNORT2_COUNT: usize = 1856;

/// Chain id used by the pipeline benches.
pub const PIPELINE_CHAIN: u16 = 1;

/// One stateless middlebox carrying `patterns` as exact rules on
/// [`PIPELINE_CHAIN`] — the minimal data-plane config for throughput
/// benches, where cross-packet state would only add noise.
pub fn pipeline_config(patterns: &[Vec<u8>]) -> dpi_core::InstanceConfig {
    dpi_core::InstanceConfig::new()
        .with_middlebox(
            dpi_core::MiddleboxProfile::stateless(MiddleboxId(1)),
            patterns
                .iter()
                .map(|p| dpi_core::RuleSpec::exact(p.clone()))
                .collect(),
        )
        .with_chain(PIPELINE_CHAIN, vec![MiddleboxId(1)])
}

/// Turns trace payloads into chain-tagged TCP packets spread round-robin
/// over `flows` synthetic flows, with per-flow sequence numbers advancing
/// in order (so reassembly sees a clean stream).
pub fn pipeline_batch(payloads: &[Vec<u8>], flows: usize, seed: u64) -> Vec<Packet> {
    let pool = dpi_traffic::flows::flow_pool(flows.max(1), seed);
    let fl = pool.flows();
    let mut seqs = vec![0u32; fl.len()];
    payloads
        .iter()
        .enumerate()
        .map(|(i, payload)| {
            let fi = i % fl.len();
            let mut p = Packet::tcp(
                MacAddr::local(1),
                MacAddr::local(2),
                fl[fi],
                seqs[fi],
                payload.clone(),
            );
            seqs[fi] = seqs[fi].wrapping_add(payload.len() as u32);
            p.push_chain_tag(PIPELINE_CHAIN)
                .expect("fresh packet has tag room");
            p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_traffic::patterns::snort_like;
    use dpi_traffic::trace::TraceConfig;

    #[test]
    fn throughput_is_positive_and_finite() {
        let pats = snort_like(100, 1);
        let ac = build_ac(&pats);
        let trace = TraceConfig {
            packets: 50,
            ..TraceConfig::default()
        }
        .generate(&pats);
        let t = throughput_mbps(&ac, &trace, 1);
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn combined_builder_merges() {
        let a = snort_like(50, 1);
        let b = snort_like(50, 2);
        let ac = build_combined_ac(&a, &b);
        assert!(ac.accepting_count() >= 90); // some dedup possible
    }

    #[test]
    fn benign_trace_is_mostly_clean() {
        // Regression: generated patterns must not be bare protocol
        // keywords, or benign traffic lights up everywhere (the paper's
        // traces have >90% match-free packets).
        use dpi_ac::Automaton;
        let pats = snort_like(4356, 42);
        let ac = build_ac(&pats);
        let trace = TraceConfig {
            packets: 500,
            match_density: 0.0,
            ..TraceConfig::default()
        }
        .generate(&pats);
        let dirty = trace.iter().filter(|p| !ac.find_all(p).is_empty()).count();
        assert!(
            dirty * 50 < trace.len(),
            "{dirty}/{} benign packets matched",
            trace.len()
        );
    }

    #[test]
    fn concurrent_throughput_runs() {
        let pats = snort_like(50, 3);
        let ac = build_ac(&pats);
        let trace = TraceConfig {
            packets: 20,
            ..TraceConfig::default()
        }
        .generate(&[]);
        let (avg, aggr) = concurrent_throughput_mbps(&ac, &trace, 2);
        assert!(avg.is_finite() && avg > 0.0);
        assert!(aggr >= avg);
    }
}
