//! Deterministic fault injection.
//!
//! The paper sells consolidation partly on resilience: when a DPI
//! instance fails, the controller re-steers its flows to surviving
//! instances (§4). Claims like that are only worth anything if every
//! failure scenario is a *reproducible test*, so this module turns
//! failures into data: a [`FaultPlan`] declares which faults happen and
//! when, a seeded PRNG decides the probabilistic ones, and the running
//! [`ChaosEngine`] keeps an ordered fault log so two runs from the same
//! seed are byte-identical — in faults injected, packets lost and
//! telemetry observed.
//!
//! Faults covered:
//!
//! * **kill-instance-at-packet-K** — a DPI instance stops responding
//!   (packets blackholed, heartbeats cease) after its K-th packet;
//! * **stall-shard / panic-shard** — one worker shard of a
//!   [`crate::pipeline::ShardedScanner`] sleeps past its watchdog
//!   deadline, or panics mid-batch;
//! * **drop / duplicate result packets** — each dedicated result packet
//!   is independently lost (or duplicated) with probability p, the
//!   delivery layer retrying with bounded exponential backoff;
//! * **corrupt-rule-update** — the Nth pattern update delivered to a
//!   running instance arrives garbled and must not take the instance
//!   down.
//!
//! The stance throughout is the one `tests/failure_injection.rs`
//! established: **fail-open for data** (packets keep flowing without
//! results), **fail-closed for verdicts** (a lost result can only ever
//! suppress matches, never invent them).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::Duration;

/// A scheduled fault against one worker shard of a sharded scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFault {
    /// The shard sleeps this many milliseconds when it reaches the
    /// trigger packet — long enough to blow a watchdog deadline.
    Stall(u64),
    /// The shard panics when it reaches the trigger packet.
    Panic,
}

/// One shard-fault entry: `fault` fires when shard `shard` processes its
/// `at_packet`-th packet (shard-local ordinal, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFaultSpec {
    /// Target shard index.
    pub shard: usize,
    /// Shard-local packet ordinal that triggers the fault.
    pub at_packet: u64,
    /// What happens.
    pub fault: ShardFault,
}

/// A declarative, seed-driven failure scenario.
///
/// ```
/// use dpi_core::chaos::FaultPlan;
/// let plan = FaultPlan::new(42)
///     .kill_instance_at_packet(1, 10)
///     .drop_result_packets(0.25)
///     .stall_shard(0, 3, 50);
/// let chaos = plan.start();
/// assert!(chaos.instance_alive(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// `(instance index, packet ordinal K)`: the instance blackholes
    /// traffic and stops heartbeating once it has seen K packets.
    pub kill_at: Vec<(usize, u64)>,
    /// Scheduled shard stalls/panics.
    pub shard_faults: Vec<ShardFaultSpec>,
    /// Probability in `[0, 1]` that a dedicated result packet is lost in
    /// delivery (each delivery attempt draws independently).
    pub drop_result_p: f64,
    /// Probability in `[0, 1]` that a delivered result packet is
    /// duplicated by the network.
    pub duplicate_result_p: f64,
    /// 0-based ordinals of rule updates that arrive corrupted.
    pub corrupt_updates: Vec<u64>,
    /// Traffic amplification during burst windows: each source send is
    /// repeated this many times while a burst is active (1 = no burst).
    pub burst_factor: u32,
    /// Source-packet period of the burst cycle (0 = bursts disabled).
    pub burst_period: u64,
    /// How many source packets at the start of each period burst.
    pub burst_len: u64,
    /// Probability in `[0, 1]` that a newly opened flow is replaced by an
    /// adversarial evasion-attempt flow from the `dpi_traffic` generator
    /// (overlap conflicts, ambiguous retransmits, wrap-adjacent sequence
    /// games — DESIGN.md §13).
    pub evasive_flow_p: f64,
}

impl FaultPlan {
    /// An empty plan driven by `seed` — no faults until configured.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Kills DPI instance `instance` after it has processed `k` packets.
    pub fn kill_instance_at_packet(mut self, instance: usize, k: u64) -> FaultPlan {
        self.kill_at.push((instance, k));
        self
    }

    /// Stalls shard `shard` for `millis` ms at its `at_packet`-th packet.
    pub fn stall_shard(mut self, shard: usize, at_packet: u64, millis: u64) -> FaultPlan {
        self.shard_faults.push(ShardFaultSpec {
            shard,
            at_packet,
            fault: ShardFault::Stall(millis),
        });
        self
    }

    /// Panics shard `shard` at its `at_packet`-th packet.
    pub fn panic_shard(mut self, shard: usize, at_packet: u64) -> FaultPlan {
        self.shard_faults.push(ShardFaultSpec {
            shard,
            at_packet,
            fault: ShardFault::Panic,
        });
        self
    }

    /// Drops each result packet with probability `p`.
    pub fn drop_result_packets(mut self, p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "drop probability out of [0,1]");
        self.drop_result_p = p;
        self
    }

    /// Duplicates each delivered result packet with probability `p`.
    pub fn duplicate_result_packets(mut self, p: f64) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplicate probability out of [0,1]"
        );
        self.duplicate_result_p = p;
        self
    }

    /// Corrupts the `n`-th (0-based) rule update delivered to instances.
    pub fn corrupt_rule_update(mut self, n: u64) -> FaultPlan {
        self.corrupt_updates.push(n);
        self
    }

    /// Amplifies source traffic in periodic bursts: for every `period`
    /// source packets, the first `len` are each sent `factor` times.
    /// Drives the overload control path with a seeded, reproducible
    /// 10×-style traffic spike.
    pub fn burst_traffic(mut self, factor: u32, period: u64, len: u64) -> FaultPlan {
        assert!(factor >= 1, "burst factor must be ≥ 1");
        assert!(len <= period, "burst length cannot exceed the burst period");
        self.burst_factor = factor;
        self.burst_period = period;
        self.burst_len = len;
        self
    }

    /// Makes each newly opened flow an adversarial evasion attempt with
    /// probability `p`: the traffic source asks
    /// [`ChaosEngine::next_flow_evasive`] per flow and, on a hit, feeds
    /// the flow's segments from the `dpi_traffic` evasion generator using
    /// the returned per-flow seed.
    pub fn evasive_flows(mut self, p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "evasive probability out of [0,1]");
        self.evasive_flow_p = p;
        self
    }

    /// Starts the scenario: a shareable engine that makes every runtime
    /// fault decision deterministically from the plan's seed.
    pub fn start(self) -> Arc<ChaosEngine> {
        let rng = StdRng::seed_from_u64(self.seed);
        Arc::new(ChaosEngine {
            inner: Mutex::new(ChaosInner {
                rng,
                instance_packets: Vec::new(),
                update_ordinal: 0,
                source_ordinal: 0,
                log: Vec::new(),
                tracer: None,
            }),
            plan: self,
        })
    }
}

#[derive(Debug)]
struct ChaosInner {
    rng: StdRng,
    /// Packets seen per instance index (grows on demand).
    instance_packets: Vec<u64>,
    /// Rule updates delivered so far.
    update_ordinal: u64,
    /// Source packets sent so far (drives the burst cycle).
    source_ordinal: u64,
    /// Ordered human-readable fault events.
    log: Vec<String>,
    /// Optional structured-event tracer: injected faults become trace
    /// events, so a post-mortem can correlate each injection with the
    /// effects other components recorded.
    tracer: Option<Arc<crate::trace::Tracer>>,
}

/// The running side of a [`FaultPlan`]: consulted by the system at each
/// fault point. All decisions and the fault log sit behind one mutex —
/// chaos is control-plane-rate, not per-byte.
#[derive(Debug)]
pub struct ChaosEngine {
    plan: FaultPlan,
    inner: Mutex<ChaosInner>,
}

impl ChaosEngine {
    /// The plan this engine runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Attaches a structured-event tracer: every fault injection is
    /// recorded as a [`crate::trace::TraceSource::Chaos`] event alongside
    /// the human-readable fault log.
    pub fn attach_tracer(&self, tracer: Arc<crate::trace::Tracer>) {
        self.lock().tracer = Some(tracer);
    }

    /// Records a packet arriving at DPI instance `instance` and returns
    /// whether the instance is still alive to process it. The K-th packet
    /// (0-based ordinal K) is the first one lost.
    pub fn on_instance_packet(&self, instance: usize) -> bool {
        let mut g = self.lock();
        if g.instance_packets.len() <= instance {
            g.instance_packets.resize(instance + 1, 0);
        }
        let ordinal = g.instance_packets[instance];
        g.instance_packets[instance] += 1;
        let alive = self.alive_at(instance, ordinal);
        if !alive && self.alive_at(instance, ordinal.saturating_sub(1)) {
            g.log
                .push(format!("instance {instance} died at packet {ordinal}"));
            if let Some(t) = &g.tracer {
                t.record(
                    crate::trace::TraceSource::Chaos,
                    crate::trace::TraceKind::FaultInstanceKilled {
                        instance: instance as u32,
                        at_packet: ordinal,
                    },
                );
            }
        }
        alive
    }

    /// Whether instance `instance` still responds (heartbeats, traffic),
    /// judged against the packets it has absorbed so far.
    pub fn instance_alive(&self, instance: usize) -> bool {
        let g = self.lock();
        let seen = g.instance_packets.get(instance).copied().unwrap_or(0);
        // Dead once the kill ordinal has been reached.
        self.alive_at(instance, seen.saturating_sub(1)) && {
            // A kill at K=0 means dead from the start, even before
            // any packet arrives.
            !self
                .plan
                .kill_at
                .iter()
                .any(|&(i, k)| i == instance && k == 0)
        }
    }

    fn alive_at(&self, instance: usize, ordinal: u64) -> bool {
        !self
            .plan
            .kill_at
            .iter()
            .any(|&(i, k)| i == instance && ordinal >= k)
    }

    /// Draws whether one result-packet delivery attempt is lost.
    pub fn drop_result(&self, context: &str) -> bool {
        if self.plan.drop_result_p <= 0.0 {
            return false;
        }
        let mut g = self.lock();
        let dropped = g.rng.gen_bool(self.plan.drop_result_p);
        if dropped {
            g.log.push(format!("result dropped: {context}"));
        }
        dropped
    }

    /// Draws whether a delivered result packet is duplicated.
    pub fn duplicate_result(&self, context: &str) -> bool {
        if self.plan.duplicate_result_p <= 0.0 {
            return false;
        }
        let mut g = self.lock();
        let dup = g.rng.gen_bool(self.plan.duplicate_result_p);
        if dup {
            g.log.push(format!("result duplicated: {context}"));
        }
        dup
    }

    /// Records one rule update passing through and returns whether this
    /// one arrives corrupted.
    pub fn next_rule_update_corrupted(&self) -> bool {
        let mut g = self.lock();
        let n = g.update_ordinal;
        g.update_ordinal += 1;
        let corrupted = self.plan.corrupt_updates.contains(&n);
        if corrupted {
            g.log.push(format!("rule update {n} corrupted"));
            if let Some(t) = &g.tracer {
                t.record(
                    crate::trace::TraceSource::Chaos,
                    crate::trace::TraceKind::FaultUpdateCorrupted { ordinal: n },
                );
            }
        }
        corrupted
    }

    /// Records one source packet being sent and returns how many copies
    /// the source should emit (1 outside burst windows). The first packet
    /// of each burst window logs and traces the burst start.
    pub fn send_multiplier(&self) -> u32 {
        if self.plan.burst_period == 0 || self.plan.burst_len == 0 || self.plan.burst_factor <= 1 {
            return 1;
        }
        let mut g = self.lock();
        let ordinal = g.source_ordinal;
        g.source_ordinal += 1;
        let phase = ordinal % self.plan.burst_period;
        if phase >= self.plan.burst_len {
            return 1;
        }
        if phase == 0 {
            let factor = self.plan.burst_factor;
            g.log.push(format!(
                "burst x{factor} started at source packet {ordinal}"
            ));
            if let Some(t) = &g.tracer {
                t.record(
                    crate::trace::TraceSource::Chaos,
                    crate::trace::TraceKind::FaultBurstStarted {
                        factor,
                        at_packet: ordinal,
                    },
                );
            }
        }
        self.plan.burst_factor
    }

    /// Draws whether the next newly opened flow is an adversarial evasion
    /// attempt; on a hit, returns the seed for the `dpi_traffic` evasion
    /// generator (so the exact segment stream is replayable from the
    /// fault log and trace alone).
    pub fn next_flow_evasive(&self) -> Option<u64> {
        if self.plan.evasive_flow_p <= 0.0 {
            return None;
        }
        let mut g = self.lock();
        if !g.rng.gen_bool(self.plan.evasive_flow_p) {
            return None;
        }
        let seed: u64 = g.rng.gen();
        g.log
            .push(format!("evasive flow injected (generator seed {seed})"));
        if let Some(t) = &g.tracer {
            t.record(
                crate::trace::TraceSource::Chaos,
                crate::trace::TraceKind::FaultEvasiveFlow { seed },
            );
        }
        Some(seed)
    }

    /// The shard faults to hand a [`crate::pipeline::ShardedScanner`].
    pub fn shard_faults(&self) -> Vec<ShardFaultSpec> {
        self.plan.shard_faults.clone()
    }

    /// Appends an event to the fault log (for components that detect or
    /// react to faults — watchdog trips, re-steers, retries).
    pub fn note(&self, event: impl Into<String>) {
        self.lock().log.push(event.into());
    }

    /// The ordered fault log so far. Two runs of the same plan over the
    /// same traffic produce identical logs — the reproducibility
    /// guarantee chaos tests assert on.
    pub fn fault_log(&self) -> Vec<String> {
        self.lock().log.clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ChaosInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Bounded retry with exponential backoff and seeded jitter, for result
/// packet (re-)delivery. Purely computational — the simulated network has
/// no clock, so the backoff schedule is *recorded* rather than slept —
/// which keeps every retry decision reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total delivery attempts (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a factor
    /// drawn uniformly from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(10),
            jitter: 0.2,
        }
    }
}

/// What a retried delivery did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryOutcome {
    /// Attempts actually made (≥ 1).
    pub attempts: u32,
    /// Whether any attempt succeeded.
    pub delivered: bool,
    /// The backoff scheduled before each retry, in microseconds.
    pub backoffs_us: Vec<u64>,
}

impl RetryPolicy {
    /// Runs `attempt` up to [`RetryPolicy::max_attempts`] times, backing
    /// off exponentially (with jitter from `rng`) between attempts, until
    /// one returns `true`. Attempt numbers passed in are 0-based.
    pub fn run<F: FnMut(u32) -> bool>(&self, rng: &mut StdRng, mut attempt: F) -> RetryOutcome {
        let mut backoffs_us = Vec::new();
        let attempts_cap = self.max_attempts.max(1);
        for n in 0..attempts_cap {
            if attempt(n) {
                return RetryOutcome {
                    attempts: n + 1,
                    delivered: true,
                    backoffs_us,
                };
            }
            if n + 1 < attempts_cap {
                let exp = self
                    .base_backoff
                    .as_micros()
                    .saturating_mul(1u128 << n.min(20))
                    .min(self.max_backoff.as_micros()) as f64;
                let factor = if self.jitter > 0.0 {
                    1.0 + self.jitter * (2.0 * rng.gen::<f64>() - 1.0)
                } else {
                    1.0
                };
                backoffs_us.push((exp * factor) as u64);
            }
        }
        RetryOutcome {
            attempts: attempts_cap,
            delivered: false,
            backoffs_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed| {
            let chaos = FaultPlan::new(seed)
                .drop_result_packets(0.5)
                .duplicate_result_packets(0.3)
                .start();
            let drops: Vec<bool> = (0..64)
                .map(|i| chaos.drop_result(&format!("p{i}")))
                .collect();
            let dups: Vec<bool> = (0..64)
                .map(|i| chaos.duplicate_result(&format!("p{i}")))
                .collect();
            (drops, dups, chaos.fault_log())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0);
    }

    #[test]
    fn kill_at_packet_k_blackholes_from_k_onward() {
        let chaos = FaultPlan::new(1).kill_instance_at_packet(0, 3).start();
        assert!(chaos.instance_alive(0));
        let survivals: Vec<bool> = (0..6).map(|_| chaos.on_instance_packet(0)).collect();
        assert_eq!(survivals, vec![true, true, true, false, false, false]);
        assert!(!chaos.instance_alive(0));
        // An unrelated instance is untouched.
        assert!(chaos.on_instance_packet(1));
        assert!(chaos.instance_alive(1));
        // The death landed in the log exactly once.
        let deaths = chaos
            .fault_log()
            .iter()
            .filter(|e| e.contains("died"))
            .count();
        assert_eq!(deaths, 1);
    }

    #[test]
    fn kill_at_zero_means_dead_on_arrival() {
        let chaos = FaultPlan::new(1).kill_instance_at_packet(2, 0).start();
        assert!(!chaos.instance_alive(2));
        assert!(!chaos.on_instance_packet(2));
    }

    #[test]
    fn corrupt_updates_hit_exact_ordinals() {
        let chaos = FaultPlan::new(3)
            .corrupt_rule_update(1)
            .corrupt_rule_update(3)
            .start();
        let hits: Vec<bool> = (0..5).map(|_| chaos.next_rule_update_corrupted()).collect();
        assert_eq!(hits, vec![false, true, false, true, false]);
    }

    #[test]
    fn burst_traffic_amplifies_a_periodic_window() {
        let chaos = FaultPlan::new(4).burst_traffic(10, 8, 3).start();
        let mults: Vec<u32> = (0..16).map(|_| chaos.send_multiplier()).collect();
        assert_eq!(
            mults,
            vec![10, 10, 10, 1, 1, 1, 1, 1, 10, 10, 10, 1, 1, 1, 1, 1]
        );
        // Each window entry is logged exactly once.
        let starts = chaos
            .fault_log()
            .iter()
            .filter(|e| e.contains("burst"))
            .count();
        assert_eq!(starts, 2);
    }

    #[test]
    fn no_burst_plan_always_multiplies_by_one() {
        let chaos = FaultPlan::new(4).start();
        assert!((0..32).all(|_| chaos.send_multiplier() == 1));
        assert!(chaos.fault_log().is_empty());
    }

    #[test]
    fn zero_probability_draws_nothing_and_logs_nothing() {
        let chaos = FaultPlan::new(9).start();
        assert!(!chaos.drop_result("x"));
        assert!(!chaos.duplicate_result("x"));
        assert!(chaos.next_flow_evasive().is_none());
        assert!(chaos.fault_log().is_empty());
    }

    #[test]
    fn evasive_flows_draw_deterministic_seeds() {
        let run = |seed| {
            let chaos = FaultPlan::new(seed).evasive_flows(0.5).start();
            let draws: Vec<Option<u64>> = (0..64).map(|_| chaos.next_flow_evasive()).collect();
            (draws, chaos.fault_log())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0);
        // Probability 1 hits every draw; every hit is logged.
        let chaos = FaultPlan::new(11).evasive_flows(1.0).start();
        let draws: Vec<Option<u64>> = (0..8).map(|_| chaos.next_flow_evasive()).collect();
        assert!(draws.iter().all(|d| d.is_some()));
        assert_eq!(
            chaos
                .fault_log()
                .iter()
                .filter(|e| e.contains("evasive flow injected"))
                .count(),
            8
        );
    }

    #[test]
    fn retry_backs_off_exponentially_and_is_bounded() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(1),
            jitter: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        // Succeeds on the third attempt.
        let out = policy.run(&mut rng, |n| n == 2);
        assert!(out.delivered);
        assert_eq!(out.attempts, 3);
        assert_eq!(out.backoffs_us, vec![100, 200]);
        // Never succeeds: attempts capped, three backoffs scheduled.
        let out = policy.run(&mut rng, |_| false);
        assert!(!out.delivered);
        assert_eq!(out.attempts, 4);
        assert_eq!(out.backoffs_us, vec![100, 200, 400]);
    }

    #[test]
    fn retry_jitter_stays_within_band_and_is_deterministic() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_micros(1000),
            max_backoff: Duration::from_micros(1000),
            jitter: 0.5,
        };
        let sched = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            policy.run(&mut rng, |_| false).backoffs_us
        };
        for &b in &sched(5) {
            assert!((500..=1500).contains(&b), "backoff {b} out of jitter band");
        }
        assert_eq!(sched(5), sched(5));
    }
}
