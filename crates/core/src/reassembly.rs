//! TCP stream reassembly — "session reconstruction as a service".
//!
//! The paper's conclusion names this as the next shared task: "In future
//! work, we plan to investigate the possibility of also turning other
//! common tasks, such as flow tagging and session reconstruction, into
//! services." Stateful DPI (§5.2) silently assumes in-order payload
//! bytes; on a real network, TCP segments arrive out of order and
//! retransmitted. This module turns a segment stream into the in-order
//! byte stream the scanner needs — once, at the DPI service, instead of
//! once per middlebox.
//!
//! ## Overlap conflicts and evasion
//!
//! When two copies of the same sequence range carry *different* bytes,
//! the segment stream is ambiguous: a receiver that keeps the first copy
//! and one that keeps the second reconstruct different byte streams
//! (*Fingerprinting DPI Devices by Their Ambiguities* builds working
//! evasions from exactly this divergence). Because the reconstruction
//! here is shared by every middlebox, a silent wrong guess would be
//! fleet-wide. Conflicts are therefore **detected** (byte-compared, not
//! assumed equal) and resolved by an explicit [`ConflictPolicy`]:
//!
//! * [`ConflictPolicy::FirstWins`] — the historical Snort-style default:
//!   the first copy of each byte is canonical. Delivery is byte-identical
//!   to the pre-policy behaviour.
//! * [`ConflictPolicy::LastWins`] — a later copy overwrites *pending*
//!   (not yet delivered) bytes. Bytes already handed to the scanner are
//!   committed and cannot be unscanned; a divergent retransmission of
//!   delivered data is recorded as a conflict like any other.
//! * [`ConflictPolicy::RejectFlow`] — fail-closed: the first conflict
//!   quarantines the flow. No further bytes are delivered; the caller
//!   reports the quarantine instead of scanning an arbitrary guess.
//!
//! Under the two permissive policies the *losing* copy of each conflict
//! is stashed ([`StreamReassembler::take_conflict_payloads`]) so the
//! scanner can run it through a stateless shadow scan: a pattern hidden
//! entirely inside the losing interpretation still produces a match, and
//! every conflict is counted and traceable — a miss can never be silent.
//!
//! Divergence is checked on **every** path where two copies of a byte
//! can meet: out-of-order inserts against pending ranges, retransmissions
//! against the delivered history, and an in-order segment against any
//! pending copy it covers (resolved per policy *before* delivery, so the
//! scanner never sees an unverified guess; `drain_pending` additionally
//! re-verifies every stale prefix it trims against the history).
//!
//! Conflict detection against *already delivered* bytes keeps a bounded
//! tail of the delivered stream ([`CONFLICT_HISTORY`] bytes). Divergent
//! retransmissions of older data cannot be byte-verified; the permissive
//! policies treat them as ordinary duplicates (trimmed, uncounted), while
//! `RejectFlow` — whose whole point is refusing to guess — treats an
//! unverifiable overlap as a conflict.
//!
//! The reassembler is otherwise deliberately conservative:
//!
//! * out-of-order segments are buffered (bounded) until the gap fills,
//!   trimmed against already-pending ranges so overlap bytes are stored
//!   and accounted once;
//! * sequence numbers wrap mod 2³², handled with serial-number
//!   comparisons; a distance of exactly 2³¹ — ambiguous under RFC 1982,
//!   both comparisons false — is treated as *future* data everywhere
//!   (buffered, never trimmed or drained as stale), so `push` and
//!   `drain_pending` agree.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// How the reassembler resolves byte-level conflicts between overlapping
/// copies of the same sequence range. Selected per instance via
/// `InstanceConfig::with_conflict_policy` and threaded to every shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ConflictPolicy {
    /// The first copy of each byte is canonical (Snort's default).
    #[default]
    FirstWins,
    /// A later copy overwrites bytes still pending delivery; delivered
    /// bytes are committed.
    LastWins,
    /// Fail closed: the first conflict quarantines the flow — nothing
    /// further is delivered and the caller reports the quarantine.
    RejectFlow,
}

impl ConflictPolicy {
    /// Stable lowercase name ("first_wins", …) for labels and logs.
    pub fn name(self) -> &'static str {
        match self {
            ConflictPolicy::FirstWins => "first_wins",
            ConflictPolicy::LastWins => "last_wins",
            ConflictPolicy::RejectFlow => "reject_flow",
        }
    }
}

/// Delivered-stream tail retained for byte-verifying retransmissions.
/// Bounded so per-flow memory stays flat; divergent retransmissions of
/// data older than this horizon are unverifiable (see module docs).
pub const CONFLICT_HISTORY: usize = 8192;

/// Losing conflict copies stashed for shadow scanning are capped at this
/// many per flow between drains; further conflicts are still counted.
const MAX_CONFLICT_STASH: usize = 32;

/// Comparison of 32-bit sequence numbers with wraparound (RFC 1982
/// serial-number arithmetic). At a distance of exactly 2³¹ the relation
/// is undefined (both `seq_lt(a, b)` and `seq_lt(b, a)` are false); this
/// module's convention is that such a segment is *ahead* (future data).
fn seq_lt(a: u32, b: u32) -> bool {
    a != b && b.wrapping_sub(a) < (1 << 31)
}

/// One direction of one TCP connection.
#[derive(Debug)]
pub struct StreamReassembler {
    /// The next in-order sequence number the consumer expects.
    next_seq: u32,
    /// Out-of-order segments keyed by (wrapped) start sequence.
    /// Invariant: every key is serially *strictly ahead* of `next_seq`
    /// (the ambiguous 2³¹ distance counts as ahead), and stored ranges
    /// never overlap — overlaps are resolved at insert time.
    pending: BTreeMap<u32, Vec<u8>>,
    /// Bytes currently buffered out of order.
    buffered: usize,
    /// Buffering bound; beyond it, the *oldest* pending data (serially
    /// closest to `next_seq`) is evicted to make room — the scanner then
    /// sees a gap there, exactly as a middlebox behind a lossy tap
    /// would, while the freshest data stays buffered for gap recovery.
    capacity: usize,
    /// Conflict resolution policy.
    policy: ConflictPolicy,
    /// Tail of the delivered stream, for byte-verifying retransmissions.
    history: VecDeque<u8>,
    /// Losing copies of detected conflicts, awaiting shadow scans.
    conflict_stash: Vec<Vec<u8>>,
    /// Set once a conflict fires under [`ConflictPolicy::RejectFlow`].
    quarantined: bool,
    /// Total bytes delivered in order.
    delivered: u64,
    /// Incoming segments discarded outright (larger than the whole
    /// buffer).
    dropped_segments: u64,
    /// Buffered bytes evicted by the capacity bound.
    evicted_bytes: u64,
    /// Buffered segments evicted by the capacity bound.
    evicted_segments: u64,
    /// Byte-level conflicts detected (one per conflicting segment).
    conflicts: u64,
    /// Bytes of losing copies across all detected conflicts.
    conflict_bytes: u64,
}

impl StreamReassembler {
    /// A reassembler expecting `initial_seq` first, buffering at most
    /// `capacity` out-of-order bytes, resolving conflicts first-copy-wins
    /// (the historical default).
    pub fn new(initial_seq: u32, capacity: usize) -> StreamReassembler {
        StreamReassembler::with_policy(initial_seq, capacity, ConflictPolicy::FirstWins)
    }

    /// A reassembler with an explicit conflict policy.
    pub fn with_policy(
        initial_seq: u32,
        capacity: usize,
        policy: ConflictPolicy,
    ) -> StreamReassembler {
        StreamReassembler {
            next_seq: initial_seq,
            pending: BTreeMap::new(),
            buffered: 0,
            capacity: capacity.max(1),
            policy,
            history: VecDeque::new(),
            conflict_stash: Vec::new(),
            quarantined: false,
            delivered: 0,
            dropped_segments: 0,
            evicted_bytes: 0,
            evicted_segments: 0,
            conflicts: 0,
            conflict_bytes: 0,
        }
    }

    /// The conflict policy in force.
    pub fn policy(&self) -> ConflictPolicy {
        self.policy
    }

    /// Bytes delivered in order so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Out-of-order bytes currently held.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Incoming segments discarded outright (larger than the buffer).
    pub fn dropped_segments(&self) -> u64 {
        self.dropped_segments
    }

    /// Buffered bytes evicted to make room under the capacity bound.
    pub fn evicted_bytes(&self) -> u64 {
        self.evicted_bytes
    }

    /// Buffered segments evicted under the capacity bound.
    pub fn evicted_segments(&self) -> u64 {
        self.evicted_segments
    }

    /// Byte-level conflicts detected so far (same range, different bytes).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Total bytes of losing copies across detected conflicts.
    pub fn conflict_bytes(&self) -> u64 {
        self.conflict_bytes
    }

    /// Whether a conflict quarantined this flow
    /// ([`ConflictPolicy::RejectFlow`] only). A quarantined reassembler
    /// delivers nothing, ever again.
    pub fn quarantined(&self) -> bool {
        self.quarantined
    }

    /// Drains the losing copies of conflicts detected since the last
    /// call. The caller shadow-scans them (statelessly), so a pattern
    /// hidden entirely inside the losing interpretation is still found.
    /// Empty under [`ConflictPolicy::RejectFlow`] — the quarantine *is*
    /// the verdict there.
    pub fn take_conflict_payloads(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.conflict_stash)
    }

    /// The sequence number of the next byte the consumer will get.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Estimated heap bytes this reassembler holds: out-of-order
    /// buffers, the retransmission-verification history tail, and any
    /// stashed losing conflict copies. Feeds the flow arena's per-flow
    /// byte accounting (DESIGN.md §15), so it is an estimate of payload
    /// bytes plus per-segment container overhead, not an allocator
    /// census.
    pub fn heap_bytes(&self) -> u64 {
        const SEGMENT_OVERHEAD: u64 = 48; // BTreeMap node share + Vec header
        let pending = self.buffered as u64 + self.pending.len() as u64 * SEGMENT_OVERHEAD;
        let stash: u64 = self
            .conflict_stash
            .iter()
            .map(|c| c.len() as u64 + SEGMENT_OVERHEAD)
            .sum();
        pending + self.history.len() as u64 + stash
    }

    /// Feeds one segment; returns every in-order byte run that became
    /// deliverable (usually zero or one run, more when a gap fills).
    pub fn push(&mut self, seq: u32, payload: &[u8]) -> Vec<Vec<u8>> {
        if payload.is_empty() || self.quarantined {
            return Vec::new();
        }
        let mut seq = seq;
        let mut payload = payload.to_vec();

        // Retransmission handling: the part we already delivered is
        // committed (it has been scanned), so it is trimmed — but first
        // byte-verified against the retained history. A divergent copy is
        // a conflict; under the permissive policies its payload is
        // stashed for a shadow scan, under RejectFlow it quarantines.
        if seq_lt(seq, self.next_seq) {
            let skip = (self.next_seq.wrapping_sub(seq) as usize).min(payload.len());
            if self.delivered_overlap_conflicts(seq, &payload[..skip]) {
                self.on_conflict(payload.clone());
                if self.quarantined {
                    return Vec::new();
                }
            }
            if skip >= payload.len() {
                return Vec::new(); // fully duplicate
            }
            payload.drain(..skip);
            seq = self.next_seq;
        }

        if seq == self.next_seq {
            // In order — but the payload may cover ranges already
            // buffered out of order. Those pending copies arrived
            // *first*, so a byte divergence is a conflict exactly like a
            // divergent retransmission (the evasion shape: hide a
            // pattern in a buffered copy, then pave over it with an
            // innocuous in-order segment). Verify before delivering.
            let Some(payload) = self.resolve_inorder_overlaps(payload) else {
                return Vec::new(); // quarantined
            };
            let mut out = Vec::new();
            self.next_seq = seq.wrapping_add(payload.len() as u32);
            self.delivered += payload.len() as u64;
            self.remember(&payload);
            out.push(payload);
            out.extend(self.drain_pending());
            out
        } else {
            // Out of order (strictly ahead, by the 2³¹ convention):
            // resolve overlaps against already-pending ranges at insert
            // time, so every byte is stored and accounted exactly once.
            self.insert_pending(seq, payload);
            Vec::new()
        }
    }

    /// Signals that the stream is being abandoned (RST / timeout): drops
    /// pending data and returns how many bytes were discarded.
    pub fn abort(&mut self) -> usize {
        let n = self.buffered;
        self.pending.clear();
        self.buffered = 0;
        self.conflict_stash.clear();
        n
    }

    /// Byte-compares `overlap` (starting at sequence `seq`, entirely
    /// behind `next_seq`) against the retained delivered history. Returns
    /// `(diverges, unverifiable)`: whether any comparable byte differs,
    /// and whether any byte was older than the history horizon.
    fn history_check(&self, seq: u32, overlap: &[u8]) -> (bool, bool) {
        let mut unverifiable = false;
        for (i, &b) in overlap.iter().enumerate() {
            // Distance of this byte behind next_seq (≥ 1 within overlap).
            let back = self.next_seq.wrapping_sub(seq.wrapping_add(i as u32)) as usize;
            if back == 0 || back > self.history.len() {
                unverifiable = true;
                continue;
            }
            if self.history[self.history.len() - back] != b {
                return (true, unverifiable);
            }
        }
        (false, unverifiable)
    }

    /// Whether the delivered-range part of a retransmission diverges from
    /// what was actually delivered. Positions older than the retained
    /// history cannot be verified: permissive policies give them the
    /// benefit of the doubt, `RejectFlow` refuses to guess.
    fn delivered_overlap_conflicts(&self, seq: u32, overlap: &[u8]) -> bool {
        let (diverges, unverifiable) = self.history_check(seq, overlap);
        diverges || (unverifiable && self.policy == ConflictPolicy::RejectFlow)
    }

    /// Verifies an in-order payload (starting exactly at `next_seq`)
    /// against every overlapping *pending* range before delivery. The
    /// pending copies arrived first, so divergence is a conflict resolved
    /// per policy: under `FirstWins` the stored bytes are overlaid onto
    /// the payload (first copy canonical) and the arriving copy is
    /// stashed; under `LastWins` the arriving copy wins and each losing
    /// stored segment is stashed, its overlapped part removed; under
    /// `RejectFlow` the flow quarantines. Returns the canonical bytes to
    /// deliver, or `None` when quarantined.
    fn resolve_inorder_overlaps(&mut self, mut payload: Vec<u8>) -> Option<Vec<u8>> {
        let new_end = payload.len() as u64;
        // Every pending key is strictly ahead of next_seq (distance in
        // (0, 2³¹]); it overlaps the payload iff that distance is inside
        // the payload.
        let divergent: Vec<u32> = self
            .pending
            .iter()
            .filter(|(&s, data)| {
                let ps = u64::from(s.wrapping_sub(self.next_seq));
                if ps >= new_end {
                    return false;
                }
                let hi = (ps + data.len() as u64).min(new_end);
                data[..(hi - ps) as usize] != payload[ps as usize..hi as usize]
            })
            .map(|(&s, _)| s)
            .collect();
        if divergent.is_empty() {
            // Equal overlaps (or none): the stale parts are consumed by
            // drain_pending, which re-verifies them against history.
            return Some(payload);
        }
        match self.policy {
            ConflictPolicy::RejectFlow => {
                self.on_conflict(payload);
                return None;
            }
            ConflictPolicy::FirstWins => {
                // The buffered (earlier) copy of each byte is canonical:
                // overlay it onto the arriving segment, which loses.
                self.on_conflict(payload.clone());
                for s in divergent {
                    let data = &self.pending[&s];
                    let ps = u64::from(s.wrapping_sub(self.next_seq));
                    let hi = (ps + data.len() as u64).min(new_end);
                    payload[ps as usize..hi as usize].copy_from_slice(&data[..(hi - ps) as usize]);
                }
            }
            ConflictPolicy::LastWins => {
                // The arriving copy wins; each divergent stored segment
                // is a loser. Remove its overlapped part (keeping any
                // tail beyond the payload) so no stale divergent bytes
                // survive into drain_pending.
                for s in divergent {
                    let data = self.pending.remove(&s).expect("key just listed");
                    self.buffered -= data.len();
                    self.on_conflict(data.clone());
                    let ps = u64::from(s.wrapping_sub(self.next_seq));
                    let pe = ps + data.len() as u64;
                    if pe > new_end {
                        let from = (new_end - ps) as usize;
                        let tail_seq = self.next_seq.wrapping_add(new_end as u32);
                        self.store_piece(tail_seq, data[from..].to_vec());
                    }
                }
            }
        }
        Some(payload)
    }

    /// Records one conflict with its losing copy.
    fn on_conflict(&mut self, losing: Vec<u8>) {
        self.conflicts += 1;
        self.conflict_bytes += losing.len() as u64;
        if self.policy == ConflictPolicy::RejectFlow {
            self.quarantined = true;
            self.pending.clear();
            self.buffered = 0;
            self.conflict_stash.clear();
        } else if self.conflict_stash.len() < MAX_CONFLICT_STASH {
            self.conflict_stash.push(losing);
        }
    }

    /// Appends delivered bytes to the bounded verification history.
    fn remember(&mut self, bytes: &[u8]) {
        if bytes.len() >= CONFLICT_HISTORY {
            self.history.clear();
            self.history
                .extend(&bytes[bytes.len() - CONFLICT_HISTORY..]);
            return;
        }
        let overflow = (self.history.len() + bytes.len()).saturating_sub(CONFLICT_HISTORY);
        self.history.drain(..overflow);
        self.history.extend(bytes);
    }

    /// Inserts an out-of-order segment, resolving overlaps with pending
    /// data: equal overlap bytes are stored once; differing bytes are a
    /// conflict resolved per policy. All coordinates are relative to
    /// `next_seq` (every pending range is strictly ahead, distance in
    /// `(0, 2³¹]`), so ranges compare correctly across the 2³² wrap.
    fn insert_pending(&mut self, seq: u32, payload: Vec<u8>) {
        let new_start = u64::from(seq.wrapping_sub(self.next_seq));
        let new_end = new_start + payload.len() as u64;

        // Byte-compare every overlapping pending range.
        let mut conflict = false;
        let mut losing_old: Vec<Vec<u8>> = Vec::new();
        let mut overlapping: Vec<u32> = Vec::new();
        for (&s, data) in &self.pending {
            let ps = u64::from(s.wrapping_sub(self.next_seq));
            let pe = ps + data.len() as u64;
            if ps >= new_end || new_start >= pe {
                continue;
            }
            overlapping.push(s);
            let lo = ps.max(new_start);
            let hi = pe.min(new_end);
            if data[(lo - ps) as usize..(hi - ps) as usize]
                != payload[(lo - new_start) as usize..(hi - new_start) as usize]
            {
                conflict = true;
                losing_old.push(data.clone());
            }
        }
        if conflict {
            // The losing copy: under first-wins the arriving segment
            // loses; under last-wins the stored segments it overwrites do.
            match self.policy {
                ConflictPolicy::LastWins => {
                    for old in losing_old {
                        self.on_conflict(old);
                    }
                }
                _ => self.on_conflict(payload.clone()),
            }
            if self.quarantined {
                return;
            }
        }

        if self.policy == ConflictPolicy::LastWins && conflict {
            // The new copy wins: carve its range out of every overlapped
            // pending segment, then store the new segment whole.
            for s in overlapping {
                let data = self.pending.remove(&s).expect("key just listed");
                self.buffered -= data.len();
                let ps = u64::from(s.wrapping_sub(self.next_seq));
                let pe = ps + data.len() as u64;
                if ps < new_start {
                    let keep = (new_start - ps) as usize;
                    self.store_piece(s, data[..keep].to_vec());
                }
                if pe > new_end {
                    let from = (new_end - ps) as usize;
                    let tail_seq = self.next_seq.wrapping_add(new_end as u32);
                    self.store_piece(tail_seq, data[from..].to_vec());
                }
            }
            self.store_piece(seq, payload);
        } else {
            // First copy wins (also the no-conflict and equal-overlap
            // path): store only the parts of the new segment no pending
            // range already covers.
            let mut holes: Vec<(u64, u64)> = vec![(new_start, new_end)];
            for s in overlapping {
                let data = &self.pending[&s];
                let ps = u64::from(s.wrapping_sub(self.next_seq));
                let pe = ps + data.len() as u64;
                let mut next = Vec::new();
                for (lo, hi) in holes {
                    if pe <= lo || ps >= hi {
                        next.push((lo, hi));
                        continue;
                    }
                    if lo < ps {
                        next.push((lo, ps));
                    }
                    if pe < hi {
                        next.push((pe, hi));
                    }
                }
                holes = next;
            }
            for (lo, hi) in holes {
                let piece_seq = self.next_seq.wrapping_add(lo as u32);
                self.store_piece(
                    piece_seq,
                    payload[(lo - new_start) as usize..(hi - new_start) as usize].to_vec(),
                );
            }
        }
    }

    /// Stores one non-overlapping pending piece, evicting under the
    /// capacity bound.
    fn store_piece(&mut self, seq: u32, piece: Vec<u8>) {
        if piece.is_empty() {
            return;
        }
        if piece.len() > self.capacity {
            // Can never fit, even with an empty buffer.
            self.dropped_segments += 1;
            return;
        }
        while self.buffered + piece.len() > self.capacity {
            // Evict the oldest pending data: serially closest to
            // `next_seq`, i.e. the earliest bytes in stream order.
            let oldest = self
                .pending
                .keys()
                .copied()
                .min_by_key(|&s| s.wrapping_sub(self.next_seq))
                .expect("buffered > 0 implies pending segments exist");
            let data = self.pending.remove(&oldest).expect("key just found");
            self.buffered -= data.len();
            self.evicted_bytes += data.len() as u64;
            self.evicted_segments += 1;
        }
        self.buffered += piece.len();
        self.pending.insert(seq, piece);
    }

    fn drain_pending(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        loop {
            // Find the pending segment serially closest at-or-behind
            // next_seq. BTreeMap ordering is by wrapped u32, which is
            // wrong across the 2³² boundary, so compare in RFC 1982
            // serial order: smallest wrapping distance behind next_seq.
            // The ambiguous exactly-2³¹ distance counts as *ahead* (the
            // same convention `push` uses), so such a segment stays
            // buffered instead of being misread as stale.
            let candidate = self
                .pending
                .keys()
                .copied()
                .filter(|&s| s == self.next_seq || seq_lt(s, self.next_seq))
                .min_by_key(|&s| self.next_seq.wrapping_sub(s));
            let Some(start) = candidate else { break };
            let data = self.pending.remove(&start).expect("key just found");
            self.buffered -= data.len();
            let skip = (self.next_seq.wrapping_sub(start) as usize).min(data.len());
            // A stale prefix must byte-match what was actually delivered
            // (the in-order path verifies overlaps before delivery, so a
            // divergence here means some path skipped that check). Route
            // it through the conflict machinery, never discard silently.
            if skip > 0 {
                let (diverges, _) = self.history_check(start, &data[..skip]);
                if diverges {
                    self.on_conflict(data.clone());
                    if self.quarantined {
                        return out;
                    }
                }
            }
            if skip >= data.len() {
                continue; // fully stale, verified above
            }
            let fresh = data[skip..].to_vec();
            self.next_seq = self.next_seq.wrapping_add(fresh.len() as u32);
            self.delivered += fresh.len() as u64;
            self.remember(&fresh);
            out.push(fresh);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_passthrough() {
        let mut r = StreamReassembler::new(1000, 1 << 16);
        assert_eq!(r.push(1000, b"hello "), vec![b"hello ".to_vec()]);
        assert_eq!(r.push(1006, b"world"), vec![b"world".to_vec()]);
        assert_eq!(r.delivered(), 11);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn out_of_order_reorders() {
        let mut r = StreamReassembler::new(0, 1 << 16);
        assert!(r.push(6, b"world").is_empty());
        assert_eq!(r.buffered(), 5);
        let runs = r.push(0, b"hello ");
        let joined: Vec<u8> = runs.concat();
        assert_eq!(joined, b"hello world");
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn retransmission_first_copy_wins() {
        let mut r = StreamReassembler::new(0, 1 << 16);
        r.push(0, b"ORIGINAL");
        // Full retransmission with different bytes is discarded from the
        // canonical stream — but detected as a conflict, not silently.
        assert!(r.push(0, b"TAMPERED").is_empty());
        assert_eq!(r.conflicts(), 1);
        // Partial overlap: only the new tail is delivered.
        let runs = r.push(4, b"XXXX-tail");
        assert_eq!(runs.concat(), b"-tail");
        assert_eq!(r.conflicts(), 2);
    }

    #[test]
    fn identical_retransmission_is_not_a_conflict() {
        let mut r = StreamReassembler::new(0, 1 << 16);
        r.push(0, b"ORIGINAL");
        assert!(r.push(0, b"ORIGINAL").is_empty());
        assert!(r.push(2, b"IGINAL-tail").concat() == b"-tail");
        assert_eq!(r.conflicts(), 0);
        assert!(r.take_conflict_payloads().is_empty());
    }

    #[test]
    fn conflicting_retransmission_stashes_losing_copy() {
        let mut r = StreamReassembler::new(0, 1 << 16);
        r.push(0, b"benign-data");
        assert!(r.push(0, b"evil-inside").is_empty());
        assert_eq!(r.conflicts(), 1);
        assert_eq!(r.conflict_bytes(), 11);
        assert_eq!(r.take_conflict_payloads(), vec![b"evil-inside".to_vec()]);
        // Drained: a second take returns nothing.
        assert!(r.take_conflict_payloads().is_empty());
    }

    #[test]
    fn pending_overlap_conflict_first_wins_keeps_stored_bytes() {
        let mut r = StreamReassembler::new(0, 1 << 16);
        assert!(r.push(10, b"AAAA").is_empty());
        // Same pending range, different bytes: first copy stays.
        assert!(r.push(10, b"BBBB").is_empty());
        assert_eq!(r.conflicts(), 1);
        assert_eq!(r.buffered(), 4, "losing copy must not be stored");
        let runs = r.push(0, b"0123456789");
        assert_eq!(runs.concat(), b"0123456789AAAA");
        assert_eq!(r.take_conflict_payloads(), vec![b"BBBB".to_vec()]);
    }

    #[test]
    fn pending_overlap_conflict_last_wins_overwrites() {
        let mut r = StreamReassembler::with_policy(0, 1 << 16, ConflictPolicy::LastWins);
        assert!(r.push(10, b"AAAA").is_empty());
        assert!(r.push(10, b"BBBB").is_empty());
        assert_eq!(r.conflicts(), 1);
        assert_eq!(r.buffered(), 4);
        let runs = r.push(0, b"0123456789");
        assert_eq!(runs.concat(), b"0123456789BBBB");
        // The overwritten copy is the losing one.
        assert_eq!(r.take_conflict_payloads(), vec![b"AAAA".to_vec()]);
    }

    #[test]
    fn last_wins_overwrite_splits_straddled_pending_segment() {
        let mut r = StreamReassembler::with_policy(0, 1 << 16, ConflictPolicy::LastWins);
        assert!(r.push(10, b"AAAAAAAA").is_empty()); // covers 10..18
                                                     // New copy covers 12..16 with different bytes: the old segment
                                                     // keeps its head and tail, the middle is overwritten.
        assert!(r.push(12, b"BBBB").is_empty());
        assert_eq!(r.conflicts(), 1);
        assert_eq!(r.buffered(), 8);
        let runs = r.push(0, b"0123456789");
        assert_eq!(runs.concat(), b"0123456789AABBBBAA");
    }

    #[test]
    fn inorder_overlap_of_divergent_pending_first_wins_keeps_pending_copy() {
        // The review probe: a divergent copy is buffered out of order,
        // then a later in-order segment paves over its range. The pending
        // copy arrived first, so under FirstWins it is canonical — and
        // the divergence is a detected conflict, never a silent miss.
        let mut r = StreamReassembler::new(0, 1 << 16);
        assert!(r.push(10, b"EVIL").is_empty());
        let runs = r.push(0, b"0123456789goodtrailer");
        assert_eq!(runs.concat(), b"0123456789EVILtrailer");
        assert_eq!(r.conflicts(), 1);
        assert_eq!(r.buffered(), 0);
        // The losing in-order copy is stashed for the shadow scan.
        assert_eq!(
            r.take_conflict_payloads(),
            vec![b"0123456789goodtrailer".to_vec()]
        );
    }

    #[test]
    fn inorder_overlap_of_divergent_pending_last_wins_overwrites() {
        let mut r = StreamReassembler::with_policy(0, 1 << 16, ConflictPolicy::LastWins);
        assert!(r.push(10, b"EVIL").is_empty());
        let runs = r.push(0, b"0123456789goodtrailer");
        assert_eq!(runs.concat(), b"0123456789goodtrailer");
        assert_eq!(r.conflicts(), 1);
        assert_eq!(r.buffered(), 0);
        // The overwritten pending copy is the loser.
        assert_eq!(r.take_conflict_payloads(), vec![b"EVIL".to_vec()]);
    }

    #[test]
    fn inorder_overlap_of_divergent_pending_reject_flow_quarantines() {
        let mut r = StreamReassembler::with_policy(0, 1 << 16, ConflictPolicy::RejectFlow);
        assert!(r.push(10, b"EVIL").is_empty());
        // The fail-closed policy must not fail open on this shape.
        assert!(r.push(0, b"0123456789goodtrailer").is_empty());
        assert!(r.quarantined());
        assert_eq!(r.conflicts(), 1);
        assert_eq!(r.delivered(), 0);
        assert_eq!(r.buffered(), 0);
        assert!(r.take_conflict_payloads().is_empty());
    }

    #[test]
    fn inorder_overlap_of_equal_pending_is_not_a_conflict() {
        for policy in [
            ConflictPolicy::FirstWins,
            ConflictPolicy::LastWins,
            ConflictPolicy::RejectFlow,
        ] {
            let mut r = StreamReassembler::with_policy(0, 1 << 16, policy);
            assert!(r.push(10, b"good").is_empty());
            let runs = r.push(0, b"0123456789goodtrailer");
            assert_eq!(runs.concat(), b"0123456789goodtrailer");
            assert_eq!(r.conflicts(), 0, "{}", policy.name());
            assert!(!r.quarantined());
            assert_eq!(r.buffered(), 0);
        }
    }

    #[test]
    fn inorder_overlap_keeps_pending_tail_beyond_payload() {
        // The pending segment extends past the in-order payload: the
        // overlapped part conflicts, the tail must survive and deliver.
        let mut r = StreamReassembler::with_policy(0, 1 << 16, ConflictPolicy::LastWins);
        assert!(r.push(4, b"XXtail").is_empty()); // covers 4..10
        let runs = r.push(0, b"0123ab"); // covers 0..6, 4..6 divergent
        assert_eq!(runs.concat(), b"0123abtail");
        assert_eq!(r.conflicts(), 1);
        assert_eq!(r.buffered(), 0);
        assert_eq!(r.take_conflict_payloads(), vec![b"XXtail".to_vec()]);

        // FirstWins on the same shape: stored bytes win the overlap.
        let mut r = StreamReassembler::new(0, 1 << 16);
        assert!(r.push(4, b"XXtail").is_empty());
        let runs = r.push(0, b"0123ab");
        assert_eq!(runs.concat(), b"0123XXtail");
        assert_eq!(r.conflicts(), 1);
        assert_eq!(r.buffered(), 0);
        assert_eq!(r.take_conflict_payloads(), vec![b"0123ab".to_vec()]);
    }

    #[test]
    fn reject_flow_quarantines_on_conflict() {
        let mut r = StreamReassembler::with_policy(0, 1 << 16, ConflictPolicy::RejectFlow);
        assert_eq!(r.push(0, b"hello ").concat(), b"hello ");
        assert!(!r.quarantined());
        // Divergent retransmission of delivered bytes: quarantine.
        assert!(r.push(0, b"HELLO!").is_empty());
        assert!(r.quarantined());
        assert_eq!(r.conflicts(), 1);
        // Nothing is ever delivered again, and no shadow copies leak out.
        assert!(r.push(6, b"world").is_empty());
        assert!(r.take_conflict_payloads().is_empty());
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn reject_flow_benign_stream_is_untouched() {
        let mut r = StreamReassembler::with_policy(0, 1 << 16, ConflictPolicy::RejectFlow);
        assert!(r.push(6, b"world").is_empty());
        assert_eq!(r.push(0, b"hello ").concat(), b"hello world");
        // Identical retransmission: verified equal, no quarantine.
        assert!(r.push(0, b"hello ").is_empty());
        assert!(!r.quarantined());
        assert_eq!(r.conflicts(), 0);
    }

    #[test]
    fn reject_flow_unverifiable_overlap_fails_closed() {
        // The divergent copy targets bytes older than the retained
        // history window: permissive policies shrug, RejectFlow must not.
        let big = vec![b'x'; CONFLICT_HISTORY + 64];
        let mut first = StreamReassembler::new(0, 1 << 20);
        first.push(0, &big);
        assert!(first.push(0, b"yyyy").is_empty());
        assert_eq!(first.conflicts(), 0, "beyond-horizon copy is unverifiable");

        let mut reject = StreamReassembler::with_policy(0, 1 << 20, ConflictPolicy::RejectFlow);
        reject.push(0, &big);
        assert!(reject.push(0, b"yyyy").is_empty());
        assert!(reject.quarantined());
    }

    #[test]
    fn multiple_gaps_fill_in_any_order() {
        let mut r = StreamReassembler::new(0, 1 << 16);
        assert!(r.push(8, b"cc").is_empty());
        assert!(r.push(4, b"bb").is_empty());
        // 0..4 arrives: delivers aaaa + bb (4..6), still gap at 6..8.
        let runs = r.push(0, b"aaaa");
        assert_eq!(runs.concat(), b"aaaabb");
        let runs = r.push(6, b"zz");
        assert_eq!(runs.concat(), b"zzcc");
        assert_eq!(r.delivered(), 10);
    }

    #[test]
    fn sequence_wraparound() {
        let start = u32::MAX - 2;
        let mut r = StreamReassembler::new(start, 1 << 16);
        // 0xFFFFFFFD + 3 wraps to 0.
        assert_eq!(r.push(start, b"abc").concat(), b"abc");
        assert_eq!(r.next_seq(), 0);
        assert_eq!(r.push(0, b"def").concat(), b"def");
        assert_eq!(r.next_seq(), 3);
    }

    #[test]
    fn capacity_bound_evicts_oldest_pending_data() {
        let mut r = StreamReassembler::new(0, 8);
        assert!(r.push(100, b"12345678").is_empty());
        // A second full-size segment evicts the first (oldest in stream
        // order), keeping the freshest data buffered.
        assert!(r.push(200, b"overflow").is_empty());
        assert_eq!(r.dropped_segments(), 0);
        assert_eq!(r.evicted_segments(), 1);
        assert_eq!(r.evicted_bytes(), 8);
        assert_eq!(r.buffered(), 8);
        assert!(r.pending.contains_key(&200));
        assert!(!r.pending.contains_key(&100));
    }

    #[test]
    fn segment_larger_than_buffer_is_dropped_outright() {
        let mut r = StreamReassembler::new(0, 4);
        assert!(r.push(10, b"12").is_empty());
        assert!(r.push(100, b"too big to ever fit").is_empty());
        assert_eq!(r.dropped_segments(), 1);
        assert_eq!(r.evicted_segments(), 0);
        // The earlier pending segment survives untouched.
        assert_eq!(r.buffered(), 2);
    }

    #[test]
    fn duplicate_out_of_order_segment_keeps_buffered_flat() {
        let mut r = StreamReassembler::new(0, 1 << 16);
        assert!(r.push(100, b"payload").is_empty());
        let baseline = r.buffered();
        for _ in 0..1000 {
            assert!(r.push(100, b"payload").is_empty());
            assert_eq!(r.buffered(), baseline, "duplicate must not leak accounting");
        }
        assert_eq!(r.dropped_segments(), 0);
        assert_eq!(r.evicted_segments(), 0);
        assert_eq!(r.conflicts(), 0);
        // The stream still completes normally once the gap fills.
        let runs = r.push(0, &[b'x'; 100]);
        assert_eq!(runs.concat().len(), 107);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn overlapping_pending_segment_is_trimmed_not_double_counted() {
        // Regression: an OOO segment overlapping a pending range used to
        // be buffered whole (only exact start keys were deduped), so
        // `buffered` double-counted the overlap and the capacity bound
        // evicted early.
        let mut r = StreamReassembler::new(0, 1 << 16);
        assert!(r.push(100, b"ABCDEFGH").is_empty()); // 100..108
        assert_eq!(r.buffered(), 8);
        // Overlaps 104..108 with the same bytes, extends to 112.
        assert!(r.push(104, b"EFGHijkl").is_empty());
        assert_eq!(r.buffered(), 12, "overlap bytes must be stored once");
        // A third copy spanning the whole range adds nothing.
        assert!(r.push(100, b"ABCDEFGHijkl").is_empty());
        assert_eq!(r.buffered(), 12);
        assert_eq!(r.conflicts(), 0);
        // The stream reassembles correctly once the gap fills.
        let runs = r.push(0, &[b'x'; 100]);
        assert_eq!(&runs.concat()[100..], b"ABCDEFGHijkl");
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn overlap_trim_does_not_fire_capacity_eviction_early() {
        // With double-counting, repeatedly re-sending an overlapping
        // window blew through a capacity that the true byte span fits.
        let mut r = StreamReassembler::new(0, 16);
        for start in [4u32, 8, 12] {
            assert!(r.push(start, b"abcdabcd").is_empty());
        }
        // True span is 4..20 = 16 bytes: exactly at capacity, no
        // eviction.
        assert_eq!(r.buffered(), 16);
        assert_eq!(r.evicted_segments(), 0);
        let runs = r.push(0, b"0123");
        assert_eq!(runs.concat(), b"0123abcdabcdabcdabcd");
    }

    #[test]
    fn half_window_distance_is_future_data_in_push_and_drain() {
        // RFC 1982 leaves a distance of exactly 2³¹ undefined (both
        // comparisons false). Convention: it is *future* data. `push`
        // must buffer it (not trim it as delivered), and `drain_pending`
        // must not mis-read it as a stale segment and discard it.
        let mut r = StreamReassembler::new(0, 1 << 16);
        let far = 1u32 << 31;
        assert!(r.push(far, b"edge").is_empty());
        assert_eq!(r.buffered(), 4, "half-window segment must be buffered");
        assert_eq!(r.dropped_segments(), 0);
        // Delivering in-order data runs drain_pending; the edge segment
        // is now strictly ahead and must survive untouched.
        assert_eq!(r.push(0, b"head").concat(), b"head");
        assert_eq!(r.buffered(), 4, "drain must not discard the edge segment");
        assert_eq!(r.delivered(), 4);
    }

    #[test]
    fn just_past_half_window_is_a_stale_duplicate() {
        // One byte past the half window the segment is serially *behind*
        // next_seq: it reads as an ancient retransmission and is fully
        // trimmed (nothing buffered, nothing delivered).
        let mut r = StreamReassembler::new(0, 1 << 16);
        let behind = (1u32 << 31).wrapping_add(1);
        assert!(r.push(behind, b"old").is_empty());
        assert_eq!(r.buffered(), 0);
        assert_eq!(r.delivered(), 0);
    }

    #[test]
    fn half_window_edge_across_wraparound() {
        // Same convention exercised with next_seq near the 2³² wrap.
        let start = u32::MAX - 10;
        let mut r = StreamReassembler::new(start, 1 << 16);
        let far = start.wrapping_add(1 << 31);
        assert!(r.push(far, b"edge").is_empty());
        assert_eq!(r.buffered(), 4);
        assert_eq!(r.push(start, b"abc").concat(), b"abc");
        assert_eq!(r.buffered(), 4);
    }

    #[test]
    fn drain_uses_serial_order_across_wrap() {
        // next_seq sits just before the 2³² wrap; pending segments live on
        // both sides of it. Unsigned BTreeMap order would visit the
        // post-wrap key (small u32) first; serial order must not.
        let start = u32::MAX - 4;
        let mut r = StreamReassembler::new(start, 1 << 16);
        // Post-wrap segment (starts at 1): arrives first.
        assert!(r.push(1, b"ddd").is_empty());
        // Pre-wrap segment bridging the boundary: covers FFFFFFFD..=0.
        assert!(r.push(u32::MAX - 2, b"bbcc").is_empty());
        // The in-order head fills the gap; everything drains in stream
        // order despite straddling the wrap.
        let runs = r.push(start, b"aa");
        assert_eq!(runs.concat(), b"aabbccddd");
        assert_eq!(r.next_seq(), 4);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn eviction_respects_serial_age_across_wrap() {
        // Two pending segments straddle the wrap; the serially older one
        // (pre-wrap, closer to next_seq) must be the eviction victim even
        // though its u32 key is the larger number.
        let start = u32::MAX - 10;
        let mut r = StreamReassembler::new(start, 8);
        assert!(r.push(u32::MAX - 5, b"old!").is_empty()); // serially first
        assert!(r.push(3, b"new!").is_empty()); // post-wrap, serially later
        assert_eq!(r.buffered(), 8);
        assert!(r.push(7, b"new2").is_empty()); // forces eviction of one segment
        assert_eq!(r.evicted_segments(), 1);
        assert!(
            !r.pending.contains_key(&(u32::MAX - 5)),
            "serially-oldest segment must be evicted, not the post-wrap one"
        );
        assert!(r.pending.contains_key(&3));
        assert!(r.pending.contains_key(&7));
    }

    #[test]
    fn abort_clears_state() {
        let mut r = StreamReassembler::new(0, 1 << 16);
        r.push(50, b"future data");
        assert_eq!(r.abort(), 11);
        assert!(r.push(0, b"now").concat() == b"now");
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn empty_segments_are_ignored() {
        let mut r = StreamReassembler::new(0, 16);
        assert!(r.push(0, b"").is_empty());
        assert_eq!(r.next_seq(), 0);
    }

    #[test]
    fn conflict_history_is_bounded() {
        let mut r = StreamReassembler::new(0, 1 << 20);
        let chunk = vec![b'a'; 1000];
        for i in 0..(2 * CONFLICT_HISTORY / 1000 + 2) {
            r.push((i * 1000) as u32, &chunk);
        }
        assert!(r.history.len() <= CONFLICT_HISTORY);
        // Recent retransmissions still verify against the tail.
        let last_start = ((2 * CONFLICT_HISTORY / 1000 + 1) * 1000) as u32;
        assert!(r.push(last_start, &vec![b'b'; 1000]).is_empty());
        assert_eq!(r.conflicts(), 1);
    }
}
