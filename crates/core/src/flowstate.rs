//! Per-flow scan state for stateful middleboxes (§5.2).
//!
//! "If at least one of the middleboxes is stateful, we will initialize an
//! empty data structure of active flows, which will hold the state and
//! offset of scans done on that flow up until now." The paper also notes
//! (§4.3) that this is the *only* state a DPI instance keeps per flow —
//! "the DPI instance keeps only the current DFA state and an offset within
//! the packet" — which is what makes instance migration cheap.

use dpi_ac::StateId;
use dpi_packet::FlowKey;
use std::collections::HashMap;

/// The scan state of one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowState {
    /// DFA state at the end of the last scanned packet.
    pub state: StateId,
    /// Bytes of the flow scanned so far (`offset` in §5.2).
    pub offset: u64,
    /// Rule generation whose automaton `state` belongs to. A state id is
    /// only meaningful inside the automaton that produced it, so after a
    /// hot swap the mid-flow state of older generations must not be fed
    /// to the new automaton (DESIGN.md §9).
    pub generation: u32,
    /// Set when a reassembly conflict quarantined the flow under
    /// `ConflictPolicy::RejectFlow` (DESIGN.md §13): its packets are no
    /// longer scanned and carry a fail-closed verdict mark instead. Lives
    /// here (not only in the reassembler) so the verdict survives
    /// reassembler eviction and generation swaps.
    pub quarantined: bool,
    /// Logical timestamp of the last access (for eviction).
    pub(crate) last_used: u64,
}

impl FlowState {
    /// Assembles a flow-state record outside a table (the migration
    /// import path, arena interop). The LRU timestamp is meaningless
    /// across tables and is re-stamped on insertion.
    pub fn assemble(state: StateId, offset: u64, generation: u32, quarantined: bool) -> FlowState {
        FlowState {
            state,
            offset,
            generation,
            quarantined,
            last_used: 0,
        }
    }
}

/// The active-flow table, bounded in size.
///
/// Eviction is approximate-LRU: when the table exceeds its capacity, the
/// oldest half (by last access) is dropped. Losing a flow's state is safe
/// — the next packet simply scans from the root, exactly as if the flow
/// were new — so approximation costs accuracy on pattern matches spanning
/// the eviction boundary, never correctness of the data path.
#[derive(Debug)]
pub struct FlowTable {
    flows: HashMap<FlowKey, FlowState>,
    capacity: usize,
    clock: u64,
    quarantined_evictions: u64,
}

impl FlowTable {
    /// Creates a table bounded to `capacity` flows (minimum 1).
    pub fn new(capacity: usize) -> FlowTable {
        FlowTable {
            flows: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            quarantined_evictions: 0,
        }
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Looks up (and touches) a flow's state.
    pub fn get(&mut self, key: &FlowKey) -> Option<FlowState> {
        self.clock += 1;
        let clock = self.clock;
        self.flows.get_mut(key).map(|fs| {
            fs.last_used = clock;
            *fs
        })
    }

    /// Looks up a flow's state, but only if it was written under
    /// `generation`. A mismatch behaves exactly like a fresh flow: the
    /// caller re-anchors at the new automaton's root. Like eviction, this
    /// can only *miss* matches straddling the swap, never fabricate one
    /// (the stateless-deletion argument, DESIGN.md §8/§9). Stale entries
    /// are dropped so they don't linger until eviction.
    pub fn get_if_generation(&mut self, key: &FlowKey, generation: u32) -> Option<FlowState> {
        match self.get(key) {
            Some(fs) if fs.generation == generation => Some(fs),
            Some(_) => {
                self.flows.remove(key);
                None
            }
            None => None,
        }
    }

    /// Stores a flow's state after a scan, tagged generation 0 (the
    /// pre-update world; generation-aware callers use [`FlowTable::put_gen`]).
    pub fn put(&mut self, key: FlowKey, state: StateId, offset: u64) {
        self.put_gen(key, state, offset, 0);
    }

    /// Stores a flow's state tagged with the generation of the automaton
    /// that produced it.
    pub fn put_gen(&mut self, key: FlowKey, state: StateId, offset: u64, generation: u32) {
        self.clock += 1;
        // A quarantine verdict is sticky: overwriting scan state must not
        // launder it away.
        let quarantined = self.flows.get(&key).is_some_and(|f| f.quarantined);
        self.flows.insert(
            key,
            FlowState {
                state,
                offset,
                generation,
                quarantined,
                last_used: self.clock,
            },
        );
        if self.flows.len() > self.capacity {
            self.evict();
        }
    }

    /// Marks a flow quarantined (reassembly conflict under
    /// `ConflictPolicy::RejectFlow`), creating the entry if the flow has
    /// no scan state yet.
    pub fn quarantine(&mut self, key: FlowKey) {
        self.clock += 1;
        let clock = self.clock;
        self.flows
            .entry(key)
            .and_modify(|f| {
                f.quarantined = true;
                f.last_used = clock;
            })
            .or_insert(FlowState {
                state: 0,
                offset: 0,
                generation: 0,
                quarantined: true,
                last_used: clock,
            });
        if self.flows.len() > self.capacity {
            self.evict();
        }
    }

    /// Whether a flow is quarantined. Non-mutating (no LRU touch) — this
    /// sits on the per-packet hot path. Quarantined flows remain
    /// LRU-evictable like any other: eviction forgets the verdict, which
    /// fails *open* only after the table wraps — the bounded-state
    /// tradeoff documented in DESIGN.md §13.
    pub fn is_quarantined(&self, key: &FlowKey) -> bool {
        self.flows.get(key).is_some_and(|f| f.quarantined)
    }

    /// Removes a flow (connection teardown, or migration to another
    /// instance — §4.3.1's flow migration exports exactly this record).
    pub fn remove(&mut self, key: &FlowKey) -> Option<FlowState> {
        self.flows.remove(key)
    }

    /// Exports a flow's **full** state without touching LRU order — the
    /// migration path (§4.3): the source instance exports, the target
    /// imports. The record carries `generation` and `quarantined` too:
    /// exporting only (state, offset) would re-store the flow as
    /// generation 0 on the target (silently discarded by
    /// [`FlowTable::get_if_generation`] after any rule update) and
    /// launder a quarantined flow's fail-closed verdict away.
    pub fn export(&self, key: &FlowKey) -> Option<FlowState> {
        self.flows.get(key).copied()
    }

    /// Imports a migrated flow, preserving its generation tag and any
    /// quarantine verdict. A quarantine already present on the target is
    /// sticky — import never clears it.
    pub fn import(&mut self, key: FlowKey, fs: FlowState) {
        self.clock += 1;
        let quarantined = fs.quarantined || self.flows.get(&key).is_some_and(|f| f.quarantined);
        self.flows.insert(
            key,
            FlowState {
                quarantined,
                last_used: self.clock,
                ..fs
            },
        );
        if self.flows.len() > self.capacity {
            self.evict();
        }
    }

    /// Quarantined flows that eviction was forced to drop anyway (the
    /// whole table was quarantine verdicts). Each one is a forgotten
    /// fail-closed verdict — a signal worth alarming on.
    pub fn quarantined_evictions(&self) -> u64 {
        self.quarantined_evictions
    }

    /// All tracked flow keys (diagnostics, migration candidate listing).
    pub fn keys(&self) -> impl Iterator<Item = &FlowKey> {
        self.flows.keys()
    }

    fn evict(&mut self) {
        // Drop the least-recently-used half — but only of the
        // *non-quarantined* entries. Quarantine is a fail-closed verdict:
        // if plain churn could push a quarantined flow out, an attacker
        // could open disposable flows until the verdict flushed and then
        // resume the ambiguous stream fail-open (DESIGN.md §13).
        let mut ages: Vec<u64> = self
            .flows
            .values()
            .filter(|f| !f.quarantined)
            .map(|f| f.last_used)
            .collect();
        if !ages.is_empty() {
            ages.sort_unstable();
            let cutoff = ages[ages.len() / 2];
            self.flows
                .retain(|_, f| f.quarantined || f.last_used > cutoff);
        }
        // If the table is still over capacity it is dominated by
        // quarantine verdicts; the bound must hold, so the oldest
        // verdicts go — counted, because each one is a forgotten
        // fail-closed decision (the caller surfaces this as a trace
        // event + telemetry counter).
        if self.flows.len() > self.capacity {
            let mut quarantined: Vec<(u64, FlowKey)> = self
                .flows
                .iter()
                .filter(|(_, f)| f.quarantined)
                .map(|(k, f)| (f.last_used, *k))
                .collect();
            quarantined.sort_unstable();
            let excess = self.flows.len() - self.capacity;
            for (_, key) in quarantined.into_iter().take(excess) {
                self.flows.remove(&key);
                self.quarantined_evictions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_packet::ipv4::IpProtocol;
    use std::net::Ipv4Addr;

    fn key(n: u16) -> FlowKey {
        FlowKey {
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            protocol: IpProtocol::Tcp,
            src_port: n,
            dst_port: 80,
        }
    }

    #[test]
    fn put_get_round_trip() {
        let mut t = FlowTable::new(10);
        assert!(t.get(&key(1)).is_none());
        t.put(key(1), 42, 1000);
        let fs = t.get(&key(1)).unwrap();
        assert_eq!((fs.state, fs.offset), (42, 1000));
    }

    #[test]
    fn eviction_bounds_size_and_keeps_recent() {
        let mut t = FlowTable::new(16);
        for i in 0..64 {
            t.put(key(i), i as u32, 0);
        }
        assert!(t.len() <= 16);
        // The most recent flow survives.
        assert!(t.get(&key(63)).is_some());
    }

    #[test]
    fn remove_and_migrate() {
        let mut src = FlowTable::new(8);
        src.put(key(5), 7, 512);
        let exported = src.export(&key(5)).unwrap();
        src.remove(&key(5));
        assert!(src.get(&key(5)).is_none());

        let mut dst = FlowTable::new(8);
        dst.import(key(5), exported);
        let fs = dst.get(&key(5)).unwrap();
        assert_eq!((fs.state, fs.offset), (7, 512));
    }

    #[test]
    fn migration_preserves_generation() {
        // Regression: export used to drop the generation tag, so the
        // migrated flow landed as generation 0 on the target and was
        // silently discarded by get_if_generation under any non-zero
        // generation — the flow lost its mid-stream state on migration.
        let mut src = FlowTable::new(8);
        src.put_gen(key(1), 42, 4096, 3);
        let exported = src.export(&key(1)).unwrap();
        assert_eq!(exported.generation, 3);

        let mut dst = FlowTable::new(8);
        dst.import(key(1), exported);
        let fs = dst
            .get_if_generation(&key(1), 3)
            .expect("generation survives migration");
        assert_eq!((fs.state, fs.offset, fs.generation), (42, 4096, 3));

        // And a mismatched generation still re-anchors, as ever.
        let mut dst2 = FlowTable::new(8);
        dst2.import(key(1), exported);
        assert!(dst2.get_if_generation(&key(1), 4).is_none());
    }

    #[test]
    fn migration_preserves_quarantine() {
        // Regression: import used to route through put(), which cannot
        // carry a quarantine — migrating a quarantined flow laundered
        // its fail-closed verdict away on the target instance.
        let mut src = FlowTable::new(8);
        src.put_gen(key(2), 9, 100, 1);
        src.quarantine(key(2));
        let exported = src.export(&key(2)).unwrap();
        assert!(exported.quarantined);

        let mut dst = FlowTable::new(8);
        dst.import(key(2), exported);
        assert!(dst.is_quarantined(&key(2)));

        // Sticky on the target too: a later state write keeps it.
        dst.put_gen(key(2), 11, 200, 1);
        assert!(dst.is_quarantined(&key(2)));
    }

    #[test]
    fn eviction_prefers_non_quarantined() {
        // Regression: evict() used to drop the LRU half indiscriminately,
        // so churning disposable flows could flush a quarantine verdict
        // (fail-open). The verdict must outlive arbitrary churn.
        let mut t = FlowTable::new(16);
        t.quarantine(key(0));
        for i in 1..200 {
            t.put(key(i), i as u32, 0);
        }
        assert!(t.len() <= 16);
        assert!(
            t.is_quarantined(&key(0)),
            "churn must not flush a quarantine verdict"
        );
        assert_eq!(t.quarantined_evictions(), 0);
    }

    #[test]
    fn quarantine_dominated_table_stays_bounded_and_counts() {
        // When the table is nothing but verdicts, the bound still holds
        // — and every dropped verdict is counted, never silent.
        let mut t = FlowTable::new(8);
        for i in 0..20 {
            t.quarantine(key(i));
        }
        assert!(t.len() <= 8);
        assert_eq!(t.quarantined_evictions() as usize, 20 - t.len());
        // The most recent verdicts are the ones kept.
        assert!(t.is_quarantined(&key(19)));
    }

    #[test]
    fn generation_mismatch_reads_as_a_fresh_flow() {
        let mut t = FlowTable::new(8);
        t.put_gen(key(1), 42, 1000, 3);
        // Same generation: state restored.
        let fs = t.get_if_generation(&key(1), 3).unwrap();
        assert_eq!((fs.state, fs.offset, fs.generation), (42, 1000, 3));
        // After a swap to generation 4, the old state is unusable — the
        // flow re-anchors as if new, and the stale entry is dropped.
        assert!(t.get_if_generation(&key(1), 4).is_none());
        assert!(t.get(&key(1)).is_none());
    }

    #[test]
    fn quarantine_is_sticky_across_state_writes() {
        let mut t = FlowTable::new(8);
        assert!(!t.is_quarantined(&key(1)));
        t.quarantine(key(1));
        assert!(t.is_quarantined(&key(1)));
        // Storing fresh scan state (any generation) must not clear it.
        t.put_gen(key(1), 9, 100, 2);
        assert!(t.is_quarantined(&key(1)));
        // Quarantining a flow with existing state preserves that state.
        t.put(key(2), 5, 50);
        t.quarantine(key(2));
        let fs = t.get(&key(2)).unwrap();
        assert_eq!((fs.state, fs.offset), (5, 50));
        assert!(fs.quarantined);
        // Removal forgets the verdict with the flow.
        t.remove(&key(1));
        assert!(!t.is_quarantined(&key(1)));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut t = FlowTable::new(0);
        t.put(key(1), 1, 1);
        assert!(t.len() <= 1);
    }
}
