//! # dpi-sdn
//!
//! A discrete-event simulated SDN substrate — the stand-in for the paper's
//! Mininet/POX/OpenFlow 1.0 environment (§6.1).
//!
//! Pieces:
//!
//! * [`flowtable`] — OpenFlow-style match/action tables with priorities:
//!   matching on ingress port, EtherType, VLAN VID (the policy-chain tag),
//!   the IPv4 5-tuple and the ECN match-mark; actions push/pop tags,
//!   rewrite ECN, output, drop.
//! * [`switch`] — a learningless, rule-driven switch.
//! * [`network`] — nodes (anything implementing [`Node`]) wired by links,
//!   with a FIFO event loop that moves packets until quiescence.
//! * [`tsa`] — the Traffic Steering Application (SIMPLE-style, §4):
//!   compiles policy chains into flow rules over a star topology exactly
//!   like the paper's experimental setup ("two user hosts, two middlebox
//!   hosts, and a DPI service instance host … all connected through a
//!   single switch", §6.1), tagging packets with their chain id on
//!   ingress and walking them DPI-first through the chain.
//!
//! The simulator is functional, not temporal: the paper explicitly did
//! *not* use Mininet for performance numbers ("we did not use Mininet for
//! performance testing as it incurs major overheads", §6.2), and neither
//! does this reproduction — throughput experiments run the DPI engine
//! directly while the simulator validates steering, tagging and
//! result-delivery behaviour.

pub mod controller;
pub mod flowtable;
pub mod network;
pub mod switch;
pub mod tsa;

pub use controller::{DatapathId, SdnController, SdnError};
pub use flowtable::{Action, FlowMatch, FlowRule, FlowTable};
pub use network::{Network, Node, NodeId, PortId};
pub use switch::Switch;
pub use tsa::{StarTopology, TrafficSteeringApp};
