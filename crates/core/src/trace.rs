//! Structured tracing: the observability substrate (DESIGN.md §10).
//!
//! The paper's operational claims assume the operator can *see* what the
//! DPI service is doing: §4.3.1's telemetry-driven engine selection and
//! §4.1's transfer accounting are both meaningless without an event
//! timeline to attribute them to. This module turns every interesting
//! moment in the system — a shard restarting, an instance dying, an
//! update rolling back, a result packet lost after retries — into a
//! fixed-size, timestamped [`TraceEvent`] that post-mortem tooling can
//! read back in one global order.
//!
//! Design constraints, in order:
//!
//! 1. **The hot path pays (almost) nothing.** Events are `Copy` and land
//!    in pre-allocated ring buffers; recording is a sequence-number
//!    `fetch_add`, an `Instant` read and a slot write. Per-packet scan
//!    events are *sampled* (1 in [`PACKET_SAMPLE_EVERY`]), so the scan
//!    loop's per-byte work is untouched and the per-packet overhead is a
//!    branch. `bench_trace` proves the traced/untraced throughput delta
//!    stays within budget.
//! 2. **Workers never share a lock.** Each shard owns a private
//!    [`TraceWriter`] (inside its `ShardState`); the only shared state a
//!    record touches is the atomic sequence counter. Writers are drained
//!    into the tracer's global ring at the batch boundary — the same
//!    drain barrier the engine hot-swap uses.
//! 3. **Bounded memory, oldest dropped.** Rings overwrite their oldest
//!    events and count what they dropped ([`Tracer::dropped`]), so a
//!    chaos soak can run forever without growing.
//! 4. **One global order.** Every event carries a globally unique,
//!    monotonically assigned `seq`; [`Tracer::drain`]/[`Tracer::snapshot`]
//!    return events sorted by it, so "the kill happened before the
//!    re-steer" is a comparison of two integers, regardless of which ring
//!    the events travelled through.
//!
//! Export formats: [`to_jsonl`] renders events one-JSON-object-per-line
//! for post-mortem analysis of chaos runs; the Prometheus-style metrics
//! text lives in [`crate::metrics`] (driven by `SystemHandle::
//! metrics_text()` at the facade).

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Per-packet scan events are recorded once every this many packets per
/// shard. Sampling keeps the hot path's tracing cost to a branch on the
/// non-sampled packets.
pub const PACKET_SAMPLE_EVERY: u64 = 64;

/// Default capacity of the tracer's global ring.
pub const DEFAULT_SINK_CAPACITY: usize = 16_384;

/// Default capacity of a per-shard writer's local ring.
pub const DEFAULT_WRITER_CAPACITY: usize = 2_048;

/// Which component emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum TraceSource {
    /// The sharded scan pipeline's supervisor (batch-level events).
    Scanner,
    /// One worker shard of the pipeline.
    Shard(u32),
    /// The DPI controller (health, steering, updates).
    Controller,
    /// One in-network DPI service instance (result delivery path).
    Instance(u32),
    /// The chaos engine (fault injections).
    Chaos,
    /// System assembly / facade-level events.
    System,
}

/// What happened. Every variant is `Copy` and carries only numeric
/// context, so events fit fixed ring slots with no per-event allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum TraceKind {
    // ---- scan path -------------------------------------------------
    /// A batch entered the sharded pipeline.
    BatchStart {
        /// Packets in the batch.
        packets: u64,
    },
    /// A batch left the pipeline (after the drain barrier).
    BatchEnd {
        /// Result packets produced.
        results: u64,
        /// Wall time spent inside `inspect_batch`.
        duration_us: u64,
    },
    /// A sampled per-packet scan observation (1 in
    /// [`PACKET_SAMPLE_EVERY`] scans per shard).
    PacketSample {
        /// Payload bytes scanned.
        bytes: u64,
        /// Matches reported.
        matches: u64,
    },
    /// A stream reassembler evicted buffered out-of-order data to make
    /// room (the capacity bound's evict-oldest policy).
    ReassemblyEvicted {
        /// Bytes evicted.
        bytes: u64,
    },
    /// The reassembler detected byte-level conflicts: overlapping copies
    /// of the same sequence range carrying different bytes (DESIGN.md
    /// §13). Resolved per the configured `ConflictPolicy`; never silent.
    ReassemblyConflict {
        /// Bytes of the losing copies across the conflicts in this batch.
        bytes: u64,
    },
    /// A reassembly conflict quarantined a flow under
    /// `ConflictPolicy::RejectFlow`: nothing further is scanned for it
    /// and its packets carry a fail-closed verdict mark.
    FlowQuarantined {
        /// Bytes the flow had delivered before quarantine.
        bytes: u64,
    },
    /// The flow arena force-evicted quarantined flows because every slot
    /// held a quarantine verdict (batch-aggregated per shard). Each one
    /// is a verdict the engine could no longer honour — counted, never
    /// silent (DESIGN.md §15).
    QuarantinedFlowEvicted {
        /// Quarantined flows dropped.
        flows: u64,
    },
    /// The idle-timeout timer wheel aged out flows and released their
    /// state (batch-aggregated per shard).
    FlowsAged {
        /// Flows released.
        flows: u64,
    },
    /// The L7 layer identified a flow's application protocol from its
    /// first reassembled bytes (DESIGN.md §14). An HTTP→WebSocket
    /// upgrade emits a second event for the same flow.
    L7Identified {
        /// The protocol named (possibly `Unknown` → raw fallback).
        protocol: crate::l7::L7Protocol,
    },
    /// An L7 policy action other than plain interception was applied to
    /// an identified flow.
    L7ActionApplied {
        /// The protocol the policy keyed on.
        protocol: crate::l7::L7Protocol,
        /// What the policy did.
        action: crate::l7::L7Action,
    },
    /// An L7 decoder hit malformed framing or a corrupt encoded body.
    /// Decode failures fail open — the affected bytes are scanned raw —
    /// so this event is a data-quality signal, not a coverage hole.
    L7DecodeError {
        /// The protocol being decoded.
        protocol: crate::l7::L7Protocol,
    },
    /// An L7 per-protocol inspection size limit truncated decoded
    /// output (the decompression-bomb guard reports through this).
    L7Truncated {
        /// The protocol being decoded.
        protocol: crate::l7::L7Protocol,
        /// Decoded bytes retained at the truncation point.
        bytes: u64,
    },
    /// A worker shard slept through an injected stall.
    ShardStalled {
        /// Shard-local packet ordinal that triggered the stall.
        ordinal: u64,
        /// Stall length.
        millis: u64,
    },
    /// A shard blew its per-packet watchdog deadline.
    WatchdogTripped {
        /// Packets drained unscanned after the trip.
        lost_scans: u64,
    },
    /// A shard worker panicked mid-batch.
    WorkerPanicked {
        /// Packets routed to the shard but never scanned.
        lost_scans: u64,
    },
    /// The supervisor rebuilt a shard (fresh flow table).
    ShardRestarted {
        /// Lifetime restarts of this shard, after this one.
        restarts: u64,
    },
    /// The scanner adopted a new engine generation at the drain barrier.
    EngineSwapped {
        /// Generation serving before the swap.
        from_generation: u32,
        /// Generation serving after the swap.
        to_generation: u32,
        /// The drain-barrier pause.
        pause_us: u64,
        /// Scan kernel of the adopted engine ("full", "prefiltered", …).
        kernel: &'static str,
    },
    /// A stale-generation swap offer was refused.
    SwapRejected {
        /// Generation currently serving.
        current_generation: u32,
        /// Generation offered.
        offered_generation: u32,
    },
    /// A shard (or instance) crossed its high watermark and entered
    /// overload: forwarded packets will be CE-marked and fail-open scans
    /// may be shed until it clears.
    OverloadEntered {
        /// Queue depth (shard) or window packets (instance) at entry.
        depth: u64,
        /// Scan-latency EWMA in µs at entry (0 on the instance path).
        ewma_us: u64,
    },
    /// A shard (or instance) fell below both low watermarks and cleared
    /// overload.
    OverloadCleared {
        /// Queue depth or window packets at the clearing observation.
        depth: u64,
        /// Scan-latency EWMA in µs at the clearing observation.
        ewma_us: u64,
    },
    /// Scans shed while overloaded (batch-aggregated per shard; the
    /// packets flowed unscanned and CE-marked, fail-open).
    OverloadShed {
        /// Packets whose scan was skipped.
        packets: u64,
        /// Payload bytes those packets carried.
        bytes: u64,
    },
    /// Packets CE-marked under overload (batch-aggregated per shard).
    OverloadCeMarked {
        /// Packets marked.
        packets: u64,
    },
    /// Fail-open scans shed under overload attributed to one tenant by
    /// the weighted-fair shed policy (batch-aggregated per shard,
    /// DESIGN.md §16). Only tenants at or over their fair share ever
    /// appear here.
    TenantShed {
        /// The tenant whose traffic was shed.
        tenant: u16,
        /// Packets whose scan was skipped.
        packets: u64,
        /// Payload bytes those packets carried.
        bytes: u64,
    },
    /// A fail-open scan was skipped because the tenant's scan-byte
    /// window budget ran dry (DESIGN.md §16). The packet still flowed;
    /// fail-closed chains are exempt and never land here.
    TenantQuotaRejected {
        /// The tenant whose budget ran out.
        tenant: u16,
        /// Payload bytes the skipped scan would have covered.
        bytes: u64,
    },
    /// A tenant's generation stamp changed across an engine adoption —
    /// the observable edge of a tenant-scoped canary rollout.
    TenantGenerationSwapped {
        /// The tenant whose stamp moved.
        tenant: u16,
        /// Stamp before the adoption.
        from_generation: u32,
        /// Stamp after the adoption.
        to_generation: u32,
    },

    // ---- controller ------------------------------------------------
    /// An instance missed enough heartbeat windows to be suspected.
    HealthSuspect {
        /// Controller-side instance id.
        instance: u32,
    },
    /// An instance was declared dead; its flows will be re-steered.
    HealthDead {
        /// Controller-side instance id.
        instance: u32,
    },
    /// A suspect or dead instance heartbeated again.
    HealthRecovered {
        /// Controller-side instance id.
        instance: u32,
    },
    /// A dead instance's ingress rules were rewritten to a survivor.
    Resteered {
        /// Fleet index of the dead instance.
        dead_instance: u32,
        /// Fleet index of the survivor now serving its flows.
        survivor: u32,
        /// Steering rules rewritten.
        rules: u64,
    },
    /// The load balancer migrated flows from a hot instance to a cold
    /// one (PRIO_STEER rewrites, anti-flap cooldown respected).
    FlowsRebalanced {
        /// Fleet index of the hot (source) instance.
        hot_instance: u32,
        /// Fleet index of the cold (target) instance.
        cold_instance: u32,
        /// Flows re-steered this round.
        flows: u64,
    },
    /// The orchestrator froze a configuration into a new generation.
    UpdatePrepared {
        /// The generation the artifact installs.
        generation: u32,
        /// Controller configuration version it was prepared from.
        version: u64,
        /// Bytes shipped per instance (Fig. 11's unit).
        transfer_bytes: u64,
    },
    /// The canary swapped and passed verification.
    UpdateCanaryPassed {
        /// The generation under rollout.
        generation: u32,
        /// Controller-side id of the canary instance.
        instance: u32,
    },
    /// The whole fleet committed to a generation.
    UpdateCommitted {
        /// The committed generation.
        generation: u32,
        /// Instances now serving it.
        instances: u64,
    },
    /// A rollout failed and every updated instance was returned to the
    /// previous committed generation.
    UpdateRolledBack {
        /// The generation that failed to roll out.
        generation: u32,
        /// The generation the fleet fell back to.
        to_generation: u32,
    },

    // ---- result delivery (middlebox path) --------------------------
    /// A result packet needed retries but was delivered.
    ResultRetried {
        /// Total delivery attempts (≥ 2).
        attempts: u32,
        /// Sum of scheduled backoffs.
        backoff_us: u64,
    },
    /// A result packet was lost after exhausting every attempt
    /// (fail-closed: the verdict is gone, never guessed).
    ResultLost {
        /// Attempts made.
        attempts: u32,
    },
    /// The network duplicated a delivered result packet.
    ResultDuplicated,

    // ---- chaos fault injections ------------------------------------
    /// The fault plan killed a DPI instance.
    FaultInstanceKilled {
        /// Fleet index of the killed instance.
        instance: u32,
        /// Instance-local packet ordinal at which it died.
        at_packet: u64,
    },
    /// The fault plan corrupted a rule update in transit.
    FaultUpdateCorrupted {
        /// 0-based ordinal of the corrupted update.
        ordinal: u64,
    },
    /// The fault plan opened a traffic burst window: the source sends
    /// every payload `factor`× until the window closes.
    FaultBurstStarted {
        /// Send multiplier inside the window.
        factor: u32,
        /// 0-based source-packet ordinal at which the burst began.
        at_packet: u64,
    },
    /// The fault plan injected an adversarial (evasion-attempt) flow
    /// built by the `dpi_traffic` evasion generator.
    FaultEvasiveFlow {
        /// Seed handed to the evasion generator for this flow — replays
        /// the exact segment stream.
        seed: u64,
    },
}

/// One recorded event: globally ordered (`seq`), timestamped against the
/// tracer's epoch (`t_us`), attributed to a source component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TraceEvent {
    /// Globally unique, monotonically assigned sequence number — the
    /// system-wide happens-before order.
    pub seq: u64,
    /// Microseconds since the tracer was created (monotonic clock).
    pub t_us: u64,
    /// Emitting component.
    pub source: TraceSource,
    /// What happened.
    pub kind: TraceKind,
}

/// A bounded overwrite-oldest event buffer.
#[derive(Debug)]
struct Ring {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Next write position (wraps).
    next: usize,
    /// Events overwritten before being drained.
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            buf: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            next: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.dropped += 1;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// All buffered events in insertion order; leaves the ring empty.
    fn drain(&mut self) -> Vec<TraceEvent> {
        let mut out = if self.buf.len() == self.capacity {
            // Oldest first: rotate so `next` (the oldest slot) leads.
            let mut v = self.buf.split_off(self.next);
            v.append(&mut self.buf);
            v
        } else {
            std::mem::take(&mut self.buf)
        };
        self.next = 0;
        out.shrink_to_fit();
        out
    }

    fn len(&self) -> usize {
        self.buf.len()
    }
}

/// The global event sink: hands out sequence numbers and per-shard
/// writers, absorbs their rings at drain barriers, and serves the merged,
/// seq-ordered timeline.
///
/// ```
/// use dpi_core::trace::{TraceKind, TraceSource, Tracer};
/// use std::sync::Arc;
///
/// let tracer = Arc::new(Tracer::new());
/// tracer.record(TraceSource::System, TraceKind::BatchStart { packets: 8 });
/// let mut w = tracer.writer(TraceSource::Shard(0));
/// w.record(TraceKind::PacketSample { bytes: 64, matches: 1 });
/// tracer.absorb(&mut w);
/// let events = tracer.drain();
/// assert_eq!(events.len(), 2);
/// assert!(events[0].seq < events[1].seq);
/// ```
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    seq: AtomicU64,
    sink: Mutex<Ring>,
    /// Drops reported by absorbed writers, folded in at absorb time.
    writer_dropped: AtomicU64,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// A tracer with the default sink capacity.
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_SINK_CAPACITY)
    }

    /// A tracer whose global ring holds `capacity` events.
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            sink: Mutex::new(Ring::new(capacity)),
            writer_dropped: AtomicU64::new(0),
        }
    }

    /// Microseconds elapsed since the tracer's epoch.
    pub fn elapsed_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn stamp(&self, source: TraceSource, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            t_us: self.elapsed_us(),
            source,
            kind,
        }
    }

    /// Records one event directly into the global ring (control-plane
    /// path: takes the sink lock).
    pub fn record(&self, source: TraceSource, kind: TraceKind) {
        let ev = self.stamp(source, kind);
        self.lock().push(ev);
    }

    /// A private writer for a (typically per-shard) component: records
    /// lock-free into its own ring, to be [`Tracer::absorb`]ed at a drain
    /// barrier.
    pub fn writer(self: &Arc<Self>, source: TraceSource) -> TraceWriter {
        self.writer_with_capacity(source, DEFAULT_WRITER_CAPACITY)
    }

    /// A writer with an explicit local ring capacity.
    pub fn writer_with_capacity(
        self: &Arc<Self>,
        source: TraceSource,
        capacity: usize,
    ) -> TraceWriter {
        TraceWriter {
            tracer: Arc::clone(self),
            source,
            ring: Ring::new(capacity),
        }
    }

    /// Moves everything a writer buffered into the global ring.
    pub fn absorb(&self, writer: &mut TraceWriter) {
        let events = writer.ring.drain();
        let dropped = std::mem::take(&mut writer.ring.dropped);
        self.writer_dropped.fetch_add(dropped, Ordering::Relaxed);
        if events.is_empty() {
            return;
        }
        let mut sink = self.lock();
        for ev in events {
            sink.push(ev);
        }
    }

    /// Events recorded but overwritten before a drain (global ring plus
    /// every absorbed writer ring).
    pub fn dropped(&self) -> u64 {
        self.lock().dropped + self.writer_dropped.load(Ordering::Relaxed)
    }

    /// Events currently buffered in the global ring.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the global ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes every buffered event, sorted by `seq` — the post-mortem
    /// timeline. The ring is left empty.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut events = self.lock().drain();
        events.sort_unstable_by_key(|e| e.seq);
        events
    }

    /// A sorted copy of the buffered events, without clearing.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut events = self.lock().buf.clone();
        events.sort_unstable_by_key(|e| e.seq);
        events
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.sink.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A per-component event writer: records into a private ring with no
/// locking (the only shared touch is the tracer's sequence counter), and
/// is drained into the global ring by [`Tracer::absorb`].
#[derive(Debug)]
pub struct TraceWriter {
    tracer: Arc<Tracer>,
    source: TraceSource,
    ring: Ring,
}

impl TraceWriter {
    /// Records one event into the local ring.
    pub fn record(&mut self, kind: TraceKind) {
        let ev = self.tracer.stamp(self.source, kind);
        self.ring.push(ev);
    }

    /// The source this writer attributes events to.
    pub fn source(&self) -> TraceSource {
        self.source
    }

    /// Events currently buffered locally.
    pub fn buffered(&self) -> usize {
        self.ring.len()
    }
}

/// Renders events as JSON Lines — one object per line, in the order
/// given — for post-mortem analysis of chaos runs.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        out.push_str(&serde_json::to_string(ev).expect("trace events always serialize"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_drain_in_global_seq_order() {
        let tracer = Arc::new(Tracer::new());
        let mut w0 = tracer.writer(TraceSource::Shard(0));
        let mut w1 = tracer.writer(TraceSource::Shard(1));
        // Interleave direct records and writer records.
        tracer.record(TraceSource::Scanner, TraceKind::BatchStart { packets: 4 });
        w0.record(TraceKind::PacketSample {
            bytes: 10,
            matches: 0,
        });
        w1.record(TraceKind::PacketSample {
            bytes: 20,
            matches: 1,
        });
        tracer.record(
            TraceSource::Scanner,
            TraceKind::BatchEnd {
                results: 1,
                duration_us: 5,
            },
        );
        tracer.absorb(&mut w1);
        tracer.absorb(&mut w0);
        let events = tracer.drain();
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert_eq!(events[1].source, TraceSource::Shard(0));
        assert_eq!(events[2].source, TraceSource::Shard(1));
        assert!(tracer.is_empty(), "drain clears the ring");
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let tracer = Arc::new(Tracer::with_capacity(4));
        for i in 0..10u64 {
            tracer.record(TraceSource::System, TraceKind::BatchStart { packets: i });
        }
        assert_eq!(tracer.len(), 4);
        assert_eq!(tracer.dropped(), 6);
        let events = tracer.drain();
        // The four newest survive, oldest-first.
        let kept: Vec<u64> = events
            .iter()
            .map(|e| match e.kind {
                TraceKind::BatchStart { packets } => packets,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn writer_ring_drops_fold_into_tracer_drops() {
        let tracer = Arc::new(Tracer::new());
        let mut w = tracer.writer_with_capacity(TraceSource::Shard(0), 2);
        for i in 0..5u64 {
            w.record(TraceKind::PacketSample {
                bytes: i,
                matches: 0,
            });
        }
        assert_eq!(w.buffered(), 2);
        tracer.absorb(&mut w);
        assert_eq!(tracer.dropped(), 3);
        assert_eq!(tracer.len(), 2);
        // Absorb is idempotent on an empty writer.
        tracer.absorb(&mut w);
        assert_eq!(tracer.len(), 2);
    }

    #[test]
    fn timestamps_are_monotonic_in_seq_order() {
        let tracer = Arc::new(Tracer::new());
        for _ in 0..50 {
            tracer.record(TraceSource::Chaos, TraceKind::ResultDuplicated);
        }
        let events = tracer.drain();
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
            assert!(pair[0].t_us <= pair[1].t_us);
        }
    }

    #[test]
    fn jsonl_renders_one_parseable_object_per_line() {
        let tracer = Arc::new(Tracer::new());
        tracer.record(
            TraceSource::Controller,
            TraceKind::HealthDead { instance: 3 },
        );
        tracer.record(
            TraceSource::Controller,
            TraceKind::Resteered {
                dead_instance: 3,
                survivor: 1,
                rules: 7,
            },
        );
        let jsonl = to_jsonl(&tracer.snapshot());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"seq\":"));
            assert!(line.contains("\"t_us\":"));
            assert!(line.contains("\"source\":"));
            assert!(line.contains("\"kind\":"));
        }
        assert!(lines[0].contains("health_dead"));
        assert!(lines[1].contains("resteered"));
    }
}
