//! Telemetry-driven fleet rebalancing.
//!
//! §4.3 has the controller "balance the load between the different DPI
//! service instances" using the telemetries the instances export. The
//! failover path (re-steer *all* flows of a dead instance) already
//! exists; this module adds the graceful version: when one instance runs
//! persistently hotter than its peers, migrate a bounded number of
//! *whole flows* from the hottest to the coldest instance each heartbeat
//! round. Whole flows, because mid-flow scan state (DFA state, flow
//! offset) lives on the instance that saw the flow's first packet —
//! splitting a flow across instances would break cross-packet matching.
//!
//! Two anti-flap mechanisms keep the steering table quiet:
//!
//! * **per-flow cooldown** — a migrated flow is frozen for
//!   [`BalancePolicy::cooldown_rounds`] rounds, so the same flow cannot
//!   ping-pong between instances on alternating rounds;
//! * **pair reversal veto** — if this round's hot/cold pick is exactly
//!   last round's pair reversed, the round is skipped: oscillation means
//!   the migration budget overshot, and moving flows back would churn
//!   switch rules for nothing.
//!
//! The balancer consumes *cumulative* load counters (packets scanned,
//! as self-reported in heartbeats) and differences them internally, so
//! it measures per-round rates and is immune to counter resets
//! (saturating deltas, like [`dpi_core::Telemetry::delta_since`]).

use crate::controller::InstanceId;
use std::collections::BTreeMap;

/// Thresholds and limits for the rebalancing loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalancePolicy {
    /// Per-round load delta (packets) at or above which an instance
    /// counts as hot. Below this, the fleet is idle enough that skew
    /// does not matter.
    pub load_high: u64,
    /// Hot delta must be at least this multiple of the cold delta for a
    /// migration round to trigger (imbalance hysteresis; ≥ 1.0).
    pub min_imbalance: f64,
    /// Maximum flows migrated per round. Bounds the per-round steering
    /// churn (each migration rewrites switch rules).
    pub migration_budget: usize,
    /// Rounds a migrated flow is frozen before it may move again.
    pub cooldown_rounds: u32,
}

impl Default for BalancePolicy {
    fn default() -> BalancePolicy {
        BalancePolicy {
            load_high: 64,
            min_imbalance: 2.0,
            migration_budget: 4,
            cooldown_rounds: 4,
        }
    }
}

/// One round's migration decision: move up to `budget` flows from `hot`
/// to `cold`. The caller (which owns the flow → instance steering table)
/// picks the concrete flows via [`LoadBalancer::select_flows`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalancePlan {
    /// The instance to unload.
    pub hot: InstanceId,
    /// The instance to receive the flows.
    pub cold: InstanceId,
    /// Flow budget for this round.
    pub budget: usize,
    /// Observed per-round deltas behind the decision (for logs/traces).
    pub hot_delta: u64,
    /// The cold instance's per-round delta.
    pub cold_delta: u64,
}

/// The controller-side load balancer: feed it one load snapshot per
/// heartbeat round, act on the plan it returns (if any).
#[derive(Debug)]
pub struct LoadBalancer {
    policy: BalancePolicy,
    /// Last cumulative load per instance, for differencing.
    last_loads: BTreeMap<InstanceId, u64>,
    /// Flow key → rounds it remains frozen.
    flow_cooldown: BTreeMap<u64, u32>,
    /// Last round's (hot, cold) pick, for the reversal veto.
    last_pair: Option<(InstanceId, InstanceId)>,
    /// Total flows migrated over the balancer's lifetime.
    migrations: u64,
    /// Migrations attributed to each tenant (DESIGN.md §16): callers that
    /// know which tenant's flows a plan moved record it here so operators
    /// can see whose load is churning the steering table.
    tenant_migrations: BTreeMap<u16, u64>,
    /// Rounds observed.
    rounds: u64,
}

impl LoadBalancer {
    /// A balancer with the given policy.
    pub fn new(policy: BalancePolicy) -> LoadBalancer {
        assert!(policy.min_imbalance >= 1.0, "imbalance ratio below 1");
        LoadBalancer {
            policy,
            last_loads: BTreeMap::new(),
            flow_cooldown: BTreeMap::new(),
            last_pair: None,
            migrations: 0,
            tenant_migrations: BTreeMap::new(),
            rounds: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> BalancePolicy {
        self.policy
    }

    /// Total flows migrated so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Rounds observed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Feeds one heartbeat round of `(instance, cumulative load)` pairs —
    /// only instances eligible for steering (callers exclude the dead) —
    /// and returns a migration plan when the imbalance thresholds and
    /// anti-flap checks all pass.
    pub fn observe_round(&mut self, loads: &[(InstanceId, u64)]) -> Option<RebalancePlan> {
        self.rounds += 1;
        // Age flow cooldowns: a flow frozen for N rounds thaws after the
        // N-th subsequent round closes.
        self.flow_cooldown.retain(|_, left| {
            *left -= 1;
            *left > 0
        });

        // Difference cumulative counters into per-round deltas.
        let mut deltas: Vec<(InstanceId, u64)> = loads
            .iter()
            .map(|&(id, cum)| {
                let prev = self.last_loads.insert(id, cum).unwrap_or(0);
                (id, cum.saturating_sub(prev))
            })
            .collect();
        if deltas.len() < 2 {
            return None;
        }
        // Ties break toward the lower instance id (sort is stable and
        // the input is already id-ordered by the caller's BTreeMap; sort
        // defensively anyway for determinism).
        deltas.sort_by_key(|&(id, _)| id);
        let &(hot, hot_delta) = deltas.iter().max_by_key(|&&(_, d)| d)?;
        let &(cold, cold_delta) = deltas.iter().min_by_key(|&&(_, d)| d)?;
        if hot == cold || hot_delta < self.policy.load_high {
            self.last_pair = None;
            return None;
        }
        // Imbalance hysteresis: the hot instance must be doing at least
        // `min_imbalance` times the cold one's work.
        if (hot_delta as f64) < self.policy.min_imbalance * (cold_delta.max(1) as f64) {
            self.last_pair = None;
            return None;
        }
        // Reversal veto: do not undo last round's migration direction.
        if self.last_pair == Some((cold, hot)) {
            self.last_pair = None;
            return None;
        }
        self.last_pair = Some((hot, cold));
        Some(RebalancePlan {
            hot,
            cold,
            budget: self.policy.migration_budget,
            hot_delta,
            cold_delta,
        })
    }

    /// Picks which of the hot instance's flows actually move under
    /// `plan`: the first `budget` candidates not in cooldown, in sorted
    /// key order (deterministic regardless of the caller's map iteration
    /// order). Selected flows are frozen for
    /// [`BalancePolicy::cooldown_rounds`].
    pub fn select_flows(&mut self, plan: &RebalancePlan, candidates: &[u64]) -> Vec<u64> {
        let mut keys: Vec<u64> = candidates.to_vec();
        keys.sort_unstable();
        keys.dedup();
        let picked: Vec<u64> = keys
            .into_iter()
            .filter(|k| !self.flow_cooldown.contains_key(k))
            .take(plan.budget)
            .collect();
        for &k in &picked {
            self.flow_cooldown.insert(k, self.policy.cooldown_rounds);
        }
        self.migrations += picked.len() as u64;
        picked
    }

    /// Attributes `flows` migrated flows to `tenant` — called by the
    /// steering-table owner after acting on a plan, since only it knows
    /// which tenant each selected flow key belongs to.
    pub fn note_tenant_migration(&mut self, tenant: dpi_core::TenantId, flows: u64) {
        *self.tenant_migrations.entry(tenant.0).or_insert(0) += flows;
    }

    /// Lifetime migrated-flow counts per tenant, sorted by tenant id.
    pub fn tenant_migrations(&self) -> Vec<(dpi_core::TenantId, u64)> {
        self.tenant_migrations
            .iter()
            .map(|(&t, &n)| (dpi_core::TenantId(t), n))
            .collect()
    }

    /// Whether a flow is currently frozen by a recent migration.
    pub fn in_cooldown(&self, flow_key: u64) -> bool {
        self.flow_cooldown.contains_key(&flow_key)
    }

    /// Forgets an instance (unregistered or dead): its stale cumulative
    /// counter must not poison the next delta if it re-registers.
    pub fn forget_instance(&mut self, id: InstanceId) {
        self.last_loads.remove(&id);
        if let Some((h, c)) = self.last_pair {
            if h == id || c == id {
                self.last_pair = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balancer() -> LoadBalancer {
        LoadBalancer::new(BalancePolicy {
            load_high: 100,
            min_imbalance: 2.0,
            migration_budget: 2,
            cooldown_rounds: 2,
        })
    }

    #[test]
    fn tenant_migration_attribution_accumulates() {
        let mut b = balancer();
        b.note_tenant_migration(dpi_core::TenantId(2), 3);
        b.note_tenant_migration(dpi_core::TenantId(1), 1);
        b.note_tenant_migration(dpi_core::TenantId(2), 2);
        assert_eq!(
            b.tenant_migrations(),
            vec![(dpi_core::TenantId(1), 1), (dpi_core::TenantId(2), 5)]
        );
    }

    #[test]
    fn balanced_fleet_produces_no_plan() {
        let mut b = balancer();
        assert!(b
            .observe_round(&[(InstanceId(0), 500), (InstanceId(1), 480)])
            .is_none());
        // Round 2: both advanced ~equally.
        assert!(b
            .observe_round(&[(InstanceId(0), 1000), (InstanceId(1), 990)])
            .is_none());
    }

    #[test]
    fn sustained_skew_yields_hot_to_cold_plan() {
        let mut b = balancer();
        b.observe_round(&[(InstanceId(0), 0), (InstanceId(1), 0)]);
        let plan = b
            .observe_round(&[(InstanceId(0), 1000), (InstanceId(1), 50)])
            .expect("10x skew above load_high must trigger");
        assert_eq!(plan.hot, InstanceId(0));
        assert_eq!(plan.cold, InstanceId(1));
        assert_eq!(plan.budget, 2);
        assert_eq!(plan.hot_delta, 1000);
        assert_eq!(plan.cold_delta, 50);
    }

    #[test]
    fn idle_fleet_skew_is_ignored() {
        // 10x relative skew, but the hot instance is below load_high:
        // rebalancing an idle fleet is pure churn.
        let mut b = balancer();
        b.observe_round(&[(InstanceId(0), 0), (InstanceId(1), 0)]);
        assert!(b
            .observe_round(&[(InstanceId(0), 90), (InstanceId(1), 9)])
            .is_none());
    }

    #[test]
    fn cumulative_counters_are_differenced() {
        let mut b = balancer();
        // Huge cumulative values, equal rates: no plan.
        b.observe_round(&[(InstanceId(0), 1_000_000), (InstanceId(1), 10)]);
        assert!(b
            .observe_round(&[(InstanceId(0), 1_000_200), (InstanceId(1), 210)])
            .is_none());
    }

    #[test]
    fn reversal_veto_blocks_pingpong() {
        let mut b = balancer();
        b.observe_round(&[(InstanceId(0), 0), (InstanceId(1), 0)]);
        let p1 = b
            .observe_round(&[(InstanceId(0), 1000), (InstanceId(1), 0)])
            .unwrap();
        assert_eq!((p1.hot, p1.cold), (InstanceId(0), InstanceId(1)));
        // Next round the load flipped (the migration overshot): the
        // reversed pair is vetoed once.
        assert!(b
            .observe_round(&[(InstanceId(0), 1000), (InstanceId(1), 1000)])
            .is_none());
        // Sustained reversal is eventually honored (it is real load).
        let p2 = b
            .observe_round(&[(InstanceId(0), 1000), (InstanceId(1), 2000)])
            .unwrap();
        assert_eq!((p2.hot, p2.cold), (InstanceId(1), InstanceId(0)));
    }

    #[test]
    fn select_flows_respects_budget_and_cooldown() {
        let mut b = balancer();
        b.observe_round(&[(InstanceId(0), 0), (InstanceId(1), 0)]);
        let plan = b
            .observe_round(&[(InstanceId(0), 1000), (InstanceId(1), 0)])
            .unwrap();
        let picked = b.select_flows(&plan, &[30, 10, 20, 40]);
        // Budget 2, sorted order: lowest keys move.
        assert_eq!(picked, vec![10, 20]);
        assert_eq!(b.migrations(), 2);
        assert!(b.in_cooldown(10) && b.in_cooldown(20));
        // While frozen, the same flows are skipped.
        let picked = b.select_flows(&plan, &[10, 20, 30]);
        assert_eq!(picked, vec![30]);
        // Cooldown (2 rounds) expires after two more observed rounds.
        b.observe_round(&[(InstanceId(0), 1000), (InstanceId(1), 0)]);
        assert!(b.in_cooldown(10));
        b.observe_round(&[(InstanceId(0), 1000), (InstanceId(1), 0)]);
        assert!(!b.in_cooldown(10));
    }

    #[test]
    fn forget_instance_clears_stale_state() {
        let mut b = balancer();
        b.observe_round(&[(InstanceId(0), 5000), (InstanceId(1), 0)]);
        b.forget_instance(InstanceId(0));
        // Re-registered at 0: without forgetting, the saturating delta
        // would hide real load; with it, the fresh counter stands alone.
        let plan = b.observe_round(&[(InstanceId(0), 900), (InstanceId(1), 0)]);
        assert!(plan.is_some());
    }
}
