//! Persisting workloads to disk.
//!
//! Experiments should be re-runnable bit-for-bit. The generators are
//! seeded, so persistence is optional — but exporting a workload lets the
//! same bytes be fed to an external DPI system for cross-validation, and
//! lets a long-to-generate trace be reused. The format is deliberately
//! trivial: a magic string, a count, then length-prefixed byte records.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"DPITRC01";

/// Errors while loading a workload file.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a workload file (or an unsupported version).
    BadMagic,
    /// A record length exceeds the remaining file or the sanity limit.
    BadRecord,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io: {e}"),
            PersistError::BadMagic => write!(f, "not a dpi-traffic workload file"),
            PersistError::BadRecord => write!(f, "corrupt record"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

/// Largest single record accepted on load (sanity bound against corrupt
/// files — no packet payload or pattern approaches this).
const MAX_RECORD: u32 = 16 * 1024 * 1024;

/// Writes a list of byte records (payloads or patterns) to `path`.
pub fn save_records(path: &Path, records: &[Vec<u8>]) -> Result<(), PersistError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(records.len() as u32).to_le_bytes())?;
    for r in records {
        w.write_all(&(r.len() as u32).to_le_bytes())?;
        w.write_all(r)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a record list written by [`save_records`].
pub fn load_records(path: &Path) -> Result<Vec<Vec<u8>>, PersistError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let mut n4 = [0u8; 4];
    r.read_exact(&mut n4)?;
    let n = u32::from_le_bytes(n4);
    let mut out = Vec::with_capacity(n.min(1 << 20) as usize);
    for _ in 0..n {
        r.read_exact(&mut n4)?;
        let len = u32::from_le_bytes(n4);
        if len > MAX_RECORD {
            return Err(PersistError::BadRecord);
        }
        let mut rec = vec![0u8; len as usize];
        r.read_exact(&mut rec).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                PersistError::BadRecord
            } else {
                PersistError::Io(e)
            }
        })?;
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dpi-traffic-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_a_trace() {
        let trace = crate::trace::TraceConfig {
            packets: 50,
            ..Default::default()
        }
        .generate(&[]);
        let path = tmp("trace.bin");
        save_records(&path, &trace).unwrap();
        let back = load_records(&path).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn round_trips_empty_and_binary_records() {
        let records = vec![Vec::new(), vec![0u8, 255, 1, 254], b"text".to_vec()];
        let path = tmp("mixed.bin");
        save_records(&path, &records).unwrap();
        assert_eq!(load_records(&path).unwrap(), records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_magic_and_truncation() {
        let path = tmp("bad.bin");
        std::fs::write(&path, b"NOTMAGIC????").unwrap();
        assert!(matches!(
            load_records(&path).unwrap_err(),
            PersistError::BadMagic
        ));
        // Valid header, truncated record body.
        let records = vec![vec![9u8; 100]];
        save_records(&path, &records).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 10]).unwrap();
        assert!(matches!(
            load_records(&path).unwrap_err(),
            PersistError::BadRecord
        ));
        std::fs::remove_file(&path).ok();
    }
}
