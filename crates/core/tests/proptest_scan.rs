//! Property tests for §5.2's scan semantics.

use dpi_core::report::{compress_matches, expand_records};
use dpi_core::{DpiInstance, InstanceConfig, MiddleboxId, MiddleboxProfile, RuleSpec};
use dpi_packet::ipv4::IpProtocol;
use dpi_packet::FlowKey;
use proptest::prelude::*;
use std::net::Ipv4Addr;

const SF: MiddleboxId = MiddleboxId(0); // stateful
const SL: MiddleboxId = MiddleboxId(1); // stateless

fn patterns() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(
        prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c']), 2..6),
        1..5,
    )
}

fn payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c', b'z']), 0..150)
}

fn instance(pats: &[Vec<u8>]) -> DpiInstance {
    let cfg = InstanceConfig::new()
        .with_middlebox(MiddleboxProfile::stateful(SF), RuleSpec::exact_set(pats))
        .with_middlebox(MiddleboxProfile::stateless(SL), RuleSpec::exact_set(pats))
        .with_chain(1, vec![SF, SL]);
    DpiInstance::new(cfg).unwrap()
}

fn flow() -> FlowKey {
    FlowKey {
        src_ip: Ipv4Addr::new(1, 2, 3, 4),
        dst_ip: Ipv4Addr::new(5, 6, 7, 8),
        protocol: IpProtocol::Tcp,
        src_port: 1234,
        dst_port: 80,
    }
}

/// Flow-absolute match positions for one middlebox across a packet split.
fn flow_positions(dpi: &mut DpiInstance, mb: MiddleboxId, chunks: &[&[u8]]) -> Vec<(u16, u64)> {
    let mut out = Vec::new();
    for chunk in chunks {
        let res = dpi.scan_payload(1, Some(flow()), chunk).unwrap();
        for r in &res.reports {
            if r.middlebox_id == mb.0 {
                for (pid, pos) in expand_records(&r.records) {
                    out.push((pid, res.flow_offset + u64::from(pos)));
                }
            }
        }
    }
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn stateful_split_equals_whole(pats in patterns(), data in payload(), cut in 0usize..150) {
        // Deduplicate patterns: duplicate rules in one set are legal but
        // make position multisets differ trivially.
        let mut pats = pats;
        pats.sort();
        pats.dedup();
        let cut = cut.min(data.len());

        // Whole payload in one packet.
        let mut whole_dpi = instance(&pats);
        let whole = flow_positions(&mut whole_dpi, SF, &[&data]);

        // Split into two packets.
        let mut split_dpi = instance(&pats);
        let (a, b) = data.split_at(cut);
        let split = flow_positions(&mut split_dpi, SF, &[a, b]);

        prop_assert_eq!(whole, split);
    }

    #[test]
    fn stateless_reports_are_a_subset_with_no_boundary_spans(
        pats in patterns(), data in payload(), cut in 0usize..150
    ) {
        let mut pats = pats;
        pats.sort();
        pats.dedup();
        let cut = cut.min(data.len());
        let (a, b) = data.split_at(cut);

        let mut dpi = instance(&pats);
        let stateful = flow_positions(&mut dpi, SF, &[a, b]);

        let mut dpi2 = instance(&pats);
        let stateless = flow_positions(&mut dpi2, SL, &[a, b]);

        // Every stateless match is also a stateful match…
        for m in &stateless {
            prop_assert!(stateful.contains(m), "stateless-only match {m:?}");
        }
        // …and none of them crosses the packet boundary.
        for &(pid, end) in &stateless {
            let len = pats[pid as usize].len() as u64;
            let start = end + 1 - len;
            let crosses = start < cut as u64 && end >= cut as u64;
            prop_assert!(!crosses, "stateless match spans the boundary");
        }
    }

    #[test]
    fn instance_reports_match_naive_reference(pats in patterns(), data in payload()) {
        // End-to-end oracle: the instance's per-middlebox reports must
        // equal a naive scan of the same payload filtered to that
        // middlebox's patterns.
        let mut pats = pats;
        pats.sort();
        pats.dedup();
        let mut dpi = instance(&pats);
        let out = dpi.scan_payload(1, None, &data).unwrap();

        let mut naive = dpi_ac::naive::NaiveMatcher::new();
        naive.add_set(&dpi_ac::PatternSet::new(SF, pats.clone()));
        let mut expected: Vec<(u16, u16)> = naive
            .find_all(&data)
            .into_iter()
            .map(|(pos, e)| (e.pattern.0, pos as u16))
            .collect();
        expected.sort_unstable();
        expected.dedup();

        for mb in [SF, SL] {
            let mut got: Vec<(u16, u16)> = out
                .reports
                .iter()
                .filter(|r| r.middlebox_id == mb.0)
                .flat_map(|r| expand_records(&r.records))
                .collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &expected, "middlebox {}", mb.0);
        }
    }

    #[test]
    fn compress_expand_round_trips(
        raw in prop::collection::vec((0u16..100, 0u16..500), 0..64)
    ) {
        let mut list = raw;
        list.sort_unstable();
        list.dedup();
        let records = compress_matches(&list);
        prop_assert_eq!(expand_records(&records), list);
    }

    #[test]
    fn compression_never_grows_the_encoding(
        raw in prop::collection::vec((0u16..4, 0u16..40), 0..64)
    ) {
        let mut list = raw;
        list.sort_unstable();
        list.dedup();
        let records = compress_matches(&list);
        let bytes: usize = records.iter().map(|r| r.wire_size()).sum();
        prop_assert!(bytes <= list.len() * 4 + 2);
    }
}
