//! L7 inspection overhead (DESIGN.md §14): wall-clock cost of the
//! identify → decode → scan path against the raw byte-stream scan of the
//! very same segments, per protocol mix. The interesting number is the
//! ratio — what turning `InstanceConfig::with_l7_policy` on costs a
//! deployment — plus the decode amplification (decoded bytes scanned per
//! wire byte, > 1 for gzip bodies, < 1 for TLS flows where only the SNI
//! is scanned). Writes `BENCH_l7.json` (consumed by the CI bench job as
//! an artifact).
//!
//! Set `DPI_BENCH_QUICK=1` for a CI-sized run.

use dpi_bench::{host_cores, print_row};
use dpi_core::instance::{ScanEngine, ShardState};
use dpi_core::{InstanceConfig, L7Policy, MiddleboxId, MiddleboxProfile, RuleSpec};
use dpi_packet::ipv4::IpProtocol;
use dpi_packet::packet::flow;
use dpi_packet::FlowKey;
use std::time::Instant;

const IDS: MiddleboxId = MiddleboxId(1);
const CHAIN: u16 = 1;
const PATTERN: &[u8] = b"hidden-attack-signature";

fn config(l7: bool) -> InstanceConfig {
    let cfg = InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateful(IDS),
            vec![RuleSpec::exact(PATTERN.to_vec())],
        )
        .with_chain(CHAIN, vec![IDS]);
    if l7 {
        cfg.with_l7_policy(L7Policy::default())
    } else {
        cfg
    }
}

fn fk(n: u32) -> FlowKey {
    flow(
        [10, 0, (n >> 8) as u8, n as u8],
        (n % 50_000) as u16 + 1024,
        [10, 0, 0, 2],
        443,
        IpProtocol::Tcp,
    )
}

/// One flow: its key and the in-order TCP segments it arrives as.
type Flow = (FlowKey, Vec<(u32, Vec<u8>)>);

/// `flows` pre-segmented application streams for one scenario.
fn scenario(name: &str, flows: usize) -> (String, Vec<Flow>) {
    let mk = |i: u32| -> Vec<u8> {
        let seed = u64::from(i) * 31 + 7;
        match name {
            "http_gzip" => dpi_traffic::http1_chunked_gzip_request(seed, PATTERN).stream,
            "http_plain" => dpi_traffic::http1_chunked_request(seed, PATTERN).stream,
            "tls" => {
                let host = format!("host-{i}.evil.example");
                dpi_traffic::tls_client_hello(seed, host.as_bytes(), 1460).stream
            }
            "websocket" => dpi_traffic::websocket_session(seed, PATTERN).stream,
            // Round-robin blend of the above — the mix a real tap sees.
            "mixed" => match i % 4 {
                0 => dpi_traffic::http1_chunked_gzip_request(seed, PATTERN).stream,
                1 => dpi_traffic::http1_chunked_request(seed, PATTERN).stream,
                2 => dpi_traffic::tls_client_hello(seed, b"host.example", 1460).stream,
                _ => dpi_traffic::websocket_session(seed, PATTERN).stream,
            },
            _ => unreachable!("unknown scenario"),
        }
    };
    let flows = (0..flows as u32)
        .map(|i| {
            (
                fk(i),
                dpi_traffic::segment_stream(u64::from(i) + 1, &mk(i), 1460),
            )
        })
        .collect();
    (name.to_string(), flows)
}

/// Best-of-`runs` Mbit/s of wire bytes through `engine`, plus the decoded
/// bytes the L7 layer fed to the scanner on the last run (0 when off).
fn run(cfg: &InstanceConfig, flows: &[Flow], runs: usize) -> (f64, u64) {
    let wire: usize = flows
        .iter()
        .flat_map(|(_, segs)| segs.iter().map(|(_, p)| p.len()))
        .sum();
    let mut best = 0.0f64;
    let mut decoded = 0;
    for _ in 0..runs.max(1) {
        let engine = ScanEngine::new(cfg.clone()).expect("bench config is valid");
        let mut shard = ShardState::new(&engine);
        let t0 = Instant::now();
        for (f, segs) in flows {
            for (seq, payload) in segs {
                let outs = engine
                    .scan_tcp_segment(&mut shard, CHAIN, *f, *seq, payload)
                    .expect("chain exists");
                std::hint::black_box(outs);
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        best = best.max(wire as f64 * 8.0 / dt / 1e6);
        decoded = shard.telemetry().l7_decoded_bytes;
    }
    (best, decoded)
}

fn main() {
    let quick = std::env::var_os("DPI_BENCH_QUICK").is_some();
    let (flows, runs) = if quick { (64, 3) } else { (512, 5) };

    println!(
        "l7 bench: {flows} flows per scenario, {} host cores{}",
        host_cores(),
        if quick { ", quick mode" } else { "" }
    );
    print_row(&[
        "scenario".into(),
        "raw Mbit/s".into(),
        "l7 Mbit/s".into(),
        "overhead".into(),
        "amplification".into(),
    ]);

    let raw_cfg = config(false);
    let l7_cfg = config(true);
    let mut rows = Vec::new();
    for name in ["http_gzip", "http_plain", "tls", "websocket", "mixed"] {
        let (name, traffic) = scenario(name, flows);
        let wire: usize = traffic
            .iter()
            .flat_map(|(_, segs)| segs.iter().map(|(_, p)| p.len()))
            .sum();
        let (raw_mbps, _) = run(&raw_cfg, &traffic, runs);
        let (l7_mbps, decoded) = run(&l7_cfg, &traffic, runs);
        let overhead = raw_mbps / l7_mbps;
        let amplification = decoded as f64 / wire as f64;
        print_row(&[
            name.clone(),
            format!("{raw_mbps:.0}"),
            format!("{l7_mbps:.0}"),
            format!("{overhead:.2}x"),
            format!("{amplification:.2}"),
        ]);
        rows.push(format!(
            "{{\"scenario\": \"{name}\", \"wire_bytes\": {wire}, \
             \"raw_mbps\": {raw_mbps:.0}, \"l7_mbps\": {l7_mbps:.0}, \
             \"overhead\": {overhead:.3}, \"decoded_bytes\": {decoded}, \
             \"amplification\": {amplification:.3}}}"
        ));
    }

    let json = format!(
        "{{\n  \"host_cores\": {},\n  \"quick\": {},\n  \"flows\": {},\n  \
         \"scenarios\": [\n    {}\n  ]\n}}\n",
        host_cores(),
        quick,
        flows,
        rows.join(",\n    ")
    );
    std::fs::write("BENCH_l7.json", &json).expect("writable working directory");
    println!("wrote BENCH_l7.json");
}
