//! Instance liveness: the `Healthy → Suspect → Dead` state machine.
//!
//! §4 makes the DPI controller "responsible for ... resiliency": when a
//! DPI service instance fails, its flows must be re-steered to surviving
//! instances. That requires the controller to *know* an instance failed,
//! which it learns the only way a distributed system can — the instance
//! stops saying otherwise. Each deployed instance sends periodic
//! [`crate::proto::ControllerMessage::Heartbeat`] beacons; the
//! [`HealthMonitor`] counts heartbeat *windows* (discrete ticks — the
//! simulation has no wall clock, and real deployments want the window to
//! be a tunable anyway) and walks each instance down
//! `Healthy → Suspect → Dead` as consecutive windows pass silently.
//!
//! `Suspect` exists so one delayed beacon does not trigger a fleet-wide
//! re-steer: steering churn costs switch rule updates and loses mid-flow
//! scan state, so the monitor only declares `Dead` — the state the TSA
//! acts on — after [`HealthPolicy::dead_after`] missed windows. A beacon
//! from any non-`Healthy` instance recovers it immediately.

use crate::controller::InstanceId;
use std::collections::BTreeMap;

/// Liveness of one deployed DPI instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceHealth {
    /// Heartbeats arriving within the window.
    Healthy,
    /// Missed at least [`HealthPolicy::suspect_after`] consecutive
    /// windows; not yet acted on.
    Suspect,
    /// Missed [`HealthPolicy::dead_after`] consecutive windows; the
    /// controller re-steers its flows to survivors.
    Dead,
}

/// Miss thresholds for the health state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive missed windows before `Healthy → Suspect`.
    pub suspect_after: u32,
    /// Consecutive missed windows before `→ Dead` (must be ≥
    /// `suspect_after` to ever pass through `Suspect`).
    pub dead_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            suspect_after: 2,
            dead_after: 4,
        }
    }
}

/// A health transition surfaced by [`HealthMonitor::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEvent {
    /// The instance missed enough windows to be suspected.
    BecameSuspect(InstanceId),
    /// The instance is now considered failed; re-steer its flows.
    BecameDead(InstanceId),
    /// A suspect or dead instance heartbeated again.
    Recovered(InstanceId),
}

#[derive(Debug, Clone)]
struct HealthRecord {
    state: InstanceHealth,
    /// Consecutive windows closed without a beat.
    missed: u32,
    /// A beat arrived in the currently-open window.
    beat_this_window: bool,
    /// Highest heartbeat sequence number seen (stale beats are ignored).
    last_seq: u64,
    /// Load the instance self-reported on its last beat (packets scanned
    /// since the previous beat) — the signal a load-aware steering
    /// policy consumes.
    last_load: u64,
}

/// Tracks heartbeat windows for a fleet of instances.
///
/// Time is discrete: callers feed beats via [`HealthMonitor::heartbeat`]
/// and close windows via [`HealthMonitor::tick`]. An instance that beat
/// at least once inside a window is alive for it; otherwise the window
/// counts as missed.
#[derive(Debug, Default)]
pub struct HealthMonitor {
    policy: HealthPolicy,
    records: BTreeMap<InstanceId, HealthRecord>,
}

impl HealthMonitor {
    /// A monitor with the given thresholds.
    pub fn new(policy: HealthPolicy) -> HealthMonitor {
        HealthMonitor {
            policy,
            records: BTreeMap::new(),
        }
    }

    /// The thresholds in force.
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Starts tracking an instance as `Healthy`. The window open at
    /// registration counts as beaten (a grace window), so a fresh
    /// instance is never suspected before it had a full window to beat.
    pub fn register(&mut self, id: InstanceId) {
        self.records.insert(
            id,
            HealthRecord {
                state: InstanceHealth::Healthy,
                missed: 0,
                beat_this_window: true,
                last_seq: 0,
                last_load: 0,
            },
        );
    }

    /// Stops tracking an instance.
    pub fn unregister(&mut self, id: InstanceId) {
        self.records.remove(&id);
    }

    /// Records a heartbeat. Returns `false` for unknown instances and for
    /// stale beats (sequence number not beyond the last seen — a delayed
    /// duplicate must not resurrect a dead instance).
    pub fn heartbeat(&mut self, id: InstanceId, seq: u64, load: u64) -> bool {
        match self.records.get_mut(&id) {
            Some(rec) => {
                if seq != 0 && seq <= rec.last_seq {
                    return false;
                }
                rec.last_seq = rec.last_seq.max(seq);
                rec.last_load = load;
                rec.beat_this_window = true;
                true
            }
            None => false,
        }
    }

    /// Closes the current heartbeat window for every instance and opens
    /// the next, returning state transitions in instance-id order
    /// (deterministic for a given beat history).
    pub fn tick(&mut self) -> Vec<HealthEvent> {
        let mut events = Vec::new();
        for (&id, rec) in self.records.iter_mut() {
            if rec.beat_this_window {
                rec.missed = 0;
                if rec.state != InstanceHealth::Healthy {
                    rec.state = InstanceHealth::Healthy;
                    events.push(HealthEvent::Recovered(id));
                }
            } else {
                rec.missed += 1;
                if rec.missed >= self.policy.dead_after && rec.state != InstanceHealth::Dead {
                    rec.state = InstanceHealth::Dead;
                    events.push(HealthEvent::BecameDead(id));
                } else if rec.missed >= self.policy.suspect_after
                    && rec.state == InstanceHealth::Healthy
                {
                    rec.state = InstanceHealth::Suspect;
                    events.push(HealthEvent::BecameSuspect(id));
                }
            }
            rec.beat_this_window = false;
        }
        events
    }

    /// Current health of an instance.
    pub fn state(&self, id: InstanceId) -> Option<InstanceHealth> {
        self.records.get(&id).map(|r| r.state)
    }

    /// Last self-reported load of an instance.
    pub fn load(&self, id: InstanceId) -> Option<u64> {
        self.records.get(&id).map(|r| r.last_load)
    }

    /// All tracked instances currently `Healthy`, in id order.
    pub fn healthy(&self) -> Vec<InstanceId> {
        self.records
            .iter()
            .filter(|(_, r)| r.state == InstanceHealth::Healthy)
            .map(|(&id, _)| id)
            .collect()
    }

    /// All tracked instances not `Dead` (steering candidates during a
    /// `Suspect` grace period), in id order.
    pub fn usable(&self) -> Vec<InstanceId> {
        self.records
            .iter()
            .filter(|(_, r)| r.state != InstanceHealth::Dead)
            .map(|(&id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> HealthMonitor {
        let mut m = HealthMonitor::new(HealthPolicy {
            suspect_after: 2,
            dead_after: 3,
        });
        m.register(InstanceId(0));
        m.register(InstanceId(1));
        // Registration grants one grace window; close it so the tests
        // below count missed windows from zero.
        assert!(m.tick().is_empty());
        m
    }

    #[test]
    fn silent_instance_walks_healthy_suspect_dead() {
        let mut m = monitor();
        let mut seq = 0;
        // Instance 1 beats every window; instance 0 goes silent.
        let beat1 = |m: &mut HealthMonitor, seq: &mut u64| {
            *seq += 1;
            assert!(m.heartbeat(InstanceId(1), *seq, 10));
        };
        beat1(&mut m, &mut seq);
        assert!(m.tick().is_empty()); // miss 1: still healthy
        beat1(&mut m, &mut seq);
        assert_eq!(
            m.tick(),
            vec![HealthEvent::BecameSuspect(InstanceId(0))] // miss 2
        );
        beat1(&mut m, &mut seq);
        assert_eq!(m.tick(), vec![HealthEvent::BecameDead(InstanceId(0))]); // miss 3
        beat1(&mut m, &mut seq);
        assert!(m.tick().is_empty()); // stays dead, no repeat events
        assert_eq!(m.state(InstanceId(0)), Some(InstanceHealth::Dead));
        assert_eq!(m.state(InstanceId(1)), Some(InstanceHealth::Healthy));
        assert_eq!(m.healthy(), vec![InstanceId(1)]);
    }

    #[test]
    fn beat_resets_the_miss_count() {
        let mut m = monitor();
        m.heartbeat(InstanceId(1), 1, 0);
        m.tick(); // instance 0 misses 1
        m.heartbeat(InstanceId(0), 1, 5);
        m.heartbeat(InstanceId(1), 2, 0);
        assert!(m.tick().is_empty()); // miss count back to 0
        m.heartbeat(InstanceId(1), 3, 0);
        assert!(m.tick().is_empty()); // miss 1 again, below threshold
        assert_eq!(m.state(InstanceId(0)), Some(InstanceHealth::Healthy));
        assert_eq!(m.load(InstanceId(0)), Some(5));
    }

    #[test]
    fn recovery_from_suspect_and_dead() {
        let mut m = monitor();
        for _ in 0..2 {
            m.heartbeat(InstanceId(1), 0, 0);
            m.tick();
        }
        assert_eq!(m.state(InstanceId(0)), Some(InstanceHealth::Suspect));
        assert_eq!(m.usable(), vec![InstanceId(0), InstanceId(1)]);
        m.heartbeat(InstanceId(0), 9, 0);
        m.heartbeat(InstanceId(1), 0, 0);
        assert_eq!(m.tick(), vec![HealthEvent::Recovered(InstanceId(0))]);
        // Now let it die and come back.
        for _ in 0..3 {
            m.heartbeat(InstanceId(1), 0, 0);
            m.tick();
        }
        assert_eq!(m.state(InstanceId(0)), Some(InstanceHealth::Dead));
        assert_eq!(m.usable(), vec![InstanceId(1)]);
        m.heartbeat(InstanceId(0), 10, 0);
        m.heartbeat(InstanceId(1), 0, 0);
        assert_eq!(m.tick(), vec![HealthEvent::Recovered(InstanceId(0))]);
    }

    #[test]
    fn stale_heartbeats_are_rejected() {
        let mut m = monitor();
        assert!(m.heartbeat(InstanceId(0), 5, 0));
        m.tick();
        // A delayed duplicate of seq 5 does not count for the new window.
        assert!(!m.heartbeat(InstanceId(0), 5, 0));
        assert!(!m.heartbeat(InstanceId(0), 4, 0));
        assert!(m.heartbeat(InstanceId(0), 6, 0));
        // Unknown instances are rejected too.
        assert!(!m.heartbeat(InstanceId(9), 1, 0));
    }

    #[test]
    fn unregister_stops_tracking() {
        let mut m = monitor();
        m.unregister(InstanceId(0));
        m.heartbeat(InstanceId(1), 1, 0);
        assert!(m.tick().is_empty());
        assert_eq!(m.state(InstanceId(0)), None);
    }
}
