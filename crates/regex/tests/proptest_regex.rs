//! Property tests for the regex engine.
//!
//! Two core invariants:
//!
//! 1. NFA simulation and lazy DFA agree on every input (they are two
//!    executions of the same language).
//! 2. §5.3 anchor soundness: if a pattern matches an input, every
//!    extracted anchor appears as a substring of that input. This is the
//!    property the whole pre-filter architecture rests on — a violation
//!    would make the DPI service drop real matches.

use dpi_regex::dfa::LazyDfa;
use dpi_regex::nfa::Nfa;
use dpi_regex::{extract_anchors, parser, Regex};
use proptest::prelude::*;

/// A fixed, syntactically diverse pattern corpus; inputs are random.
const PATTERNS: &[&str] = &[
    r"abcd",
    r"ab+cd",
    r"a(bc)*d",
    r"cat|dog|mouse",
    r"^start",
    r"finish$",
    r"^whole$",
    r"\d+\.\d+",
    r"[a-c]{2,4}x",
    r"pre(fix|amble)post",
    r"regular\s*expression\s*\d+",
    r"a?b?c?d?",
    r"(?i)mixedcase",
    r"x[^y]z",
    r"dead{2,}beef",
];

fn inputs() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop::sample::select(b"abcdefghijklmnop 0123456789.\nxyz".to_vec()),
        0..120,
    )
}

/// Inputs biased to contain fragments of the patterns themselves, so
/// matches actually happen.
fn biased_inputs() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop::sample::select(vec![
            b"abcd".to_vec(),
            b"cat".to_vec(),
            b"dog".to_vec(),
            b"start".to_vec(),
            b"finish".to_vec(),
            b"12.5".to_vec(),
            b"regular expression 9".to_vec(),
            b"deadddbeef".to_vec(),
            b"prefixpost".to_vec(),
            b"MixedCase".to_vec(),
            b" ".to_vec(),
            b"z".to_vec(),
        ]),
        0..8,
    )
    .prop_map(|chunks| chunks.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nfa_and_dfa_agree(idx in 0..PATTERNS.len(), data in inputs()) {
        let ast = parser::parse(PATTERNS[idx]).unwrap();
        let nfa = Nfa::compile(&ast);
        let mut dfa = LazyDfa::new(&nfa);
        prop_assert_eq!(nfa.find_end(&data), dfa.find_end(&data), "pattern {}", PATTERNS[idx]);
    }

    #[test]
    fn nfa_and_dfa_agree_on_biased_inputs(idx in 0..PATTERNS.len(), data in biased_inputs()) {
        let ast = parser::parse(PATTERNS[idx]).unwrap();
        let nfa = Nfa::compile(&ast);
        let mut dfa = LazyDfa::new(&nfa);
        prop_assert_eq!(nfa.find_end(&data), dfa.find_end(&data), "pattern {}", PATTERNS[idx]);
    }

    #[test]
    fn anchors_are_sound(idx in 0..PATTERNS.len(), data in biased_inputs()) {
        let re = Regex::new(PATTERNS[idx]).unwrap();
        if re.is_match(&data) {
            for anchor in re.anchors() {
                prop_assert!(
                    data.windows(anchor.len()).any(|w| w == anchor.as_slice()),
                    "pattern {} matched but anchor {:?} missing in {:?}",
                    PATTERNS[idx],
                    String::from_utf8_lossy(anchor),
                    String::from_utf8_lossy(&data)
                );
            }
        }
    }

    #[test]
    fn anchor_extraction_is_deterministic(idx in 0..PATTERNS.len()) {
        let ast = parser::parse(PATTERNS[idx]).unwrap();
        prop_assert_eq!(extract_anchors(&ast), extract_anchors(&ast));
    }

    #[test]
    fn match_end_is_within_input(idx in 0..PATTERNS.len(), data in biased_inputs()) {
        let re = Regex::new(PATTERNS[idx]).unwrap();
        if let Some(end) = re.find_end(&data) {
            prop_assert!(end <= data.len());
        }
    }
}
