//! Golden-file test for the metrics exposition schema. The dashboard
//! contract is the *schema* — family names, HELP text, types, and label
//! keys — not the sample values, which move with every packet. This test
//! normalizes `SystemHandle::metrics_text()` down to that schema and
//! compares it against `tests/golden/metrics_schema.txt`.
//!
//! If you add or rename a metric family on purpose, regenerate with:
//! `UPDATE_GOLDEN=1 cargo test --test metrics_golden` and review the
//! golden diff like any other API change.

use dpi_service::ac::MiddleboxId;
use dpi_service::controller::BalancePolicy;
use dpi_service::core::overload::OverloadPolicy;
use dpi_service::core::{L7Policy, L7Protocol};
use dpi_service::middlebox::antivirus;
use dpi_service::packet::ipv4::IpProtocol;
use dpi_service::packet::packet::flow;
use dpi_service::packet::{MacAddr, Packet};
use dpi_service::SystemBuilder;
use std::path::Path;

const GOLDEN: &str = "tests/golden/metrics_schema.txt";

/// Reduces Prometheus exposition text to its schema: `# HELP`/`# TYPE`
/// lines verbatim, sample lines as `name{label_keys}` with values and
/// label values stripped, duplicates collapsed to their first occurrence
/// so the schema does not depend on instance or shard counts.
fn schema_of(text: &str) -> String {
    let mut out: Vec<String> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let normalized = if line.starts_with('#') {
            line.to_string()
        } else {
            let (series, _value) = line.rsplit_once(' ').expect("sample line has a value");
            match series.split_once('{') {
                Some((name, labels)) => {
                    let keys: Vec<&str> = labels
                        .trim_end_matches('}')
                        .split(',')
                        .filter_map(|kv| kv.split_once('='))
                        .map(|(k, _)| k)
                        .collect();
                    format!("{name}{{{}}}", keys.join(","))
                }
                None => series.to_string(),
            }
        };
        if seen.insert(normalized.clone()) {
            out.push(normalized);
        }
    }
    let mut s = out.join("\n");
    s.push('\n');
    s
}

#[test]
fn metrics_schema_matches_golden() {
    let sig = b"golden-sig".to_vec();
    let mut sys = SystemBuilder::new()
        .with_middlebox(antivirus(MiddleboxId(1), &[sig]))
        .with_chain(&[MiddleboxId(1)])
        .with_dpi_instances(2)
        .with_dpi_workers(2)
        .with_overload_policy(OverloadPolicy::queue_only(50, 45))
        .with_balance_policy(BalancePolicy::default())
        .with_l7_policy(L7Policy::default())
        .build()
        .expect("system builds");

    // Touch every subsystem so each family has live series: fleet
    // traffic, a heartbeat round (health + overload windows + balancer),
    // and a batch through the sharded pipeline.
    for i in 0..4u16 {
        let f = flow([10, 0, 0, 1], 5000 + i, [10, 0, 0, 2], 80, IpProtocol::Tcp);
        sys.send(f, 0, b"has a golden-sig inside");
    }
    sys.heartbeat_round();
    let f = flow([10, 0, 0, 1], 6000, [10, 0, 0, 2], 80, IpProtocol::Tcp);
    let mut pkt = Packet::tcp(
        MacAddr::local(1),
        MacAddr::local(2),
        f,
        0,
        b"golden-sig plus filler".to_vec(),
    );
    pkt.push_chain_tag(sys.chain_ids[0]).unwrap();
    sys.inspect_batch(&mut [pkt]);

    let text = sys.metrics_text();
    let got = schema_of(&text);

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden").expect("create golden dir");
        std::fs::write(GOLDEN, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(Path::new(GOLDEN))
        .expect("golden file exists — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "metrics schema drifted from {GOLDEN}; if intentional, regenerate \
         with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn l7_families_have_per_protocol_series() {
    // The L7 families are part of the dashboard contract even when no
    // L7 policy is armed: every protocol label and every scalar family
    // must be present from the first scrape, so panels never start
    // empty and then pop into existence.
    let sig = b"golden-sig".to_vec();
    let sys = SystemBuilder::new()
        .with_middlebox(antivirus(MiddleboxId(1), &[sig]))
        .with_chain(&[MiddleboxId(1)])
        .with_dpi_instances(2)
        .build()
        .expect("system builds");
    let text = sys.metrics_text();
    for family in ["dpi_l7_flows_identified_total", "dpi_l7_matches_total"] {
        for p in L7Protocol::ALL {
            for instance in 0..2 {
                let series = format!(
                    "{family}{{instance=\"{instance}\",protocol=\"{}\"}}",
                    p.name()
                );
                assert!(
                    text.lines().any(|l| l.starts_with(&series)),
                    "missing series {series}"
                );
            }
        }
    }
    for family in [
        "dpi_l7_decoded_bytes_total",
        "dpi_l7_decode_errors_total",
        "dpi_l7_truncations_total",
        "dpi_l7_blocked_flows_total",
        "dpi_l7_bypassed_flows_total",
        "dpi_l7_detoured_flows_total",
    ] {
        for instance in 0..2 {
            let series = format!("{family}{{instance=\"{instance}\"}}");
            assert!(
                text.lines().any(|l| l.starts_with(&series)),
                "missing series {series}"
            );
        }
    }
}

#[test]
fn tenant_families_have_per_tenant_series() {
    // Per-tenant attribution (DESIGN.md §16): one series per tenant in
    // every dpi_tenant_* family once that tenant's traffic has been
    // scanned, tagged with the tenant id — and untenanted deployments
    // attribute everything to tenant 0.
    use dpi_service::core::TenantId;
    let mut sys = SystemBuilder::new()
        .with_middlebox(antivirus(MiddleboxId(1), &[b"golden-sig".to_vec()]).owned_by(TenantId(1)))
        .with_middlebox(antivirus(MiddleboxId(2), &[b"other-sig".to_vec()]).owned_by(TenantId(2)))
        .with_chain(&[MiddleboxId(1)])
        .with_chain(&[MiddleboxId(2)])
        .build()
        .expect("system builds");
    for (i, chain) in [0usize, 1].into_iter().enumerate() {
        let f = flow(
            [10, 0, 0, 1],
            7000 + i as u16,
            [10, 0, 0, 2],
            80,
            IpProtocol::Tcp,
        );
        let mut pkt = Packet::tcp(
            MacAddr::local(1),
            MacAddr::local(2),
            f,
            0,
            b"golden-sig and other-sig".to_vec(),
        );
        pkt.push_chain_tag(sys.chain_ids[chain]).unwrap();
        sys.inspect_batch(&mut [pkt]);
    }
    let text = sys.metrics_text();
    for family in [
        "dpi_tenant_packets_total",
        "dpi_tenant_bytes_total",
        "dpi_tenant_matches_total",
        "dpi_tenant_shed_packets_total",
        "dpi_tenant_shed_bytes_total",
        "dpi_tenant_quota_rejections_total",
        "dpi_tenant_rule_generation",
    ] {
        for tenant in [1, 2] {
            let series = format!("{family}{{tenant=\"{tenant}\"}}");
            assert!(
                text.lines().any(|l| l.starts_with(&series)),
                "missing series {series}"
            );
        }
    }
    // Each tenant's matches landed on its own series.
    assert!(text.contains("dpi_tenant_matches_total{tenant=\"1\"} 1"));
    assert!(text.contains("dpi_tenant_matches_total{tenant=\"2\"} 1"));
}

#[test]
fn overload_families_have_per_instance_series() {
    // Beyond the schema: the new overload gauges must emit one series
    // per fleet instance even when overload control is unarmed, so
    // dashboards never see families appear and vanish.
    let sig = b"golden-sig".to_vec();
    let sys = SystemBuilder::new()
        .with_middlebox(antivirus(MiddleboxId(1), &[sig]))
        .with_chain(&[MiddleboxId(1)])
        .with_dpi_instances(3)
        .build()
        .expect("system builds");
    let text = sys.metrics_text();
    for family in [
        "dpi_instance_shed_packets_total",
        "dpi_instance_shed_bytes_total",
        "dpi_instance_ce_marked_total",
        "dpi_instance_load_score",
        "dpi_instance_overloaded",
    ] {
        for instance in 0..3 {
            let series = format!("{family}{{instance=\"{instance}\"}}");
            assert!(
                text.lines().any(|l| l.starts_with(&series)),
                "missing series {series}"
            );
        }
    }
}
