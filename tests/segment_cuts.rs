//! Satellite property: a pattern split at *every* possible cut point
//! still matches when the two pieces travel through the sharded
//! pipeline, at 1, 2 and 8 workers, with verdicts identical to scanning
//! the unsegmented stream. Flow-affine dispatch keeps per-flow packet
//! order, so the stateful cross-packet DFA state must bridge any cut —
//! including cuts inside a pattern (DESIGN.md §12's "the worker count
//! may change throughput, never results", sharpened to every boundary).

use dpi_service::core::instance::ScanEngine;
use dpi_service::core::report::expand_records;
use dpi_service::core::{DpiInstance, InstanceConfig, MiddleboxId, MiddleboxProfile, RuleSpec};
use dpi_service::packet::ipv4::IpProtocol;
use dpi_service::packet::packet::flow;
use dpi_service::packet::{FlowKey, MacAddr, Packet};
use dpi_service::ShardedScanner;
use std::collections::BTreeSet;
use std::sync::Arc;

const IDS: MiddleboxId = MiddleboxId(1);
const CHAIN: u16 = 5;

/// A long and a short signature, so cuts land both inside and between
/// patterns.
fn config() -> InstanceConfig {
    InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateful(IDS),
            vec![
                RuleSpec::exact(b"needle-alpha".to_vec()),
                RuleSpec::exact(b"zz".to_vec()),
            ],
        )
        .with_chain(CHAIN, vec![IDS])
}

/// The byte stream every flow carries: filler, the long pattern, more
/// filler, the short pattern, a tail.
fn stream() -> Vec<u8> {
    b"padding-needle-alpha-filler-zz-tail".to_vec()
}

fn cut_flow(cut: usize) -> FlowKey {
    flow(
        [10, 0, 0, 1],
        1024 + cut as u16,
        [10, 0, 0, 2],
        80,
        IpProtocol::Tcp,
    )
}

/// The two packets of the flow for `cut`: head `[0, cut)`, tail
/// `[cut, len)`, in order.
fn packets_for_cut(cut: usize, data: &[u8]) -> Vec<Packet> {
    let f = cut_flow(cut);
    [(0usize, &data[..cut]), (cut, &data[cut..])]
        .into_iter()
        .map(|(off, part)| {
            let mut pk = Packet::tcp(
                MacAddr::local(1),
                MacAddr::local(2),
                f,
                1000 + off as u32,
                part.to_vec(),
            );
            pk.push_chain_tag(CHAIN).unwrap();
            pk
        })
        .collect()
}

/// Flow-absolute verdicts `(src_port, pattern, end)` from a slice of
/// result packets.
fn verdicts(results: &[dpi_service::packet::ResultPacket]) -> BTreeSet<(u16, u16, u64)> {
    results
        .iter()
        .flat_map(|r| {
            r.reports.iter().flat_map(move |rep| {
                expand_records(&rep.records)
                    .into_iter()
                    .map(move |(pid, pos)| (r.flow.src_port, pid, r.flow_offset + u64::from(pos)))
            })
        })
        .collect()
}

#[test]
fn every_cut_point_matches_like_the_unsegmented_stream() {
    let data = stream();

    // Oracle: each flow scanned unsegmented through a sequential
    // instance. Every flow carries the same bytes, so the expected
    // (pattern, end) pairs are identical across flows.
    let mut whole = DpiInstance::new(config()).unwrap();
    let mut expected = BTreeSet::new();
    for cut in 1..data.len() {
        let f = cut_flow(cut);
        let out = whole.scan_payload(CHAIN, Some(f), &data).unwrap();
        for r in &out.reports {
            for (pid, pos) in expand_records(&r.records) {
                expected.insert((f.src_port, pid, u64::from(pos)));
            }
        }
        // The stream plants both patterns; a silent oracle would make
        // the equality below vacuous.
        assert_eq!(
            out.reports.iter().map(|r| r.records.len()).sum::<usize>(),
            2,
            "oracle must see both planted patterns"
        );
    }

    for workers in [1usize, 2, 8] {
        let engine = Arc::new(ScanEngine::new(config()).unwrap());
        let mut scanner = ShardedScanner::new(engine, workers);
        let mut batch: Vec<Packet> = (1..data.len())
            .flat_map(|cut| packets_for_cut(cut, &data))
            .collect();
        let delivered = scanner.inspect_batch(&mut batch);
        assert_eq!(
            verdicts(&delivered),
            expected,
            "verdicts diverged from the unsegmented oracle at {workers} workers"
        );
    }
}
