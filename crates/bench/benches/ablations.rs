//! Criterion ablations for the design choices DESIGN.md calls out:
//!
//! * full-table vs sparse automaton representation (the MCA² space/time
//!   tradeoff);
//! * the accepting-state bitmap fast path vs always reading the match
//!   table (§5.1);
//! * dedicated result packets vs the in-band NSH-like header (§4.2);
//! * the §5.3 anchor pre-filter vs running every regex on every packet.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpi_ac::{bitmap_of, Automaton, CombinedAcBuilder, MiddleboxId, PatternSet};
use dpi_core::{DpiInstance, InstanceConfig, MiddleboxProfile, RuleSpec};
use dpi_packet::nsh::DpiResultsHeader;
use dpi_packet::report::{MatchRecord, MiddleboxReport, ResultPacket};
use dpi_traffic::patterns::{snort_like, snort_like_regexes};
use dpi_traffic::trace::TraceConfig;

fn bench_full_vs_sparse(c: &mut Criterion) {
    let pats = snort_like(2000, 42);
    let mut builder = CombinedAcBuilder::new();
    builder
        .add_set(PatternSet::new(MiddleboxId(0), pats.clone()))
        .expect("valid");
    let full = builder.build_full();
    let sparse = builder.build_sparse();
    let trace = TraceConfig {
        packets: 100,
        match_density: 0.02,
        prefix_density: 3.0,
        seed: 5,
        ..TraceConfig::default()
    }
    .generate(&pats);
    let bytes: usize = trace.iter().map(|p| p.len()).sum();

    let mut g = c.benchmark_group("representation");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.sample_size(15);
    g.bench_function("full_table", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &trace {
                full.scan(full.start(), p, |_, st| {
                    acc = acc.wrapping_add(u64::from(st))
                });
            }
            acc
        })
    });
    g.bench_function("sparse", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &trace {
                sparse.scan(sparse.start(), p, |_, st| {
                    acc = acc.wrapping_add(u64::from(st))
                });
            }
            acc
        })
    });
    g.finish();
}

fn bench_bitmap_fast_path(c: &mut Criterion) {
    // Ten middleboxes registered; only one is active on the packet's
    // chain. The bitmap AND decides per accepting state whether the match
    // table must be read at all.
    let mut builder = CombinedAcBuilder::new();
    let mut all_pats = Vec::new();
    for mb in 0..10u16 {
        let pats = snort_like(300, 100 + u64::from(mb));
        builder
            .add_set(PatternSet::new(MiddleboxId(mb), pats.clone()))
            .expect("valid");
        all_pats.extend(pats);
    }
    let ac = builder.build_full();
    let trace = TraceConfig {
        packets: 100,
        match_density: 0.3,
        prefix_density: 2.0,
        seed: 6,
        ..TraceConfig::default()
    }
    .generate(&all_pats);
    let bytes: usize = trace.iter().map(|p| p.len()).sum();
    let active = bitmap_of(&[MiddleboxId(0)]);

    let mut g = c.benchmark_group("accepting_state_check");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.sample_size(15);
    g.bench_function("bitmap_then_table", |b| {
        b.iter(|| {
            let mut relevant = 0usize;
            for p in &trace {
                ac.scan(ac.start(), p, |_, st| {
                    if ac.bitmap(st) & active != 0 {
                        relevant += ac
                            .entries(st)
                            .iter()
                            .filter(|e| e.middlebox == MiddleboxId(0))
                            .count();
                    }
                });
            }
            relevant
        })
    });
    g.bench_function("table_always", |b| {
        b.iter(|| {
            let mut relevant = 0usize;
            for p in &trace {
                ac.scan(ac.start(), p, |_, st| {
                    relevant += ac
                        .entries(st)
                        .iter()
                        .filter(|e| e.middlebox == MiddleboxId(0))
                        .count();
                });
            }
            relevant
        })
    });
    g.finish();
}

fn bench_result_encodings(c: &mut Criterion) {
    // Encode a typical 3-middlebox match report both ways.
    let reports = vec![
        MiddleboxReport {
            middlebox_id: 1,
            records: vec![
                MatchRecord::Single {
                    pattern_id: 10,
                    position: 100,
                },
                MatchRecord::Range {
                    pattern_id: 11,
                    start: 200,
                    count: 30,
                },
            ],
        },
        MiddleboxReport {
            middlebox_id: 2,
            records: vec![MatchRecord::Single {
                pattern_id: 3,
                position: 50,
            }],
        },
        MiddleboxReport {
            middlebox_id: 3,
            records: vec![MatchRecord::Single {
                pattern_id: 7,
                position: 60,
            }],
        },
    ];
    let flow = dpi_packet::packet::flow(
        [10, 0, 0, 1],
        4000,
        [10, 0, 0, 2],
        80,
        dpi_packet::ipv4::IpProtocol::Tcp,
    );

    let mut g = c.benchmark_group("result_delivery_encoding");
    g.sample_size(30);
    g.bench_function("dedicated_result_packet", |b| {
        b.iter(|| {
            ResultPacket {
                packet_id: 1,
                generation: 0,
                flow,
                flow_offset: 0,
                reports: reports.clone(),
            }
            .to_bytes()
        })
    });
    g.bench_function("in_band_nsh_header", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            DpiResultsHeader::new(1, 3, reports.clone()).write(&mut out);
            out
        })
    });
    g.finish();
}

fn bench_anchor_prefilter(c: &mut Criterion) {
    const MB: MiddleboxId = MiddleboxId(1);
    // Modest rule count: the NFA baseline is intentionally the slow path.
    let regexes = snort_like_regexes(50, 51);
    let rules: Vec<RuleSpec> = regexes.iter().map(RuleSpec::regex).collect();
    let trace = TraceConfig {
        packets: 40,
        max_payload: 600,
        seed: 7,
        ..TraceConfig::default()
    }
    .generate(&[]);
    let bytes: usize = trace.iter().map(|p| p.len()).sum();

    let mut g = c.benchmark_group("regex_handling");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.sample_size(10);

    g.bench_function("anchor_prefilter", |b| {
        let cfg = InstanceConfig::new()
            .with_middlebox(MiddleboxProfile::stateless(MB), rules.clone())
            .with_chain(1, vec![MB]);
        let mut dpi = DpiInstance::new(cfg).expect("valid config");
        b.iter(|| {
            let mut matched = 0usize;
            for p in &trace {
                matched += dpi.scan_payload(1, None, p).expect("scan").reports.len();
            }
            matched
        })
    });

    g.bench_function("run_every_regex_nfa", |b| {
        let compiled: Vec<dpi_regex::Regex> = regexes
            .iter()
            .map(|r| dpi_regex::Regex::new(r).expect("valid regex"))
            .collect();
        b.iter(|| {
            let mut matched = 0usize;
            for p in &trace {
                for re in &compiled {
                    if re.is_match(p) {
                        matched += 1;
                    }
                }
            }
            matched
        })
    });

    g.bench_function("run_every_regex_lazy_dfa", |b| {
        let mut compiled: Vec<_> = regexes
            .iter()
            .map(|r| dpi_regex::Regex::new(r).expect("valid regex").to_lazy_dfa())
            .collect();
        b.iter(|| {
            let mut matched = 0usize;
            for p in &trace {
                for dfa in compiled.iter_mut() {
                    if dfa.is_match(p) {
                        matched += 1;
                    }
                }
            }
            matched
        })
    });

    g.finish();
}

criterion_group!(
    benches,
    bench_full_vs_sparse,
    bench_bitmap_fast_path,
    bench_result_encodings,
    bench_anchor_prefilter
);
criterion_main!(benches);
