//! The two-stage prefiltered scanner: SWAR pair skipping + a
//! 2-byte-stride root DFA over residue windows.
//!
//! Stage one sweeps the payload in 16-byte lanes with the
//! [`crate::prefilter::PairFilter`]'s masked byte comparison. A lane with
//! no confirmed rare pair cannot contain the chosen pair of any pattern
//! occurrence, so the DFA never touches it. Stage two hands each flagged
//! lane a *residue window* that reaches back `max_offset` bytes (a
//! confirmed pair at `q` means a covered occurrence starts no earlier
//! than `q − max_offset`) and scans it with the full-table DFA, taking
//! two bytes per step through a precomputed 256×256 root-pair table
//! whenever the scan sits at the root.
//!
//! # Why the result is byte-identical to `FullAc`
//!
//! The scan tracks whether its state is *synced* — provably equal to the
//! state a full scan would have. It starts synced (the caller's entry
//! state is the true flow state) and skipping is only permitted from a
//! synced root:
//!
//! * No occurrence spans a skip entry: a synced root means no pattern
//!   prefix is alive, so nothing begun before the entry can end after it.
//! * No occurrence hides inside a skipped lane: every pattern's chosen
//!   pair confirms, and the resume point backs up `max_offset` bytes, so
//!   the residue window covers any occurrence whose pair the filter saw —
//!   including pairs straddling lane boundaries, whose second byte is
//!   read across the boundary during confirmation.
//! * Matches reported while unsynced are exact: the window state's
//!   suffix chain contains every pattern genuinely ending at a position
//!   (the window covers all occurrence starts), and nothing else, so the
//!   reported entry set equals the full scan's even when the state id
//!   differs. The scan re-syncs after `max_depth` contiguous bytes.
//! * The returned state is exact either way: if the scan ends unsynced,
//!   a callback-free root rescan of at most `max_depth` trailing bytes
//!   (bounded below by the last synced-root position) recomputes it.
//!
//! On pair-dense payloads (the complexity-attack traces of §4.3.1)
//! skipping stops paying; the kernel notices confirmed-candidate density
//! and degrades to plain DFA stepping for the rest of the call, keeping
//! the adversarial floor close to the `full` kernel.

use crate::full::FullAc;
use crate::kernel::{DepthSamples, ScanKernel};
use crate::prefilter::{PairFilter, LANE};
use crate::{Automaton, MatchEntry, StateId};

/// Per-scan prefilter effectiveness counters, reported by
/// [`PrefilteredAc::scan_with_stats`] for the kernel benchmarks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PrefilterStats {
    /// Payload bytes the DFA never touched.
    pub skipped_bytes: u64,
    /// Payload bytes stepped through the DFA (residue windows + tails).
    pub dfa_bytes: u64,
    /// Residue windows opened (confirmed candidates).
    pub windows: u64,
    /// Residue windows that produced no match — the filter's
    /// false-positive residue.
    pub quiet_windows: u64,
    /// Whether candidate density tripped the adaptive bail-out.
    pub bailed: bool,
    /// Whether the pair filter ran at all (false: no filter compiled or
    /// the payload was below the minimum length).
    pub filtered: bool,
}

impl PrefilterStats {
    /// Fraction of payload bytes the DFA never touched.
    pub fn skip_fraction(&self) -> f64 {
        let total = self.skipped_bytes + self.dfa_bytes;
        if total == 0 {
            0.0
        } else {
            self.skipped_bytes as f64 / total as f64
        }
    }

    /// Fraction of residue windows that held no match.
    pub fn quiet_window_fraction(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.quiet_windows as f64 / self.windows as f64
        }
    }
}

/// A [`FullAc`] wrapped with the SWAR pair prefilter and the stride-2
/// root table. Built by
/// [`crate::CombinedAcBuilder::build_kernel`].
#[derive(Debug, Clone)]
pub struct PrefilteredAc {
    inner: FullAc,
    filter: Option<PairFilter>,
    /// `root_pair[b1 << 8 | b2]` = the state two steps from the root —
    /// one 256 KiB table that lets root-resident scanning consume byte
    /// pairs.
    root_pair: Vec<u32>,
    /// Bit per first byte: whether one step from the root already
    /// accepts (single-byte patterns force a single-step there so the
    /// mid-stride match is reported).
    mid_accept: [u64; 4],
    /// Longest pattern (= deepest state), bounding both re-sync distance
    /// and the final-state fixup window.
    max_depth: usize,
    /// Payloads shorter than this skip the filter machinery entirely.
    min_len: usize,
}

impl PrefilteredAc {
    /// The bail-out watches measured skip effectiveness instead of
    /// guessing from candidate counts: once `BAIL_WARMUP` bytes are
    /// behind it, if fewer than 1/`BAIL_SKIP_DEN` of them were skipped,
    /// window replay and re-sync churn are eating the filter's winnings
    /// and the scan degrades to the unrolled full-table loop. Re-checked
    /// every `BAIL_WARMUP` bytes so a pair-dense tail also trips it.
    const BAIL_WARMUP: usize = 384;
    const BAIL_SKIP_DEN: u64 = 4;

    /// Builds the two-stage scanner. `patterns` are the automaton's raw
    /// literals (anchor-extraction output included); when no selective
    /// pair cover exists the kernel keeps the DFA-only path and
    /// [`PrefilteredAc::is_filtered`] reports `false`.
    pub fn build(inner: FullAc, patterns: &[Vec<u8>]) -> PrefilteredAc {
        let filter = PairFilter::build(patterns);
        let root = inner.start();
        let mut root_pair = vec![0u32; 256 * 256];
        let mut mid_accept = [0u64; 4];
        for b1 in 0..256usize {
            let s1 = inner.step(root, b1 as u8);
            if inner.is_accepting(s1) {
                mid_accept[b1 / 64] |= 1u64 << (b1 % 64);
            }
            for b2 in 0..256usize {
                root_pair[b1 << 8 | b2] = inner.step(s1, b2 as u8);
            }
        }
        let max_depth = usize::from(inner.max_depth()).max(1);
        let min_len = (2 * max_depth).max(2 * LANE);
        PrefilteredAc {
            inner,
            filter,
            root_pair,
            mid_accept,
            max_depth,
            min_len,
        }
    }

    /// Whether a selective pair filter compiled for this pattern set.
    pub fn is_filtered(&self) -> bool {
        self.filter.is_some()
    }

    /// The wrapped full-table automaton.
    pub fn inner(&self) -> &FullAc {
        &self.inner
    }

    /// Depth (label length) of a state — used by stress telemetry.
    pub fn state_depth(&self, state: StateId) -> u16 {
        self.inner.state_depth(state)
    }

    /// Maximum depth over all states (longest pattern).
    pub fn max_depth(&self) -> u16 {
        self.inner.max_depth()
    }

    /// [`ScanKernel::scan_sampled`] plus effectiveness counters — the
    /// kernel benchmark's probe.
    pub fn scan_with_stats<F: FnMut(usize, StateId)>(
        &self,
        state: StateId,
        data: &[u8],
        stats: &mut PrefilterStats,
        on_accept: F,
    ) -> StateId {
        let mut samples = DepthSamples::default();
        self.scan_impl(
            state,
            data,
            usize::MAX,
            u16::MAX,
            &mut samples,
            stats,
            on_accept,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_impl<F: FnMut(usize, StateId)>(
        &self,
        state: StateId,
        data: &[u8],
        sample_every: usize,
        deep_depth: u16,
        samples: &mut DepthSamples,
        stats: &mut PrefilterStats,
        mut on_accept: F,
    ) -> StateId {
        let full = &self.inner;
        let t = &full.transitions[..];
        let f = full.f;
        let root = full.root;
        let depth = &full.depth[..];
        let n = data.len();
        let l = self.max_depth;

        let filter = match &self.filter {
            Some(pf) if n >= self.min_len => Some(pf),
            _ => None,
        };
        stats.filtered |= filter.is_some();
        if filter.is_none() {
            // No filter compiled (or the payload is too short for it to
            // pay): this scan is exactly a full-table scan, so run the
            // unrolled `full` kernel rather than a slower strided loop.
            stats.dfa_bytes += n as u64;
            return self.inner.scan_sampled(
                state,
                data,
                sample_every,
                deep_depth,
                samples,
                &mut on_accept,
            );
        }

        let mut s = state;
        let mut pos = 0usize;
        let mut next_sample = 0usize;
        let mut synced = true;
        let mut run_start = 0usize;
        let mut fixup_floor = 0usize;
        let mut no_skip_before = 0usize;
        let mut skipped_local = 0u64;
        let mut bail_check_at = Self::BAIL_WARMUP;
        let mut resync_at = usize::MAX;
        let mut matches = 0u64;
        let mut window_mark = 0u64;
        let mut in_window = false;

        macro_rules! sample {
            ($st:expr) => {
                samples.total += 1;
                if depth[$st as usize] >= deep_depth {
                    samples.deep += 1;
                }
                next_sample = next_sample.saturating_add(sample_every);
            };
        }

        while pos < n {
            if synced && s == root && pos >= no_skip_before && n - pos >= LANE {
                let pf = filter.expect("the DFA-only path returned early");
                // ---- Stage one: skip candidate-free lanes. ----
                let skip_entry = pos;
                fixup_floor = pos;
                if in_window {
                    if matches == window_mark {
                        stats.quiet_windows += 1;
                    }
                    in_window = false;
                }
                let mut found = None;
                while pos + LANE <= n {
                    let lane =
                        u128::from_le_bytes(data[pos..pos + LANE].try_into().expect("lane width"));
                    let mut hits = pf.lane_hits(lane);
                    while hits != 0 {
                        let q = pos + (hits.trailing_zeros() as usize) / 8;
                        // Confirm the second byte, reading across the
                        // lane boundary; a pair cut off by the end of
                        // data stays a candidate (it may complete in the
                        // next packet of the flow).
                        if q + 1 >= n || pf.confirms(data[q], data[q + 1]) {
                            found = Some(q);
                            break;
                        }
                        hits &= hits - 1;
                    }
                    if found.is_some() {
                        break;
                    }
                    pos += LANE;
                }
                // Resume target: back up so the residue window covers any
                // occurrence whose chosen pair sits at/after the skipped
                // region's end.
                let target = match found {
                    Some(q) => {
                        stats.windows += 1;
                        window_mark = matches;
                        in_window = true;
                        no_skip_before = q + 2;
                        // The replay provably equals the true state once
                        // the candidate's pair bytes are consumed: a
                        // prefix begun inside the skipped region would
                        // have needed its pair confirmed before `q`, and
                        // the lane sweep proved none was.
                        resync_at = q + 2;
                        q.saturating_sub(pf.max_offset).max(skip_entry)
                    }
                    None => {
                        no_skip_before = pos;
                        resync_at = usize::MAX;
                        pos.saturating_sub(pf.max_offset).max(skip_entry)
                    }
                };
                while next_sample < target {
                    // Skipped positions sample as shallow: a live prefix
                    // there is at most one pair-window deep.
                    samples.total += 1;
                    next_sample = next_sample.saturating_add(sample_every);
                }
                stats.skipped_bytes += (target - skip_entry) as u64;
                skipped_local += (target - skip_entry) as u64;
                if target > skip_entry {
                    synced = false;
                    run_start = target;
                }
                s = root;
                pos = target;
                continue;
            }
            if pos >= bail_check_at {
                // Pair-dense payload (complexity-attack shaped): when the
                // measured skip fraction is under water, skipping is
                // churn — degrade to plain stepping.
                if skipped_local.saturating_mul(Self::BAIL_SKIP_DEN) < pos as u64 {
                    stats.bailed = true;
                    // Finish the payload on the unrolled remainder loop
                    // below instead of the strided stepper.
                    break;
                }
                bail_check_at = pos + Self::BAIL_WARMUP;
            }

            // ---- Stage two: DFA over the residue window / tail. ----
            if s == root && pos + 1 < n && pos != next_sample {
                let b1 = usize::from(data[pos]);
                if self.mid_accept[b1 / 64] >> (b1 % 64) & 1 == 0 {
                    // Root-resident: consume two bytes through the pair
                    // table. The mid state is provably non-accepting, so
                    // no callback is owed for it.
                    let b2 = usize::from(data[pos + 1]);
                    s = self.root_pair[b1 << 8 | b2];
                    stats.dfa_bytes += 2;
                    pos += 2;
                    if pos - 1 == next_sample {
                        sample!(s);
                    }
                    if s < f {
                        matches += 1;
                        on_accept(pos - 1, s);
                    }
                    if !synced && (pos >= resync_at || pos - run_start >= l) {
                        synced = true;
                    }
                    continue;
                }
            }
            s = t[(s as usize) * 256 + usize::from(data[pos])];
            stats.dfa_bytes += 1;
            if pos == next_sample {
                sample!(s);
            }
            if s < f {
                matches += 1;
                on_accept(pos, s);
            }
            pos += 1;
            if !synced && (pos >= resync_at || pos - run_start >= l) {
                synced = true;
            }
        }

        // Degraded remainder after a bail-out: plain full-table stepping,
        // unrolled like the `full` kernel so the adversarial floor stays
        // at its throughput.
        if pos < n {
            stats.dfa_bytes += (n - pos) as u64;
            let mut i = pos;
            macro_rules! step_byte {
                ($idx:expr) => {
                    s = t[(s as usize) * 256 + usize::from(data[$idx])];
                    if $idx == next_sample {
                        sample!(s);
                    }
                    if s < f {
                        matches += 1;
                        on_accept($idx, s);
                    }
                };
            }
            while i + 4 <= n {
                step_byte!(i);
                step_byte!(i + 1);
                step_byte!(i + 2);
                step_byte!(i + 3);
                i += 4;
            }
            while i < n {
                step_byte!(i);
                i += 1;
            }
            pos = n;
            if !synced && (pos >= resync_at || pos - run_start >= l) {
                synced = true;
            }
        }

        if in_window && matches == window_mark {
            stats.quiet_windows += 1;
        }

        // ---- Final-state fixup: stateful flows store this state, so it
        // must equal the full scan's exactly. The true final suffix is at
        // most `max_depth` long and starts no earlier than the last
        // synced root, so a root rescan of that window recomputes it.
        if !synced {
            let start = fixup_floor.max(n.saturating_sub(l));
            let mut fs = root;
            for &b in &data[start..] {
                fs = t[(fs as usize) * 256 + usize::from(b)];
            }
            s = fs;
        }
        s
    }
}

impl Automaton for PrefilteredAc {
    fn start(&self) -> StateId {
        self.inner.start()
    }

    #[inline(always)]
    fn step(&self, state: StateId, byte: u8) -> StateId {
        self.inner.step(state, byte)
    }

    #[inline(always)]
    fn is_accepting(&self, state: StateId) -> bool {
        self.inner.is_accepting(state)
    }

    fn bitmap(&self, state: StateId) -> u64 {
        self.inner.bitmap(state)
    }

    fn entries(&self, state: StateId) -> &[MatchEntry] {
        self.inner.entries(state)
    }

    fn state_count(&self) -> usize {
        self.inner.state_count()
    }

    fn accepting_count(&self) -> usize {
        self.inner.accepting_count()
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
            + self.root_pair.len() * std::mem::size_of::<u32>()
            + std::mem::size_of_val(&self.mid_accept)
            + self.filter.as_ref().map(|f| f.memory_bytes()).unwrap_or(0)
    }

    fn scan<F: FnMut(usize, StateId)>(&self, state: StateId, data: &[u8], on_match: F) -> StateId {
        let mut samples = DepthSamples::default();
        let mut stats = PrefilterStats::default();
        self.scan_impl(
            state,
            data,
            usize::MAX,
            u16::MAX,
            &mut samples,
            &mut stats,
            on_match,
        )
    }
}

impl ScanKernel for PrefilteredAc {
    fn kernel_name(&self) -> &'static str {
        "prefiltered"
    }

    fn scan_sampled(
        &self,
        state: StateId,
        data: &[u8],
        sample_every: usize,
        deep_depth: u16,
        samples: &mut DepthSamples,
        on_accept: &mut dyn FnMut(usize, StateId),
    ) -> StateId {
        let mut stats = PrefilterStats::default();
        self.scan_impl(
            state,
            data,
            sample_every,
            deep_depth,
            samples,
            &mut stats,
            on_accept,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CombinedAcBuilder, PatternSet};
    use crate::MiddleboxId;

    fn build(patterns: &[&str]) -> (FullAc, PrefilteredAc) {
        let mut b = CombinedAcBuilder::new();
        b.add_set(PatternSet::from_strs(MiddleboxId(0), patterns))
            .unwrap();
        let full = b.build_full();
        let pats: Vec<Vec<u8>> = patterns.iter().map(|p| p.as_bytes().to_vec()).collect();
        (b.build_full(), PrefilteredAc::build(full, &pats))
    }

    fn match_stream(ac: &impl Automaton, data: &[u8]) -> (Vec<(usize, Vec<MatchEntry>)>, StateId) {
        let mut out = Vec::new();
        let fin = ac.scan(ac.start(), data, |pos, st| {
            out.push((pos, ac.entries(st).to_vec()));
        });
        (out, fin)
    }

    #[test]
    fn selective_set_compiles_a_filter() {
        let (_, pre) = build(&["evil|sig", "bad~marker"]);
        assert!(pre.is_filtered());
    }

    #[test]
    fn matches_and_final_state_equal_full_on_long_benign_payload() {
        let (full, pre) = build(&["evil|sig", "bad~marker", "X#Y"]);
        let mut data = b"plain old http text with nothing interesting in it at all ".repeat(20);
        data.extend_from_slice(b"evil|sig");
        data.extend_from_slice(&b"more filler text after the single match here".repeat(10));
        let (mf, sf) = match_stream(&full, &data);
        let (mp, sp) = match_stream(&pre, &data);
        assert_eq!(mf, mp);
        assert_eq!(sf, sp);
        assert_eq!(mf.len(), 1);
    }

    #[test]
    fn skip_stats_report_skipping_on_benign_payload() {
        let (_, pre) = build(&["evil|sig"]);
        let data = b"completely benign text without the rare byte anywhere at all ".repeat(30);
        let mut stats = PrefilterStats::default();
        pre.scan_with_stats(pre.start(), &data, &mut stats, |_, _| {});
        assert!(stats.filtered);
        assert!(
            stats.skip_fraction() > 0.8,
            "skip {}",
            stats.skip_fraction()
        );
        assert_eq!(stats.windows, 0);
    }

    #[test]
    fn cross_packet_state_is_exact_even_after_skipping() {
        let (full, pre) = build(&["deadly#strike"]);
        // Packet 1 ends mid-pattern *after* a long benign run the filter
        // skips; the stored state must still carry the partial match.
        let mut p1 = b"filler without rare bytes, lots of it, over and over ".repeat(10);
        p1.extend_from_slice(b"deadly#str");
        let p2 = b"ike and trailing bytes";
        let sf = full.scan(full.start(), &p1, |_, _| {});
        let sp = pre.scan(pre.start(), &p1, |_, _| {});
        assert_eq!(sf, sp, "final state after packet 1");
        let mut hits_f = Vec::new();
        let mut hits_p = Vec::new();
        full.scan(sf, p2, |pos, st| hits_f.push((pos, st)));
        pre.scan(sp, p2, |pos, st| hits_p.push((pos, st)));
        assert_eq!(hits_f, hits_p);
        assert_eq!(hits_f.len(), 1);
    }

    #[test]
    fn matches_straddling_lane_boundaries_are_found() {
        let (full, pre) = build(&["rare~pair"]);
        // Place the pattern at every offset in a window wider than two
        // SWAR lanes so the pair crosses each lane position once.
        for off in 0..48usize {
            let mut data = vec![b'x'; 160];
            data[off..off + 9].copy_from_slice(b"rare~pair");
            assert_eq!(
                match_stream(&pre, &data),
                match_stream(&full, &data),
                "offset {off}"
            );
        }
    }

    #[test]
    fn adversarial_prefix_stream_bails_but_stays_exact() {
        let (full, pre) = build(&["evil|sig", "bad~marker"]);
        // A §4.3.1 complexity-attack payload: truncated pattern prefixes
        // with root-resetting separators, so the scan keeps re-entering
        // skip mode and finding a confirmed candidate in every lane.
        let mut data = Vec::new();
        while data.len() < 2048 {
            data.extend_from_slice(b"evil|sxx");
        }
        let mut stats = PrefilterStats::default();
        let mut hits = Vec::new();
        let fin = pre.scan_with_stats(pre.start(), &data, &mut stats, |p, s| hits.push((p, s)));
        assert!(stats.bailed, "dense candidates must trip the bail-out");
        let mut hits_f = Vec::new();
        let fin_f = full.scan(full.start(), &data, |p, s| hits_f.push((p, s)));
        assert_eq!(hits, hits_f);
        assert_eq!(fin, fin_f);
    }

    #[test]
    fn single_byte_patterns_stay_exact() {
        let (full, pre) = build(&["~", "long|pattern"]);
        let mut data = b"text with ~ tildes ~ sprinkled ".repeat(12);
        data.extend_from_slice(b"long|pattern");
        assert_eq!(match_stream(&pre, &data), match_stream(&full, &data));
    }

    #[test]
    fn short_payloads_fall_back_to_plain_scan() {
        let (full, pre) = build(&["evil|sig"]);
        let data = b"evil|sig";
        let mut stats = PrefilterStats::default();
        let mut hits = 0;
        pre.scan_with_stats(pre.start(), data, &mut stats, |_, _| hits += 1);
        assert!(!stats.filtered);
        assert_eq!(hits, 1);
        assert_eq!(match_stream(&pre, data), match_stream(&full, data));
    }

    #[test]
    fn unfiltered_pattern_sets_still_scan_exactly() {
        // Nine distinct common-letter heads whose only pairs are doubled
        // letters: covering them needs nine first bytes, one over budget,
        // so the filter refuses and the kernel runs DFA-only — results
        // stay exact.
        let pats = [
            "eeee", "tttt", "aaaa", "oooo", "iiii", "nnnn", "ssss", "rrrr", "hhhh",
        ];
        let (full, pre) = build(&pats);
        assert!(!pre.is_filtered());
        let data = b"the nation heats itssss streeeength and rests on cost ".repeat(8);
        assert_eq!(match_stream(&pre, &data), match_stream(&full, &data));
    }
}
