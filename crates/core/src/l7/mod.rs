//! L7 protocol inspection: identify → decode → scan (DESIGN.md §14).
//!
//! The paper's service scans raw reassembled TCP bytes; real DPI value
//! comes from inspecting *decoded* application payloads — a pattern
//! hidden inside a gzipped chunked HTTP body or a masked WebSocket frame
//! is invisible to a raw-byte scan. This module sits between stream
//! reassembly ([`crate::instance::ScanEngine::scan_tcp_segment`]) and
//! the scan kernel:
//!
//! 1. **Identify**: the first reassembled bytes of a flow name its
//!    protocol — an HTTP/1 method or status line, a TLS handshake record
//!    header, or `Unknown`. Identification is prefix-exact and resolves
//!    within [`IDENTIFY_CAP`] bytes; an unidentifiable flow falls back
//!    to raw scanning **byte-identical to the pre-L7 engine**.
//! 2. **Decode**: per-protocol incremental decoders (HTTP/1 framing with
//!    chunked transfer and `Content-Encoding: gzip` bodies, TLS records
//!    with SNI extraction, WebSocket frame unmasking) that turn wire
//!    bytes into [`DecodedUnit`]s — header blocks, decoded body streams,
//!    SNI hostnames — each scanned by the existing kernel with correct
//!    resumable offsets so patterns spanning segment/chunk/frame
//!    boundaries still match.
//! 3. **Police**: a g3-style per-protocol policy
//!    ([`L7Policy`]) sets an inspection size limit and an action —
//!    `Intercept` (decode and scan), `Block` (fail-closed mark, nothing
//!    scanned), `Bypass`/`Detour` (waved through uninspected). Every
//!    decode error, truncation and action is surfaced via telemetry and
//!    [`crate::trace::TraceKind`] events: the layer never silently
//!    drops coverage.
//!
//! The decode state for one flow lives in an [`L7Session`] inside the
//! owning shard, keyed by `FlowKey` — one direction per session, exactly
//! like the reassembler it feeds from.

pub mod http1;
pub mod tls;
pub mod websocket;

use serde::{Deserialize, Serialize};

/// Identification resolves within this many buffered bytes; flows whose
/// prefix is still ambiguous at the cap are `Unknown`. The longest
/// discriminating prefix is 8 bytes (`"OPTIONS "` / `"CONNECT "`).
pub const IDENTIFY_CAP: usize = 16;

/// Resumable decoded-stream scan slots per session (HTTP body,
/// WebSocket body).
pub const SLOT_COUNT: usize = 2;
/// Slot index of the HTTP message-body stream (reset per message).
pub const SLOT_HTTP_BODY: usize = 0;
/// Slot index of the WebSocket data stream (continuous across frames).
pub const SLOT_WS_BODY: usize = 1;

/// Application protocols the identification stage can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum L7Protocol {
    /// HTTP/1.x (request or response side).
    Http1,
    /// TLS (any version with a v3 record layer).
    Tls,
    /// WebSocket, entered via an HTTP/1 Upgrade handshake.
    WebSocket,
    /// Anything else: scanned raw, byte-identical to the pre-L7 engine.
    Unknown,
}

impl L7Protocol {
    /// Number of protocols (array-indexed telemetry uses this).
    pub const COUNT: usize = 4;
    /// Every protocol, in index order.
    pub const ALL: [L7Protocol; L7Protocol::COUNT] = [
        L7Protocol::Http1,
        L7Protocol::Tls,
        L7Protocol::WebSocket,
        L7Protocol::Unknown,
    ];

    /// Dense index for per-protocol counters.
    pub fn index(self) -> usize {
        match self {
            L7Protocol::Http1 => 0,
            L7Protocol::Tls => 1,
            L7Protocol::WebSocket => 2,
            L7Protocol::Unknown => 3,
        }
    }

    /// Stable lowercase name (metric label values).
    pub fn name(self) -> &'static str {
        match self {
            L7Protocol::Http1 => "http1",
            L7Protocol::Tls => "tls",
            L7Protocol::WebSocket => "websocket",
            L7Protocol::Unknown => "unknown",
        }
    }
}

/// What a middlebox-facing policy does with an identified protocol
/// (the g3 DPI action model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum L7Action {
    /// Decode the protocol and scan the decoded payloads (default).
    Intercept,
    /// Fail-closed: every output for the flow carries the blocked mark;
    /// nothing is decoded or scanned.
    Block,
    /// Wave the flow through uninspected (fail-open).
    Bypass,
    /// Hand the flow to an external inspection path. The detour target
    /// is outside this engine (the SDN layer would re-steer); locally it
    /// behaves like `Bypass` but is counted and traced separately.
    Detour,
}

/// Per-protocol inspection policy: how much to decode and what to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolPolicy {
    /// Action applied when a flow is identified as this protocol.
    pub action: L7Action,
    /// Inspection size limit in bytes. Bounds decoded output per scope
    /// (HTTP: header block and per-message decoded body; TLS: buffered
    /// handshake bytes; WebSocket: decoded data bytes per flow) and the
    /// decompression-bomb guard. Past the limit the decoder truncates
    /// and flags — framing continues, scanning of the excess stops.
    pub size_limit: usize,
}

impl ProtocolPolicy {
    /// Intercept with a size limit.
    pub fn intercept(size_limit: usize) -> ProtocolPolicy {
        ProtocolPolicy {
            action: L7Action::Intercept,
            size_limit,
        }
    }

    /// Replaces the action, keeping the size limit.
    pub fn with_action(mut self, action: L7Action) -> ProtocolPolicy {
        self.action = action;
        self
    }
}

/// The engine-wide L7 policy: one [`ProtocolPolicy`] per protocol.
/// Installed via `InstanceConfig::with_l7_policy`; when absent the
/// engine scans raw bytes exactly as before the L7 layer existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct L7Policy {
    /// HTTP/1 policy.
    pub http: ProtocolPolicy,
    /// TLS policy (SNI metadata is the scannable surface).
    pub tls: ProtocolPolicy,
    /// WebSocket policy.
    pub websocket: ProtocolPolicy,
    /// Policy for unidentified flows. `Intercept` (the default) means
    /// the raw fallback scan; its `size_limit` is unused (raw scanning
    /// decodes nothing).
    pub unknown: ProtocolPolicy,
}

impl Default for L7Policy {
    fn default() -> L7Policy {
        L7Policy {
            http: ProtocolPolicy::intercept(64 << 10),
            tls: ProtocolPolicy::intercept(16 << 10),
            websocket: ProtocolPolicy::intercept(64 << 10),
            unknown: ProtocolPolicy::intercept(0),
        }
    }
}

impl L7Policy {
    /// The policy entry for one protocol.
    pub fn policy_for(&self, proto: L7Protocol) -> ProtocolPolicy {
        match proto {
            L7Protocol::Http1 => self.http,
            L7Protocol::Tls => self.tls,
            L7Protocol::WebSocket => self.websocket,
            L7Protocol::Unknown => self.unknown,
        }
    }

    /// Replaces one protocol's policy.
    pub fn with(mut self, proto: L7Protocol, policy: ProtocolPolicy) -> L7Policy {
        match proto {
            L7Protocol::Http1 => self.http = policy,
            L7Protocol::Tls => self.tls = policy,
            L7Protocol::WebSocket => self.websocket = policy,
            L7Protocol::Unknown => self.unknown = policy,
        }
        self
    }
}

/// Which side of the connection a session decodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum L7Direction {
    /// The flow carries client→server bytes (request side).
    ClientToServer,
    /// The flow carries server→client bytes (response side).
    ServerToClient,
}

/// Which protocol field a decoded unit came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum L7Field {
    /// Undecoded wire bytes (blocked-flow marks; raw fallback outputs
    /// themselves carry no context at all, for byte-identity with the
    /// pre-L7 engine).
    Raw,
    /// An HTTP/1 header block (request/status line included).
    Header,
    /// Decoded message-body bytes (dechunked, decompressed, unmasked).
    Body,
    /// The TLS server-name-indication hostname, scanned as metadata.
    Sni,
}

/// Protocol context attached to a [`crate::ScanOutput`] produced from a
/// decoded unit: what protocol, which direction, which field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct L7Context {
    /// The identified protocol.
    pub protocol: L7Protocol,
    /// Decode direction of the session.
    pub direction: L7Direction,
    /// Field the scanned bytes came from.
    pub field: L7Field,
}

/// A per-middlebox protocol subscription mask. A middlebox only receives
/// matches from decoded units of protocols it subscribes to; the raw
/// fallback for `Unknown` flows is never filtered (fail-open, and
/// byte-identical to the pre-L7 engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolMask(pub u8);

impl ProtocolMask {
    /// Subscribes to every protocol (the default).
    pub const ALL: ProtocolMask = ProtocolMask(0x0f);

    /// A mask of exactly the given protocols.
    pub fn only(protos: &[L7Protocol]) -> ProtocolMask {
        let mut m = 0u8;
        for p in protos {
            m |= 1 << p.index();
        }
        ProtocolMask(m)
    }

    /// Whether the mask includes `proto`.
    pub fn contains(self, proto: L7Protocol) -> bool {
        self.0 & (1 << proto.index()) != 0
    }
}

impl Default for ProtocolMask {
    fn default() -> ProtocolMask {
        ProtocolMask::ALL
    }
}

/// One decoded payload ready to scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedUnit {
    /// Protocol context stamped into the resulting `ScanOutput`.
    pub ctx: L7Context,
    /// The decoded bytes.
    pub bytes: Vec<u8>,
    /// Resumable stream slot ([`SLOT_HTTP_BODY`] / [`SLOT_WS_BODY`]);
    /// `None` scans fresh (header blocks, SNI).
    pub slot: Option<usize>,
    /// Reset the slot's scan state before this unit (start of a new
    /// HTTP message body).
    pub reset: bool,
}

/// What one decoder `push` produced. Decoders append into this; the
/// session folds it into an [`Ingest`] for the engine.
#[derive(Debug, Default)]
pub(crate) struct DecodeOut {
    pub units: Vec<DecodedUnit>,
    /// Byte buffers to scan through the raw (undecoded) path — decode
    /// failures fail *open*: the bytes are still scanned, just without
    /// decoding (the no-silent-miss guarantee extended to L7).
    pub raw: Vec<Vec<u8>>,
    /// Decode errors encountered (malformed framing, bad gzip, …).
    pub errors: u64,
    /// One entry per size-limit truncation event: decoded bytes
    /// retained when the event fired.
    pub truncations: Vec<u64>,
    /// The decoder learned the session direction (TLS: from the first
    /// handshake message type).
    pub direction: Option<L7Direction>,
    /// HTTP completed an Upgrade handshake: the session must switch to
    /// the WebSocket decoder and feed it these leftover bytes.
    pub upgrade_ws: Option<Vec<u8>>,
    /// The decoder gave up on framing; the session falls back to raw
    /// scanning for the rest of the flow.
    pub failed_open: bool,
}

/// What one reassembled run produced after identification, decoding and
/// policy: the engine scans `units` (decoded, with context) and `raw`
/// (legacy path), and bumps counters/traces from the rest.
#[derive(Debug, Default)]
pub struct Ingest {
    /// Protocols identified this call, in order (usually one; the
    /// HTTP→WebSocket upgrade can resolve both in a single run —
    /// `Unknown` counts as an identification too).
    pub identified: Vec<L7Protocol>,
    /// The action applied at identification.
    pub action: Option<L7Action>,
    /// Decoded units to scan, in stream order.
    pub units: Vec<DecodedUnit>,
    /// Buffers to scan through the raw path (Unknown fallback and
    /// decode-failure fail-open), in stream order.
    pub raw: Vec<Vec<u8>>,
    /// Decode errors this call.
    pub errors: u64,
    /// Truncation events this call (decoded bytes retained per event).
    pub truncations: Vec<u64>,
    /// The session is blocked: the caller emits a fail-closed output.
    pub blocked: bool,
}

/// Identification outcome over a growing prefix.
#[derive(Debug, PartialEq, Eq)]
enum Identified {
    /// Prefix still ambiguous — buffer more bytes.
    NeedMore,
    /// Protocol named, with the direction the prefix implies.
    Is(L7Protocol, L7Direction),
    /// No known protocol starts like this.
    Unknown,
}

/// HTTP/1 request-line prefixes that identify a client→server session.
const HTTP_METHODS: [&[u8]; 9] = [
    b"GET ",
    b"PUT ",
    b"POST ",
    b"HEAD ",
    b"PATCH ",
    b"TRACE ",
    b"DELETE ",
    b"OPTIONS ",
    b"CONNECT ",
];
/// HTTP/1 status-line prefix: a server→client session.
const HTTP_RESPONSE: &[u8] = b"HTTP/1.";

/// Names the protocol from a stream prefix. Exact-prefix matching: the
/// result is `NeedMore` only while `buf` is a proper prefix of some
/// candidate, so resolution needs at most 8 bytes.
fn identify(buf: &[u8]) -> Identified {
    if buf.is_empty() {
        return Identified::NeedMore;
    }
    // TLS: a v3 record header for a handshake record.
    if buf[0] == 0x16 {
        if buf.len() < 3 {
            return Identified::NeedMore;
        }
        return if buf[1] == 0x03 && buf[2] <= 0x04 {
            // Direction is provisional; the first handshake message
            // type (ClientHello/ServerHello) settles it.
            Identified::Is(L7Protocol::Tls, L7Direction::ClientToServer)
        } else {
            Identified::Unknown
        };
    }
    let mut ambiguous = false;
    for cand in HTTP_METHODS {
        if buf.len() >= cand.len() {
            if buf.starts_with(cand) {
                return Identified::Is(L7Protocol::Http1, L7Direction::ClientToServer);
            }
        } else if cand.starts_with(buf) {
            ambiguous = true;
        }
    }
    if buf.len() >= HTTP_RESPONSE.len() {
        if buf.starts_with(HTTP_RESPONSE) {
            return Identified::Is(L7Protocol::Http1, L7Direction::ServerToClient);
        }
    } else if HTTP_RESPONSE.starts_with(buf) {
        ambiguous = true;
    }
    if ambiguous {
        Identified::NeedMore
    } else {
        Identified::Unknown
    }
}

/// Decode phase of one session.
#[derive(Debug)]
enum Phase {
    /// Buffering the first bytes until the protocol resolves.
    Identify(Vec<u8>),
    /// HTTP/1 framing.
    Http(http1::Http1Decoder),
    /// TLS record parsing.
    Tls(tls::TlsDecoder),
    /// WebSocket frames (after an HTTP Upgrade).
    Ws(websocket::WsDecoder),
    /// Raw fallback: every byte goes to the legacy scan path.
    Raw,
    /// Policy said don't inspect. `blocked` distinguishes fail-closed
    /// `Block` (outputs carry the blocked mark) from `Bypass`/`Detour`.
    Skip {
        /// Whether outputs carry the fail-closed blocked mark.
        blocked: bool,
    },
}

/// Per-flow L7 decode state, owned by the shard that owns the flow's
/// reassembler. Created lazily on the first reassembled run, torn down
/// with the flow.
#[derive(Debug)]
pub struct L7Session {
    phase: Phase,
    protocol: L7Protocol,
    direction: L7Direction,
    /// Resumable scan state per decoded stream slot:
    /// `(dfa_state, stream_offset, engine_generation)`. Generation-
    /// tagged exactly like the flow table, so a hot engine swap
    /// re-anchors decoded streams at the root (miss-only).
    pub(crate) streams: [Option<(u32, u64, u32)>; SLOT_COUNT],
}

impl Default for L7Session {
    fn default() -> L7Session {
        L7Session {
            phase: Phase::Identify(Vec::new()),
            protocol: L7Protocol::Unknown,
            direction: L7Direction::ClientToServer,
            streams: [None; SLOT_COUNT],
        }
    }
}

impl L7Session {
    /// The protocol this session decoded to (Unknown until identified).
    pub fn protocol(&self) -> L7Protocol {
        self.protocol
    }

    /// The session's decode direction.
    pub fn direction(&self) -> L7Direction {
        self.direction
    }

    /// Estimated heap bytes this session holds across calls: the
    /// identification buffer or the active decoder's carried wire/body
    /// buffers. Feeds the flow arena's per-flow byte accounting
    /// (DESIGN.md §15).
    pub fn heap_bytes(&self) -> u64 {
        match &self.phase {
            Phase::Identify(buf) => buf.len() as u64,
            Phase::Http(d) => d.heap_bytes(),
            Phase::Tls(d) => d.heap_bytes(),
            Phase::Ws(d) => d.heap_bytes(),
            Phase::Raw | Phase::Skip { .. } => 0,
        }
    }

    /// Feeds one in-order reassembled byte run through identification,
    /// the active decoder and the policy.
    pub fn accept(&mut self, run: &[u8], policy: &L7Policy) -> Ingest {
        let mut ingest = Ingest::default();
        if run.is_empty() {
            if let Phase::Skip { blocked: true } = self.phase {
                ingest.blocked = true;
            }
            return ingest;
        }
        match &mut self.phase {
            Phase::Identify(buf) => {
                buf.extend_from_slice(run);
                let resolved = match identify(buf) {
                    Identified::NeedMore if buf.len() < IDENTIFY_CAP => return ingest,
                    Identified::NeedMore | Identified::Unknown => {
                        (L7Protocol::Unknown, self.direction)
                    }
                    Identified::Is(p, d) => (p, d),
                };
                let bytes = std::mem::take(buf);
                self.begin(resolved.0, resolved.1, bytes, policy, &mut ingest);
            }
            Phase::Http(_) | Phase::Tls(_) | Phase::Ws(_) => {
                self.drive_decoder(run, policy, &mut ingest);
            }
            Phase::Raw => ingest.raw.push(run.to_vec()),
            Phase::Skip { blocked } => ingest.blocked = *blocked,
        }
        ingest
    }

    /// Applies `proto`'s policy and, under `Intercept`, constructs the
    /// decoder and feeds it the buffered prefix.
    fn begin(
        &mut self,
        proto: L7Protocol,
        dir: L7Direction,
        bytes: Vec<u8>,
        policy: &L7Policy,
        ingest: &mut Ingest,
    ) {
        self.protocol = proto;
        self.direction = dir;
        let pol = policy.policy_for(proto);
        ingest.identified.push(proto);
        ingest.action = Some(pol.action);
        match pol.action {
            L7Action::Block => {
                self.phase = Phase::Skip { blocked: true };
                ingest.blocked = true;
            }
            L7Action::Bypass | L7Action::Detour => {
                self.phase = Phase::Skip { blocked: false };
            }
            L7Action::Intercept => {
                self.phase = match proto {
                    L7Protocol::Http1 => Phase::Http(http1::Http1Decoder::new(dir)),
                    L7Protocol::Tls => Phase::Tls(tls::TlsDecoder::new()),
                    // WebSocket is only entered via the HTTP upgrade
                    // transition; a freshly identified flow never is.
                    L7Protocol::WebSocket => Phase::Ws(websocket::WsDecoder::new()),
                    L7Protocol::Unknown => Phase::Raw,
                };
                if matches!(self.phase, Phase::Raw) {
                    ingest.raw.push(bytes);
                } else {
                    self.drive_decoder(&bytes, policy, ingest);
                }
            }
        }
    }

    /// Pushes bytes through the active decoder and folds the result
    /// into `ingest`, handling fail-open and the WebSocket upgrade.
    fn drive_decoder(&mut self, data: &[u8], policy: &L7Policy, ingest: &mut Ingest) {
        let limit = policy.policy_for(self.protocol).size_limit;
        let mut out = DecodeOut::default();
        match &mut self.phase {
            Phase::Http(d) => d.push(data, limit, &mut out),
            Phase::Tls(d) => d.push(data, limit, &mut out),
            Phase::Ws(d) => d.push(data, limit, &mut out),
            _ => unreachable!("drive_decoder only runs on decoder phases"),
        }
        if let Some(dir) = out.direction {
            self.direction = dir;
        }
        let dir = self.direction;
        let proto = self.protocol;
        ingest.units.extend(out.units.into_iter().map(|mut u| {
            // Stamp the session's (possibly just-learned) identity; the
            // decoders only know the field and slot.
            u.ctx.protocol = proto;
            u.ctx.direction = dir;
            u
        }));
        ingest.raw.append(&mut out.raw);
        ingest.errors += out.errors;
        ingest.truncations.append(&mut out.truncations);
        if out.failed_open {
            self.phase = Phase::Raw;
            return;
        }
        if let Some(leftover) = out.upgrade_ws {
            // The HTTP handshake completed an Upgrade; the rest of the
            // flow is WebSocket, under the WebSocket policy.
            self.begin(
                L7Protocol::WebSocket,
                self.direction,
                leftover,
                policy,
                ingest,
            );
        }
    }
}

/// A context-free unit constructor for decoders (protocol/direction are
/// stamped by the session).
pub(crate) fn unit(
    field: L7Field,
    bytes: Vec<u8>,
    slot: Option<usize>,
    reset: bool,
) -> DecodedUnit {
    DecodedUnit {
        ctx: L7Context {
            protocol: L7Protocol::Unknown,
            direction: L7Direction::ClientToServer,
            field,
        },
        bytes,
        slot,
        reset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identify_resolves_known_prefixes() {
        assert_eq!(
            identify(b"GET /index.html HTTP/1.1\r\n"),
            Identified::Is(L7Protocol::Http1, L7Direction::ClientToServer)
        );
        assert_eq!(
            identify(b"HTTP/1.1 200 OK\r\n"),
            Identified::Is(L7Protocol::Http1, L7Direction::ServerToClient)
        );
        assert_eq!(
            identify(&[0x16, 0x03, 0x01, 0x00, 0x40]),
            Identified::Is(L7Protocol::Tls, L7Direction::ClientToServer)
        );
    }

    #[test]
    fn identify_buffers_only_proper_prefixes() {
        assert_eq!(identify(b"GE"), Identified::NeedMore);
        assert_eq!(identify(b"OPTIONS"), Identified::NeedMore);
        assert_eq!(identify(b"HTTP/"), Identified::NeedMore);
        assert_eq!(identify(&[0x16]), Identified::NeedMore);
        // One byte that no candidate starts with resolves immediately.
        assert_eq!(identify(b"x"), Identified::Unknown);
        assert_eq!(identify(b"GEX"), Identified::Unknown);
        assert_eq!(identify(&[0x16, 0x04, 0x00]), Identified::Unknown);
    }

    #[test]
    fn protocol_mask_defaults_to_all() {
        let m = ProtocolMask::default();
        for p in L7Protocol::ALL {
            assert!(m.contains(p));
        }
        let only = ProtocolMask::only(&[L7Protocol::Tls]);
        assert!(only.contains(L7Protocol::Tls));
        assert!(!only.contains(L7Protocol::Http1));
    }

    #[test]
    fn policy_round_trips_as_json() {
        let p = L7Policy::default().with(
            L7Protocol::Tls,
            ProtocolPolicy::intercept(1024).with_action(L7Action::Block),
        );
        let j = serde_json::to_string(&p).unwrap();
        let back: L7Policy = serde_json::from_str(&j).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.policy_for(L7Protocol::Tls).action, L7Action::Block);
    }

    #[test]
    fn unknown_session_falls_back_to_raw() {
        let policy = L7Policy::default();
        let mut s = L7Session::default();
        let a = s.accept(b"\x00binary junk that is no protocol", &policy);
        assert_eq!(a.identified, vec![L7Protocol::Unknown]);
        assert_eq!(a.raw.len(), 1);
        assert!(a.units.is_empty());
        let b = s.accept(b"more junk", &policy);
        assert!(b.identified.is_empty());
        assert_eq!(b.raw, vec![b"more junk".to_vec()]);
    }

    #[test]
    fn ambiguous_prefix_buffers_then_flushes() {
        let policy = L7Policy::default();
        let mut s = L7Session::default();
        // "GE" could still become "GET "; nothing scanned yet.
        let a = s.accept(b"GE", &policy);
        assert!(a.identified.is_empty() && a.raw.is_empty() && a.units.is_empty());
        // "GEM" can no longer be any method: the whole buffered prefix
        // flushes to the raw path — no byte is silently dropped.
        let b = s.accept(b"M", &policy);
        assert_eq!(b.identified, vec![L7Protocol::Unknown]);
        assert_eq!(b.raw, vec![b"GEM".to_vec()]);
    }

    #[test]
    fn block_policy_marks_without_scanning() {
        let policy = L7Policy::default().with(
            L7Protocol::Http1,
            ProtocolPolicy::intercept(1 << 16).with_action(L7Action::Block),
        );
        let mut s = L7Session::default();
        let a = s.accept(b"GET / HTTP/1.1\r\n\r\n", &policy);
        assert_eq!(a.identified, vec![L7Protocol::Http1]);
        assert_eq!(a.action, Some(L7Action::Block));
        assert!(a.blocked && a.units.is_empty() && a.raw.is_empty());
        let b = s.accept(b"more", &policy);
        assert!(b.blocked && b.identified.is_empty());
    }

    #[test]
    fn bypass_policy_scans_nothing() {
        let policy = L7Policy::default().with(
            L7Protocol::Http1,
            ProtocolPolicy::intercept(1 << 16).with_action(L7Action::Bypass),
        );
        let mut s = L7Session::default();
        let a = s.accept(b"GET / HTTP/1.1\r\n\r\n", &policy);
        assert_eq!(a.action, Some(L7Action::Bypass));
        assert!(!a.blocked && a.units.is_empty() && a.raw.is_empty());
    }
}
