//! Multi-tenant workload generation (DESIGN.md §16).
//!
//! A multi-tenant DPI instance serves several tenants' policy chains at
//! once; isolation and fairness tests need offered load that is (a)
//! attributable — every packet is chain-tagged, and each chain belongs
//! to exactly one tenant — and (b) deterministic, so a tenant's packets
//! are byte-identical whether the tenant runs alone or interleaved with
//! others. [`tenant_mix`] produces exactly that: per-stream packets are
//! derived only from the stream's own spec and the shared seed, never
//! from the other streams, so removing a stream from the mix leaves the
//! remaining streams' packets untouched.

use crate::flows::{flow_pool, FlowPool};
use dpi_packet::{MacAddr, Packet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One tenant's offered load in a [`tenant_mix`].
#[derive(Debug, Clone)]
pub struct TenantStream {
    /// The policy chain the packets are tagged for. Chains are
    /// tenant-homogeneous, so this also decides the owning tenant.
    pub chain_id: u16,
    /// Total packets this stream offers.
    pub packets: usize,
    /// Distinct flows the packets round-robin across.
    pub flows: usize,
    /// Payload bytes per packet.
    pub payload_len: usize,
    /// A pattern planted in every `plant_every`-th packet (1-based);
    /// `None` offers purely benign traffic.
    pub plant: Option<(Vec<u8>, usize)>,
}

impl TenantStream {
    /// A benign stream: `packets` packets of `payload_len` bytes over
    /// `flows` flows on `chain_id`.
    pub fn benign(chain_id: u16, packets: usize, flows: usize, payload_len: usize) -> TenantStream {
        TenantStream {
            chain_id,
            packets,
            flows,
            payload_len,
            plant: None,
        }
    }

    /// Plants `pattern` in every `every`-th packet of the stream.
    pub fn with_plant(mut self, pattern: Vec<u8>, every: usize) -> TenantStream {
        self.plant = Some((pattern, every.max(1)));
        self
    }
}

/// The `i`-th packet of one stream, derived only from the stream's spec
/// and the shared seed — independent of any other stream in the mix.
fn stream_packet(
    spec: &TenantStream,
    pool: &FlowPool,
    seqs: &mut [u32],
    i: usize,
    seed: u64,
) -> Packet {
    let mut rng = StdRng::seed_from_u64(
        seed ^ (u64::from(spec.chain_id) << 32) ^ (i as u64).wrapping_mul(0x9e37_79b9),
    );
    let mut payload: Vec<u8> = (0..spec.payload_len)
        .map(|_| {
            // Printable filler, like the HTTP-ish traces elsewhere.
            b' ' + rng.gen_range(0..95u8)
        })
        .collect();
    if let Some((pattern, every)) = &spec.plant {
        if (i + 1).is_multiple_of(*every) && payload.len() >= pattern.len() {
            let at = rng.gen_range(0..=payload.len() - pattern.len());
            payload[at..at + pattern.len()].copy_from_slice(pattern);
        }
    }
    let slot = i % pool.len();
    let flow = pool.get(slot);
    let seq = seqs[slot];
    seqs[slot] = seq.wrapping_add(payload.len() as u32);
    let mut pkt = Packet::tcp(MacAddr::local(1), MacAddr::local(2), flow, seq, payload);
    pkt.push_chain_tag(spec.chain_id)
        .expect("fresh packet accepts a chain tag");
    pkt
}

/// Generates every stream's packets and interleaves them proportionally:
/// at any prefix of the mix, each stream has contributed packets in
/// proportion to its offered load (largest-remainder order, determined
/// only by the offered counts). Per-stream packet *contents* depend only
/// on that stream's spec and `seed`, so any stream sliced back out of
/// the mix (by chain tag) is byte-identical to generating it alone.
pub fn tenant_mix(streams: &[TenantStream], seed: u64) -> Vec<Packet> {
    let total: usize = streams.iter().map(|s| s.packets).sum();
    let pools: Vec<FlowPool> = streams
        .iter()
        .map(|s| flow_pool(s.flows.max(1), seed ^ u64::from(s.chain_id)))
        .collect();
    let mut seqs: Vec<Vec<u32>> = streams.iter().map(|s| vec![0; s.flows.max(1)]).collect();
    let mut emitted = vec![0usize; streams.len()];
    let mut out = Vec::with_capacity(total);
    for step in 1..=total {
        // Pick the stream furthest behind its proportional share; ties
        // break toward the earlier stream, deterministically.
        let next = (0..streams.len())
            .filter(|&s| emitted[s] < streams[s].packets)
            .max_by_key(|&s| {
                // deficit = packets*step - emitted*total, scaled to
                // avoid floating point.
                (streams[s].packets * step) as i64 - (emitted[s] * total) as i64
            })
            .expect("some stream still has packets while step <= total");
        let pkt = stream_packet(
            &streams[next],
            &pools[next],
            &mut seqs[next],
            emitted[next],
            seed,
        );
        out.push(pkt);
        emitted[next] += 1;
    }
    out
}

/// The packets of `chain_id` sliced out of a mix, order preserved.
pub fn slice_by_chain(mix: &[Packet], chain_id: u16) -> Vec<Packet> {
    mix.iter()
        .filter(|p| p.chain_tag() == Some(chain_id))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic() {
        let streams = [
            TenantStream::benign(1, 20, 3, 64).with_plant(b"evil".to_vec(), 5),
            TenantStream::benign(2, 10, 2, 32),
        ];
        let a = tenant_mix(&streams, 42);
        let b = tenant_mix(&streams, 42);
        assert_eq!(a.len(), 30);
        assert_eq!(a, b);
    }

    #[test]
    fn stream_sliced_from_mix_equals_stream_generated_alone() {
        let a = TenantStream::benign(1, 25, 4, 80).with_plant(b"needle".to_vec(), 3);
        let b = TenantStream::benign(2, 50, 4, 80);
        let mixed = tenant_mix(&[a.clone(), b], 7);
        let alone = tenant_mix(&[a], 7);
        assert_eq!(slice_by_chain(&mixed, 1), alone);
    }

    #[test]
    fn interleave_tracks_offered_proportions() {
        let streams = [
            TenantStream::benign(1, 90, 2, 16),
            TenantStream::benign(2, 10, 2, 16),
        ];
        let mix = tenant_mix(&streams, 1);
        // In any 10-packet window, tenant 2 appears at most twice: the
        // largest-remainder interleave never lets a stream burst far
        // past its share.
        for w in mix.chunks(10) {
            let t2 = w.iter().filter(|p| p.chain_tag() == Some(2)).count();
            assert!(t2 <= 2, "tenant 2 got {t2} of 10 slots");
        }
        assert_eq!(slice_by_chain(&mix, 1).len(), 90);
        assert_eq!(slice_by_chain(&mix, 2).len(), 10);
    }
}
