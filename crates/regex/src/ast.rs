//! The regular-expression abstract syntax tree and byte-class sets.

/// A set of bytes, represented as a 256-bit bitmap.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct ByteSet {
    bits: [u64; 4],
}

impl ByteSet {
    /// The empty set.
    pub fn empty() -> ByteSet {
        ByteSet { bits: [0; 4] }
    }

    /// The full set (any byte).
    pub fn full() -> ByteSet {
        ByteSet {
            bits: [u64::MAX; 4],
        }
    }

    /// A singleton set.
    pub fn single(b: u8) -> ByteSet {
        let mut s = ByteSet::empty();
        s.insert(b);
        s
    }

    /// Adds one byte.
    pub fn insert(&mut self, b: u8) {
        self.bits[usize::from(b) / 64] |= 1u64 << (usize::from(b) % 64);
    }

    /// Adds an inclusive range.
    pub fn insert_range(&mut self, lo: u8, hi: u8) {
        for b in lo..=hi {
            self.insert(b);
        }
    }

    /// Membership test.
    pub fn contains(&self, b: u8) -> bool {
        self.bits[usize::from(b) / 64] & (1u64 << (usize::from(b) % 64)) != 0
    }

    /// The complement set.
    pub fn negated(&self) -> ByteSet {
        ByteSet {
            bits: [!self.bits[0], !self.bits[1], !self.bits[2], !self.bits[3]],
        }
    }

    /// Set union.
    pub fn union(&self, other: &ByteSet) -> ByteSet {
        ByteSet {
            bits: [
                self.bits[0] | other.bits[0],
                self.bits[1] | other.bits[1],
                self.bits[2] | other.bits[2],
                self.bits[3] | other.bits[3],
            ],
        }
    }

    /// Number of bytes in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// If the set holds exactly one byte, that byte.
    pub fn as_single(&self) -> Option<u8> {
        if self.len() == 1 {
            (0..=255).find(|&b| self.contains(b))
        } else {
            None
        }
    }

    /// Closes the set under ASCII case folding (for `(?i)`).
    pub fn case_insensitive(&self) -> ByteSet {
        let mut out = *self;
        for b in b'a'..=b'z' {
            if self.contains(b) {
                out.insert(b - 32);
            }
        }
        for b in b'A'..=b'Z' {
            if self.contains(b) {
                out.insert(b + 32);
            }
        }
        out
    }

    /// `\d`.
    pub fn digits() -> ByteSet {
        let mut s = ByteSet::empty();
        s.insert_range(b'0', b'9');
        s
    }

    /// `\s` (Perl semantics: space, tab, newline, carriage return, form
    /// feed, vertical tab).
    pub fn whitespace() -> ByteSet {
        let mut s = ByteSet::empty();
        for b in [b' ', b'\t', b'\n', b'\r', 0x0c, 0x0b] {
            s.insert(b);
        }
        s
    }

    /// `\w`.
    pub fn word() -> ByteSet {
        let mut s = ByteSet::empty();
        s.insert_range(b'a', b'z');
        s.insert_range(b'A', b'Z');
        s.insert_range(b'0', b'9');
        s.insert(b'_');
        s
    }

    /// `.` without dot-all: any byte except `\n`.
    pub fn dot() -> ByteSet {
        let mut s = ByteSet::full();
        s.bits[usize::from(b'\n') / 64] &= !(1u64 << (usize::from(b'\n') % 64));
        s
    }
}

impl std::fmt::Debug for ByteSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ByteSet({} bytes)", self.len())
    }
}

/// An AST node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// One byte from a class (a literal is a singleton class).
    Class(ByteSet),
    /// Sequence.
    Concat(Vec<Ast>),
    /// Alternation.
    Alt(Vec<Ast>),
    /// Repetition `node{min, max}`; `max = None` means unbounded.
    Repeat {
        /// The repeated subexpression.
        node: Box<Ast>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions (`None` = ∞).
        max: Option<u32>,
    },
    /// `^` — start of input.
    AnchorStart,
    /// `$` — end of input.
    AnchorEnd,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byteset_basics() {
        let mut s = ByteSet::empty();
        assert!(s.is_empty());
        s.insert(b'a');
        s.insert_range(b'0', b'9');
        assert!(s.contains(b'a'));
        assert!(s.contains(b'5'));
        assert!(!s.contains(b'b'));
        assert_eq!(s.len(), 11);
    }

    #[test]
    fn negation_partitions_the_space() {
        let s = ByteSet::digits();
        let n = s.negated();
        for b in 0..=255u8 {
            assert_ne!(s.contains(b), n.contains(b));
        }
        assert_eq!(s.len() + n.len(), 256);
    }

    #[test]
    fn single_extraction() {
        assert_eq!(ByteSet::single(b'q').as_single(), Some(b'q'));
        assert_eq!(ByteSet::digits().as_single(), None);
        assert_eq!(ByteSet::empty().as_single(), None);
    }

    #[test]
    fn case_folding_is_symmetric() {
        let s = ByteSet::single(b'a').case_insensitive();
        assert!(s.contains(b'a') && s.contains(b'A'));
        let s = ByteSet::single(b'Z').case_insensitive();
        assert!(s.contains(b'z') && s.contains(b'Z'));
        let s = ByteSet::single(b'7').case_insensitive();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn dot_excludes_newline() {
        let d = ByteSet::dot();
        assert!(!d.contains(b'\n'));
        assert!(d.contains(b'\r'));
        assert_eq!(d.len(), 255);
    }
}
