//! The simulated network: nodes, links and the event loop.

use crate::flowtable::Port;
use dpi_packet::Packet;
use std::collections::{HashMap, VecDeque};

/// Node identifier within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Port identifier (node-local).
pub type PortId = Port;

/// Anything attached to the network: a switch, a host, a DPI service
/// instance, a middlebox.
pub trait Node {
    /// Handles a packet arriving on `port`; returns `(out_port, packet)`
    /// emissions.
    fn on_packet(&mut self, packet: Packet, port: PortId) -> Vec<(PortId, Packet)>;

    /// Human-readable label for diagnostics.
    fn label(&self) -> String {
        "node".to_string()
    }
}

/// A simple traffic sink that records everything it receives. Useful as a
/// destination host. The receive buffer is shared: keep a clone outside
/// the network to read what arrived (same pattern as
/// [`crate::Switch::table`]).
#[derive(Debug, Default, Clone)]
pub struct SinkHost {
    received: std::sync::Arc<parking_lot::Mutex<Vec<Packet>>>,
}

impl SinkHost {
    /// A fresh sink.
    pub fn new() -> SinkHost {
        SinkHost::default()
    }

    /// All packets received so far, in arrival order.
    pub fn received(&self) -> Vec<Packet> {
        self.received.lock().clone()
    }

    /// Number of packets received.
    pub fn count(&self) -> usize {
        self.received.lock().len()
    }
}

impl Node for SinkHost {
    fn on_packet(&mut self, packet: Packet, _port: PortId) -> Vec<(PortId, Packet)> {
        self.received.lock().push(packet);
        Vec::new()
    }

    fn label(&self) -> String {
        "sink-host".to_string()
    }
}

/// The network: nodes plus a link map `(node, port) → (node, port)`.
///
/// Delivery is breadth-first FIFO: [`Network::inject`] queues a packet at
/// a node's port, [`Network::run`] drains the queue to quiescence. There
/// is no notion of time or loss — links are reliable and ordered, like
/// Mininet veth pairs.
pub struct Network {
    nodes: Vec<Box<dyn Node>>,
    links: HashMap<(NodeId, PortId), (NodeId, PortId)>,
    queue: VecDeque<(NodeId, PortId, Packet)>,
    /// Packets that left through an unconnected port (usually a bug in
    /// the rule set; kept for inspection).
    pub dropped_at_edge: Vec<(NodeId, PortId, Packet)>,
    /// Packets discarded by the loop guard across all `run` calls.
    dropped: u64,
    /// Safety valve against forwarding loops.
    max_hops: usize,
}

impl Network {
    /// An empty network. `max_hops` bounds total deliveries per `run` call
    /// (forwarding-loop protection).
    pub fn new(max_hops: usize) -> Network {
        Network {
            nodes: Vec::new(),
            links: HashMap::new(),
            queue: VecDeque::new(),
            dropped_at_edge: Vec::new(),
            dropped: 0,
            max_hops,
        }
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// Connects two node ports bidirectionally.
    pub fn link(&mut self, a: NodeId, ap: PortId, b: NodeId, bp: PortId) {
        self.links.insert((a, ap), (b, bp));
        self.links.insert((b, bp), (a, ap));
    }

    /// Queues a packet for delivery *to* `node` on `port` (as if it
    /// arrived over the wire).
    pub fn inject(&mut self, node: NodeId, port: PortId, packet: Packet) {
        self.queue.push_back((node, port, packet));
    }

    /// Runs until no packets are in flight. Returns the number of
    /// deliveries performed.
    ///
    /// If the `max_hops` loop guard fires, every still-queued packet is
    /// *counted* as dropped (see [`Network::dropped`]) and the first one
    /// is kept in [`Network::dropped_at_edge`] for inspection; one
    /// warning per run goes to stderr.
    pub fn run(&mut self) -> usize {
        let mut deliveries = 0;
        while let Some((node, port, packet)) = self.queue.pop_front() {
            if deliveries >= self.max_hops {
                // Loop guard: drop the remainder loudly — the packet in
                // hand plus everything still queued.
                let discarded = 1 + self.queue.len() as u64;
                self.dropped += discarded;
                eprintln!(
                    "network: max_hops={} exhausted at {} ({}); discarding {} in-flight packet(s)",
                    self.max_hops,
                    self.nodes[node.0 as usize].label(),
                    node.0,
                    discarded,
                );
                self.dropped_at_edge.push((node, port, packet));
                self.queue.clear();
                break;
            }
            deliveries += 1;
            let emissions = self.nodes[node.0 as usize].on_packet(packet, port);
            for (out_port, pkt) in emissions {
                match self.links.get(&(node, out_port)) {
                    Some(&(dst, dst_port)) => self.queue.push_back((dst, dst_port, pkt)),
                    None => self.dropped_at_edge.push((node, out_port, pkt)),
                }
            }
        }
        deliveries
    }

    /// Packets silently discarded by the `max_hops` loop guard, across
    /// all [`Network::run`] calls. Zero in any healthy run — assert on it
    /// in end-to-end tests.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Mutable access to a node. Nodes that need out-of-band inspection
    /// (sinks, switches, DPI instances) expose shared handles instead —
    /// see [`SinkHost`] and [`crate::Switch::table`].
    pub fn node_mut(&mut self, id: NodeId) -> &mut dyn Node {
        self.nodes[id.0 as usize].as_mut()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("links", &(self.links.len() / 2))
            .field("queued", &self.queue.len())
            .field("dropped_at_edge", &self.dropped_at_edge.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_packet::ipv4::IpProtocol;
    use dpi_packet::packet::flow;
    use dpi_packet::MacAddr;

    fn pkt() -> Packet {
        Packet::tcp(
            MacAddr::local(1),
            MacAddr::local(2),
            flow([1, 1, 1, 1], 1, [2, 2, 2, 2], 2, IpProtocol::Tcp),
            0,
            b"x".to_vec(),
        )
    }

    /// Forwards everything from port 0 to port 1 and vice versa.
    struct Pipe;
    impl Node for Pipe {
        fn on_packet(&mut self, packet: Packet, port: PortId) -> Vec<(PortId, Packet)> {
            vec![(1 - port, packet)]
        }
    }

    #[test]
    fn packets_traverse_links() {
        let mut net = Network::new(100);
        let a = net.add_node(Box::new(Pipe));
        let sink = SinkHost::new();
        let sink_id = net.add_node(Box::new(sink.clone()));
        net.link(a, 1, sink_id, 0);
        net.inject(a, 0, pkt());
        let n = net.run();
        assert_eq!(n, 2);
        assert!(net.dropped_at_edge.is_empty());
        assert_eq!(sink.count(), 1);
    }

    #[test]
    fn unconnected_ports_collect_drops() {
        let mut net = Network::new(100);
        let a = net.add_node(Box::new(Pipe));
        net.inject(a, 0, pkt());
        net.run();
        assert_eq!(net.dropped_at_edge.len(), 1);
    }

    #[test]
    fn loop_guard_terminates() {
        let mut net = Network::new(50);
        let a = net.add_node(Box::new(Pipe));
        let b = net.add_node(Box::new(Pipe));
        // a<->b on both port pairs: an infinite loop.
        net.link(a, 0, b, 1);
        net.link(a, 1, b, 0);
        net.inject(a, 0, pkt());
        let n = net.run();
        assert!(n <= 50);
        assert!(!net.dropped_at_edge.is_empty());
        assert_eq!(net.dropped(), 1, "the looping packet is counted");
        // The counter accumulates across runs.
        net.inject(a, 0, pkt());
        net.run();
        assert_eq!(net.dropped(), 2);
    }

    #[test]
    fn healthy_runs_count_zero_drops() {
        let mut net = Network::new(100);
        let a = net.add_node(Box::new(Pipe));
        let sink = SinkHost::new();
        let sink_id = net.add_node(Box::new(sink.clone()));
        net.link(a, 1, sink_id, 0);
        net.inject(a, 0, pkt());
        net.run();
        assert_eq!(net.dropped(), 0);
    }
}
