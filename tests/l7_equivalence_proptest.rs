//! Decode-equivalence properties for the L7 layer (DESIGN.md §14),
//! mirroring `tests/segment_cuts.rs`:
//!
//! 1. A pattern planted in a chunked+gzipped HTTP body is found
//!    *identically* whether the stream arrives in one segment or split
//!    at every possible TCP cut point, across worker counts {1, 2, 8}
//!    (per-flow shard affinity emulated exactly as the pipeline routes:
//!    `stable_hash % workers`).
//! 2. Flows the identifier cannot name fall back to raw scanning with
//!    verdicts byte-identical to an engine with no L7 layer at all.

use dpi_service::core::instance::{ScanEngine, ShardState};
use dpi_service::core::report::expand_records;
use dpi_service::core::{
    InstanceConfig, L7Policy, MiddleboxId, MiddleboxProfile, RuleSpec, ScanOutput,
};
use dpi_service::packet::ipv4::IpProtocol;
use dpi_service::packet::packet::flow;
use dpi_service::packet::FlowKey;
use dpi_service::traffic;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

const IDS: MiddleboxId = MiddleboxId(1);
const CHAIN: u16 = 1;
const PATTERN: &[u8] = b"hidden-attack-signature";

/// One flow's in-order `(seq, payload)` segment list.
type SegFlow = (FlowKey, Vec<(u32, Vec<u8>)>);

fn config(l7: bool) -> InstanceConfig {
    let cfg = InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateful(IDS),
            vec![RuleSpec::exact(PATTERN.to_vec())],
        )
        .with_chain(CHAIN, vec![IDS]);
    if l7 {
        cfg.with_l7_policy(L7Policy::default())
    } else {
        cfg
    }
}

fn fk(n: u16) -> FlowKey {
    flow([10, 0, 0, 1], n, [10, 0, 0, 2], 443, IpProtocol::Tcp)
}

/// Stream-absolute verdicts: `(src_port, pattern, field, end offset)`.
/// The field discriminant keeps header-space and body-space offsets
/// from colliding (each decoded stream counts its own offsets).
fn verdicts(src_port: u16, outs: &[ScanOutput], into: &mut BTreeSet<(u16, u16, u8, u64)>) {
    for o in outs {
        let field = o.l7.map_or(0u8, |c| match c.field {
            dpi_service::core::L7Field::Raw => 1,
            dpi_service::core::L7Field::Header => 2,
            dpi_service::core::L7Field::Body => 3,
            dpi_service::core::L7Field::Sni => 4,
        });
        for r in &o.reports {
            for (pid, pos) in expand_records(&r.records) {
                into.insert((src_port, pid, field, o.flow_offset + u64::from(pos)));
            }
        }
    }
}

/// Runs `flows` (per-flow in-order segment lists) through `workers`
/// emulated pipeline shards with the pipeline's flow-affine routing.
fn run_workers(
    cfg: InstanceConfig,
    workers: usize,
    flows: &[SegFlow],
) -> BTreeSet<(u16, u16, u8, u64)> {
    let engine = Arc::new(ScanEngine::new(cfg).unwrap());
    let mut shards: Vec<ShardState> = (0..workers).map(|_| ShardState::new(&engine)).collect();
    let mut set = BTreeSet::new();
    for (f, segs) in flows {
        let shard = &mut shards[(f.stable_hash() % workers as u64) as usize];
        for (seq, payload) in segs {
            let outs = engine
                .scan_tcp_segment(shard, CHAIN, *f, *seq, payload)
                .unwrap();
            verdicts(f.src_port, &outs, &mut set);
        }
    }
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every cut of a chunked+gzipped HTTP flow yields the same
    /// verdicts as the unsegmented delivery, at 1, 2 and 8 workers.
    #[test]
    fn every_cut_of_a_gzip_chunked_flow_matches_the_oracle(seed in 0u64..10_000) {
        let gen = traffic::http1_chunked_gzip_request(seed, PATTERN);
        let data = &gen.stream;

        // Oracle: each flow's stream delivered as one segment.
        let oracle_flows: Vec<SegFlow> = (1..data.len())
            .map(|cut| (fk(cut as u16), vec![(0u32, data.clone())]))
            .collect();
        let expected = run_workers(config(true), 1, &oracle_flows);
        // Non-vacuousness: the decoded body match must be in the oracle.
        prop_assert!(
            expected.iter().any(|&(_, pid, field, _)| pid == 0 && field == 3),
            "oracle must see the planted body pattern"
        );

        for workers in [1usize, 2, 8] {
            let cut_flows: Vec<SegFlow> = (1..data.len())
                .map(|cut| {
                    (
                        fk(cut as u16),
                        vec![
                            (0u32, data[..cut].to_vec()),
                            (cut as u32, data[cut..].to_vec()),
                        ],
                    )
                })
                .collect();
            let got = run_workers(config(true), workers, &cut_flows);
            prop_assert_eq!(
                &got, &expected,
                "verdicts diverged from the one-segment oracle at {} workers (seed {})",
                workers, seed
            );
        }
    }

    /// Unidentifiable flows scan byte-identical to an engine without
    /// the L7 layer, segment cuts and all.
    #[test]
    fn unknown_flows_fall_back_byte_identical_to_the_raw_engine(
        junk in proptest::collection::vec(any::<u8>(), 0..200),
        at in 0usize..200,
        seg_seed in 0u64..1000,
    ) {
        // First byte 0xff: no protocol starts like this, so the
        // identifier resolves Unknown immediately and the whole stream
        // rides the raw fallback.
        let mut stream = vec![0xffu8];
        let at = at.min(junk.len());
        stream.extend_from_slice(&junk[..at]);
        stream.extend_from_slice(PATTERN);
        stream.extend_from_slice(&junk[at..]);

        let segs: Vec<(u32, Vec<u8>)> = traffic::segment_stream(seg_seed, &stream, 48);
        let flows = vec![(fk(7), segs)];
        let with_l7 = run_workers(config(true), 1, &flows);
        let without = run_workers(config(false), 1, &flows);
        prop_assert_eq!(&with_l7, &without,
            "Unknown fallback must be byte-identical to the raw engine");
        prop_assert!(
            without.iter().any(|&(_, pid, _, _)| pid == 0),
            "the planted pattern must match on both engines"
        );
    }
}
