//! End-to-end tests through the full simulated deployment: controller,
//! switch + TSA, DPI service instance node, middlebox nodes, sink.

use dpi_service::ac::MiddleboxId;
use dpi_service::middlebox::{antivirus, ids, ips, traffic_shaper};
use dpi_service::packet::ipv4::IpProtocol;
use dpi_service::packet::packet::{flow, PacketBody};
use dpi_service::packet::FlowKey;
use dpi_service::SystemBuilder;

const IDS_ID: MiddleboxId = MiddleboxId(1);
const AV_ID: MiddleboxId = MiddleboxId(2);

fn test_flow(port: u16) -> FlowKey {
    flow([10, 0, 0, 1], port, [10, 0, 0, 2], 80, IpProtocol::Tcp)
}

#[derive(Clone, Copy)]
enum Delivery {
    Dedicated,
    InBand,
    Mpls,
}

fn build_with(delivery: Delivery) -> dpi_service::SystemHandle {
    let mut b = SystemBuilder::new()
        .with_middlebox(ids(IDS_ID, &[b"sig-alpha".to_vec(), b"sig-beta".to_vec()]))
        .with_middlebox(antivirus(AV_ID, &[b"virus-omega".to_vec()]))
        .with_chain(&[IDS_ID, AV_ID]);
    match delivery {
        Delivery::Dedicated => {}
        Delivery::InBand => b = b.in_band_results(),
        Delivery::Mpls => b = b.mpls_results(),
    }
    b.build().expect("system builds")
}

fn build(in_band: bool) -> dpi_service::SystemHandle {
    build_with(if in_band {
        Delivery::InBand
    } else {
        Delivery::Dedicated
    })
}

#[test]
fn clean_traffic_flows_untouched_to_destination() {
    let mut sys = build(false);
    for i in 0..10 {
        sys.send(test_flow(1000), i * 100, b"nothing interesting at all");
    }
    assert_eq!(sys.sink.count(), 10);
    for p in sys.sink.received() {
        assert!(p.vlan.is_empty(), "chain tag must be popped at egress");
        assert!(!p.has_match_mark());
        assert!(matches!(p.body, PacketBody::Ipv4 { .. }));
    }
    // The DPI service scanned everything; the middleboxes scanned nothing.
    assert_eq!(sys.dpi_telemetry().packets, 10);
    assert_eq!(sys.stats_of(IDS_ID).unwrap().packets, 10);
    assert_eq!(sys.stats_of(IDS_ID).unwrap().bytes_self_scanned, 0);
    assert_eq!(sys.net.dropped(), 0, "healthy run loses nothing");
}

#[test]
fn matches_reach_the_right_middleboxes_and_results_never_leak() {
    let mut sys = build(false);
    sys.send(test_flow(2000), 0, b"carrying sig-alpha here");
    sys.send(test_flow(2000), 100, b"and virus-omega there");
    // IDS alerted once; AV blocked one packet.
    let ids_stats = sys.stats_of(IDS_ID).unwrap();
    let av_stats = sys.stats_of(AV_ID).unwrap();
    assert_eq!(ids_stats.rules_fired, 1);
    assert_eq!(av_stats.blocked, 1);
    // Only the sig-alpha packet survives (IDS is read-only).
    assert_eq!(sys.sink.count(), 1);
    // No dedicated result packet ever reaches the destination host.
    for p in sys.sink.received() {
        assert!(matches!(p.body, PacketBody::Ipv4 { .. }));
    }
    // Nothing fell off the network unexpectedly.
    assert!(sys.net.dropped_at_edge.is_empty());
    assert_eq!(sys.net.dropped(), 0, "loop guard never fires end-to-end");
}

#[test]
fn all_three_delivery_mechanisms_agree() {
    let payloads: [&[u8]; 5] = [
        b"clean",
        b"sig-alpha",
        b"virus-omega",
        b"sig-alpha and sig-beta together",
        b"sig-beta virus-omega double",
    ];
    let mut stats = Vec::new();
    for delivery in [Delivery::Dedicated, Delivery::InBand, Delivery::Mpls] {
        let mut sys = build_with(delivery);
        for (i, p) in payloads.iter().enumerate() {
            sys.send(test_flow(3000), i as u32 * 100, p);
        }
        stats.push((
            sys.stats_of(IDS_ID).unwrap(),
            sys.stats_of(AV_ID).unwrap(),
            sys.sink.count(),
        ));
    }
    assert_eq!(stats[0], stats[1], "in-band must match dedicated");
    assert_eq!(stats[0], stats[2], "mpls tags must match dedicated");
    // MPLS result labels are stripped before egress.
    let mut sys = build_with(Delivery::Mpls);
    sys.send(test_flow(3002), 0, b"sig-alpha rides on labels");
    let received = sys.sink.received();
    assert_eq!(received.len(), 1);
    assert!(
        received[0].mpls.is_empty(),
        "result labels must be stripped"
    );
    // And the in-band header was stripped before egress.
    let mut sys = build(true);
    sys.send(test_flow(3001), 0, b"sig-alpha travels in band");
    let received = sys.sink.received();
    assert_eq!(received.len(), 1);
    assert!(received[0].dpi_results.is_none());
}

#[test]
fn ips_blocks_inline_and_stops_the_chain() {
    const IPS_ID: MiddleboxId = MiddleboxId(3);
    let mut sys = SystemBuilder::new()
        .with_middlebox(ips(IPS_ID, &[b"exploit-sig".to_vec()]))
        .with_middlebox(antivirus(AV_ID, &[b"virus-omega".to_vec()]))
        .with_chain(&[IPS_ID, AV_ID])
        .build()
        .expect("system builds");
    sys.send(test_flow(4000), 0, b"an exploit-sig payload");
    sys.send(test_flow(4000), 100, b"benign");
    assert_eq!(sys.sink.count(), 1);
    // The AV behind the IPS never saw the blocked packet.
    assert_eq!(sys.stats_of(AV_ID).unwrap().packets, 1);
}

#[test]
fn shaper_chain_observes_match_positions() {
    const SH: MiddleboxId = MiddleboxId(5);
    let mut sys = SystemBuilder::new()
        .with_middlebox(traffic_shaper(SH, &[(b"video-stream".to_vec(), 3)]))
        .with_chain(&[SH])
        .build()
        .expect("system builds");
    sys.send(test_flow(5000), 0, b"a video-stream chunk");
    let st = sys.stats_of(SH).unwrap();
    assert_eq!(st.matches, 1);
    assert_eq!(sys.sink.count(), 1);
}

#[test]
fn per_flow_state_survives_the_network_path() {
    // A stateful IDS sees a signature split across two TCP segments that
    // traverse the whole simulated network.
    let mut sys = build(false);
    sys.send(test_flow(6000), 0, b"first half sig-al");
    sys.send(test_flow(6000), 17, b"pha second half");
    let ids_stats = sys.stats_of(IDS_ID).unwrap();
    assert_eq!(
        ids_stats.rules_fired, 1,
        "stateful cross-packet match must be detected end-to-end"
    );
    // The stateless AV correctly saw nothing.
    assert_eq!(sys.stats_of(AV_ID).unwrap().matches, 0);
    assert_eq!(sys.net.dropped(), 0, "healthy run loses nothing");
}
