//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use: `any`, ranges, tuples, `prop::collection::vec`,
//! `prop::sample::select` / `Index`, `prop::option::of`, `prop_map`,
//! `prop_oneof!`, and the `proptest!` / `prop_assert*` / `prop_assume!`
//! macros with `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberate for size: generation is
//! purely random (no shrinking on failure — the failing case's seed and
//! values are printed instead) and each test function derives its RNG
//! seed from its own name, so runs are deterministic per test.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of random values. Unlike real proptest there is no
    /// value tree: strategies produce final values directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy (used by `prop_oneof!` to unify arm types).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A fixed value, always generated as-is.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over `arms`; each generation picks one uniformly.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical whole-domain strategy ([`super::any`]).
    pub trait Arbitrary {
        /// Draws one uniformly-distributed value.
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for super::sample::Index {
        fn arbitrary_value(rng: &mut StdRng) -> super::sample::Index {
            super::sample::Index::new(rng.gen())
        }
    }

    /// The strategy returned by [`super::any`].
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    impl<T> Default for Any<T> {
        fn default() -> Any<T> {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

/// The whole-domain strategy for `T` (`any::<u16>()` etc.).
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any::default()
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.end > r.start, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Chooses one of `options` uniformly per generated value.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    /// The strategy returned by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].clone()
        }
    }

    /// A position into a not-yet-known collection length; resolved with
    /// [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        pub(crate) fn new(raw: usize) -> Index {
            Index(raw)
        }

        /// Maps this index onto a collection of length `len`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// `None` a quarter of the time, `Some(inner)` otherwise (matching
    /// real proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_range(0u8..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    /// Per-test-function configuration (`ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is re-drawn, not failed.
        Reject,
        /// A `prop_assert*!` failed with this message.
        Fail(String),
    }

    /// Runs `body` against `config.cases` generated inputs. `gen_and_run`
    /// receives a per-case RNG; rejected cases are retried (bounded) and
    /// the first failure panics with the case number.
    pub fn run_cases(
        test_name: &str,
        config: &Config,
        mut gen_and_run: impl FnMut(&mut rand::rngs::StdRng) -> Result<(), TestCaseError>,
    ) {
        use rand::SeedableRng;
        // Deterministic per-test seed: FNV-1a of the test's name.
        let mut seed = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100000001b3);
        }
        let mut rejects = 0u32;
        let max_rejects = config.cases.saturating_mul(8).max(1024);
        let mut case = 0u32;
        while case < config.cases {
            let mut rng = rand::rngs::StdRng::seed_from_u64(
                seed ^ (u64::from(case) << 32) ^ u64::from(rejects),
            );
            match gen_and_run(&mut rng) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects <= max_rejects,
                        "{test_name}: too many prop_assume! rejections ({rejects})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{test_name}: case {case} failed: {msg}");
                }
            }
        }
    }
}

pub mod prelude {
    pub use super::any;
    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// The `prop::` module path tests use (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            $crate::test_runner::run_cases(
                ::std::stringify!($name),
                &__config,
                |__rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);
                    )+
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::boxed($strat) ),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let __l = &($left);
        let __r = &($right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} != {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = &($left);
        let __r = &($right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} != {:?} ({})",
            __l,
            __r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u16..10, y in 0u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_and_select_compose(
            v in prop::collection::vec(prop::sample::select(vec![1u8, 2, 3]), 2..6),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|b| (1..=3).contains(b)));
            prop_assert!(idx.index(v.len()) < v.len());
        }

        #[test]
        fn oneof_maps_and_assume(
            n in prop_oneof![
                (0u16..5).prop_map(|x| x * 2),
                (10u16..15).prop_map(|x| x + 1),
            ],
            opt in prop::option::of(1u32..4),
        ) {
            prop_assume!(n != 8);
            prop_assert!(n < 10 && n % 2 == 0 || (11..16).contains(&n));
            if let Some(o) = opt {
                prop_assert!((1..4).contains(&o));
            }
        }
    }

    #[test]
    fn determinism_same_name_same_values() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let s = crate::collection::vec(0u32..1000, 3..8);
        let mut a = rand::rngs::StdRng::seed_from_u64(7);
        let mut b = rand::rngs::StdRng::seed_from_u64(7);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
