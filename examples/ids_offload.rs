//! Offloading an IDS's DPI to the service — the paper's motivating
//! comparison (§1: "DPI slows packet processing by a factor of at least
//! 2.9" inside Snort; §6.4's pipelined scenario).
//!
//! The same Snort-like signature set and the same HTTP-like trace run
//! through two deployments:
//!
//! 1. **Baseline**: two middleboxes, each with an embedded DPI engine —
//!    every packet is scanned twice (Figure 2a).
//! 2. **Service**: one DPI service instance with the merged pattern set,
//!    two result-consuming middleboxes — every packet is scanned once
//!    (Figure 2b).
//!
//! Both must fire exactly the same rules; the service deployment simply
//! touches each payload byte once instead of twice.
//!
//! Run with: `cargo run --release --example ids_offload`

use dpi_service::ac::MiddleboxId;
use dpi_service::core::config::NumberedRule;
use dpi_service::core::{DpiInstance, InstanceConfig, MiddleboxProfile, RuleSpec};
use dpi_service::middlebox::{MbAction, RuleLogic, SelfScanMiddlebox, ServiceMiddlebox};
use dpi_service::traffic::{patterns, trace::TraceConfig};
use std::time::Instant;

fn main() {
    let snort = patterns::snort_like(2000, 7);
    let (set_a, set_b) = patterns::split_set(&snort, 1000, 3);
    let trace = TraceConfig {
        packets: 2000,
        match_density: 0.05,
        seed: 99,
        ..TraceConfig::default()
    }
    .generate(&snort);
    let total_bytes: usize = trace.iter().map(|p| p.len()).sum();

    const A: MiddleboxId = MiddleboxId(1);
    const B: MiddleboxId = MiddleboxId(2);

    // --- Baseline: each middlebox scans by itself. ---
    let mut ids1 = SelfScanMiddlebox::new(
        MiddleboxProfile::stateless(A),
        "ids1",
        NumberedRule::sequence(RuleSpec::exact_set(&set_a)),
        RuleLogic::one_per_pattern(set_a.len() as u16, MbAction::Alert),
    )
    .expect("valid patterns");
    let mut ids2 = SelfScanMiddlebox::new(
        MiddleboxProfile::stateless(B),
        "ids2",
        NumberedRule::sequence(RuleSpec::exact_set(&set_b)),
        RuleLogic::one_per_pattern(set_b.len() as u16, MbAction::Alert),
    )
    .expect("valid patterns");

    let t0 = Instant::now();
    let mut baseline_fired = 0u64;
    for p in &trace {
        baseline_fired += ids1.process(None, p).fired.len() as u64;
        baseline_fired += ids2.process(None, p).fired.len() as u64;
    }
    let baseline_time = t0.elapsed();
    let baseline_scanned = ids1.stats().bytes_self_scanned + ids2.stats().bytes_self_scanned;

    // --- Service: one merged scan, two consumers. ---
    let cfg = InstanceConfig::new()
        .with_middlebox(MiddleboxProfile::stateless(A), RuleSpec::exact_set(&set_a))
        .with_middlebox(MiddleboxProfile::stateless(B), RuleSpec::exact_set(&set_b))
        .with_chain(1, vec![A, B]);
    let mut dpi = DpiInstance::new(cfg).expect("valid config");
    let mut svc1 = ServiceMiddlebox::new(
        A,
        "ids1-plugin",
        RuleLogic::one_per_pattern(set_a.len() as u16, MbAction::Alert),
    );
    let mut svc2 = ServiceMiddlebox::new(
        B,
        "ids2-plugin",
        RuleLogic::one_per_pattern(set_b.len() as u16, MbAction::Alert),
    );

    let t0 = Instant::now();
    let mut service_fired = 0u64;
    for p in &trace {
        let out = dpi.scan_payload(1, None, p).expect("chain exists");
        service_fired += svc1
            .process(out.reports.iter().find(|r| r.middlebox_id == A.0))
            .fired
            .len() as u64;
        service_fired += svc2
            .process(out.reports.iter().find(|r| r.middlebox_id == B.0))
            .fired
            .len() as u64;
    }
    let service_time = t0.elapsed();
    let service_scanned = dpi.telemetry().bytes;

    println!(
        "trace: {} packets, {} bytes, {} Snort-like patterns\n",
        trace.len(),
        total_bytes,
        snort.len()
    );
    println!("baseline (2 self-scanning IDS):");
    println!("  rules fired     : {baseline_fired}");
    println!("  bytes scanned   : {baseline_scanned} (every payload twice)");
    println!("  wall time       : {baseline_time:?}");
    println!("service (1 DPI instance + 2 plugins):");
    println!("  rules fired     : {service_fired}");
    println!("  bytes scanned   : {service_scanned} (every payload once)");
    println!("  wall time       : {service_time:?}");

    assert_eq!(baseline_fired, service_fired, "verdict parity is mandatory");
    assert_eq!(service_scanned * 2, baseline_scanned);
    println!(
        "\nsame alerts, half the scanning — speedup {:.2}x ✓",
        baseline_time.as_secs_f64() / service_time.as_secs_f64()
    );
}
