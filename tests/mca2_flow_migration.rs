//! MCA² end-to-end behaviours (§4.3.1): stress detection from real
//! telemetry, flow migration carrying scan state, and recovery.

use dpi_service::ac::MiddleboxId;
use dpi_service::controller::{DpiController, Mca2Action, StressMonitor, StressPolicy};
use dpi_service::core::report::expand_records;
use dpi_service::core::{DpiInstance, InstanceConfig, MiddleboxProfile, RuleSpec};
use dpi_service::packet::ipv4::IpProtocol;
use dpi_service::packet::packet::flow;
use dpi_service::traffic::{heavy_payload, patterns, trace::TraceConfig};

const IDS: MiddleboxId = MiddleboxId(1);

fn instance(pats: &[Vec<u8>]) -> DpiInstance {
    DpiInstance::new(
        InstanceConfig::new()
            .with_middlebox(MiddleboxProfile::stateful(IDS), RuleSpec::exact_set(pats))
            .with_chain(1, vec![IDS]),
    )
    .unwrap()
}

#[test]
fn migration_preserves_cross_packet_matches() {
    let pats = vec![b"SPLIT-SIGNATURE-XYZ".to_vec()];
    let mut src = instance(&pats);
    let mut dst = instance(&pats);
    let f = flow([1, 2, 3, 4], 1111, [5, 6, 7, 8], 80, IpProtocol::Tcp);

    // First half of the signature on the source instance.
    let out = src.scan_payload(1, Some(f), b"......SPLIT-SIGN").unwrap();
    assert!(out.reports.is_empty());

    // MCA² migrates the flow (the paper: "flow migration might require
    // some packet buffering at the source instance, until the process is
    // completed" — the simulator migrates between packets).
    let exported = src.export_flow(&f).expect("tracked");
    dst.import_flow(f, exported);

    // Second half on the destination instance: the match completes with a
    // correct flow-absolute position.
    let out = dst.scan_payload(1, Some(f), b"ATURE-XYZ rest").unwrap();
    assert_eq!(out.reports.len(), 1);
    let hits = expand_records(&out.reports[0].records);
    assert_eq!(hits.len(), 1);
    let flow_pos = out.flow_offset + u64::from(hits[0].1);
    // The signature is 19 bytes and started at byte 6 of the flow.
    assert_eq!(flow_pos, 6 + 19 - 1);
}

#[test]
fn stress_detection_end_to_end_with_real_telemetry() {
    let pats = patterns::snort_like(600, 13);
    let controller = DpiController::new();
    let id = controller.deploy_instance(vec![1]);
    let mut dpi = instance(&pats);
    let mut monitor = StressMonitor::new(StressPolicy::default());
    let f = flow([9, 9, 9, 9], 7, [8, 8, 8, 8], 80, IpProtocol::Tcp);

    // Benign phase: no actions over several rounds.
    let benign = TraceConfig {
        packets: 200,
        seed: 1,
        ..TraceConfig::default()
    }
    .generate(&pats);
    for chunk in benign.chunks(50) {
        for p in chunk {
            dpi.scan_payload(1, Some(f), p).unwrap();
        }
        let delta = controller.report_telemetry(id, dpi.telemetry()).unwrap();
        assert!(monitor.evaluate(&[(id, delta)]).is_empty());
    }

    // Attack phase: sustained heavy traffic triggers exactly one
    // mitigation.
    let mut fired = Vec::new();
    for round in 0..4u64 {
        for i in 0..60 {
            let hp = heavy_payload(&pats, 1400, round * 1000 + i);
            dpi.scan_payload(1, Some(f), &hp).unwrap();
        }
        let delta = controller.report_telemetry(id, dpi.telemetry()).unwrap();
        fired.extend(monitor.evaluate(&[(id, delta)]));
    }
    assert_eq!(
        fired,
        vec![
            Mca2Action::AllocateDedicated {
                stressed: id,
                count: 1
            },
            Mca2Action::MigrateHeavyFlows { from: id },
        ]
    );

    // Recovery phase: benign traffic again; dedicated capacity released.
    let mut released = Vec::new();
    for chunk in benign.chunks(50) {
        for p in chunk {
            dpi.scan_payload(1, Some(f), p).unwrap();
        }
        let delta = controller.report_telemetry(id, dpi.telemetry()).unwrap();
        released.extend(monitor.evaluate(&[(id, delta)]));
    }
    assert_eq!(
        released,
        vec![Mca2Action::ReleaseDedicated { stressed: id }]
    );
}

#[test]
fn instance_native_flow_stress_identifies_heavy_flows() {
    use dpi_service::controller::stress::select_heavy_flows;
    let pats = patterns::snort_like(300, 19);
    let mut dpi = instance(&pats);
    let benign_flow = flow([1, 1, 1, 1], 10, [2, 2, 2, 2], 80, IpProtocol::Tcp);
    let heavy_flow = flow([6, 6, 6, 6], 60, [2, 2, 2, 2], 80, IpProtocol::Tcp);

    let benign_trace = TraceConfig {
        packets: 60,
        seed: 3,
        ..TraceConfig::default()
    }
    .generate(&[]);
    for p in &benign_trace {
        dpi.scan_payload(1, Some(benign_flow), p).unwrap();
    }
    for i in 0..60 {
        let hp = heavy_payload(&pats, 1200, 500 + i);
        dpi.scan_payload(1, Some(heavy_flow), &hp).unwrap();
    }

    // The instance's own per-flow window feeds the selector directly.
    let ratios = dpi.flow_deep_ratios();
    assert_eq!(ratios.len(), 2);
    assert_eq!(ratios[0].0, heavy_flow, "heavy flow must rank first");
    let selected = select_heavy_flows(&ratios, 0.5);
    assert_eq!(selected, vec![heavy_flow]);

    // The window resets once the controller consumed it.
    dpi.reset_flow_stress();
    assert!(dpi.flow_deep_ratios().is_empty());
}

#[test]
fn heavy_flow_selection_matches_per_flow_ratios() {
    use dpi_service::controller::stress::select_heavy_flows;
    let pats = patterns::snort_like(300, 17);
    let mut dpi = instance(&pats);
    let benign_flow = flow([1, 1, 1, 1], 1, [2, 2, 2, 2], 80, IpProtocol::Tcp);
    let heavy_flow = flow([6, 6, 6, 6], 6, [2, 2, 2, 2], 80, IpProtocol::Tcp);

    // Measure per-flow deep ratios by scanning each flow and differencing
    // telemetry (what a per-flow-instrumented instance would report).
    let before = dpi.telemetry();
    let benign_trace = TraceConfig {
        packets: 60,
        seed: 2,
        ..TraceConfig::default()
    }
    .generate(&[]);
    for p in benign_trace {
        dpi.scan_payload(1, Some(benign_flow), &p).unwrap();
    }
    let mid = dpi.telemetry();
    for i in 0..60 {
        let hp = heavy_payload(&pats, 1200, i);
        dpi.scan_payload(1, Some(heavy_flow), &hp).unwrap();
    }
    let after = dpi.telemetry();

    let benign_ratio = mid.delta_since(&before).deep_ratio();
    let heavy_ratio = after.delta_since(&mid).deep_ratio();
    let selected = select_heavy_flows(
        &[(benign_flow, benign_ratio), (heavy_flow, heavy_ratio)],
        0.5,
    );
    assert_eq!(selected, vec![heavy_flow]);
}
