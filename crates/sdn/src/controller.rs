//! The SDN controller (the "SDN Ctrl" box of Figure 5).
//!
//! The DPI controller "resides at the SDN application layer on top of the
//! SDN controller" and "collaborate\[s\] with the TSA (and the SDN
//! controller) to realize the changes" (§4.3). This controller owns the
//! flow-table handles of every switch in the network and offers the
//! rule-management API that applications (the TSA, MCA² diversions)
//! program against — the simulated counterpart of POX.

use crate::flowtable::{FlowRule, FlowTable};
use crate::switch::Switch;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier a switch registers under (its datapath id).
pub type DatapathId = u32;

/// The logically-centralized SDN controller.
#[derive(Debug, Default)]
pub struct SdnController {
    switches: Mutex<HashMap<DatapathId, Arc<Mutex<FlowTable>>>>,
}

/// Errors from rule management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdnError {
    /// No switch registered under that datapath id.
    UnknownSwitch(DatapathId),
    /// A datapath id was registered twice.
    DuplicateSwitch(DatapathId),
}

impl std::fmt::Display for SdnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SdnError::UnknownSwitch(d) => write!(f, "unknown switch {d}"),
            SdnError::DuplicateSwitch(d) => write!(f, "switch {d} already registered"),
        }
    }
}

impl std::error::Error for SdnError {}

impl SdnController {
    /// A controller with no switches.
    pub fn new() -> SdnController {
        SdnController::default()
    }

    /// Registers a switch (its table handle) under a datapath id — the
    /// OpenFlow session establishment.
    pub fn connect(&self, dpid: DatapathId, switch: &Switch) -> Result<(), SdnError> {
        let mut sw = self.switches.lock();
        if sw.contains_key(&dpid) {
            return Err(SdnError::DuplicateSwitch(dpid));
        }
        sw.insert(dpid, switch.table());
        Ok(())
    }

    /// Installs a rule on one switch (FLOW_MOD ADD).
    pub fn install(&self, dpid: DatapathId, rule: FlowRule) -> Result<(), SdnError> {
        let sw = self.switches.lock();
        let table = sw.get(&dpid).ok_or(SdnError::UnknownSwitch(dpid))?;
        table.lock().install(rule);
        Ok(())
    }

    /// Removes rules matching a predicate on one switch (FLOW_MOD DELETE).
    pub fn remove_where(
        &self,
        dpid: DatapathId,
        pred: impl Fn(&FlowRule) -> bool,
    ) -> Result<usize, SdnError> {
        let sw = self.switches.lock();
        let table = sw.get(&dpid).ok_or(SdnError::UnknownSwitch(dpid))?;
        let removed = table.lock().remove_where(pred);
        Ok(removed)
    }

    /// Rule count on one switch (table stats).
    pub fn rule_count(&self, dpid: DatapathId) -> Result<usize, SdnError> {
        let sw = self.switches.lock();
        let table = sw.get(&dpid).ok_or(SdnError::UnknownSwitch(dpid))?;
        let n = table.lock().len();
        Ok(n)
    }

    /// The raw table handle of a switch — what applications like the TSA
    /// program against (see
    /// [`TrafficSteeringApp::via_controller`](crate::TrafficSteeringApp::via_controller)).
    pub fn table(&self, dpid: DatapathId) -> Result<Arc<Mutex<FlowTable>>, SdnError> {
        self.switches
            .lock()
            .get(&dpid)
            .cloned()
            .ok_or(SdnError::UnknownSwitch(dpid))
    }

    /// All connected datapath ids, sorted.
    pub fn switches(&self) -> Vec<DatapathId> {
        let mut v: Vec<DatapathId> = self.switches.lock().keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowtable::{Action, FlowMatch};
    use crate::network::{Network, SinkHost};

    #[test]
    fn connect_and_program_switches() {
        let ctrl = SdnController::new();
        let s1 = Switch::new("s1");
        let s2 = Switch::new("s2");
        ctrl.connect(1, &s1).unwrap();
        ctrl.connect(2, &s2).unwrap();
        assert_eq!(ctrl.switches(), vec![1, 2]);
        assert_eq!(
            ctrl.connect(1, &s1).unwrap_err(),
            SdnError::DuplicateSwitch(1)
        );

        ctrl.install(
            1,
            FlowRule {
                priority: 5,
                m: FlowMatch::any(),
                actions: vec![Action::Output(1)],
            },
        )
        .unwrap();
        assert_eq!(ctrl.rule_count(1).unwrap(), 1);
        assert_eq!(ctrl.rule_count(2).unwrap(), 0);
        assert_eq!(
            ctrl.install(
                9,
                FlowRule {
                    priority: 0,
                    m: FlowMatch::any(),
                    actions: vec![],
                }
            ),
            Err(SdnError::UnknownSwitch(9))
        );
    }

    #[test]
    fn controller_installed_rules_drive_forwarding() {
        let ctrl = SdnController::new();
        let sw = Switch::new("s1");
        ctrl.connect(7, &sw).unwrap();

        let mut net = Network::new(100);
        let sw_id = net.add_node(Box::new(sw));
        let sink = SinkHost::new();
        let sink_id = net.add_node(Box::new(sink.clone()));
        net.link(sw_id, 1, sink_id, 0);

        // No rules yet: drop.
        let f = dpi_packet::packet::flow(
            [1, 1, 1, 1],
            1,
            [2, 2, 2, 2],
            2,
            dpi_packet::ipv4::IpProtocol::Tcp,
        );
        let pkt = dpi_packet::Packet::tcp(
            dpi_packet::MacAddr::local(1),
            dpi_packet::MacAddr::local(2),
            f,
            0,
            b"x".to_vec(),
        );
        net.inject(sw_id, 0, pkt.clone());
        net.run();
        assert_eq!(sink.count(), 0);

        // Program through the controller: forwarding starts.
        ctrl.install(
            7,
            FlowRule {
                priority: 1,
                m: FlowMatch::any().from_port(0),
                actions: vec![Action::Output(1)],
            },
        )
        .unwrap();
        net.inject(sw_id, 0, pkt);
        net.run();
        assert_eq!(sink.count(), 1);

        // And removal stops it again.
        assert_eq!(ctrl.remove_where(7, |_| true).unwrap(), 1);
    }
}
