//! # dpi-regex
//!
//! A from-scratch regular-expression engine for the *DPI as a Service*
//! reproduction, standing in for PCRE (§5.3 of the paper invokes "an
//! off-the-shelf regular expression engine (e.g., PCRE)" after the string
//! pre-filter; this crate is that engine, built in Rust).
//!
//! Supported syntax — the subset that covers Snort-style payload rules:
//!
//! * byte literals, escapes (`\n \r \t \0 \xHH \\` and escaped
//!   metacharacters)
//! * character classes `[a-z0-9_]`, negated classes `[^…]`, and the
//!   perl classes `\d \D \s \S \w \W`
//! * `.` (any byte except `\n`; `(?s)` makes it truly any byte)
//! * quantifiers `* + ? {m} {m,} {m,n}` (greedy; matching is
//!   automata-based so greediness never affects *whether* an input
//!   matches, which is all the DPI service needs)
//! * alternation `|`, groups `(…)` and `(?:…)`
//! * anchors `^` and `$`
//! * leading flags `(?i)` (case-insensitive) and `(?s)` (dot-all)
//!
//! Internally a pattern is parsed to an AST ([`ast`]), compiled to a
//! Thompson NFA ([`nfa`]), and executed either by the NFA simulation
//! (worst-case O(n·m), no pathological blowup — the engine is safe against
//! the ReDoS-style complexity attacks that §4.3.1 worries about) or by a
//! bounded-memory lazy DFA ([`dfa`]).
//!
//! [`anchor::extract_anchors`] implements §5.3's anchor extraction: the
//! literal strings of length ≥ 4 that *must* appear in any match, which
//! the DPI service registers with its Aho-Corasick pre-filter.

pub mod anchor;
pub mod ast;
pub mod dfa;
pub mod nfa;
pub mod parser;

pub use anchor::{extract_anchors, prefilter_literals, MIN_ANCHOR_LEN, MIN_PREFILTER_LEN};
pub use parser::ParseErrorKind;

use serde::{Deserialize, Serialize};

/// A compiled regular expression.
///
/// ```
/// use dpi_regex::Regex;
///
/// let re = Regex::new(r"regular\s*expression\s*\d+").unwrap();
/// assert!(re.is_match(b"a regular expression 42"));
/// // §5.3 anchors: the literals any match must contain.
/// assert_eq!(re.anchors().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Regex {
    /// The source pattern.
    pattern: String,
    nfa: nfa::Nfa,
    anchors: Vec<Vec<u8>>,
    prefilter_literals: Vec<Vec<u8>>,
}

/// Compilation errors, with the byte offset in the pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegexError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Byte offset in the pattern source.
    pub position: usize,
}

impl std::fmt::Display for RegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "regex parse error at {}: {}", self.position, self.kind)
    }
}

impl std::error::Error for RegexError {}

impl Regex {
    /// Compiles `pattern`.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let ast = parser::parse(pattern)?;
        let nfa = nfa::Nfa::compile(&ast);
        let anchors = anchor::extract_anchors(&ast);
        let prefilter_literals = anchor::prefilter_literals(&ast);
        Ok(Regex {
            pattern: pattern.to_string(),
            nfa,
            anchors,
            prefilter_literals,
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Whether `haystack` contains a match (unanchored unless the pattern
    /// starts with `^`).
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        self.nfa.is_match(haystack)
    }

    /// The end offset (exclusive) of the leftmost match, if any.
    pub fn find_end(&self, haystack: &[u8]) -> Option<usize> {
        self.nfa.find_end(haystack)
    }

    /// The §5.3 anchors: literal strings of length ≥ [`MIN_ANCHOR_LEN`]
    /// that must all appear in any matching input. Empty when the pattern
    /// has no sufficiently long mandatory literals — such expressions run
    /// on the parallel regex path (§5.3 last paragraph).
    pub fn anchors(&self) -> &[Vec<u8>] {
        &self.anchors
    }

    /// Mandatory literal runs down to [`MIN_PREFILTER_LEN`] bytes — the
    /// export the scan-kernel prefilter seeds its rare-pair selection
    /// from. A superset of [`Regex::anchors`]: every returned literal
    /// appears contiguously in any matching input.
    pub fn prefilter_literals(&self) -> &[Vec<u8>] {
        &self.prefilter_literals
    }

    /// Number of NFA states — a size metric for telemetry and tests.
    pub fn nfa_states(&self) -> usize {
        self.nfa.len()
    }

    /// Builds an owning lazy DFA over a clone of this regex's NFA — the
    /// representation for long-lived, hot engines such as the DPI
    /// instance's always-on parallel path (§5.3's "regular expression
    /// matching algorithm … run in parallel to our string matching
    /// algorithm").
    pub fn to_lazy_dfa(&self) -> dfa::LazyDfa<nfa::Nfa> {
        dfa::LazyDfa::new(self.nfa.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_pattern() {
        // The paper's §5.3 example: regular\s*expression\s*\d+ with
        // anchors "regular" and "expression".
        let re = Regex::new(r"regular\s*expression\s*\d+").unwrap();
        assert!(re.is_match(b"a regular expression 42 here"));
        assert!(re.is_match(b"regularexpression7"));
        assert!(!re.is_match(b"regular expression"));
        let anchors: Vec<&[u8]> = re.anchors().iter().map(|a| a.as_slice()).collect();
        assert_eq!(
            anchors,
            vec![b"regular".as_slice(), b"expression".as_slice()]
        );
    }

    #[test]
    fn case_insensitive_flag() {
        let re = Regex::new(r"(?i)attack").unwrap();
        assert!(re.is_match(b"ATTACK"));
        assert!(re.is_match(b"AtTaCk"));
        assert!(!re.is_match(b"atta ck"));
    }

    #[test]
    fn case_insensitive_anchor_is_sound_for_every_match() {
        // The anchor contract under (?i): whatever `anchors()` returns
        // must appear verbatim in every matching input. Caseless digits
        // anchor; folded letters must not.
        let re = Regex::new(r"(?i)id=12345;user=\w+").unwrap();
        assert_eq!(re.anchors(), &[b"=12345;".to_vec()]);
        for input in [&b"ID=12345;USER=x"[..], b"id=12345;User=Bob"] {
            assert!(re.is_match(input));
            assert!(
                input.windows(7).any(|w| w == b"=12345;"),
                "anchor must be present in every match"
            );
        }
    }

    #[test]
    fn find_end_is_earliest_completion() {
        // "ab" completes after consuming index 3 → exclusive end 4.
        let re = Regex::new(r"ab+").unwrap();
        assert_eq!(re.find_end(b"xxabbbyyab"), Some(4));
        assert_eq!(re.find_end(b"zzz"), None);
    }

    #[test]
    fn error_carries_position() {
        let err = Regex::new(r"ab[").unwrap_err();
        assert_eq!(err.position, 3);
    }
}
