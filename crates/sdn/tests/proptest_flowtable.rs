//! Property tests for the flow table: OpenFlow-like lookup semantics must
//! hold for arbitrary rule sets.

use dpi_packet::ipv4::IpProtocol;
use dpi_packet::packet::flow;
use dpi_packet::{MacAddr, Packet};
use dpi_sdn::{Action, FlowMatch, FlowRule, FlowTable};
use proptest::prelude::*;

fn arbitrary_match() -> impl Strategy<Value = FlowMatch> {
    (
        prop::option::of(0u16..4),
        prop::option::of(0u16..8),
        prop::option::of(any::<bool>()),
        prop::option::of(1u16..5),
    )
        .prop_map(|(in_port, vlan_vid, tagged, l4_dst)| FlowMatch {
            in_port,
            vlan_vid,
            // A vid match implies tagged; keep the strategy consistent.
            tagged: if vlan_vid.is_some() {
                Some(true)
            } else {
                tagged
            },
            l4_dst: l4_dst.map(|p| p * 1000),
            ..FlowMatch::default()
        })
}

fn arbitrary_rules() -> impl Strategy<Value = Vec<FlowRule>> {
    prop::collection::vec(
        (0u16..100, arbitrary_match(), 0u16..4).prop_map(|(priority, m, out)| FlowRule {
            priority,
            m,
            actions: vec![Action::Output(out)],
        }),
        0..20,
    )
}

fn packet(tag: Option<u16>, dst_port: u16) -> Packet {
    let f = flow(
        [10, 0, 0, 1],
        1234,
        [10, 0, 0, 2],
        dst_port,
        IpProtocol::Tcp,
    );
    let mut p = Packet::tcp(MacAddr::local(1), MacAddr::local(2), f, 0, b"x".to_vec());
    if let Some(t) = tag {
        p.push_chain_tag(t).unwrap();
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lookup_returns_highest_priority_match(
        rules in arbitrary_rules(),
        tag in prop::option::of(0u16..8),
        dst_port in (1u16..5).prop_map(|p| p * 1000),
        in_port in 0u16..4,
    ) {
        let mut table = FlowTable::new();
        for r in &rules {
            table.install(r.clone());
        }
        let pkt = packet(tag, dst_port);
        let hit = table.lookup(&pkt, in_port);
        // Reference computation: max priority among matching rules.
        let best = rules
            .iter()
            .filter(|r| r.m.matches(&pkt, in_port))
            .map(|r| r.priority)
            .max();
        match (hit, best) {
            (None, None) => {}
            (Some(rule), Some(p)) => prop_assert_eq!(rule.priority, p),
            (got, want) => prop_assert!(false, "lookup {got:?} vs expected priority {want:?}"),
        }
    }

    #[test]
    fn install_remove_is_consistent(rules in arbitrary_rules()) {
        let mut table = FlowTable::new();
        for r in &rules {
            table.install(r.clone());
        }
        prop_assert_eq!(table.len(), rules.len());
        let removed = table.remove_where(|r| r.priority % 2 == 0);
        let expected_removed = rules.iter().filter(|r| r.priority % 2 == 0).count();
        prop_assert_eq!(removed, expected_removed);
        prop_assert_eq!(table.len(), rules.len() - expected_removed);
    }

    #[test]
    fn output_only_rules_preserve_packets(
        tag in prop::option::of(0u16..8),
        dst_port in (1u16..5).prop_map(|p| p * 1000),
    ) {
        let rule = FlowRule {
            priority: 1,
            m: FlowMatch::any(),
            actions: vec![Action::Output(3)],
        };
        let pkt = packet(tag, dst_port);
        let out = FlowTable::apply(&rule, pkt.clone());
        prop_assert_eq!(out.len(), 1);
        prop_assert_eq!(&out[0].1, &pkt);
    }

    #[test]
    fn push_then_pop_restores_packet(tag in 0u16..0xfff) {
        let push = FlowRule {
            priority: 1,
            m: FlowMatch::any(),
            actions: vec![Action::PushTag(tag), Action::Output(0)],
        };
        let pop = FlowRule {
            priority: 1,
            m: FlowMatch::any(),
            actions: vec![Action::PopTag, Action::Output(0)],
        };
        let pkt = packet(None, 2000);
        let tagged = FlowTable::apply(&push, pkt.clone()).remove(0).1;
        prop_assert_eq!(tagged.chain_tag(), Some(tag));
        let restored = FlowTable::apply(&pop, tagged).remove(0).1;
        prop_assert_eq!(restored, pkt);
    }
}
