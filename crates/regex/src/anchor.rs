//! Anchor extraction (§5.3).
//!
//! "For each regular expression, we first extract sufficiently long strings
//! (which we call anchors) from each regular expression. These anchors must
//! be matched for the entire regular expression to be matched. Short
//! strings of length less than 4 characters are not extracted."
//!
//! An anchor is a maximal run of single-byte positions that every match of
//! the expression must contain contiguously. The DPI service registers the
//! anchors with its Aho-Corasick pre-filter and only invokes the full regex
//! engine when *all* anchors of an expression were seen (§5.3).

use crate::ast::Ast;

/// Minimum anchor length, per the paper.
pub const MIN_ANCHOR_LEN: usize = 4;

/// Minimum literal length for the scan-kernel prefilter export
/// ([`prefilter_literals`]). The prefilter keys on adjacent byte *pairs*,
/// so two mandatory bytes are already useful — far below the §5.3 anchor
/// floor.
pub const MIN_PREFILTER_LEN: usize = 2;

/// Extracts the anchors of `ast` (deduplicated, in syntactic order).
pub fn extract_anchors(ast: &Ast) -> Vec<Vec<u8>> {
    extract_literal_runs(ast, MIN_ANCHOR_LEN)
}

/// Extracts the mandatory literal runs of `ast` down to the prefilter
/// floor of [`MIN_PREFILTER_LEN`] bytes. Same contract as
/// [`extract_anchors`] — every returned literal appears contiguously in
/// any matching input — but tuned for seeding the SWAR pair prefilter,
/// which wants *some* mandatory pair from each expression rather than a
/// pre-filter-worthy long string.
pub fn prefilter_literals(ast: &Ast) -> Vec<Vec<u8>> {
    extract_literal_runs(ast, MIN_PREFILTER_LEN)
}

/// Shared walk: maximal mandatory single-byte runs of length ≥ `min_len`,
/// deduplicated, in syntactic order.
fn extract_literal_runs(ast: &Ast, min_len: usize) -> Vec<Vec<u8>> {
    let mut anchors = Vec::new();
    let mut run = Vec::new();
    walk(ast, &mut anchors, &mut run, min_len);
    flush(&mut anchors, &mut run, min_len);
    // Deduplicate while preserving order.
    let mut seen = std::collections::HashSet::new();
    anchors.retain(|a| seen.insert(a.clone()));
    anchors
}

fn flush(anchors: &mut Vec<Vec<u8>>, run: &mut Vec<u8>, min_len: usize) {
    if run.len() >= min_len {
        anchors.push(std::mem::take(run));
    } else {
        run.clear();
    }
}

fn walk(ast: &Ast, anchors: &mut Vec<Vec<u8>>, run: &mut Vec<u8>, min_len: usize) {
    match ast {
        Ast::Empty | Ast::AnchorStart | Ast::AnchorEnd => {
            // Zero-width: does not interrupt byte contiguity.
        }
        Ast::Class(set) => match set.as_single() {
            Some(b) => run.push(b),
            None => flush(anchors, run, min_len),
        },
        Ast::Concat(items) => {
            for item in items {
                walk(item, anchors, run, min_len);
            }
        }
        Ast::Alt(_) => {
            // No single branch is mandatory; shared-prefix factoring is a
            // possible refinement the paper does not require.
            flush(anchors, run, min_len);
        }
        Ast::Repeat { node, min, max } => {
            if *min == 0 {
                // Entirely optional: breaks the run and contributes nothing.
                flush(anchors, run, min_len);
                return;
            }
            if let Ast::Class(set) = node.as_ref() {
                if let Some(b) = set.as_single() {
                    // `x{3,5}`: three mandatory copies extend the run …
                    for _ in 0..*min {
                        run.push(b);
                    }
                    // … and a variable tail breaks it.
                    if *max != Some(*min) {
                        flush(anchors, run, min_len);
                    }
                    return;
                }
            }
            // A complex mandatory subexpression: its own internal anchors
            // are mandatory too, but contiguity with the surroundings is
            // broken on both sides (repetition boundaries are variable
            // unless min == max == 1, which the parser never produces).
            flush(anchors, run, min_len);
            let mut inner = Vec::new();
            walk(node, anchors, &mut inner, min_len);
            flush(anchors, &mut inner, min_len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn anchors(p: &str) -> Vec<String> {
        extract_anchors(&parse(p).unwrap())
            .into_iter()
            .map(|a| String::from_utf8(a).unwrap())
            .collect()
    }

    #[test]
    fn paper_example() {
        assert_eq!(
            anchors(r"regular\s*expression\s*\d+"),
            vec!["regular", "expression"]
        );
    }

    #[test]
    fn short_runs_are_dropped() {
        assert_eq!(anchors(r"GET\s+HTTP"), vec!["HTTP"]);
        assert!(anchors(r"abc").is_empty());
        assert_eq!(anchors(r"abcd"), vec!["abcd"]);
    }

    #[test]
    fn alternation_yields_no_anchors() {
        assert!(anchors(r"attack|malware").is_empty());
        // But mandatory literals around the alternation survive.
        assert_eq!(anchors(r"prefix(a|b)suffix"), vec!["prefix", "suffix"]);
    }

    #[test]
    fn optional_parts_break_runs() {
        assert_eq!(anchors(r"download(\.php)?load"), vec!["download", "load"]);
        assert!(anchors(r"(evil)*").is_empty());
    }

    #[test]
    fn mandatory_group_contributes_inner_anchors() {
        assert_eq!(anchors(r"(malicious)+"), vec!["malicious"]);
        assert_eq!(anchors(r"x(payload){2}y"), vec!["payload"]);
    }

    #[test]
    fn counted_single_bytes_extend_runs() {
        // ^aaaab... a{4} then 'b' — one run "aaaab".
        assert_eq!(anchors(r"a{4}b"), vec!["aaaab"]);
        // Variable tail splits.
        assert_eq!(anchors(r"cccc a{2,9}dddd"), vec!["cccc aa", "dddd"]);
    }

    #[test]
    fn case_insensitive_patterns_have_no_anchors() {
        // Case-folded classes are not single bytes, so no anchors are
        // extracted and the expression runs on the parallel path (§5.3).
        assert!(anchors(r"(?i)maliciouspayload").is_empty());
    }

    #[test]
    fn zero_width_anchors_do_not_split_runs() {
        assert_eq!(anchors(r"^HostHeader$"), vec!["HostHeader"]);
    }

    #[test]
    fn duplicate_anchors_are_deduped() {
        assert_eq!(anchors(r"evil\d+evil"), vec!["evil"]);
    }

    fn literals(p: &str) -> Vec<String> {
        prefilter_literals(&parse(p).unwrap())
            .into_iter()
            .map(|a| String::from_utf8(a).unwrap())
            .collect()
    }

    #[test]
    fn prefilter_literals_accept_short_mandatory_runs() {
        // Runs below the anchor floor but at or above two bytes are
        // exported for the pair prefilter.
        assert_eq!(literals(r"ab\d+cd\d+ef"), vec!["ab", "cd", "ef"]);
        assert_eq!(literals(r"GET\s+HTTP"), vec!["GET", "HTTP"]);
        // Single mandatory bytes still don't qualify: no pair exists.
        assert!(literals(r"a\d+b").is_empty());
    }

    #[test]
    fn prefilter_literals_keep_the_mandatory_contract() {
        // Optional and alternated parts must not leak in — a false
        // "mandatory" literal would let matches slip past the prefilter.
        assert!(literals(r"attack|malware").is_empty());
        assert_eq!(literals(r"download(\.php)?load"), vec!["download", "load"]);
        assert_eq!(literals(r"xy(malicious|ab)zw"), vec!["xy", "zw"]);
    }

    #[test]
    fn sub_minimum_literals_never_anchor() {
        // The §5.3 length floor is exact: 3 bytes never anchor, 4 do.
        assert!(anchors(r"abc").is_empty());
        assert_eq!(anchors(r"abcd"), vec!["abcd"]);
        // Fragments shorter than the floor are dropped even when the
        // pattern is long overall — each run is measured on its own.
        assert!(anchors(r"ab\d+cd\d+ef").is_empty());
        assert!(anchors(r"GET\s+\d+\s+end").is_empty());
        // A run exactly at the floor between breaks survives.
        assert_eq!(anchors(r"ab\d+word\d+cd"), vec!["word"]);
    }

    #[test]
    fn case_insensitive_non_letters_still_anchor() {
        // (?i) folds letters into two-byte classes (no anchors), but
        // bytes without case — digits, punctuation — fold to themselves
        // and still form anchors.
        assert_eq!(anchors(r"(?i)1234-5678"), vec!["1234-5678"]);
        // Mixed: the letters break the run, the digit tail anchors.
        assert!(anchors(r"(?i)abc123").is_empty());
        assert_eq!(anchors(r"(?i)abc123456"), vec!["123456"]);
        // Without the flag the same letters anchor as usual.
        assert_eq!(anchors(r"abc123"), vec!["abc123"]);
    }

    #[test]
    fn one_anchored_branch_does_not_anchor_the_alternation() {
        // Only one branch could yield an anchor, but no branch is
        // mandatory, so the alternation contributes nothing: treating
        // "malicious" as required would let `ab` matches slip past the
        // pre-filter unscanned.
        assert!(anchors(r"malicious|ab").is_empty());
        assert!(anchors(r"(longpayload|x)\d+").is_empty());
        // Mandatory context around such an alternation still anchors.
        assert_eq!(anchors(r"head(malicious|ab)tail"), vec!["head", "tail"]);
    }
}
