//! Overload-control characterization: sustained throughput, p99 ingress
//! queue depth and shed fraction as offered load climbs past the shard
//! watermarks. Writes `BENCH_overload.json` (consumed by the CI bench
//! job as an artifact) with one entry per offered-load point:
//!
//! * `batch_size` — packets offered per batch at this point;
//! * `sustained_pps` — median scan throughput across the passes;
//! * `p99_queue_depth` — 99th percentile of per-batch shard queue
//!   peaks (the backlog the backpressure bound actually allowed);
//! * `shed_fraction` / `ce_fraction` — packets shed (forwarded
//!   unscanned, fail-open) and CE-marked, as fractions of offered load.
//!
//! Set `DPI_BENCH_QUICK=1` for a CI-sized run.

use dpi_bench::{host_cores, pipeline_batch, pipeline_config, print_row};
use dpi_core::overload::{OverloadPolicy, ShedMode};
use dpi_core::pipeline::ShardedScanner;
use dpi_traffic::patterns::snort_like;
use dpi_traffic::trace::TraceConfig;
use std::time::Instant;

const WORKERS: usize = 2;
const QUEUE_HIGH: usize = 96;
const QUEUE_LOW: usize = 32;

fn percentile(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
    samples[idx]
}

fn main() {
    let quick = std::env::var_os("DPI_BENCH_QUICK").is_some();
    let (npat, runs) = if quick { (300, 3) } else { (1000, 6) };
    // Offered load sweep: below the low watermark, straddling the high
    // watermark, and deep into sustained overload.
    let batch_sizes: [usize; 4] = [64, 256, 512, 1024];

    let pats = snort_like(npat, 42);
    let payloads = TraceConfig {
        packets: *batch_sizes.iter().max().expect("non-empty sweep"),
        match_density: 0.02,
        prefix_density: 3.0,
        seed: 7,
        ..TraceConfig::default()
    }
    .generate(&pats);

    let policy = OverloadPolicy::queue_only(QUEUE_HIGH, QUEUE_LOW).with_shed(ShedMode::FailOpen);
    println!(
        "overload bench: {npat} patterns, {WORKERS} workers, watermarks \
         {QUEUE_HIGH}/{QUEUE_LOW}, {} host cores{}",
        host_cores(),
        if quick { ", quick mode" } else { "" }
    );
    print_row(&[
        "batch".into(),
        "pkts/s".into(),
        "p99 depth".into(),
        "shed".into(),
        "ce-marked".into(),
    ]);

    let mut points = Vec::new();
    for &size in &batch_sizes {
        let batch = pipeline_batch(&payloads[..size], 64, 99);
        let mut scanner = ShardedScanner::from_config(pipeline_config(&pats), WORKERS)
            .expect("valid config")
            .with_overload_policy(policy);
        let mut peaks: Vec<u64> = Vec::new();
        let mut pps_samples: Vec<f64> = Vec::new();
        let mut offered = 0u64;
        for _ in 0..runs {
            let mut pkts = batch.clone();
            let t0 = Instant::now();
            scanner.inspect_batch(&mut pkts);
            pps_samples.push(size as f64 / t0.elapsed().as_secs_f64());
            peaks.extend(scanner.last_batch_peaks().iter().map(|&d| d as u64));
            offered += size as u64;
        }
        pps_samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let sustained = pps_samples[pps_samples.len() / 2];
        let p99 = percentile(&mut peaks, 0.99);
        let shed_fraction = scanner.total_shed() as f64 / offered as f64;
        let ce_fraction = scanner.total_ce_marked() as f64 / offered as f64;
        print_row(&[
            format!("{size}"),
            format!("{sustained:.0}"),
            format!("{p99}"),
            format!("{:.1}%", shed_fraction * 100.0),
            format!("{:.1}%", ce_fraction * 100.0),
        ]);
        points.push(format!(
            "{{\"batch_size\": {size}, \"sustained_pps\": {sustained:.0}, \
             \"p99_queue_depth\": {p99}, \"shed_fraction\": {shed_fraction:.4}, \
             \"ce_fraction\": {ce_fraction:.4}}}"
        ));
    }

    let json = format!(
        "{{\n  \"host_cores\": {},\n  \"quick\": {},\n  \"workers\": {WORKERS},\n  \
         \"patterns\": {npat},\n  \"runs_per_point\": {runs},\n  \
         \"policy\": {{\"queue_high\": {QUEUE_HIGH}, \"queue_low\": {QUEUE_LOW}, \
         \"shed\": \"fail_open\"}},\n  \"points\": [{}]\n}}\n",
        host_cores(),
        quick,
        points.join(", "),
    );
    std::fs::write("BENCH_overload.json", &json).expect("writable working directory");
    println!("wrote BENCH_overload.json");
}
