//! Property tests: both automaton representations must agree with the
//! naive reference matcher on arbitrary pattern sets and inputs, and the
//! §5.1 structural invariants must hold for every build.

use dpi_ac::naive::NaiveMatcher;
use dpi_ac::{bitmap_bit, Automaton, CombinedAcBuilder, MiddleboxId, PatternSet};
use proptest::prelude::*;

/// Strategy: up to 3 middleboxes, each with up to 6 patterns over a small
/// alphabet (small alphabets maximize overlap, suffix sharing and failure
/// link interplay).
fn pattern_sets() -> impl Strategy<Value = Vec<PatternSet>> {
    prop::collection::vec(
        prop::collection::vec(
            prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c']), 1..8),
            1..7,
        ),
        1..4,
    )
    .prop_map(|sets| {
        sets.into_iter()
            .enumerate()
            .map(|(i, patterns)| PatternSet::new(MiddleboxId(i as u16), patterns))
            .collect()
    })
}

fn input() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c', b'x']), 0..200)
}

fn build(sets: &[PatternSet]) -> CombinedAcBuilder {
    let mut b = CombinedAcBuilder::new();
    for s in sets {
        b.add_set(s.clone()).unwrap();
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn full_matches_naive(sets in pattern_sets(), data in input()) {
        let builder = build(&sets);
        let ac = builder.build_full();
        let mut naive = NaiveMatcher::new();
        for s in &sets {
            naive.add_set(s);
        }
        let mut got = ac.find_all(&data);
        got.sort();
        got.dedup();
        prop_assert_eq!(got, naive.find_all(&data));
    }

    #[test]
    fn sparse_matches_full(sets in pattern_sets(), data in input()) {
        let builder = build(&sets);
        let full = builder.build_full();
        let sparse = builder.build_sparse();
        let mut a = full.find_all(&data);
        let mut b = sparse.find_all(&data);
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn accepting_ids_are_compact(sets in pattern_sets()) {
        let ac = build(&sets).build_full();
        let f = ac.accepting_count() as u32;
        for s in 0..ac.state_count() as u32 {
            prop_assert_eq!(ac.is_accepting(s), s < f);
            prop_assert_eq!(ac.entries(s).is_empty(), s >= f);
        }
    }

    #[test]
    fn bitmaps_cover_exactly_entry_middleboxes(sets in pattern_sets()) {
        let ac = build(&sets).build_full();
        for s in 0..ac.accepting_count() as u32 {
            let expected = ac
                .entries(s)
                .iter()
                .fold(0u64, |acc, e| acc | bitmap_bit(e.middlebox));
            prop_assert_eq!(ac.bitmap(s), expected);
        }
    }

    #[test]
    fn split_scan_equals_whole_scan(sets in pattern_sets(), data in input(), cut in 0usize..200) {
        // Stateful scanning across a packet boundary (§5.2) must see the
        // same matches as scanning the concatenated payload, with
        // positions shifted.
        let ac = build(&sets).build_full();
        let cut = cut.min(data.len());
        let (a, b) = data.split_at(cut);

        let mut whole = Vec::new();
        ac.scan(ac.start(), &data, |pos, st| {
            for e in ac.entries(st) {
                whole.push((pos, *e));
            }
        });

        let mut split = Vec::new();
        let mid = ac.scan(ac.start(), a, |pos, st| {
            for e in ac.entries(st) {
                split.push((pos, *e));
            }
        });
        ac.scan(mid, b, |pos, st| {
            for e in ac.entries(st) {
                split.push((pos + cut, *e));
            }
        });

        whole.sort();
        split.sort();
        prop_assert_eq!(whole, split);
    }

    #[test]
    fn merged_automaton_equals_pairwise_union(sets in pattern_sets(), data in input()) {
        // The heart of §5.1: scanning once against the merged automaton
        // yields exactly the union of per-middlebox scans.
        let merged = build(&sets).build_full();
        let mut merged_hits = merged.find_all(&data);
        merged_hits.sort();
        merged_hits.dedup();

        let mut union = Vec::new();
        for s in &sets {
            let mut b = CombinedAcBuilder::new();
            b.add_set(s.clone()).unwrap();
            let single = b.build_full();
            union.extend(single.find_all(&data));
        }
        union.sort();
        union.dedup();

        prop_assert_eq!(merged_hits, union);
    }

    #[test]
    fn state_count_never_exceeds_total_pattern_bytes_plus_one(sets in pattern_sets()) {
        let total: usize = sets.iter().flat_map(|s| s.patterns.iter()).map(|p| p.len()).sum();
        let ac = build(&sets).build_full();
        prop_assert!(ac.state_count() <= total + 1);
    }

    #[test]
    fn compact_matches_full_everywhere(sets in pattern_sets(), data in input(), cut in 0usize..200) {
        // The u16 table must produce the exact same scan-event stream as
        // the u32 table — same positions, same states, same resume state
        // across a split — since the data plane swaps one for the other
        // solely on state count.
        let builder = build(&sets);
        let full = builder.build_full();
        let compact = builder.build_compact().expect("tiny automata always fit u16");

        let mut full_events = Vec::new();
        let fs = full.scan(full.start(), &data, |pos, st| full_events.push((pos, st)));
        let mut compact_events = Vec::new();
        let cs = compact.scan(compact.start(), &data, |pos, st| compact_events.push((pos, st)));
        prop_assert_eq!(&full_events, &compact_events);
        prop_assert_eq!(fs, cs);

        // Resumed mid-payload scans agree too (§5.2 stateful flows).
        let cut = cut.min(data.len());
        let (a, b) = data.split_at(cut);
        let fm = full.scan(full.start(), a, |_, _| {});
        let cm = compact.scan(compact.start(), a, |_, _| {});
        prop_assert_eq!(fm, cm);
        let mut f2 = Vec::new();
        full.scan(fm, b, |pos, st| f2.push((pos, st)));
        let mut c2 = Vec::new();
        compact.scan(cm, b, |pos, st| c2.push((pos, st)));
        prop_assert_eq!(f2, c2);
    }

    #[test]
    fn auto_selection_is_compact_and_halves_the_table(sets in pattern_sets()) {
        // Generated automata are tiny, so `build_auto` must always pick
        // the u16 representation, which must cost at most 55% of the u32
        // form's bytes while reporting identical structure.
        let builder = build(&sets);
        let full = builder.build_full();
        let auto = builder.build_auto();
        prop_assert_eq!(auto.repr_name(), "compact-u16");
        prop_assert!(auto.memory_bytes() * 100 <= full.memory_bytes() * 55);
        prop_assert_eq!(auto.state_count(), full.state_count());
        prop_assert_eq!(auto.accepting_count(), full.accepting_count());
        prop_assert_eq!(auto.max_depth(), full.max_depth());
    }
}
