//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the [`channel`] module's MPMC channels (the only crossbeam
//! API this workspace uses), implemented over `Mutex<VecDeque>` +
//! `Condvar`. Semantics match crossbeam where it matters to the DPI
//! pipeline: cloneable senders *and* receivers, FIFO per channel,
//! `recv` unblocking with `Err` once every sender is dropped, and
//! `bounded(n)` applying backpressure to senders.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<Shared<T>>,
        /// Signalled when an item arrives or the last sender leaves.
        recv_cv: Condvar,
        /// Signalled when space frees up in a bounded channel.
        send_cv: Condvar,
        capacity: Option<usize>,
    }

    struct Shared<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// High-water mark of queued items — exported as pipeline
        /// queue-depth telemetry.
        peak_len: usize,
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// The sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A bounded FIFO channel: `send` blocks while `cap` items are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(Shared {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
                peak_len: 0,
            }),
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
            capacity,
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, blocking while a bounded channel is full.
        /// Fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(cap) = self.inner.capacity {
                while q.items.len() >= cap && q.receivers > 0 {
                    q = self
                        .inner
                        .send_cv
                        .wait(q)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
            if q.receivers == 0 {
                return Err(SendError(value));
            }
            q.items.push_back(value);
            q.peak_len = q.peak_len.max(q.items.len());
            drop(q);
            self.inner.recv_cv.notify_one();
            Ok(())
        }

        /// Items currently queued (snapshot).
        pub fn len(&self) -> usize {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .items
                .len()
        }

        /// Whether the queue is currently empty (snapshot).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.senders -= 1;
            if q.senders == 0 {
                drop(q);
                self.inner.recv_cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next item, blocking until one arrives. Fails once
        /// the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.items.pop_front() {
                    drop(q);
                    self.inner.send_cv.notify_one();
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self
                    .inner
                    .recv_cv
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.items.pop_front() {
                Some(v) => {
                    drop(q);
                    self.inner.send_cv.notify_one();
                    Ok(v)
                }
                None if q.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Items currently queued (snapshot).
        pub fn len(&self) -> usize {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .items
                .len()
        }

        /// Whether the queue is currently empty (snapshot).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// High-water mark of queued items over the channel's lifetime.
        pub fn peak_len(&self) -> usize {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .peak_len
        }

        /// A blocking iterator that ends when all senders are gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.receivers -= 1;
            if q.receivers == 0 {
                drop(q);
                self.inner.send_cv.notify_all();
            }
        }
    }

    /// Blocking iterator over received items.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_and_disconnect() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn multi_producer_multi_consumer() {
        let (tx, rx) = channel::unbounded::<u32>();
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(t * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let rx2 = rx.clone();
        let consumer = std::thread::spawn(move || rx2.iter().count());
        let mut local = 0;
        for _ in rx.iter() {
            local += 1;
        }
        let other = consumer.join().unwrap();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(local + other, 400);
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = {
            let tx = tx.clone();
            std::thread::spawn(move || tx.send(3).unwrap())
        };
        // The queued pair must drain before the third send lands.
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert!(rx.len() <= 2);
        assert_eq!(rx.peak_len(), 2);
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert!(tx.send(9).is_err());
    }
}
