//! Table 2: "Comparing the performance of two middleboxes, one running on
//! pattern sets of Snort1 and the other on pattern sets of Snort2, to one
//! virtual DPI instance with the combined pattern sets."
//!
//! Paper numbers: Snort1 (2,500 patterns) 981 Mbps, Snort2 (1,856
//! patterns) 931 Mbps, combined (4,356) 768 Mbps — i.e. the combined
//! engine is only ~12% slower than the *slower* half ("the throughput of
//! the combined machine is just 12% less than that of each separate
//! machine") while replacing two scans with one.

use dpi_ac::Automaton;
use dpi_bench::{
    build_ac, build_combined_ac, fmt_mb, fmt_mbps, print_row, throughput_mbps, SNORT1_COUNT,
};
use dpi_traffic::patterns::{snort_like, split_set};
use dpi_traffic::trace::TraceConfig;

fn main() {
    let snort = snort_like(4356, 42);
    let (snort1, snort2) = split_set(&snort, SNORT1_COUNT, 7);
    let trace = TraceConfig {
        packets: 2000,
        match_density: 0.02,
        prefix_density: 3.0,
        seed: 2,
        ..TraceConfig::default()
    }
    .generate(&snort);

    let ac1 = build_ac(&snort1);
    let ac2 = build_ac(&snort2);
    let combined = build_combined_ac(&snort1, &snort2);

    println!("# Table 2 — separate Snort1/Snort2 engines vs one combined engine\n");
    print_row(&[
        "Sets".into(),
        "Patterns".into(),
        "Space".into(),
        "Throughput".into(),
    ]);
    let t1 = throughput_mbps(&ac1, &trace, 3);
    let t2 = throughput_mbps(&ac2, &trace, 3);
    let tc = throughput_mbps(&combined, &trace, 3);
    print_row(&[
        "Snort1".into(),
        snort1.len().to_string(),
        fmt_mb(ac1.memory_bytes()),
        fmt_mbps(t1),
    ]);
    print_row(&[
        "Snort2".into(),
        snort2.len().to_string(),
        fmt_mb(ac2.memory_bytes()),
        fmt_mbps(t2),
    ]);
    print_row(&[
        "Snort1+Snort2".into(),
        (snort1.len() + snort2.len()).to_string(),
        fmt_mb(combined.memory_bytes()),
        fmt_mbps(tc),
    ]);

    // Ablation: when middleboxes share rules (two IDSes with a common
    // feed), the merged automaton dedups them — the memory win grows with
    // overlap. Build a 50%-overlap pair for comparison.
    let overlap: Vec<Vec<u8>> = snort[..2178].to_vec();
    let a_ov: Vec<Vec<u8>> = snort[..3267].to_vec(); // first 75%
    let b_ov: Vec<Vec<u8>> = snort[1089..].to_vec(); // last 75%
    let ac_a_ov = build_ac(&a_ov);
    let ac_b_ov = build_ac(&b_ov);
    let merged_ov = build_combined_ac(&a_ov, &b_ov);
    let ov_saving = 100.0
        * (1.0
            - merged_ov.memory_bytes() as f64
                / (ac_a_ov.memory_bytes() + ac_b_ov.memory_bytes()) as f64);
    let _ = overlap;

    let slowdown_vs_min = 100.0 * (1.0 - tc / t1.min(t2));
    let space_saving = 100.0
        * (1.0 - combined.memory_bytes() as f64 / (ac1.memory_bytes() + ac2.memory_bytes()) as f64);
    println!("\n# combined vs slower separate engine: {slowdown_vs_min:.1}% slower (paper: ~12%)");
    println!("# combined automaton saves {space_saving:.1}% memory vs running both engines");
    println!(
        "# states: {} + {} separate vs {} combined",
        ac1.state_count(),
        ac2.state_count(),
        combined.state_count()
    );
    println!(
        "# with 50% rule overlap between the two middleboxes, merging saves {ov_saving:.1}% memory"
    );
}
