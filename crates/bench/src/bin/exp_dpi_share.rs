//! §1's footnote: "In an experiment we conducted on Snort IDS, DPI slows
//! packet processing by a factor of at least 2.9."
//!
//! We measure the same ratio on our middlebox framework: per-packet
//! processing time of a middlebox that scans payloads itself (DPI
//! inline) versus one that only consumes precomputed DPI-service results
//! (everything *except* DPI: rule evaluation, counters, verdicts).

use dpi_ac::MiddleboxId;
use dpi_core::config::NumberedRule;
use dpi_core::{DpiInstance, InstanceConfig, MiddleboxProfile, RuleSpec};
use dpi_middlebox::{MbAction, RuleLogic, SelfScanMiddlebox, ServiceMiddlebox};
use dpi_traffic::patterns::snort_like;
use dpi_traffic::trace::TraceConfig;
use std::time::Instant;

fn main() {
    let pats = snort_like(4356, 42);
    let trace = TraceConfig {
        packets: 3000,
        match_density: 0.05,
        seed: 12,
        ..TraceConfig::default()
    }
    .generate(&pats);
    const MB: MiddleboxId = MiddleboxId(1);

    // With DPI: the middlebox scans every payload itself.
    let mut with_dpi = SelfScanMiddlebox::new(
        MiddleboxProfile::stateless(MB),
        "inline",
        NumberedRule::sequence(RuleSpec::exact_set(&pats)),
        RuleLogic::one_per_pattern(pats.len() as u16, MbAction::Alert),
    )
    .expect("valid patterns");
    let t0 = Instant::now();
    let mut fired_inline = 0u64;
    for p in &trace {
        fired_inline += with_dpi.process(None, p).fired.len() as u64;
    }
    let t_with = t0.elapsed();

    // Without DPI: results are precomputed by the service; the middlebox
    // does everything else.
    let cfg = InstanceConfig::new()
        .with_middlebox(MiddleboxProfile::stateless(MB), RuleSpec::exact_set(&pats))
        .with_chain(1, vec![MB]);
    let mut dpi = DpiInstance::new(cfg).expect("valid config");
    let reports: Vec<_> = trace
        .iter()
        .map(|p| {
            let out = dpi.scan_payload(1, None, p).expect("chain exists");
            out.reports.into_iter().find(|r| r.middlebox_id == MB.0)
        })
        .collect();

    let mut without_dpi = ServiceMiddlebox::new(
        MB,
        "offloaded",
        RuleLogic::one_per_pattern(pats.len() as u16, MbAction::Alert),
    );
    let t0 = Instant::now();
    let mut fired_offloaded = 0u64;
    for r in &reports {
        fired_offloaded += without_dpi.process(r.as_ref()).fired.len() as u64;
    }
    let t_without = t0.elapsed();

    assert_eq!(fired_inline, fired_offloaded, "verdict parity");
    let factor = t_with.as_secs_f64() / t_without.as_secs_f64();
    println!("# §1 — the DPI share of middlebox packet processing\n");
    println!("packets                 : {}", trace.len());
    println!("rules fired (both modes): {fired_inline}");
    println!("with inline DPI         : {t_with:?}");
    println!("results-only processing : {t_without:?}");
    println!("\nslowdown factor from doing DPI inline: {factor:.1}x");
    println!("# paper: at least 2.9x on Snort (our non-DPI work is lighter than");
    println!("# Snort's, so the measured factor here is expected to be higher)");
}
