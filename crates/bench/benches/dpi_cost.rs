//! Criterion bench: per-packet middlebox cost with inline DPI vs
//! consuming precomputed DPI-service results — the §1 motivation
//! ("DPI slows packet processing by a factor of at least 2.9").

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpi_ac::MiddleboxId;
use dpi_core::config::NumberedRule;
use dpi_core::{DpiInstance, InstanceConfig, MiddleboxProfile, RuleSpec};
use dpi_middlebox::{MbAction, RuleLogic, SelfScanMiddlebox, ServiceMiddlebox};
use dpi_traffic::patterns::snort_like;
use dpi_traffic::trace::TraceConfig;

fn bench_dpi_cost(c: &mut Criterion) {
    const MB: MiddleboxId = MiddleboxId(1);
    let pats = snort_like(4356, 42);
    let trace = TraceConfig {
        packets: 200,
        match_density: 0.05,
        seed: 12,
        ..TraceConfig::default()
    }
    .generate(&pats);
    let bytes: usize = trace.iter().map(|p| p.len()).sum();

    let mut g = c.benchmark_group("middlebox_processing");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.sample_size(20);

    g.bench_function("with_inline_dpi", |b| {
        let mut mb = SelfScanMiddlebox::new(
            MiddleboxProfile::stateless(MB),
            "inline",
            NumberedRule::sequence(RuleSpec::exact_set(&pats)),
            RuleLogic::one_per_pattern(pats.len() as u16, MbAction::Alert),
        )
        .expect("valid patterns");
        b.iter(|| {
            let mut fired = 0usize;
            for p in &trace {
                fired += mb.process(None, p).fired.len();
            }
            fired
        })
    });

    g.bench_function("results_only", |b| {
        let cfg = InstanceConfig::new()
            .with_middlebox(MiddleboxProfile::stateless(MB), RuleSpec::exact_set(&pats))
            .with_chain(1, vec![MB]);
        let mut dpi = DpiInstance::new(cfg).expect("valid config");
        let reports: Vec<_> = trace
            .iter()
            .map(|p| {
                dpi.scan_payload(1, None, p)
                    .expect("chain exists")
                    .reports
                    .into_iter()
                    .find(|r| r.middlebox_id == MB.0)
            })
            .collect();
        let mut mb = ServiceMiddlebox::new(
            MB,
            "offloaded",
            RuleLogic::one_per_pattern(pats.len() as u16, MbAction::Alert),
        );
        b.iter(|| {
            let mut fired = 0usize;
            for r in &reports {
                fired += mb.process(r.as_ref()).fired.len();
            }
            fired
        })
    });

    g.finish();
}

criterion_group!(benches, bench_dpi_cost);
criterion_main!(benches);
