//! Behavioural tests for the DPI service instance — each §5.2/§5.3
//! mechanism gets a scenario.

use dpi_core::report::expand_records;
use dpi_core::{
    DpiInstance, InstanceConfig, InstanceError, MiddleboxId, MiddleboxProfile, RuleSpec,
};
use dpi_packet::ipv4::IpProtocol;
use dpi_packet::report::MatchRecord;
use dpi_packet::{FlowKey, MacAddr, Packet};
use std::net::Ipv4Addr;

const IDS: MiddleboxId = MiddleboxId(0);
const AV: MiddleboxId = MiddleboxId(1);

fn flow(port: u16) -> FlowKey {
    FlowKey {
        src_ip: Ipv4Addr::new(10, 0, 0, 1),
        dst_ip: Ipv4Addr::new(10, 0, 0, 2),
        protocol: IpProtocol::Tcp,
        src_port: port,
        dst_port: 80,
    }
}

/// IDS (stateful) with patterns {ATTACK, LONGPATTERN}; AV (stateless) with
/// {ATTACK, VIRUS}. Chain 1 = both; chain 2 = AV only.
fn two_middlebox_instance() -> DpiInstance {
    let cfg = InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateful(IDS),
            vec![
                RuleSpec::exact(b"ATTACK".to_vec()),
                RuleSpec::exact(b"LONGPATTERN".to_vec()),
            ],
        )
        .with_middlebox(
            MiddleboxProfile::stateless(AV),
            vec![
                RuleSpec::exact(b"ATTACK".to_vec()),
                RuleSpec::exact(b"VIRUS".to_vec()),
            ],
        )
        .with_chain(1, vec![IDS, AV])
        .with_chain(2, vec![AV]);
    DpiInstance::new(cfg).unwrap()
}

fn positions_for(out: &dpi_core::ScanOutput, mb: MiddleboxId) -> Vec<(u16, u16)> {
    out.reports
        .iter()
        .find(|r| r.middlebox_id == mb.0)
        .map(|r| expand_records(&r.records))
        .unwrap_or_default()
}

#[test]
fn shared_pattern_is_reported_to_both_middleboxes() {
    let mut dpi = two_middlebox_instance();
    let out = dpi.scan_payload(1, None, b"xxATTACKyy").unwrap();
    // ATTACK ends at index 7; rule 0 for both middleboxes.
    assert_eq!(positions_for(&out, IDS), vec![(0, 7)]);
    assert_eq!(positions_for(&out, AV), vec![(0, 7)]);
}

#[test]
fn chain_selects_active_middleboxes() {
    let mut dpi = two_middlebox_instance();
    // Chain 2 activates only AV: the IDS's LONGPATTERN must not be
    // reported even though it is in the combined automaton.
    let out = dpi.scan_payload(2, None, b"LONGPATTERN and VIRUS").unwrap();
    assert!(positions_for(&out, IDS).is_empty());
    assert_eq!(positions_for(&out, AV), vec![(1, 20)]);
}

#[test]
fn unknown_chain_is_an_error() {
    let mut dpi = two_middlebox_instance();
    assert_eq!(
        dpi.scan_payload(99, None, b"x").unwrap_err(),
        InstanceError::UnknownChain(99)
    );
}

#[test]
fn stateful_match_spans_packet_boundary() {
    let mut dpi = two_middlebox_instance();
    let f = flow(1000);
    let out1 = dpi.scan_payload(1, Some(f), b"...LONGPA").unwrap();
    assert!(positions_for(&out1, IDS).is_empty());
    let out2 = dpi.scan_payload(1, Some(f), b"TTERN...").unwrap();
    // The IDS (stateful) sees the cross-boundary match: it ends at index
    // 4 of the second packet, flow offset 9.
    assert_eq!(positions_for(&out2, IDS), vec![(1, 4)]);
    assert_eq!(out2.flow_offset, 9);
    assert!(out2.resumed);
}

#[test]
fn stateless_middlebox_never_sees_cross_boundary_matches() {
    let mut dpi = two_middlebox_instance();
    let f = flow(1001);
    dpi.scan_payload(1, Some(f), b"half of ATT").unwrap();
    let out = dpi.scan_payload(1, Some(f), b"ACK rest").unwrap();
    // IDS sees ATTACK (stateful), AV must not (§5.2's deletion rule:
    // the pattern began in the previous packet).
    assert_eq!(positions_for(&out, IDS), vec![(0, 2)]);
    assert!(positions_for(&out, AV).is_empty());
}

#[test]
fn stateless_middlebox_still_sees_matches_fully_inside_later_packets() {
    let mut dpi = two_middlebox_instance();
    let f = flow(1002);
    dpi.scan_payload(1, Some(f), b"first packet").unwrap();
    let out = dpi.scan_payload(1, Some(f), b"then VIRUS here").unwrap();
    // VIRUS is entirely within packet 2: the stateless AV gets it, at the
    // packet-local position.
    assert_eq!(positions_for(&out, AV), vec![(1, 9)]);
}

#[test]
fn flows_are_isolated() {
    let mut dpi = two_middlebox_instance();
    dpi.scan_payload(1, Some(flow(1)), b"LONGPA").unwrap();
    // A different flow must not resume the first flow's state.
    let out = dpi.scan_payload(1, Some(flow(2)), b"TTERN").unwrap();
    assert!(out.reports.is_empty());
    assert!(!out.resumed);
}

#[test]
fn stateless_chain_keeps_no_flow_state() {
    let mut dpi = two_middlebox_instance();
    let f = flow(7);
    dpi.scan_payload(2, Some(f), b"payload one").unwrap();
    // The flow arena tracks stress samples for every scanned flow (the
    // MCA² heavy-flow signal), but a stateless chain must store no scan
    // state: there is nothing to export…
    assert!(dpi.export_flow(&f).is_none());
    // …and scans never resume.
    let out = dpi.scan_payload(2, Some(f), b"payload two").unwrap();
    assert!(!out.resumed);
}

#[test]
fn stopping_condition_stateless_filters_late_matches() {
    let cfg = InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateless(AV).with_stop(10),
            vec![RuleSpec::exact(b"VIRUS".to_vec())],
        )
        .with_chain(1, vec![AV]);
    let mut dpi = DpiInstance::new(cfg).unwrap();
    // Ends at index 6 (cnt 7 ≤ 10): reported.
    let out = dpi.scan_payload(1, None, b"..VIRUS...").unwrap();
    assert_eq!(positions_for(&out, AV), vec![(0, 6)]);
    // Ends at index 11 (cnt 12 > 10): filtered.
    let out = dpi.scan_payload(1, None, b".......VIRUS").unwrap();
    assert!(out.reports.is_empty());
}

#[test]
fn stopping_condition_stateful_counts_flow_bytes() {
    let cfg = InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateful(IDS).with_stop(16),
            vec![RuleSpec::exact(b"DEEP".to_vec())],
        )
        .with_chain(1, vec![IDS]);
    let mut dpi = DpiInstance::new(cfg).unwrap();
    let f = flow(3);
    // Packet 1: 10 bytes, no match.
    dpi.scan_payload(1, Some(f), b"0123456789").unwrap();
    // Packet 2: DEEP ends at flow byte 10+4=14 ≤ 16 → reported.
    let out = dpi.scan_payload(1, Some(f), b"DEEPx").unwrap();
    assert_eq!(positions_for(&out, IDS), vec![(0, 3)]);
    // Packet 3: any further match is beyond the stop.
    let out = dpi.scan_payload(1, Some(f), b"..DEEP").unwrap();
    assert!(out.reports.is_empty());
}

#[test]
fn scan_length_is_most_conservative() {
    // AV stops at 8 bytes, IDS is unbounded: the whole packet must still
    // be scanned (and IDS reported), while AV is filtered.
    let cfg = InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateless(IDS),
            vec![RuleSpec::exact(b"TAILPATTERN".to_vec())],
        )
        .with_middlebox(
            MiddleboxProfile::stateless(AV).with_stop(8),
            vec![RuleSpec::exact(b"TAILPATTERN".to_vec())],
        )
        .with_chain(1, vec![IDS, AV]);
    let mut dpi = DpiInstance::new(cfg).unwrap();
    let out = dpi
        .scan_payload(1, None, b"............TAILPATTERN")
        .unwrap();
    assert_eq!(out.scanned, 23);
    assert_eq!(positions_for(&out, IDS).len(), 1);
    assert!(positions_for(&out, AV).is_empty());
}

#[test]
fn all_bounded_middleboxes_stop_the_scan_early() {
    let cfg = InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateless(AV).with_stop(16),
            vec![RuleSpec::exact(b"ANYTHING".to_vec())],
        )
        .with_chain(1, vec![AV]);
    let mut dpi = DpiInstance::new(cfg).unwrap();
    let big = vec![b'x'; 4096];
    let out = dpi.scan_payload(1, None, &big).unwrap();
    assert_eq!(out.scanned, 16);
}

#[test]
fn repeated_character_matches_compress_to_ranges() {
    let cfg = InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateless(AV),
            vec![RuleSpec::exact(b"aaaa".to_vec())],
        )
        .with_chain(1, vec![AV]);
    let mut dpi = DpiInstance::new(cfg).unwrap();
    let out = dpi.scan_payload(1, None, b"baaaaaaaab").unwrap();
    // aaaa ends at 4,5,6,7,8 → one range record of 5.
    let report = &out.reports[0];
    assert_eq!(report.records.len(), 1);
    assert_eq!(
        report.records[0],
        MatchRecord::Range {
            pattern_id: 0,
            start: 4,
            count: 5
        }
    );
}

#[test]
fn regex_rule_fires_only_when_all_anchors_match() {
    let cfg = InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateless(IDS),
            vec![
                RuleSpec::exact(b"plainpattern".to_vec()),
                RuleSpec::regex(r"headervalue\s*:\s*attackload\d+"),
            ],
        )
        .with_chain(1, vec![IDS]);
    let mut dpi = DpiInstance::new(cfg).unwrap();

    // Only one anchor present: regex must not fire (and must not even be
    // evaluated — check telemetry).
    let out = dpi
        .scan_payload(1, None, b"headervalue but nothing else")
        .unwrap();
    assert!(out.reports.is_empty());
    assert_eq!(dpi.telemetry().regex_invocations, 0);

    // Both anchors present but the full expression fails.
    let out = dpi
        .scan_payload(1, None, b"attackload headervalue mismatch")
        .unwrap();
    assert!(out.reports.is_empty());
    assert_eq!(dpi.telemetry().regex_invocations, 1);

    // Full match: rule id 1 reported at the regex end position.
    let out = dpi
        .scan_payload(1, None, b"xx headervalue : attackload77 yy")
        .unwrap();
    let hits = positions_for(&out, IDS);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].0, 1); // rule id 1
    assert_eq!(dpi.telemetry().regex_invocations, 2);
}

#[test]
fn anchorless_regex_runs_on_parallel_path() {
    let cfg = InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateless(IDS),
            vec![RuleSpec::regex(r"(?i)evilstring")],
        )
        .with_chain(1, vec![IDS]);
    let mut dpi = DpiInstance::new(cfg).unwrap();
    let out = dpi
        .scan_payload(1, None, b"prefix EVILstring suffix")
        .unwrap();
    assert_eq!(positions_for(&out, IDS).len(), 1);
    assert!(dpi.telemetry().parallel_regex_evaluations >= 1);
    assert_eq!(dpi.telemetry().regex_invocations, 0);
}

#[test]
fn bad_regex_is_a_build_error() {
    let cfg = InstanceConfig::new()
        .with_middlebox(
            MiddleboxProfile::stateless(IDS),
            vec![RuleSpec::regex(r"broken[")],
        )
        .with_chain(1, vec![IDS]);
    match DpiInstance::new(cfg) {
        Err(InstanceError::BadRegex {
            middlebox, rule, ..
        }) => {
            assert_eq!(middlebox, IDS);
            assert_eq!(rule, 0);
        }
        other => panic!("expected BadRegex, got {other:?}"),
    }
}

#[test]
fn chain_with_unregistered_middlebox_is_a_build_error() {
    let cfg = InstanceConfig::new().with_chain(1, vec![MiddleboxId(42)]);
    assert!(matches!(
        DpiInstance::new(cfg),
        Err(InstanceError::UnknownMiddlebox { .. })
    ));
}

#[test]
fn duplicate_middlebox_is_a_build_error() {
    let cfg = InstanceConfig::new()
        .with_middlebox(MiddleboxProfile::stateless(IDS), vec![])
        .with_middlebox(MiddleboxProfile::stateless(IDS), vec![]);
    assert!(matches!(
        DpiInstance::new(cfg),
        Err(InstanceError::DuplicateMiddlebox(_))
    ));
}

#[test]
fn inspect_marks_and_produces_result_packet() {
    let mut dpi = two_middlebox_instance();
    let f = flow(50);
    let mut pkt = Packet::tcp(
        MacAddr::local(1),
        MacAddr::local(2),
        f,
        0,
        b"an ATTACK in transit".to_vec(),
    );
    pkt.push_chain_tag(1).unwrap();
    let result = dpi.inspect(&mut pkt).unwrap().expect("matches expected");
    assert!(pkt.has_match_mark());
    assert_eq!(result.flow, f);
    assert_eq!(result.reports.len(), 2); // IDS and AV
                                         // Clean packet: no result, no mark.
    let mut clean = Packet::tcp(
        MacAddr::local(1),
        MacAddr::local(2),
        flow(51),
        0,
        b"nothing to see".to_vec(),
    );
    clean.push_chain_tag(1).unwrap();
    assert!(dpi.inspect(&mut clean).unwrap().is_none());
    assert!(!clean.has_match_mark());
}

#[test]
fn inspect_inband_attaches_results_header() {
    let mut dpi = two_middlebox_instance();
    let mut pkt = Packet::tcp(
        MacAddr::local(1),
        MacAddr::local(2),
        flow(60),
        0,
        b"VIRUS payload".to_vec(),
    );
    pkt.push_chain_tag(2).unwrap();
    assert!(dpi.inspect_inband(&mut pkt).unwrap());
    let hdr = pkt.dpi_results.as_ref().unwrap();
    assert_eq!(hdr.chain_id, 2);
    assert_eq!(hdr.reports.len(), 1);
    // The tagged, header-carrying packet still round-trips on the wire.
    let reparsed = Packet::parse(&pkt.to_bytes()).unwrap();
    assert_eq!(reparsed.dpi_results, pkt.dpi_results);
}

#[test]
fn untagged_packet_is_rejected() {
    let mut dpi = two_middlebox_instance();
    let mut pkt = Packet::tcp(
        MacAddr::local(1),
        MacAddr::local(2),
        flow(61),
        0,
        b"data".to_vec(),
    );
    assert_eq!(dpi.inspect(&mut pkt).unwrap_err(), InstanceError::Untagged);
}

#[test]
fn flow_migration_resumes_scanning_on_target_instance() {
    let mut src = two_middlebox_instance();
    let mut dst = two_middlebox_instance();
    let f = flow(70);
    src.scan_payload(1, Some(f), b"...LONGPA").unwrap();
    let exported = src.export_flow(&f).expect("flow tracked");
    assert_eq!(src.tracked_flows(), 0);
    dst.import_flow(f, exported);
    let out = dst.scan_payload(1, Some(f), b"TTERN").unwrap();
    assert_eq!(positions_for(&out, IDS), vec![(1, 4)]);
    assert_eq!(out.flow_offset, 9);
}

#[test]
fn telemetry_counts_packets_bytes_matches() {
    let mut dpi = two_middlebox_instance();
    dpi.scan_payload(1, None, b"clean payload").unwrap();
    dpi.scan_payload(1, None, b"an ATTACK here").unwrap();
    let t = dpi.telemetry();
    assert_eq!(t.packets, 2);
    assert_eq!(t.bytes, 13 + 14);
    assert_eq!(t.packets_with_matches, 1);
    // ATTACK reported to two middleboxes = 2 match occurrences.
    assert_eq!(t.matches, 2);
}

#[test]
fn heavy_traffic_raises_deep_ratio() {
    use dpi_traffic::{heavy_payload, patterns::snort_like, TraceConfig};
    let pats = snort_like(500, 1);
    let cfg = InstanceConfig::new()
        .with_middlebox(MiddleboxProfile::stateless(IDS), RuleSpec::exact_set(&pats))
        .with_chain(1, vec![IDS]);

    let mut benign_dpi = DpiInstance::new(cfg.clone()).unwrap();
    for p in TraceConfig::default().generate(&[]) {
        benign_dpi.scan_payload(1, None, &p).unwrap();
    }
    let benign_ratio = benign_dpi.telemetry().deep_ratio();

    let mut attacked_dpi = DpiInstance::new(cfg).unwrap();
    for i in 0..200 {
        let hp = heavy_payload(&pats, 1200, i);
        attacked_dpi.scan_payload(1, None, &hp).unwrap();
    }
    let attack_ratio = attacked_dpi.telemetry().deep_ratio();

    assert!(
        attack_ratio > benign_ratio + 0.3,
        "attack {attack_ratio:.3} vs benign {benign_ratio:.3}: signal too weak"
    );
}
