//! Representation-selected combined automaton.
//!
//! [`CombinedAc`] is what [`crate::CombinedAcBuilder::build_auto`] and
//! [`crate::CombinedAcBuilder::build_kernel`] return: one of the
//! concrete scan kernels — naive reference loop, `u32` full table,
//! compact `u16` table, or the SWAR-prefiltered scanner — behind a
//! single enum. Callers scan through the common [`Automaton`] /
//! [`ScanKernel`] interfaces either way; the enum dispatch is one
//! predictable branch per call, and the hot scan loop is monomorphized
//! per arm so the per-byte path is branch-free.

use crate::compact::CompactAc;
use crate::full::FullAc;
use crate::kernel::{self, DepthSamples, KernelKind, ScanKernel};
use crate::prefiltered::PrefilteredAc;
use crate::{Automaton, MatchEntry, StateId};

/// A combined automaton behind whichever scan kernel was selected.
#[derive(Debug, Clone)]
pub enum CombinedAc {
    /// The `u32` full table scanned with the reference per-byte loop —
    /// the ablation baseline, never auto-selected.
    Naive(FullAc),
    /// `u32` transition entries — needed for ≥ 2¹⁶ states.
    Full(FullAc),
    /// `u16` transition entries — half the table bytes, preferred when
    /// the state count allows (cache residency, §6's space discussion).
    Compact(CompactAc),
    /// SWAR literal prefilter + 2-byte-stride root DFA over the `u32`
    /// full table; skips match-free lanes on literal-sparse traffic.
    Prefiltered(PrefilteredAc),
}

impl CombinedAc {
    /// Picks the narrowest representation that can hold `full`.
    pub fn select(full: FullAc) -> CombinedAc {
        match CompactAc::from_full(&full) {
            Some(compact) => CombinedAc::Compact(compact),
            None => CombinedAc::Full(full),
        }
    }

    /// Short name of the active representation (telemetry/benches).
    pub fn repr_name(&self) -> &'static str {
        match self {
            CombinedAc::Naive(_) => "naive-u32",
            CombinedAc::Full(_) => "full-u32",
            CombinedAc::Compact(_) => "compact-u16",
            CombinedAc::Prefiltered(_) => "prefiltered-u32",
        }
    }

    /// The concrete kernel this automaton runs (never
    /// [`KernelKind::Auto`] — selection has already happened).
    pub fn kernel_kind(&self) -> KernelKind {
        match self {
            CombinedAc::Naive(_) => KernelKind::Naive,
            CombinedAc::Full(_) => KernelKind::Full,
            CombinedAc::Compact(_) => KernelKind::Compact,
            CombinedAc::Prefiltered(_) => KernelKind::Prefiltered,
        }
    }

    /// The prefiltered kernel, when that is what's running — benches use
    /// this to pull skip-fraction stats out of a scan.
    pub fn as_prefiltered(&self) -> Option<&PrefilteredAc> {
        match self {
            CombinedAc::Prefiltered(ac) => Some(ac),
            _ => None,
        }
    }

    /// Depth (label length) of a state — used by stress telemetry.
    pub fn state_depth(&self, state: StateId) -> u16 {
        match self {
            CombinedAc::Naive(ac) | CombinedAc::Full(ac) => ac.state_depth(state),
            CombinedAc::Compact(ac) => ac.state_depth(state),
            CombinedAc::Prefiltered(ac) => ac.state_depth(state),
        }
    }

    /// Maximum depth over all states (longest pattern).
    pub fn max_depth(&self) -> u16 {
        match self {
            CombinedAc::Naive(ac) | CombinedAc::Full(ac) => ac.max_depth(),
            CombinedAc::Compact(ac) => ac.max_depth(),
            CombinedAc::Prefiltered(ac) => ac.max_depth(),
        }
    }
}

impl Automaton for CombinedAc {
    fn start(&self) -> StateId {
        match self {
            CombinedAc::Naive(ac) | CombinedAc::Full(ac) => ac.start(),
            CombinedAc::Compact(ac) => ac.start(),
            CombinedAc::Prefiltered(ac) => ac.start(),
        }
    }

    #[inline(always)]
    fn step(&self, state: StateId, byte: u8) -> StateId {
        match self {
            CombinedAc::Naive(ac) | CombinedAc::Full(ac) => ac.step(state, byte),
            CombinedAc::Compact(ac) => ac.step(state, byte),
            CombinedAc::Prefiltered(ac) => ac.step(state, byte),
        }
    }

    #[inline(always)]
    fn is_accepting(&self, state: StateId) -> bool {
        match self {
            CombinedAc::Naive(ac) | CombinedAc::Full(ac) => ac.is_accepting(state),
            CombinedAc::Compact(ac) => ac.is_accepting(state),
            CombinedAc::Prefiltered(ac) => ac.is_accepting(state),
        }
    }

    fn bitmap(&self, state: StateId) -> u64 {
        match self {
            CombinedAc::Naive(ac) | CombinedAc::Full(ac) => ac.bitmap(state),
            CombinedAc::Compact(ac) => ac.bitmap(state),
            CombinedAc::Prefiltered(ac) => ac.bitmap(state),
        }
    }

    fn entries(&self, state: StateId) -> &[MatchEntry] {
        match self {
            CombinedAc::Naive(ac) | CombinedAc::Full(ac) => ac.entries(state),
            CombinedAc::Compact(ac) => ac.entries(state),
            CombinedAc::Prefiltered(ac) => ac.entries(state),
        }
    }

    fn state_count(&self) -> usize {
        match self {
            CombinedAc::Naive(ac) | CombinedAc::Full(ac) => ac.state_count(),
            CombinedAc::Compact(ac) => ac.state_count(),
            CombinedAc::Prefiltered(ac) => ac.state_count(),
        }
    }

    fn accepting_count(&self) -> usize {
        match self {
            CombinedAc::Naive(ac) | CombinedAc::Full(ac) => ac.accepting_count(),
            CombinedAc::Compact(ac) => ac.accepting_count(),
            CombinedAc::Prefiltered(ac) => ac.accepting_count(),
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            CombinedAc::Naive(ac) | CombinedAc::Full(ac) => ac.memory_bytes(),
            CombinedAc::Compact(ac) => ac.memory_bytes(),
            CombinedAc::Prefiltered(ac) => ac.memory_bytes(),
        }
    }

    fn scan<F: FnMut(usize, StateId)>(
        &self,
        state: StateId,
        data: &[u8],
        mut on_match: F,
    ) -> StateId {
        match self {
            CombinedAc::Naive(ac) => {
                // The deliberately plain per-byte loop.
                let mut s = state;
                for (i, &b) in data.iter().enumerate() {
                    s = ac.step(s, b);
                    if ac.is_accepting(s) {
                        on_match(i, s);
                    }
                }
                s
            }
            CombinedAc::Full(ac) => ac.scan(state, data, on_match),
            CombinedAc::Compact(ac) => ac.scan(state, data, on_match),
            CombinedAc::Prefiltered(ac) => ac.scan(state, data, on_match),
        }
    }
}

impl ScanKernel for CombinedAc {
    fn kernel_name(&self) -> &'static str {
        self.kernel_kind().name()
    }

    fn scan_sampled(
        &self,
        state: StateId,
        data: &[u8],
        sample_every: usize,
        deep_depth: u16,
        samples: &mut DepthSamples,
        on_accept: &mut dyn FnMut(usize, StateId),
    ) -> StateId {
        match self {
            CombinedAc::Naive(ac) => kernel::naive_scan_sampled(
                ac,
                |s| ac.state_depth(s),
                state,
                data,
                sample_every,
                deep_depth,
                samples,
                on_accept,
            ),
            CombinedAc::Full(ac) => {
                ac.scan_sampled(state, data, sample_every, deep_depth, samples, on_accept)
            }
            CombinedAc::Compact(ac) => {
                ac.scan_sampled(state, data, sample_every, deep_depth, samples, on_accept)
            }
            CombinedAc::Prefiltered(ac) => {
                ac.scan_sampled(state, data, sample_every, deep_depth, samples, on_accept)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CombinedAcBuilder, PatternSet};
    use crate::MiddleboxId;

    #[test]
    fn small_automata_select_compact() {
        let mut b = CombinedAcBuilder::new();
        b.add_set(PatternSet::from_strs(MiddleboxId(0), &["attack", "virus"]))
            .unwrap();
        let ac = b.build_auto();
        assert!(matches!(ac, CombinedAc::Compact(_)));
        assert_eq!(ac.repr_name(), "compact-u16");
        assert_eq!(ac.kernel_kind(), KernelKind::Compact);
        assert_eq!(ac.find_all(b"an attack!").len(), 1);
    }

    #[test]
    fn selection_preserves_match_stream() {
        let mut b = CombinedAcBuilder::new();
        b.add_set(PatternSet::from_strs(
            MiddleboxId(0),
            &["E", "BE", "BD", "BCD", "BCAA", "CDBCAB"],
        ))
        .unwrap();
        let full = b.build_full();
        let auto = b.build_auto();
        let data = b"BE BCD CDBCAB xxBCAAxx";
        assert_eq!(auto.find_all(data), full.find_all(data));
        assert!(auto.memory_bytes() < full.memory_bytes());
    }

    #[test]
    fn every_kernel_scans_identically() {
        let mut b = CombinedAcBuilder::new();
        b.add_set(PatternSet::from_strs(
            MiddleboxId(0),
            &["E", "BE", "BD", "BCD", "BCAA", "CDBCAB"],
        ))
        .unwrap();
        b.add_set(PatternSet::from_strs(MiddleboxId(1), &["EDAE", "CBD"]))
            .unwrap();
        let reference = b.build_full();
        let data = b"BE BCD CDBCAB xxBCAAxx EDAE and CBD too";
        let want = reference.find_all(data);
        for kind in KernelKind::ALL {
            let ac = b.build_kernel(kind);
            assert_eq!(ac.kernel_kind(), kind, "{kind} selected");
            assert_eq!(ac.kernel_name(), kind.name());
            assert_eq!(ac.find_all(data), want, "kernel {kind}");
            // The sampled path reports the same stream too.
            let mut hits = Vec::new();
            let mut samples = DepthSamples::default();
            let end = ac.scan_sampled(ac.start(), data, 4, 2, &mut samples, &mut |p, s| {
                hits.push((p, s))
            });
            // One callback per accepting position (find_all expands to
            // one tuple per match entry, so compare against a raw scan).
            let mut want_hits_at = Vec::new();
            reference.scan(reference.start(), data, |p, _| want_hits_at.push(p));
            let got_hits_at: Vec<usize> = hits.iter().map(|(p, _)| *p).collect();
            assert_eq!(got_hits_at, want_hits_at, "kernel {kind} sampled scan");
            assert_eq!(
                ac.state_depth(end),
                reference.state_depth(want_end(&reference, data))
            );
            assert!(
                samples.total >= (data.len() as u64) / 4,
                "kernel {kind} samples"
            );
        }
    }

    fn want_end(ac: &FullAc, data: &[u8]) -> StateId {
        ac.scan(ac.start(), data, |_, _| {})
    }
}
