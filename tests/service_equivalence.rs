//! The core correctness claim of the paper: replacing per-middlebox DPI
//! with the shared service changes *where* scanning happens, never *what*
//! the middleboxes conclude.
//!
//! Runs a generated Snort-like workload through (a) standalone
//! self-scanning middleboxes and (b) the combined DPI service with plugin
//! middleboxes, and requires bit-identical rule firings.

use dpi_service::ac::MiddleboxId;
use dpi_service::core::config::NumberedRule;
use dpi_service::core::{DpiInstance, InstanceConfig, MiddleboxProfile, RuleSpec};
use dpi_service::middlebox::{MbAction, RuleLogic, SelfScanMiddlebox, ServiceMiddlebox};
use dpi_service::traffic::{patterns, trace::TraceConfig};

const A: MiddleboxId = MiddleboxId(1);
const B: MiddleboxId = MiddleboxId(2);

fn run_equivalence(pats_a: &[Vec<u8>], pats_b: &[Vec<u8>], trace: &[Vec<u8>]) {
    // Baseline.
    let mut self_a = SelfScanMiddlebox::new(
        MiddleboxProfile::stateless(A),
        "a",
        NumberedRule::sequence(RuleSpec::exact_set(pats_a)),
        RuleLogic::one_per_pattern(pats_a.len() as u16, MbAction::Alert),
    )
    .unwrap();
    let mut self_b = SelfScanMiddlebox::new(
        MiddleboxProfile::stateless(B),
        "b",
        NumberedRule::sequence(RuleSpec::exact_set(pats_b)),
        RuleLogic::one_per_pattern(pats_b.len() as u16, MbAction::Alert),
    )
    .unwrap();

    // Service.
    let cfg = InstanceConfig::new()
        .with_middlebox(MiddleboxProfile::stateless(A), RuleSpec::exact_set(pats_a))
        .with_middlebox(MiddleboxProfile::stateless(B), RuleSpec::exact_set(pats_b))
        .with_chain(1, vec![A, B]);
    let mut dpi = DpiInstance::new(cfg).unwrap();
    let mut svc_a = ServiceMiddlebox::new(
        A,
        "a",
        RuleLogic::one_per_pattern(pats_a.len() as u16, MbAction::Alert),
    );
    let mut svc_b = ServiceMiddlebox::new(
        B,
        "b",
        RuleLogic::one_per_pattern(pats_b.len() as u16, MbAction::Alert),
    );

    for (i, payload) in trace.iter().enumerate() {
        let va = self_a.process(None, payload);
        let vb = self_b.process(None, payload);
        let out = dpi.scan_payload(1, None, payload).unwrap();
        let wa = svc_a.process(out.reports.iter().find(|r| r.middlebox_id == A.0));
        let wb = svc_b.process(out.reports.iter().find(|r| r.middlebox_id == B.0));
        assert_eq!(va.fired, wa.fired, "packet {i}: middlebox A differs");
        assert_eq!(vb.fired, wb.fired, "packet {i}: middlebox B differs");
    }
}

#[test]
fn disjoint_snort_split_is_equivalent() {
    let snort = patterns::snort_like(600, 21);
    let (a, b) = patterns::split_set(&snort, 300, 4);
    let trace = TraceConfig {
        packets: 500,
        match_density: 0.2,
        seed: 77,
        ..TraceConfig::default()
    }
    .generate(&snort);
    run_equivalence(&a, &b, &trace);
}

#[test]
fn overlapping_pattern_sets_are_equivalent() {
    // Both middleboxes share a third of their patterns — the global
    // pattern set dedup case.
    let snort = patterns::snort_like(300, 31);
    let a: Vec<_> = snort[..200].to_vec();
    let b: Vec<_> = snort[100..].to_vec();
    let trace = TraceConfig {
        packets: 300,
        match_density: 0.3,
        seed: 78,
        ..TraceConfig::default()
    }
    .generate(&snort);
    run_equivalence(&a, &b, &trace);
}

#[test]
fn clamav_style_binary_sets_are_equivalent() {
    let clam = patterns::clamav_like(400, 41);
    let (a, b) = patterns::split_set(&clam, 200, 6);
    let trace = TraceConfig {
        kind: dpi_service::traffic::TraceKind::Campus,
        packets: 300,
        match_density: 0.25,
        seed: 79,
        ..TraceConfig::default()
    }
    .generate(&clam);
    run_equivalence(&a, &b, &trace);
}

#[test]
fn regex_rules_are_equivalent_across_modes() {
    let regexes = patterns::snort_like_regexes(40, 51);
    let rules: Vec<RuleSpec> = regexes.iter().map(RuleSpec::regex).collect();
    let logic = RuleLogic::one_per_pattern(rules.len() as u16, MbAction::Alert);

    let mut selfscan = SelfScanMiddlebox::new(
        MiddleboxProfile::stateless(A),
        "re-self",
        NumberedRule::sequence(rules.clone()),
        logic.clone(),
    )
    .unwrap();

    let cfg = InstanceConfig::new()
        .with_middlebox(MiddleboxProfile::stateless(A), rules)
        .with_chain(1, vec![A]);
    let mut dpi = DpiInstance::new(cfg).unwrap();
    let mut svc = ServiceMiddlebox::new(A, "re-svc", logic);

    // Build payloads that exercise the anchor paths: embed fragments of
    // the regexes' literal parts.
    let mut payloads: Vec<Vec<u8>> = TraceConfig {
        packets: 200,
        seed: 80,
        ..TraceConfig::default()
    }
    .generate(&[]);
    for (i, r) in regexes.iter().enumerate() {
        // Derive a matching input from the rule shape programmatically:
        // replace \s* with space, \d+ with digits, [a-z]{1,8} with "abc",
        // .* with "xyz".
        let m = r
            .replace(r"\s*", " ")
            .replace(r"\d+", "123")
            .replace("[a-z]{1,8}", "abc")
            .replace(".*", "xyz");
        let idx = i % payloads.len();
        payloads[idx].extend_from_slice(m.as_bytes());
    }

    for (i, p) in payloads.iter().enumerate() {
        let v1 = selfscan.process(None, p);
        let out = dpi.scan_payload(1, None, p).unwrap();
        let v2 = svc.process(out.reports.iter().find(|r| r.middlebox_id == A.0));
        assert_eq!(v1.fired, v2.fired, "payload {i}");
    }
    // The derived payloads really did fire rules.
    assert!(svc.stats().rules_fired > 0, "test must exercise matches");
}
