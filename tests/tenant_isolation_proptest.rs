//! Multi-tenant isolation properties (DESIGN.md §16), proven for random
//! traces at worker counts {1, 2, 8}:
//!
//! 1. **No cross-tenant match report, ever.** Payloads deliberately
//!    carry *both* tenants' signatures; a result for a packet on tenant
//!    A's chain must only name tenant A's middlebox, no matter what the
//!    bytes contain. Chains are tenant-homogeneous by construction, so
//!    this is structural — the property test is the regression tripwire.
//! 2. **Weighted fairness under asymmetric load.** Tenant A offers 16×
//!    tenant B's load into an overloaded instance with fail-open
//!    shedding armed. A's burst sheds A's own traffic; B — below its
//!    fair share on every shard it touches — is never shed and every one
//!    of its packets is scanned.
//! 3. **Dedicated-instance equivalence.** Each tenant's verdict stream
//!    out of the shared instance is identical (modulo the instance-local
//!    packet ids that number the merged delivery stream) to the stream
//!    the tenant would get running alone on a dedicated instance fed
//!    only its own packets.

use dpi_service::ac::MiddleboxId;
use dpi_service::core::overload::{OverloadPolicy, ShedMode};
use dpi_service::core::TenantId;
use dpi_service::middlebox::antivirus;
use dpi_service::packet::ipv4::IpProtocol;
use dpi_service::packet::packet::flow;
use dpi_service::packet::report::ResultPacket;
use dpi_service::packet::{FlowKey, MacAddr, Packet};
use dpi_service::{SystemBuilder, SystemHandle};
use proptest::prelude::*;

const MB_A: MiddleboxId = MiddleboxId(1);
const MB_B: MiddleboxId = MiddleboxId(2);
const SIG_A: &[u8] = b"alpha-sig";
const SIG_B: &[u8] = b"bravo-sig";
const WORKERS: [usize; 3] = [1, 2, 8];

/// Tenant A's flows use source ports 1000+, tenant B's 2000+ — flow keys
/// never collide across tenants, so a result is attributable to its
/// tenant by flow alone.
fn flow_of(tenant_b: bool, idx: u16) -> FlowKey {
    let port = if tenant_b { 2000 } else { 1000 } + idx;
    flow([10, 0, 0, 1], port, [10, 0, 0, 2], 80, IpProtocol::Tcp)
}

fn is_tenant_b(f: &FlowKey) -> bool {
    f.src_port >= 2000
}

/// One packet of the random trace.
#[derive(Debug, Clone)]
struct TracePkt {
    tenant_b: bool,
    flow_idx: u16,
    /// Bitmask: 1 = plant SIG_A, 2 = plant SIG_B (regardless of tenant).
    sigs: u8,
    filler: u8,
}

fn payload(p: &TracePkt) -> Vec<u8> {
    let filler = vec![b'x' + p.filler % 3; 2 + (p.filler as usize % 7)];
    let mut v = filler.clone();
    if p.sigs & 1 != 0 {
        v.extend_from_slice(SIG_A);
        v.extend_from_slice(&filler);
    }
    if p.sigs & 2 != 0 {
        v.extend_from_slice(SIG_B);
        v.extend_from_slice(&filler);
    }
    v
}

fn trace() -> impl Strategy<Value = Vec<TracePkt>> {
    proptest::collection::vec(
        (any::<bool>(), 0u16..4, 0u8..4, any::<u8>()).prop_map(
            |(tenant_b, flow_idx, sigs, filler)| TracePkt {
                tenant_b,
                flow_idx,
                sigs,
                filler,
            },
        ),
        1..32,
    )
}

/// A shared two-tenant instance: tenant 1 owns the antivirus on chain 0,
/// tenant 2 the one on chain 1.
fn build_shared(workers: usize, overload: Option<OverloadPolicy>) -> SystemHandle {
    let mut b = SystemBuilder::new()
        .with_middlebox(antivirus(MB_A, &[SIG_A.to_vec()]).owned_by(TenantId(1)))
        .with_middlebox(antivirus(MB_B, &[SIG_B.to_vec()]).owned_by(TenantId(2)))
        .with_chain(&[MB_A])
        .with_chain(&[MB_B])
        .with_dpi_workers(workers);
    if let Some(p) = overload {
        b = b.with_overload_policy(p);
    }
    b.build().expect("shared system builds")
}

/// A dedicated single-tenant instance serving only one tenant's chain.
fn build_dedicated(workers: usize, tenant_b: bool) -> SystemHandle {
    let (mb, sig, tenant) = if tenant_b {
        (MB_B, SIG_B, TenantId(2))
    } else {
        (MB_A, SIG_A, TenantId(1))
    };
    SystemBuilder::new()
        .with_middlebox(antivirus(mb, &[sig.to_vec()]).owned_by(tenant))
        .with_chain(&[mb])
        .with_dpi_workers(workers)
        .build()
        .expect("dedicated system builds")
}

fn packet_of(sys: &SystemHandle, p: &TracePkt, chain_slot: usize, seq: u32) -> Packet {
    let mut pkt = Packet::tcp(
        MacAddr::local(1),
        MacAddr::local(2),
        flow_of(p.tenant_b, p.flow_idx),
        seq,
        payload(p),
    );
    pkt.push_chain_tag(sys.chain_ids[chain_slot]).unwrap();
    pkt
}

/// A verdict stream with the instance-local packet ids masked: the ids
/// number the instance's merged delivery stream, so they are the one
/// field that legitimately differs between a shared and a dedicated
/// deployment.
fn masked(results: &[ResultPacket]) -> Vec<ResultPacket> {
    results
        .iter()
        .cloned()
        .map(|mut r| {
            r.packet_id = 0;
            r
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property 1: payloads carrying BOTH tenants' signatures produce
    /// results that only ever name the owning tenant's middlebox.
    #[test]
    fn no_cross_tenant_match_report(pkts in trace()) {
        for workers in WORKERS {
            let mut sys = build_shared(workers, None);
            let mut batch: Vec<Packet> = pkts
                .iter()
                .enumerate()
                .map(|(k, p)| packet_of(&sys, p, usize::from(p.tenant_b), k as u32))
                .collect();
            let results = sys.inspect_batch(&mut batch);
            for r in &results {
                let owner = if is_tenant_b(&r.flow) { MB_B } else { MB_A };
                for rep in &r.reports {
                    prop_assert_eq!(
                        rep.middlebox_id, owner.0,
                        "workers={}: result for tenant flow {:?} names middlebox {}",
                        workers, r.flow, rep.middlebox_id
                    );
                }
            }
            // The per-tenant counters attribute every match to its owner:
            // their sum equals the total, and a tenant with no planted
            // signature of its own reports none.
            let total: u64 = results.iter().flat_map(|r| &r.reports).map(|m| m.records.len() as u64).sum();
            let per_tenant: u64 = sys
                .tenant_telemetry()
                .iter()
                .map(|(_, c)| c.matches)
                .sum();
            prop_assert_eq!(per_tenant, total);
        }
    }

    /// Property 3: each tenant's verdict stream out of the shared
    /// instance is identical to running alone on a dedicated instance.
    #[test]
    fn verdict_streams_match_dedicated_instances(pkts in trace()) {
        for workers in WORKERS {
            let mut shared = build_shared(workers, None);
            let mut batch: Vec<Packet> = pkts
                .iter()
                .enumerate()
                .map(|(k, p)| packet_of(&shared, p, usize::from(p.tenant_b), k as u32))
                .collect();
            let shared_results = shared.inspect_batch(&mut batch);

            for tenant_b in [false, true] {
                let mut dedicated = build_dedicated(workers, tenant_b);
                let mut alone: Vec<Packet> = pkts
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.tenant_b == tenant_b)
                    .map(|(k, p)| packet_of(&dedicated, p, 0, k as u32))
                    .collect();
                let alone_results = dedicated.inspect_batch(&mut alone);
                let sliced: Vec<ResultPacket> = shared_results
                    .iter()
                    .filter(|r| is_tenant_b(&r.flow) == tenant_b)
                    .cloned()
                    .collect();
                prop_assert_eq!(
                    masked(&sliced),
                    masked(&alone_results),
                    "workers={} tenant_b={}: shared verdicts diverge from dedicated",
                    workers,
                    tenant_b
                );
            }
        }
    }

    /// Property 2: tenant A at 16× offered load into an overloaded
    /// instance sheds only its own fail-open traffic. Tenant B's flows
    /// are chosen to share a shard with (much heavier) tenant A flows,
    /// so B stays below its fair share everywhere it appears — and not
    /// one of B's packets may be shed or go unscanned.
    #[test]
    fn overloaded_tenant_sheds_only_itself(b_flows in 1u16..4, rounds in 2u32..5) {
        let policy = OverloadPolicy::queue_only(1, 0).with_shed(ShedMode::FailOpen);
        for workers in WORKERS {
            let mut sys = build_shared(workers, Some(policy));
            // For every B flow pick an A flow on the same shard, so each
            // shard that carries B traffic also carries 16× A traffic.
            let pairs: Vec<(FlowKey, FlowKey)> = (0..b_flows)
                .map(|i| {
                    let fb = flow_of(true, i);
                    let shard = sys.scanner.shard_of(&fb);
                    let fa = (0u16..512)
                        .map(|j| flow_of(false, j))
                        .find(|fa| sys.scanner.shard_of(fa) == shard)
                        .expect("some A flow hashes to the same shard");
                    (fa, fb)
                })
                .collect();

            let mut b_sent = 0u64;
            let mut seq = 0u32;
            for _ in 0..rounds {
                let mut batch = Vec::new();
                for (fa, fb) in &pairs {
                    // 16 A packets per B packet, A first: the burst
                    // builds the queue that trips the detector.
                    for _ in 0..16 {
                        let mut pkt = Packet::tcp(
                            MacAddr::local(1),
                            MacAddr::local(2),
                            *fa,
                            seq,
                            [b"aaaa ", SIG_A, b" aaaa"].concat(),
                        );
                        pkt.push_chain_tag(sys.chain_ids[0]).unwrap();
                        batch.push(pkt);
                        seq += 1;
                    }
                    let mut pkt = Packet::tcp(
                        MacAddr::local(1),
                        MacAddr::local(2),
                        *fb,
                        seq,
                        [b"bbbb ", SIG_B, b" bbbb"].concat(),
                    );
                    pkt.push_chain_tag(sys.chain_ids[1]).unwrap();
                    batch.push(pkt);
                    b_sent += 1;
                    seq += 1;
                }
                let results = sys.inspect_batch(&mut batch);
                // Every B packet planted SIG_B: its verdict must be in
                // this batch's results — shedding it would be a miss.
                let b_verdicts = results.iter().filter(|r| is_tenant_b(&r.flow)).count();
                let b_in_batch = pairs.len();
                prop_assert_eq!(
                    b_verdicts, b_in_batch,
                    "workers={}: tenant B lost verdicts under tenant A's burst",
                    workers
                );
            }

            let tt = sys.tenant_telemetry();
            let of = |t: u16| tt.iter().find(|(id, _)| id.0 == t).map(|(_, c)| *c).unwrap_or_default();
            let (a, b) = (of(1), of(2));
            prop_assert_eq!(b.shed_packets, 0, "workers={}: tenant B was shed", workers);
            prop_assert_eq!(b.packets, b_sent, "workers={}: tenant B not fully scanned", workers);
            prop_assert!(
                a.shed_packets > 0,
                "workers={}: the 16× burst never tripped shedding (A scanned {})",
                workers,
                a.packets
            );
        }
    }
}
