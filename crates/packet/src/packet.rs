//! The composite packet used by the simulated network.
//!
//! A [`Packet`] owns a full layer stack — Ethernet, optional VLAN tags
//! (outermost first), an optional MPLS label stack, an optional in-band DPI
//! results header, and a body — and round-trips losslessly to wire bytes.
//! The simulated switches forward `Packet` values; the DPI service and
//! middleboxes read and rewrite their layers through typed accessors
//! instead of poking at offsets.

use crate::ethernet::{EtherType, EthernetHeader};
use crate::flow::FlowKey;
use crate::ipv4::{Ecn, IpProtocol, Ipv4Header, IPV4_HEADER_LEN};
use crate::l4::{fill_l4_checksum, L4Header, TcpHeader, UdpHeader};
use crate::mac::MacAddr;
use crate::mpls::MplsLabel;
use crate::nsh::{DpiResultsHeader, NshNextProtocol};
use crate::report::ResultPacket;
use crate::vlan::VlanTag;
use crate::{ParseError, Result};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// What follows the L2 (and tag) layers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketBody {
    /// A regular IPv4 packet with a transport header and payload — the
    /// traffic the DPI service scans.
    Ipv4 {
        /// Network header.
        header: Ipv4Header,
        /// Transport header.
        l4: L4Header,
        /// Application payload (the bytes DPI inspects).
        payload: Vec<u8>,
    },
    /// A dedicated DPI result packet (§4.2, option 3).
    Result(ResultPacket),
    /// An unparsed body under an EtherType the system does not interpret.
    Raw(Vec<u8>),
}

/// A full simulated packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Ethernet header. Its `ethertype` field is recomputed on
    /// serialization from the layers actually present, so it cannot drift.
    pub eth: EthernetHeader,
    /// 802.1Q tags, outermost first. The TSA pushes/pops these (§4.1).
    pub vlan: Vec<VlanTag>,
    /// MPLS label stack (alternative tagging option of §4.2).
    pub mpls: Vec<MplsLabel>,
    /// In-band DPI results header (NSH-like, §4.2 option 1), if attached.
    pub dpi_results: Option<DpiResultsHeader>,
    /// The packet body.
    pub body: PacketBody,
}

impl Packet {
    /// Builds a TCP data packet for `flow` whose first payload byte has
    /// sequence number `seq`.
    pub fn tcp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        flow: FlowKey,
        seq: u32,
        payload: Vec<u8>,
    ) -> Packet {
        let l4 = L4Header::Tcp(TcpHeader::new(flow.src_port, flow.dst_port, seq));
        Packet::data(src_mac, dst_mac, flow, l4, payload)
    }

    /// Builds a UDP data packet for `flow`.
    pub fn udp(src_mac: MacAddr, dst_mac: MacAddr, flow: FlowKey, payload: Vec<u8>) -> Packet {
        let l4 = L4Header::Udp(UdpHeader::new(flow.src_port, flow.dst_port, payload.len()));
        Packet::data(src_mac, dst_mac, flow, l4, payload)
    }

    fn data(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        flow: FlowKey,
        l4: L4Header,
        payload: Vec<u8>,
    ) -> Packet {
        let header = Ipv4Header::new(
            flow.src_ip,
            flow.dst_ip,
            l4.protocol(),
            l4.header_len() + payload.len(),
        );
        Packet {
            eth: EthernetHeader::new(dst_mac, src_mac, EtherType::Ipv4),
            vlan: Vec::new(),
            mpls: Vec::new(),
            dpi_results: None,
            body: PacketBody::Ipv4 {
                header,
                l4,
                payload,
            },
        }
    }

    /// Wraps a [`ResultPacket`] for transmission.
    pub fn result(src_mac: MacAddr, dst_mac: MacAddr, result: ResultPacket) -> Packet {
        Packet {
            eth: EthernetHeader::new(dst_mac, src_mac, EtherType::ResultPacket),
            vlan: Vec::new(),
            mpls: Vec::new(),
            dpi_results: None,
            body: PacketBody::Result(result),
        }
    }

    /// The 5-tuple of an IPv4 body, or of the flow a result packet refers
    /// to; `None` for raw bodies.
    pub fn flow_key(&self) -> Option<FlowKey> {
        match &self.body {
            PacketBody::Ipv4 { header, l4, .. } => Some(FlowKey {
                src_ip: header.src,
                dst_ip: header.dst,
                protocol: header.protocol,
                src_port: l4.src_port(),
                dst_port: l4.dst_port(),
            }),
            PacketBody::Result(r) => Some(r.flow),
            PacketBody::Raw(_) => None,
        }
    }

    /// The scannable application payload, if any.
    pub fn payload(&self) -> Option<&[u8]> {
        match &self.body {
            PacketBody::Ipv4 { payload, .. } => Some(payload),
            _ => None,
        }
    }

    /// The TCP sequence number of the first payload byte, for TCP
    /// bodies; `None` for UDP, result and raw packets.
    pub fn tcp_seq(&self) -> Option<u32> {
        match &self.body {
            PacketBody::Ipv4 {
                l4: L4Header::Tcp(t),
                ..
            } => Some(t.seq),
            _ => None,
        }
    }

    /// Pushes a VLAN tag carrying a policy-chain identifier (outermost).
    pub fn push_chain_tag(&mut self, chain_id: u16) -> Result<()> {
        let tag = VlanTag::for_chain(chain_id)?;
        self.vlan.insert(0, tag);
        Ok(())
    }

    /// Pops the outermost VLAN tag, returning its VID.
    pub fn pop_chain_tag(&mut self) -> Option<u16> {
        if self.vlan.is_empty() {
            None
        } else {
            Some(self.vlan.remove(0).vid)
        }
    }

    /// The policy-chain id of the outermost VLAN tag, if tagged.
    pub fn chain_tag(&self) -> Option<u16> {
        self.vlan.first().map(|t| t.vid)
    }

    /// Marks the packet as "has DPI matches" via the ECN field (§6.1).
    /// No-op for non-IPv4 bodies.
    pub fn mark_matches(&mut self) {
        if let PacketBody::Ipv4 { header, .. } = &mut self.body {
            header.ecn = Ecn::Ect0;
        }
    }

    /// Whether the DPI service marked this packet (§6.1).
    pub fn has_match_mark(&self) -> bool {
        matches!(
            &self.body,
            PacketBody::Ipv4 {
                header: Ipv4Header { ecn: Ecn::Ect0, .. },
                ..
            }
        )
    }

    /// Marks the packet ECN-CE: the DPI service forwarded it under
    /// overload (possibly unscanned). §6.1 reserves the ECN field for
    /// in-band DPI-side signals; CE (`11`) is the congestion codepoint,
    /// distinct from the `Ect0` match mark. No-op for non-IPv4 bodies.
    pub fn mark_congestion(&mut self) {
        if let PacketBody::Ipv4 { header, .. } = &mut self.body {
            header.ecn = Ecn::Ce;
        }
    }

    /// Whether the DPI service CE-marked this packet under overload.
    pub fn has_ce_mark(&self) -> bool {
        matches!(
            &self.body,
            PacketBody::Ipv4 {
                header: Ipv4Header { ecn: Ecn::Ce, .. },
                ..
            }
        )
    }

    /// Attaches an in-band results header (§4.2 option 1).
    pub fn attach_results(&mut self, results: DpiResultsHeader) {
        self.dpi_results = Some(results);
    }

    /// Detaches and returns the in-band results header, restoring the
    /// original packet (the job of the last middlebox on the chain, §4.2).
    pub fn detach_results(&mut self) -> Option<DpiResultsHeader> {
        self.dpi_results.take()
    }

    /// Total length of the packet on the wire.
    pub fn wire_len(&self) -> usize {
        let mut n =
            crate::ethernet::ETHERNET_HEADER_LEN + self.vlan.len() * crate::vlan::VLAN_TAG_LEN;
        if let Some(r) = &self.dpi_results {
            n += r.wire_size();
        }
        n += self.mpls.len() * crate::mpls::MPLS_LABEL_LEN;
        n += match &self.body {
            PacketBody::Ipv4 { header, .. } => usize::from(header.total_len),
            PacketBody::Result(r) => r.wire_size(),
            PacketBody::Raw(b) => b.len(),
        };
        n
    }

    /// Serializes the packet. EtherType chaining, IPv4 `total_len` and all
    /// checksums are recomputed so the wire image is always self-consistent
    /// even if callers mutated layers directly.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());

        // Decide the ethertype chain inner-to-outer.
        let body_type = match &self.body {
            PacketBody::Ipv4 { .. } => EtherType::Ipv4,
            PacketBody::Result(_) => EtherType::ResultPacket,
            PacketBody::Raw(_) => self.innermost_declared_type(),
        };
        let after_tags = if self.dpi_results.is_some() {
            EtherType::DpiResults
        } else if !self.mpls.is_empty() {
            EtherType::Mpls
        } else {
            body_type
        };

        let mut eth = self.eth;
        eth.ethertype = if self.vlan.is_empty() {
            after_tags
        } else {
            EtherType::Vlan
        };
        eth.write(&mut out);

        for (i, tag) in self.vlan.iter().enumerate() {
            let inner = if i + 1 < self.vlan.len() {
                EtherType::Vlan
            } else {
                after_tags
            };
            tag.write(inner, &mut out);
        }

        if let Some(r) = &self.dpi_results {
            let mut r = r.clone();
            r.next_protocol = NshNextProtocol::Ipv4;
            r.write(&mut out);
        }

        if !self.mpls.is_empty() {
            MplsLabel::write_stack(&self.mpls, &mut out);
        }

        match &self.body {
            PacketBody::Ipv4 {
                header,
                l4,
                payload,
            } => {
                let mut h = *header;
                h.total_len = (IPV4_HEADER_LEN + l4.header_len() + payload.len()) as u16;
                h.write(&mut out);
                let seg_start = out.len();
                match l4 {
                    L4Header::Tcp(t) => t.write(&mut out),
                    L4Header::Udp(u) => {
                        let mut u = *u;
                        u.length = (crate::l4::UDP_HEADER_LEN + payload.len()) as u16;
                        u.write(&mut out)
                    }
                }
                out.extend_from_slice(payload);
                let (src, dst, proto) = (h.src.octets(), h.dst.octets(), h.protocol);
                fill_l4_checksum(src, dst, proto, &mut out[seg_start..]);
            }
            PacketBody::Result(r) => r.write(&mut out),
            PacketBody::Raw(b) => out.extend_from_slice(b),
        }
        out
    }

    /// For raw bodies, the ethertype recorded at construction/parse time.
    fn innermost_declared_type(&self) -> EtherType {
        match self.eth.ethertype {
            // Tag types are regenerated from the layer stack; a raw body
            // under a tag type has lost its original ethertype.
            EtherType::Vlan | EtherType::Mpls | EtherType::DpiResults => EtherType::Other(0xffff),
            other => other,
        }
    }

    /// Parses a full packet from wire bytes.
    pub fn parse(buf: &[u8]) -> Result<Packet> {
        let (eth, mut off) = EthernetHeader::parse(buf)?;
        let mut ethertype = eth.ethertype;

        let mut vlan = Vec::new();
        while ethertype == EtherType::Vlan {
            let (tag, inner, used) = VlanTag::parse(&buf[off..])?;
            off += used;
            ethertype = inner;
            vlan.push(tag);
            if vlan.len() > 8 {
                return Err(ParseError::Unsupported {
                    layer: "vlan",
                    what: "more than 8 stacked tags",
                    value: vlan.len() as u64,
                });
            }
        }

        let mut dpi_results = None;
        if ethertype == EtherType::DpiResults {
            let (hdr, used) = DpiResultsHeader::parse(&buf[off..])?;
            off += used;
            dpi_results = Some(hdr);
            ethertype = EtherType::Ipv4;
        }

        let mut mpls = Vec::new();
        if ethertype == EtherType::Mpls {
            let (stack, used) = MplsLabel::parse_stack(&buf[off..])?;
            off += used;
            mpls = stack;
            ethertype = EtherType::Ipv4; // MPLS payload is IPv4 in this system
        }

        let body = match ethertype {
            EtherType::Ipv4 => {
                let (header, used) = Ipv4Header::parse(&buf[off..])?;
                let ip_start = off;
                off += used;
                let total = usize::from(header.total_len);
                if ip_start + total > buf.len() {
                    return Err(ParseError::BadLength {
                        layer: "ipv4",
                        claimed: total,
                        max: buf.len() - ip_start,
                    });
                }
                let l4_end = ip_start + total;
                let (l4, l4_used) = match header.protocol {
                    IpProtocol::Tcp => {
                        let (t, u) = TcpHeader::parse(&buf[off..l4_end])?;
                        (L4Header::Tcp(t), u)
                    }
                    IpProtocol::Udp => {
                        let (u_hdr, u) = UdpHeader::parse(&buf[off..l4_end])?;
                        (L4Header::Udp(u_hdr), u)
                    }
                    IpProtocol::Other(v) => {
                        return Err(ParseError::Unsupported {
                            layer: "ipv4",
                            what: "transport protocol",
                            value: u64::from(v),
                        })
                    }
                };
                off += l4_used;
                PacketBody::Ipv4 {
                    header,
                    l4,
                    payload: buf[off..l4_end].to_vec(),
                }
            }
            EtherType::ResultPacket => {
                let (r, _) = ResultPacket::parse(&buf[off..])?;
                PacketBody::Result(r)
            }
            _ => PacketBody::Raw(buf[off..].to_vec()),
        };

        // Normalize the stored ethertype to the body type: serialization
        // regenerates the outer chaining anyway, and this keeps
        // parse(to_bytes(p)) == p regardless of the tag stack.
        let mut eth = eth;
        eth.ethertype = match &body {
            PacketBody::Ipv4 { .. } => EtherType::Ipv4,
            PacketBody::Result(_) => EtherType::ResultPacket,
            PacketBody::Raw(_) => ethertype,
        };
        Ok(Packet {
            eth,
            vlan,
            mpls,
            dpi_results,
            body,
        })
    }
}

/// A convenience constructor for flow keys in tests and examples.
pub fn flow(
    src: [u8; 4],
    src_port: u16,
    dst: [u8; 4],
    dst_port: u16,
    protocol: IpProtocol,
) -> FlowKey {
    FlowKey {
        src_ip: Ipv4Addr::from(src),
        dst_ip: Ipv4Addr::from(dst),
        protocol,
        src_port,
        dst_port,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{MatchRecord, MiddleboxReport};

    fn tcp_flow() -> FlowKey {
        flow([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80, IpProtocol::Tcp)
    }

    fn sample_packet() -> Packet {
        Packet::tcp(
            MacAddr::local(1),
            MacAddr::local(2),
            tcp_flow(),
            1000,
            b"GET /index.html HTTP/1.1\r\nHost: example.org\r\n\r\n".to_vec(),
        )
    }

    #[test]
    fn plain_tcp_packet_round_trips() {
        let p = sample_packet();
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), p.wire_len());
        let parsed = Packet::parse(&bytes).unwrap();
        assert_eq!(parsed, p);
        assert_eq!(parsed.flow_key(), Some(tcp_flow()));
    }

    #[test]
    fn udp_packet_round_trips() {
        let f = flow([1, 2, 3, 4], 53, [5, 6, 7, 8], 5353, IpProtocol::Udp);
        let p = Packet::udp(MacAddr::local(3), MacAddr::local(4), f, b"dns?".to_vec());
        let parsed = Packet::parse(&p.to_bytes()).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn chain_tag_push_pop_round_trips() {
        let mut p = sample_packet();
        p.push_chain_tag(17).unwrap();
        p.push_chain_tag(99).unwrap();
        let parsed = Packet::parse(&p.to_bytes()).unwrap();
        assert_eq!(parsed.chain_tag(), Some(99));
        let mut parsed = parsed;
        assert_eq!(parsed.pop_chain_tag(), Some(99));
        assert_eq!(parsed.pop_chain_tag(), Some(17));
        assert_eq!(parsed.pop_chain_tag(), None);
    }

    #[test]
    fn ecn_match_mark_survives_round_trip() {
        let mut p = sample_packet();
        assert!(!p.has_match_mark());
        p.mark_matches();
        let parsed = Packet::parse(&p.to_bytes()).unwrap();
        assert!(parsed.has_match_mark());
    }

    #[test]
    fn ecn_ce_mark_survives_round_trip_and_is_distinct() {
        let mut p = sample_packet();
        assert!(!p.has_ce_mark());
        p.mark_congestion();
        assert!(p.has_ce_mark());
        // CE is not the match mark and vice versa.
        assert!(!p.has_match_mark());
        let parsed = Packet::parse(&p.to_bytes()).unwrap();
        assert!(parsed.has_ce_mark());
        let mut q = sample_packet();
        q.mark_matches();
        assert!(!q.has_ce_mark());
    }

    #[test]
    fn in_band_results_round_trip() {
        let mut p = sample_packet();
        p.push_chain_tag(5).unwrap();
        p.attach_results(DpiResultsHeader::new(
            5,
            2,
            vec![MiddleboxReport {
                middlebox_id: 9,
                records: vec![MatchRecord::Single {
                    pattern_id: 3,
                    position: 14,
                }],
            }],
        ));
        let bytes = p.to_bytes();
        let mut parsed = Packet::parse(&bytes).unwrap();
        assert_eq!(parsed, p);
        let results = parsed.detach_results().unwrap();
        assert_eq!(results.chain_id, 5);
        // After detaching, the packet serializes back to a plain tagged frame.
        let replain = Packet::parse(&parsed.to_bytes()).unwrap();
        assert!(replain.dpi_results.is_none());
        assert_eq!(replain.payload(), p.payload());
    }

    #[test]
    fn mpls_encapsulation_round_trips() {
        let mut p = sample_packet();
        p.mpls.push(MplsLabel::new(1001, false).unwrap());
        p.mpls.push(MplsLabel::new(2002, true).unwrap());
        let parsed = Packet::parse(&p.to_bytes()).unwrap();
        assert_eq!(parsed.mpls.len(), 2);
        assert_eq!(parsed.payload(), p.payload());
    }

    #[test]
    fn result_packet_body_round_trips() {
        let rp = ResultPacket {
            packet_id: 7,
            generation: 1,
            flow: tcp_flow(),
            flow_offset: 0,
            reports: vec![],
        };
        let p = Packet::result(MacAddr::local(9), MacAddr::local(10), rp.clone());
        let parsed = Packet::parse(&p.to_bytes()).unwrap();
        match parsed.body {
            PacketBody::Result(r) => assert_eq!(r, rp),
            other => panic!("expected result body, got {other:?}"),
        }
    }

    #[test]
    fn vlan_bomb_is_rejected() {
        let mut p = sample_packet();
        for i in 0..9 {
            p.push_chain_tag(i).unwrap();
        }
        assert!(Packet::parse(&p.to_bytes()).is_err());
    }

    #[test]
    fn truncated_ipv4_payload_is_rejected() {
        let p = sample_packet();
        let bytes = p.to_bytes();
        assert!(Packet::parse(&bytes[..bytes.len() - 4]).is_err());
    }

    #[test]
    fn ethertype_is_regenerated_consistently() {
        // Even if a caller leaves a stale ethertype, serialization fixes it.
        let mut p = sample_packet();
        p.eth.ethertype = EtherType::ResultPacket; // stale lie
        let parsed = Packet::parse(&p.to_bytes()).unwrap();
        assert!(matches!(parsed.body, PacketBody::Ipv4 { .. }));
    }
}
